"""Spans: shared no-op when disabled, histogram + trace when enabled."""

import json

from repro.obs import registry as obs
from repro.obs.tracing import _NULL_SPAN, Span, span


class TestDisabled:
    def test_span_returns_the_shared_null_singleton(self):
        assert obs.active() is None
        s1 = span("anything", backend="grid")
        s2 = span("else")
        assert s1 is _NULL_SPAN and s2 is _NULL_SPAN
        with s1:
            pass  # no registry, no clock, no record

    def test_null_span_swallows_nothing(self):
        try:
            with span("x"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        else:
            raise AssertionError("exceptions must propagate through spans")


class TestEnabled:
    def test_span_records_histogram_and_trace(self):
        with obs.collecting() as reg:
            with span("index_build", backend="grid") as s:
                assert isinstance(s, Span)
        assert reg.total("span_seconds") == 1.0
        (record,) = reg.spans
        assert record["name"] == "index_build"
        assert record["labels"] == {"backend": "grid"}
        assert record["seconds"] >= 0.0
        assert record["start"] > 0.0

    def test_span_labels_reach_the_histogram_series(self):
        with obs.collecting() as reg:
            with span("work", phase="a"):
                pass
            with span("work", phase="b"):
                pass
        snap = reg.to_dict()["metrics"]["span_seconds"]["series"]
        label_sets = [entry["labels"] for entry in snap]
        assert {"span": "work", "phase": "a"} in label_sets
        assert {"span": "work", "phase": "b"} in label_sets

    def test_trace_is_bounded_and_json_safe(self):
        with obs.collecting(obs.MetricsRegistry(span_limit=4)) as reg:
            for i in range(10):
                with span("tick", i=str(i)):
                    pass
        assert len(reg.spans) == 4
        assert [r["labels"]["i"] for r in reg.spans] == ["6", "7", "8", "9"]
        json.dumps(reg.to_dict())  # spans ride along, JSON-safe

    def test_exception_inside_span_still_records(self):
        with obs.collecting() as reg:
            try:
                with span("failing"):
                    raise ValueError("boom")
            except ValueError:
                pass
        assert reg.total("span_seconds") == 1.0
