"""MetricsRegistry: types, labels, overflow, snapshots, merge, exposition."""

import json

import pytest

from repro.obs import registry as obs
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    OVERFLOW_LABEL_VALUE,
    SNAPSHOT_FORMAT,
    MetricsRegistry,
)


class TestCounters:
    def test_inc_accumulates_per_label_set(self):
        reg = MetricsRegistry()
        reg.inc("queries_total", 1.0, {"kind": "lr"})
        reg.inc("queries_total", 2.0, {"kind": "lr"})
        reg.inc("queries_total", 5.0, {"kind": "lnr"})
        assert reg.get("queries_total", {"kind": "lr"}) == 3.0
        assert reg.get("queries_total", {"kind": "lnr"}) == 5.0
        assert reg.total("queries_total") == 8.0

    def test_unlabeled_series_is_its_own_key(self):
        reg = MetricsRegistry()
        reg.inc("hits_total")
        reg.inc("hits_total", 1.0, {"kind": "lr"})
        assert reg.get("hits_total") == 1.0
        assert reg.total("hits_total") == 2.0

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="cannot decrease"):
            reg.inc("queries_total", -1.0)

    def test_missing_metric_reads_as_zero_total_none_get(self):
        reg = MetricsRegistry()
        assert reg.total("nope_total") == 0.0
        assert reg.get("nope_total") is None
        assert reg.series("nope_total") == {}

    def test_invalid_metric_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            reg.inc("bad name!")


class TestTypeDiscipline:
    def test_name_keeps_its_first_type(self):
        reg = MetricsRegistry()
        reg.inc("thing")
        with pytest.raises(ValueError, match="is a counter, not a gauge"):
            reg.set_gauge("thing", 1.0)
        with pytest.raises(ValueError, match="is a counter, not a histogram"):
            reg.observe("thing", 1.0)

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("depth", 3.0)
        reg.set_gauge("depth", 7.0)
        assert reg.get("depth") == 7.0

    def test_histogram_buckets_and_count(self):
        reg = MetricsRegistry()
        reg.observe("lat_seconds", 0.0004)
        reg.observe("lat_seconds", 0.3)
        reg.observe("lat_seconds", 999.0)  # lands in the +Inf slot
        snap = reg.to_dict()["metrics"]["lat_seconds"]
        assert snap["type"] == "histogram"
        assert snap["buckets"] == list(DEFAULT_BUCKETS)
        (series,) = snap["series"]
        assert series["count"] == 3
        assert series["counts"][0] == 1      # <= 0.0005
        assert series["counts"][-1] == 1     # +Inf
        assert series["sum"] == pytest.approx(0.0004 + 0.3 + 999.0)


class TestLabelOverflow:
    def test_overflow_collapses_onto_sentinel(self):
        reg = MetricsRegistry(label_limit=2)
        reg.inc("c_total", 1.0, {"q": "a"})
        reg.inc("c_total", 1.0, {"q": "b"})
        reg.inc("c_total", 1.0, {"q": "c"})   # over the limit
        reg.inc("c_total", 1.0, {"q": "d"})
        assert reg.get("c_total", {"q": OVERFLOW_LABEL_VALUE}) == 2.0
        assert reg.total("c_total") == 4.0    # nothing dropped
        assert reg.to_dict()["metrics"]["c_total"]["overflowed"] is True

    def test_existing_series_keep_updating_after_overflow(self):
        reg = MetricsRegistry(label_limit=1)
        reg.inc("c_total", 1.0, {"q": "a"})
        reg.inc("c_total", 1.0, {"q": "b"})  # overflow
        reg.inc("c_total", 1.0, {"q": "a"})  # still addressed directly
        assert reg.get("c_total", {"q": "a"}) == 2.0


class TestSnapshotAndMerge:
    def test_snapshot_is_json_safe_and_round_trips(self):
        reg = MetricsRegistry()
        reg.inc("c_total", 2.0, {"k": "v"})
        reg.set_gauge("depth", 4.5)
        reg.observe("lat_seconds", 0.2)
        snap = json.loads(json.dumps(reg.to_dict()))
        assert snap["format"] == SNAPSHOT_FORMAT
        back = MetricsRegistry.from_dict(snap)
        assert back.get("c_total", {"k": "v"}) == 2.0
        assert back.get("depth") == 4.5
        assert back.to_dict() == reg.to_dict()

    def test_merge_adds_counters_and_histograms_keeps_last_gauge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c_total", 1.0)
        b.inc("c_total", 2.0)
        a.set_gauge("depth", 1.0)
        b.set_gauge("depth", 9.0)
        a.observe("lat_seconds", 0.1)
        b.observe("lat_seconds", 0.2)
        a.merge(b)
        assert a.get("c_total") == 3.0
        assert a.get("depth") == 9.0
        snap = a.to_dict()["metrics"]["lat_seconds"]["series"][0]
        assert snap["count"] == 2

    def test_merge_is_associative_for_counters(self):
        parts = []
        for v in (1.0, 2.0, 4.0):
            r = MetricsRegistry()
            r.inc("c_total", v, {"w": str(v)})
            parts.append(r.to_dict())
        left = MetricsRegistry()
        for p in parts:
            left.merge(p)
        right = MetricsRegistry()
        mid = MetricsRegistry()
        mid.merge(parts[1])
        mid.merge(parts[2])
        right.merge(parts[0])
        right.merge(mid)
        assert left.to_dict() == right.to_dict()

    def test_merge_extra_labels_stamp_incoming_series(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.inc("c_total", 10.0, {"kind": "lr"})
        worker.inc("c_total", 3.0, {"kind": "lr"})
        parent.merge(worker, extra_labels={"outcome": "failed"})
        assert parent.get("c_total", {"kind": "lr"}) == 10.0
        assert parent.get("c_total", {"kind": "lr", "outcome": "failed"}) == 3.0

    def test_merge_rejects_foreign_format(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="format-99"):
            reg.merge({"format": 99, "metrics": {}})

    def test_merge_rejects_unknown_metric_type(self):
        reg = MetricsRegistry()
        snap = {
            "format": SNAPSHOT_FORMAT,
            "metrics": {"x": {"type": "summary", "series": [{"labels": {}, "value": 1.0}]}},
        }
        with pytest.raises(ValueError, match="unknown metric type"):
            reg.merge(snap)


class TestPrometheusExposition:
    def test_counter_gauge_and_histogram_render(self):
        reg = MetricsRegistry()
        reg.inc("queries_total", 3.0, {"kind": "lr"})
        reg.set_gauge("depth", 2.5)
        reg.observe("lat_seconds", 0.002)
        text = reg.render_prometheus()
        assert "# TYPE queries_total counter" in text
        assert 'queries_total{kind="lr"} 3' in text
        assert "depth 2.5" in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_count 1" in text

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.inc("c_total", 1.0, {"q": 'say "hi"\n'})
        assert '\\"hi\\"\\n' in reg.render_prometheus()

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""


class TestActiveSlot:
    def test_disabled_by_default(self):
        assert obs.active() is None
        assert not obs.enabled()

    def test_enable_disable_cycle(self):
        reg = obs.enable()
        try:
            assert obs.active() is reg
            obs.inc("c_total", 2.0)
            assert reg.get("c_total") == 2.0
        finally:
            assert obs.disable() is reg
        assert obs.active() is None
        obs.inc("c_total")  # no-op when disabled, never raises
        obs.set_gauge("g", 1.0)
        obs.observe("h", 1.0)

    def test_collecting_installs_and_restores(self):
        outer = obs.enable()
        try:
            with obs.collecting() as inner:
                assert obs.active() is inner
                assert inner is not outer
                obs.inc("c_total")
            assert obs.active() is outer
            assert outer.get("c_total") is None
        finally:
            obs.disable()

    def test_paused_suspends_collection(self):
        with obs.collecting() as reg:
            obs.inc("c_total")
            with obs.paused():
                assert obs.active() is None
                obs.inc("c_total")
            obs.inc("c_total")
        assert reg.get("c_total") == 2.0
