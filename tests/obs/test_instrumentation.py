"""Instrumented hot paths: counters mirror budgets, estimates untouched.

The two load-bearing invariants of the obs layer:

* ``interface_queries_total`` equals the budget's own accounting exactly
  — the counter is bumped at the ``spend()`` site, after spend raised on
  exhaustion, so the registry and ``queries_used`` can never drift;
* instrumentation observes and never branches — every estimate, trace,
  and state snapshot is bit-identical with and without a registry.
"""

import json

import numpy as np
import pytest

from repro.core import AggregateQuery, LrLbsAgg
from repro.core.stopping import MaxSamples
from repro.geometry import Point
from repro.lbs import (
    BudgetExhausted,
    LnrLbsInterface,
    LrLbsInterface,
    QueryBudget,
)
from repro.obs import RunTelemetry
from repro.obs import registry as obs
from repro.sampling import UniformSampler


def random_points(n, seed=1):
    rng = np.random.default_rng(seed)
    return [Point(rng.random() * 100, rng.random() * 100) for _ in range(n)]


class TestInterfaceCounters:
    def test_scalar_queries_match_budget_exactly(self, small_db):
        api = LrLbsInterface(small_db, k=3, budget=QueryBudget(50))
        with obs.collecting() as reg:
            for p in random_points(12):
                api.query(p)
        assert reg.total("interface_queries_total") == api.queries_used == 12
        assert reg.get("interface_queries_total", {"kind": "lr"}) == 12.0
        assert reg.total("interface_answers_total") == 12.0

    def test_cache_hits_counted_but_never_spend(self, small_db):
        api = LrLbsInterface(small_db, k=3, budget=QueryBudget(50))
        p = Point(20, 30)
        with obs.collecting() as reg:
            api.query(p)
            api.query(p)  # replay: free, and counted as a hit
        assert api.queries_used == 1
        assert reg.total("interface_queries_total") == 1.0
        assert reg.total("interface_cache_hits_total") == 1.0
        assert reg.total("interface_cache_misses_total") == 1.0

    def test_batch_queries_match_budget_exactly(self, small_db):
        api = LrLbsInterface(small_db, k=3, budget=QueryBudget(100))
        pts = random_points(17, seed=4)
        with obs.collecting() as reg:
            api.query_batch(pts)
            api.query_batch(pts)  # all cached now: zero new spend
        assert api.queries_used == 17
        assert reg.total("interface_queries_total") == 17.0
        assert reg.total("interface_cache_hits_total") == 17.0

    def test_exhausted_budget_not_counted(self, small_db):
        api = LrLbsInterface(small_db, k=3, budget=QueryBudget(2))
        with obs.collecting() as reg:
            api.query(Point(10, 10))
            api.query(Point(60, 60))
            with pytest.raises(BudgetExhausted):
                api.query(Point(90, 90))
        # spend() raised before the counter bumped: registry == budget.
        assert reg.total("interface_queries_total") == api.queries_used == 2

    def test_lnr_labelled_by_kind(self, tiny_db):
        api = LnrLbsInterface(tiny_db, k=3)
        with obs.collecting() as reg:
            api.query(Point(30, 40))
        assert reg.get("interface_queries_total", {"kind": "lnr"}) == 1.0


class TestPipelineCounters:
    def test_scalar_answer_counts_returned_tuples(self, small_db):
        api = LrLbsInterface(small_db, k=3)
        with obs.collecting() as reg:
            ans = api.query(Point(20, 30))
        assert reg.get("pipeline_answers_total", {"mode": "scalar"}) == 1.0
        assert reg.total("pipeline_returned_tuples_total") == len(ans.results)

    def test_batch_answers_count_per_point(self, small_db):
        api = LrLbsInterface(small_db, k=3)
        pts = random_points(9, seed=7)
        with obs.collecting() as reg:
            answers = api.query_batch(pts)
        assert reg.get("pipeline_answers_total", {"mode": "batch"}) == 9.0
        returned = sum(len(a.results) for a in answers)
        assert reg.total("pipeline_returned_tuples_total") == returned


class TestBitIdentity:
    def _run(self, small_db, box):
        est = LrLbsAgg(LrLbsInterface(small_db, k=5), UniformSampler(box),
                       AggregateQuery.count(), seed=0)
        return est.run(MaxSamples(20), batch_size=4)

    def test_estimates_identical_with_and_without_registry(self, small_db, box):
        plain = self._run(small_db, box)
        with obs.collecting():
            observed = self._run(small_db, box)
        assert observed.estimate == plain.estimate
        assert observed.queries == plain.queries
        assert observed.trace == plain.trace

    def test_state_snapshots_identical_modulo_nothing(self, small_db, box):
        def paused_state():
            est = LrLbsAgg(LrLbsInterface(small_db, k=5), UniformSampler(box),
                           AggregateQuery.count(), seed=0)
            for i, _cp in enumerate(est.run_iter(MaxSamples(30))):
                if i == 9:
                    break
            return est.to_state(queries_start=0)

        plain = paused_state()
        with obs.collecting():
            observed = paused_state()
        assert json.dumps(plain, sort_keys=True) == json.dumps(observed, sort_keys=True)


class TestDriverTelemetry:
    def _est(self, small_db, box, seed=0):
        return LrLbsAgg(LrLbsInterface(small_db, k=5), UniformSampler(box),
                        AggregateQuery.count(), seed=seed)

    def test_checkpoints_carry_consistent_telemetry(self, small_db, box):
        est = self._est(small_db, box)
        seen = []
        for cp in est.run_iter(MaxSamples(10)):
            t = cp.telemetry
            assert isinstance(t, RunTelemetry)
            assert t.samples == cp.samples
            assert t.queries == cp.queries
            seen.append(t.checkpoints)
        assert seen == list(range(1, 11))

    def test_result_telemetry_matches_final_accounting(self, small_db, box):
        result = self._est(small_db, box).run(MaxSamples(15))
        t = result.telemetry
        assert t is not None
        assert t.samples == result.samples == 15
        assert t.queries == result.queries
        assert t.cache_hits + t.cache_misses >= t.queries == t.cache_misses

    def test_run_metrics_stream_into_registry(self, small_db, box):
        with obs.collecting() as reg:
            result = self._est(small_db, box).run(MaxSamples(12))
        assert reg.total("run_samples_total") == 12.0
        assert reg.total("run_checkpoints_total") == 12.0
        assert reg.get("run_queries_spent") == float(result.queries)

    def test_state_round_trips_telemetry_and_checkpoint_count(self, small_db, box):
        est = self._est(small_db, box)
        for i, _cp in enumerate(est.run_iter(MaxSamples(20))):
            if i == 7:
                break
        state = json.loads(json.dumps(est.to_state(queries_start=0)))
        assert state["version"] == 4
        assert state["telemetry"]["samples"] == 8
        assert state["telemetry"]["checkpoints"] == 8

        resumed = self._est(small_db, box)
        resumed.load_state(state)
        first = next(iter(resumed.run_iter(MaxSamples(20))))
        # The checkpoint counter continues where the snapshot left off.
        assert first.telemetry.checkpoints == 9

    def test_load_state_rejects_pre_v3_snapshots(self, small_db, box):
        est = self._est(small_db, box)
        est.run(MaxSamples(3))
        state = est.to_state()
        state["version"] = 2
        fresh = self._est(small_db, box)
        with pytest.raises(ValueError, match="version-2 snapshot"):
            fresh.load_state(state)

    def test_load_state_rejects_missing_telemetry(self, small_db, box):
        est = self._est(small_db, box)
        est.run(MaxSamples(3))
        state = est.to_state()
        state["telemetry"] = None
        fresh = self._est(small_db, box)
        with pytest.raises(ValueError, match="telemetry"):
            fresh.load_state(state)
