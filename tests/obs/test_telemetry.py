"""RunTelemetry: JSON round-trip, strict parsing, non-finite scrubbing."""

import json
import math

import pytest

from repro.obs import RunTelemetry


class TestRoundTrip:
    def test_round_trips_through_json(self):
        t = RunTelemetry(samples=10, queries=55, checkpoints=10,
                         cache_hits=3, cache_misses=52, ci_rel_halfwidth=0.25)
        back = RunTelemetry.from_dict(json.loads(json.dumps(t.to_dict())))
        assert back == t

    def test_defaults_are_zeroed(self):
        t = RunTelemetry()
        assert t.samples == t.queries == t.checkpoints == 0
        assert t.cache_hits == t.cache_misses == 0
        assert t.ci_rel_halfwidth is None

    def test_non_finite_rel_serializes_as_null(self):
        t = RunTelemetry(samples=1, ci_rel_halfwidth=math.inf)
        payload = t.to_dict()
        assert payload["ci_rel_halfwidth"] is None
        json.dumps(payload)  # stays strict-JSON safe (no Infinity literal)
        assert RunTelemetry.from_dict(payload).ci_rel_halfwidth is None


class TestStrictParsing:
    def test_missing_keys_rejected(self):
        payload = RunTelemetry().to_dict()
        del payload["queries"]
        with pytest.raises(ValueError, match="missing keys.*queries"):
            RunTelemetry.from_dict(payload)

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError, match="must be a dict"):
            RunTelemetry.from_dict(None)
        with pytest.raises(ValueError, match="must be a dict"):
            RunTelemetry.from_dict([1, 2, 3])

    def test_frozen(self):
        t = RunTelemetry()
        with pytest.raises(AttributeError):
            t.samples = 5
