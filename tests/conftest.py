"""Shared fixtures: small hidden databases with known ground truth."""

import numpy as np
import pytest

from repro.geometry import Point, Rect
from repro.lbs import LbsTuple, SpatialDatabase

BOX = Rect(0.0, 0.0, 100.0, 100.0)


def _make_db(n: int, seed: int) -> SpatialDatabase:
    rng = np.random.default_rng(seed)
    tuples = []
    for i in range(n):
        attrs = {
            "category": "school" if i % 3 == 0 else "restaurant",
            "value": float(rng.integers(1, 100)),
            "gender": "m" if rng.random() < 0.6 else "f",
            "is_male": 0,
        }
        attrs["is_male"] = 1 if attrs["gender"] == "m" else 0
        tuples.append(
            LbsTuple(i, Point(rng.random() * 100.0, rng.random() * 100.0), attrs)
        )
    return SpatialDatabase(tuples, BOX)


@pytest.fixture(scope="session")
def box() -> Rect:
    return BOX


@pytest.fixture(scope="session")
def small_db() -> SpatialDatabase:
    """60 uniform tuples — cheap enough for exact-cell comparisons."""
    return _make_db(60, seed=3)


@pytest.fixture(scope="session")
def tiny_db() -> SpatialDatabase:
    """12 tuples — for the most query-hungry LNR paths."""
    return _make_db(12, seed=9)
