"""Tests for arrangement level regions (top-k Voronoi cells)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    ConvexPolygon,
    Point,
    Rect,
    bisector_halfplane,
    build_level_region,
    full_voronoi_diagram,
    true_topk_cell,
    true_voronoi_cell,
)
from repro.index import BruteForceIndex

BOX = Rect(0, 0, 100, 100)


def random_sites(rng, n):
    return [Point(rng.random() * 100, rng.random() * 100) for _ in range(n)]


class TestLevelRegion:
    def test_no_constraints_whole_base(self):
        base = ConvexPolygon.from_rect(BOX)
        region = build_level_region([], 0, base, Point(50, 50))
        assert region.area() == pytest.approx(BOX.area)

    def test_level_ge_n_whole_base(self):
        base = ConvexPolygon.from_rect(BOX)
        cons = [bisector_halfplane(Point(10, 10), Point(90, 90))]
        region = build_level_region(cons, 5, base, Point(50, 50))
        assert region.area() == pytest.approx(BOX.area)

    def test_seed_outside_raises(self):
        base = ConvexPolygon.from_rect(BOX)
        cons = [bisector_halfplane(Point(10, 50), Point(20, 50))]
        with pytest.raises(ValueError):
            build_level_region(cons, 0, base, Point(90, 50))

    def test_top1_matches_direct_clip(self):
        rng = np.random.default_rng(0)
        sites = random_sites(rng, 20)
        t = sites[0]
        cell = true_voronoi_cell(t, sites[1:], BOX)
        cons = [bisector_halfplane(t, u, label=i) for i, u in enumerate(sites[1:])]
        region = build_level_region(cons, 0, ConvexPolygon.from_rect(BOX), t)
        assert region.num_pieces() == 1
        assert region.area() == pytest.approx(cell.area())

    def test_boundary_vertices_on_boundary(self):
        rng = np.random.default_rng(1)
        sites = random_sites(rng, 15)
        region = true_topk_cell(sites[0], sites[1:], 2, BOX)
        for v in region.boundary_vertices():
            # A boundary vertex is in the closed region but not interior:
            # nudging outward along some direction must leave the region.
            assert region.contains(v, tol=1e-6)

    def test_sample_inside(self):
        rng = np.random.default_rng(2)
        sites = random_sites(rng, 12)
        region = true_topk_cell(sites[0], sites[1:], 3, BOX)
        for _ in range(100):
            p = region.sample(rng)
            assert region.contains(p, tol=1e-7)

    @given(st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_membership_matches_knn(self, k, seed):
        rng = np.random.default_rng(seed)
        sites = random_sites(rng, 14)
        region = true_topk_cell(sites[0], sites[1:], k, BOX)
        index = BruteForceIndex([(p.x, p.y, i) for i, p in enumerate(sites)])
        for _ in range(150):
            q = BOX.sample(rng)
            topk = [tid for _, tid in index.knn(q.x, q.y, k)]
            assert region.contains(q) == (0 in topk)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_area_monotone_in_k(self, seed):
        rng = np.random.default_rng(seed)
        sites = random_sites(rng, 12)
        areas = [true_topk_cell(sites[0], sites[1:], k, BOX).area() for k in (1, 2, 3)]
        assert areas[0] <= areas[1] + 1e-9 <= areas[2] + 2e-9

    def test_topk_area_sums_to_k_times_box(self):
        """Σ_t |V_k(t)| = k * |V0| (every location has exactly k owners)."""
        rng = np.random.default_rng(3)
        sites = random_sites(rng, 10)
        k = 2
        total = 0.0
        for i, t in enumerate(sites):
            others = sites[:i] + sites[i + 1:]
            total += true_topk_cell(t, others, k, BOX).area()
        assert total == pytest.approx(k * BOX.area, rel=1e-6)


class TestVoronoiRef:
    def test_partition(self):
        rng = np.random.default_rng(4)
        sites = {i: p for i, p in enumerate(random_sites(rng, 25))}
        cells = full_voronoi_diagram(sites, BOX)
        assert sum(c.area() for c in cells.values()) == pytest.approx(BOX.area, rel=1e-9)

    def test_cell_contains_its_site(self):
        rng = np.random.default_rng(5)
        sites = {i: p for i, p in enumerate(random_sites(rng, 15))}
        cells = full_voronoi_diagram(sites, BOX)
        for i, cell in cells.items():
            assert cell.contains(sites[i], tol=1e-9)

    def test_two_sites_half_plane_split(self):
        cells = full_voronoi_diagram({0: Point(25, 50), 1: Point(75, 50)}, BOX)
        assert cells[0].area() == pytest.approx(BOX.area / 2)
        assert cells[1].area() == pytest.approx(BOX.area / 2)
