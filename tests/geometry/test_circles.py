"""Tests for circle arithmetic, arc coverage, and polygon-disk area."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    AngularIntervals,
    ConvexPolygon,
    Disk,
    Point,
    Rect,
    arc_inside_disk,
    disk_covered_by_union,
    polygon_disk_area,
    segment_circle_intersections,
)

coord = st.floats(min_value=-50, max_value=50, allow_nan=False)
radius = st.floats(min_value=0.1, max_value=30, allow_nan=False)


class TestDisk:
    def test_contains_point(self):
        d = Disk(Point(0, 0), 5)
        assert d.contains_point(Point(3, 4))
        assert not d.contains_point(Point(3.1, 4))

    def test_contains_disk(self):
        assert Disk(Point(0, 0), 5).contains_disk(Disk(Point(1, 0), 3))
        assert not Disk(Point(0, 0), 5).contains_disk(Disk(Point(3, 0), 3))

    def test_point_at(self):
        d = Disk(Point(1, 1), 2)
        p = d.point_at(math.pi / 2)
        assert p.x == pytest.approx(1) and p.y == pytest.approx(3)


class TestArcInsideDisk:
    def test_disjoint(self):
        c = Disk(Point(0, 0), 1)
        assert arc_inside_disk(c, Disk(Point(10, 0), 1)) is None

    def test_full_cover(self):
        c = Disk(Point(0, 0), 1)
        assert arc_inside_disk(c, Disk(Point(0.1, 0), 5)) == (0.0, 2 * math.pi)

    def test_half_cover_symmetric(self):
        # Equal radii, centres 2r apart on the x-axis: the covered arc of
        # the first circle is centred on angle 0.
        c = Disk(Point(0, 0), 2)
        lo, hi = arc_inside_disk(c, Disk(Point(2, 0), 2))
        mid = (lo + hi) / 2
        assert mid == pytest.approx(0, abs=1e-9)

    def test_shrink_reduces_arc(self):
        c = Disk(Point(0, 0), 2)
        full = arc_inside_disk(c, Disk(Point(2, 0), 2))
        shrunk = arc_inside_disk(c, Disk(Point(2, 0), 2), shrink=0.5)
        assert (full[1] - full[0]) > (shrunk[1] - shrunk[0])

    @given(coord, coord, radius, coord, coord, radius)
    @settings(max_examples=80, deadline=None)
    def test_arc_matches_pointwise(self, cx, cy, cr, dx, dy, dr):
        circle = Disk(Point(cx, cy), cr)
        disk = Disk(Point(dx, dy), dr)
        interval = arc_inside_disk(circle, disk)
        ai = AngularIntervals()
        ai.add_interval(interval)
        for theta in np.linspace(0, 2 * math.pi, 17):
            p = circle.point_at(theta)
            d = math.hypot(p.x - dx, p.y - dy)
            if abs(d - dr) < 1e-6:
                continue  # boundary-grazing: numerically ambiguous
            covered = any(lo <= theta % (2 * math.pi) <= hi for lo, hi in ai.merged())
            assert covered == (d < dr)


class TestAngularIntervals:
    def test_empty_not_full(self):
        assert not AngularIntervals().covers_full()

    def test_full_single(self):
        ai = AngularIntervals()
        ai.add(0, 2 * math.pi)
        assert ai.covers_full()

    def test_wraparound(self):
        ai = AngularIntervals()
        ai.add(-1, 1)
        merged = ai.merged()
        assert len(merged) == 2  # split across 0

    def test_union_of_pieces_covers(self):
        ai = AngularIntervals()
        ai.add(0, 3)
        ai.add(2.5, 5)
        ai.add(4.5, 2 * math.pi + 0.1)
        assert ai.covers_full()

    def test_uncovered_gap(self):
        ai = AngularIntervals()
        ai.add(0, 1)
        ai.add(2, 2 * math.pi)
        gaps = ai.uncovered([(0, 2 * math.pi)])
        assert len(gaps) == 1
        lo, hi = gaps[0]
        assert lo == pytest.approx(1) and hi == pytest.approx(2)

    def test_total(self):
        ai = AngularIntervals()
        ai.add(1, 2)
        ai.add(1.5, 3)
        assert ai.total() == pytest.approx(2.0)


class TestDiskCoverage:
    def test_single_superset(self):
        assert disk_covered_by_union(Disk(Point(0, 0), 1), [Disk(Point(0, 0), 2)])

    def test_not_covered_smaller(self):
        assert not disk_covered_by_union(Disk(Point(0, 0), 2), [Disk(Point(0, 0), 1)])

    def test_covered_by_four_overlapping(self):
        target = Disk(Point(0, 0), 10)
        disks = [
            Disk(Point(-6, 0), 9), Disk(Point(6, 0), 9),
            Disk(Point(0, -6), 9), Disk(Point(0, 6), 9),
        ]
        assert disk_covered_by_union(target, disks)

    def test_hole_detected(self):
        # A ring of six disks covering the target boundary but leaving the
        # centre uncovered: must be rejected.
        target = Disk(Point(0, 0), 4)
        ring = [
            Disk(Point(4 * math.cos(a), 4 * math.sin(a)), 2.5)
            for a in np.linspace(0, 2 * math.pi, 7)[:-1]
        ]
        assert not any(d.contains_point(Point(0, 0)) for d in ring)
        assert not disk_covered_by_union(target, ring)

    def test_point_target(self):
        assert disk_covered_by_union(Disk(Point(1, 1), 0), [Disk(Point(0, 0), 2)])
        assert not disk_covered_by_union(Disk(Point(5, 5), 0), [Disk(Point(0, 0), 2)])

    def test_no_disks(self):
        assert not disk_covered_by_union(Disk(Point(0, 0), 1), [])

    @given(
        st.lists(st.tuples(coord, coord, radius), min_size=1, max_size=6),
        coord, coord, st.floats(min_value=0.5, max_value=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_soundness_against_sampling(self, disks_raw, tx, ty, tr):
        """If the test says 'covered', every sampled point must be inside."""
        target = Disk(Point(tx, ty), tr)
        disks = [Disk(Point(x, y), r) for x, y, r in disks_raw]
        if not disk_covered_by_union(target, disks):
            return
        rng = np.random.default_rng(0)
        for _ in range(300):
            ang = rng.random() * 2 * math.pi
            rad = tr * math.sqrt(rng.random())
            p = Point(tx + rad * math.cos(ang), ty + rad * math.sin(ang))
            assert any(d.contains_point(p, tol=1e-7) for d in disks)


class TestPolygonDiskArea:
    def test_disk_inside_polygon(self):
        sq = ConvexPolygon.from_rect(Rect(-10, -10, 10, 10))
        a = polygon_disk_area(sq.vertices, Point(0, 0), 2)
        assert a == pytest.approx(math.pi * 4)

    def test_polygon_inside_disk(self):
        sq = ConvexPolygon.from_rect(Rect(-1, -1, 1, 1))
        a = polygon_disk_area(sq.vertices, Point(0, 0), 10)
        assert a == pytest.approx(4.0)

    def test_quarter_disk(self):
        sq = ConvexPolygon.from_rect(Rect(0, 0, 10, 10))
        a = polygon_disk_area(sq.vertices, Point(0, 0), 4)
        assert a == pytest.approx(math.pi * 16 / 4)

    def test_disjoint(self):
        sq = ConvexPolygon.from_rect(Rect(10, 10, 20, 20))
        assert polygon_disk_area(sq.vertices, Point(0, 0), 3) == pytest.approx(0, abs=1e-9)

    def test_zero_radius(self):
        sq = ConvexPolygon.from_rect(Rect(0, 0, 1, 1))
        assert polygon_disk_area(sq.vertices, Point(0, 0), 0) == 0.0

    @given(coord, coord, st.floats(min_value=0.5, max_value=20))
    @settings(max_examples=40, deadline=None)
    def test_matches_monte_carlo(self, cx, cy, r):
        rect = Rect(-10, -5, 15, 12)
        poly = ConvexPolygon.from_rect(rect)
        exact = polygon_disk_area(poly.vertices, Point(cx, cy), r)
        rng = np.random.default_rng(7)
        n = 4000
        hits = 0
        for _ in range(n):
            p = rect.sample(rng)
            if math.hypot(p.x - cx, p.y - cy) <= r:
                hits += 1
        mc = rect.area * hits / n
        assert exact == pytest.approx(mc, abs=4.0 * rect.area / math.sqrt(n))

    def test_segment_circle_intersections(self):
        ts = segment_circle_intersections(Point(-2, 0), Point(2, 0), 1.0)
        assert len(ts) == 2
        xs = sorted(-2 + t * 4 for t in ts)
        assert xs[0] == pytest.approx(-1) and xs[1] == pytest.approx(1)
