"""Tests for labeled convex polygons and half-plane clipping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    BBOX_LABEL,
    ConvexPolygon,
    HalfPlane,
    Point,
    Rect,
    bisector_halfplane,
)

BOX = Rect(0, 0, 10, 10)
coord = st.floats(min_value=-20, max_value=20, allow_nan=False)


class TestConstruction:
    def test_from_rect(self):
        poly = ConvexPolygon.from_rect(BOX)
        assert len(poly) == 4
        assert poly.area() == pytest.approx(100.0)
        assert set(poly.edge_labels) == {BBOX_LABEL}

    def test_empty(self):
        assert ConvexPolygon.empty().is_empty()
        assert not ConvexPolygon.empty()

    def test_label_mismatch_raises(self):
        with pytest.raises(ValueError):
            ConvexPolygon([Point(0, 0), Point(1, 0), Point(0, 1)], ["a"])

    def test_centroid_perimeter(self):
        poly = ConvexPolygon.from_rect(BOX)
        assert poly.centroid() == Point(5, 5)
        assert poly.perimeter() == pytest.approx(40.0)

    def test_bounding_rect(self):
        poly = ConvexPolygon.from_rect(Rect(1, 2, 3, 4))
        assert poly.bounding_rect() == Rect(1, 2, 3, 4)


class TestContains:
    def test_inside_outside_boundary(self):
        poly = ConvexPolygon.from_rect(BOX)
        assert poly.contains(Point(5, 5))
        assert poly.contains(Point(0, 0))
        assert not poly.contains(Point(11, 5))


class TestClip:
    def test_no_op_when_fully_inside(self):
        poly = ConvexPolygon.from_rect(BOX)
        clipped = poly.clip(HalfPlane(1, 0, 100))  # x <= 100
        assert clipped.area() == pytest.approx(100.0)

    def test_empty_when_fully_outside(self):
        poly = ConvexPolygon.from_rect(BOX)
        assert poly.clip(HalfPlane(1, 0, -5)).is_empty()

    def test_half_cut(self):
        poly = ConvexPolygon.from_rect(BOX).clip(HalfPlane(1, 0, 5, "cut"))
        assert poly.area() == pytest.approx(50.0)
        assert "cut" in poly.labels()

    def test_new_edge_carries_label(self):
        poly = ConvexPolygon.from_rect(BOX).clip(HalfPlane(1, 0, 5, "cut"))
        cut_edges = [(a, b) for a, b, lbl in poly.edges() if lbl == "cut"]
        assert len(cut_edges) == 1
        (a, b) = cut_edges[0]
        assert a.x == pytest.approx(5.0) and b.x == pytest.approx(5.0)

    def test_surviving_edges_keep_labels(self):
        poly = ConvexPolygon.from_rect(BOX).clip(HalfPlane(1, 0, 5, "cut"))
        assert BBOX_LABEL in poly.labels()

    def test_clip_many_short_circuits(self):
        poly = ConvexPolygon.from_rect(BOX)
        out = poly.clip_many([HalfPlane(1, 0, -5), HalfPlane(0, 1, 5)])
        assert out.is_empty()

    def test_clip_rect(self):
        poly = ConvexPolygon.from_rect(BOX).clip_rect(Rect(2, 2, 4, 7))
        assert poly.area() == pytest.approx(10.0)

    def test_bisector_clip_splits_area(self):
        poly = ConvexPolygon.from_rect(BOX)
        hp = bisector_halfplane(Point(2, 5), Point(8, 5))
        assert poly.clip(hp).area() == pytest.approx(50.0)

    @given(st.lists(st.tuples(coord, coord, coord, coord), min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_clip_reduces_area_and_stays_inside(self, cuts):
        poly = ConvexPolygon.from_rect(BOX)
        for tx, ty, ux, uy in cuts:
            t, u = Point(tx, ty), Point(ux, uy)
            if (t.x, t.y) == (u.x, u.y):
                continue
            prev_area = poly.area()
            poly = poly.clip(bisector_halfplane(t, u))
            assert poly.area() <= prev_area + 1e-9
            if poly.is_empty():
                return
        for v in poly.vertices:
            assert BOX.contains(v, tol=1e-6)


class TestSampling:
    def test_samples_inside(self):
        rng = np.random.default_rng(0)
        poly = ConvexPolygon.from_rect(BOX).clip(HalfPlane(1, 1, 10))
        for _ in range(200):
            assert poly.contains(poly.sample(rng), tol=1e-9)

    def test_sample_empty_raises(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            ConvexPolygon.empty().sample(rng)

    def test_sample_roughly_uniform(self):
        rng = np.random.default_rng(1)
        poly = ConvexPolygon.from_rect(BOX)
        left = sum(poly.sample(rng).x < 5 for _ in range(2000))
        assert 0.4 < left / 2000 < 0.6

    def test_triangles_cover_area(self):
        poly = ConvexPolygon.from_rect(BOX).clip(HalfPlane(1, 1, 12))
        from repro.geometry import orientation

        tri_area = sum(abs(orientation(a, b, c)) / 2 for a, b, c in poly.triangles())
        assert tri_area == pytest.approx(poly.area())
