"""Unit and property tests for geometric primitives."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import (
    Point,
    Rect,
    angle_between,
    angle_of,
    cross,
    distance,
    distance_sq,
    dot,
    interpolate,
    midpoint,
    normalize,
    orientation,
    perpendicular,
    polygon_area,
    polygon_centroid,
    rotate,
)

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)
small = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False)


class TestPoint:
    def test_add_sub(self):
        assert Point(1, 2) + Point(3, 4) == Point(4, 6)
        assert Point(3, 4) - Point(1, 2) == Point(2, 2)

    def test_scalar_mul(self):
        assert Point(1, -2) * 3 == Point(3, -6)
        assert 3 * Point(1, -2) == Point(3, -6)

    def test_norm(self):
        assert Point(3, 4).norm() == pytest.approx(5.0)

    def test_unpacking(self):
        x, y = Point(7, 8)
        assert (x, y) == (7, 8)


class TestRect:
    def test_dimensions(self):
        r = Rect(1, 2, 5, 10)
        assert r.width == 4 and r.height == 8
        assert r.area == 32
        assert r.perimeter == 24
        assert r.center == Point(3, 6)

    def test_corners_ccw(self):
        r = Rect(0, 0, 2, 1)
        corners = r.corners()
        assert polygon_area(corners) > 0  # counter-clockwise

    def test_contains_and_clamp(self):
        r = Rect(0, 0, 10, 10)
        assert r.contains(Point(5, 5))
        assert r.contains(Point(0, 0))
        assert not r.contains(Point(11, 5))
        assert r.clamp(Point(12, -3)) == Point(10, 0)

    def test_expanded(self):
        r = Rect(0, 0, 2, 2).expanded(1)
        assert r == Rect(-1, -1, 3, 3)

    def test_sample_inside(self):
        import numpy as np

        r = Rect(3, 4, 8, 9)
        rng = np.random.default_rng(0)
        for _ in range(100):
            assert r.contains(r.sample(rng))


class TestVectorOps:
    def test_distance(self):
        assert distance(Point(0, 0), Point(3, 4)) == pytest.approx(5.0)
        assert distance_sq(Point(0, 0), Point(3, 4)) == pytest.approx(25.0)

    def test_midpoint(self):
        assert midpoint(Point(0, 0), Point(2, 4)) == Point(1, 2)

    def test_dot_cross(self):
        assert dot(Point(1, 2), Point(3, 4)) == 11
        assert cross(Point(1, 0), Point(0, 1)) == 1

    def test_orientation_signs(self):
        a, b = Point(0, 0), Point(1, 0)
        assert orientation(a, b, Point(0.5, 1)) > 0   # left turn
        assert orientation(a, b, Point(0.5, -1)) < 0  # right turn
        assert orientation(a, b, Point(2, 0)) == 0    # collinear

    def test_rotate_quarter(self):
        v = rotate(Point(1, 0), math.pi / 2)
        assert v.x == pytest.approx(0, abs=1e-12)
        assert v.y == pytest.approx(1)

    def test_normalize(self):
        assert normalize(Point(0, 5)) == Point(0, 1)
        with pytest.raises(ValueError):
            normalize(Point(0, 0))

    def test_perpendicular_is_orthogonal(self):
        v = Point(3, 7)
        assert dot(v, perpendicular(v)) == 0

    def test_interpolate(self):
        assert interpolate(Point(0, 0), Point(10, 20), 0.5) == Point(5, 10)

    def test_angle_of(self):
        assert angle_of(Point(0, 1)) == pytest.approx(math.pi / 2)

    def test_angle_between(self):
        assert angle_between(Point(1, 0), Point(0, 2)) == pytest.approx(math.pi / 2)
        with pytest.raises(ValueError):
            angle_between(Point(0, 0), Point(1, 0))

    @given(small, small, st.floats(min_value=-math.pi, max_value=math.pi))
    def test_rotation_preserves_norm(self, x, y, theta):
        v = Point(x, y)
        assert rotate(v, theta).norm() == pytest.approx(v.norm(), abs=1e-6)

    @given(small, small, small, small, small, small)
    def test_orientation_antisymmetry(self, ax, ay, bx, by, cx, cy):
        a, b, c = Point(ax, ay), Point(bx, by), Point(cx, cy)
        assert orientation(a, b, c) == pytest.approx(-orientation(b, a, c), abs=1e-3)


class TestPolygonArea:
    def test_square(self):
        sq = [Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)]
        assert polygon_area(sq) == pytest.approx(4.0)
        assert polygon_area(list(reversed(sq))) == pytest.approx(-4.0)

    def test_degenerate(self):
        assert polygon_area([Point(0, 0), Point(1, 1)]) == 0.0

    def test_centroid_square(self):
        sq = [Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)]
        assert polygon_centroid(sq) == Point(1, 1)

    def test_centroid_degenerate_falls_back_to_mean(self):
        pts = [Point(0, 0), Point(1, 1), Point(2, 2)]
        c = polygon_centroid(pts)
        assert c == Point(1, 1)

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            polygon_centroid([])

    @given(st.lists(st.tuples(small, small), min_size=3, max_size=10))
    def test_area_translation_invariant(self, raw):
        pts = [Point(x, y) for x, y in raw]
        shifted = [Point(x + 100, y - 50) for x, y in raw]
        assert polygon_area(pts) == pytest.approx(polygon_area(shifted), rel=1e-6, abs=1e-3)
