"""Tests for half-planes and perpendicular bisectors."""


import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import HalfPlane, Point, bisector_halfplane, distance

coord = st.floats(min_value=-100, max_value=100, allow_nan=False)


class TestHalfPlane:
    def test_contains(self):
        hp = HalfPlane(1, 0, 5)  # x <= 5
        assert hp.contains(Point(4, 100))
        assert hp.contains(Point(5, 0))
        assert not hp.contains(Point(6, 0))

    def test_flipped(self):
        hp = HalfPlane(1, 0, 5)
        assert hp.flipped().contains(Point(6, 0))
        assert not hp.flipped().contains(Point(4, 0))

    def test_relabel(self):
        assert HalfPlane(1, 0, 5, "a").relabel("b").label == "b"

    def test_boundary_point_on_line(self):
        hp = HalfPlane(3, 4, 12)
        p = hp.boundary_point()
        assert hp.value(p) == pytest.approx(0, abs=1e-9)

    def test_boundary_direction_along_line(self):
        hp = HalfPlane(0, 1, 2)  # y <= 2
        d = hp.boundary_direction()
        assert abs(d.y) < 1e-12 and abs(d.x) == pytest.approx(1.0)

    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            HalfPlane(0, 0, 1).boundary_direction()
        with pytest.raises(ValueError):
            HalfPlane(0, 0, 1).boundary_point()

    def test_intersect_line(self):
        a = HalfPlane(1, 0, 2)   # x = 2
        b = HalfPlane(0, 1, 3)   # y = 3
        assert a.intersect_line(b) == Point(2, 3)

    def test_intersect_parallel_returns_none(self):
        a = HalfPlane(1, 0, 2)
        b = HalfPlane(2, 0, 10)
        assert a.intersect_line(b) is None

    def test_from_point_direction_orients_toward_inside(self):
        inside = Point(0, -1)
        hp = HalfPlane.from_point_direction(Point(0, 0), Point(1, 0), inside)
        assert hp.contains(inside)
        assert not hp.contains(Point(0, 1))


class TestBisector:
    def test_midpoint_on_boundary(self):
        t, u = Point(0, 0), Point(4, 0)
        hp = bisector_halfplane(t, u)
        assert hp.value(Point(2, 5)) == pytest.approx(0, abs=1e-9)

    def test_t_side_inside(self):
        t, u = Point(0, 0), Point(4, 0)
        hp = bisector_halfplane(t, u)
        assert hp.contains(t)
        assert not hp.contains(u)

    def test_label_carried(self):
        hp = bisector_halfplane(Point(0, 0), Point(1, 1), label=42)
        assert hp.label == 42

    @given(coord, coord, coord, coord, coord, coord)
    def test_membership_matches_distance(self, tx, ty, ux, uy, qx, qy):
        t, u, q = Point(tx, ty), Point(ux, uy), Point(qx, qy)
        if distance(t, u) < 1e-6:
            return
        hp = bisector_halfplane(t, u)
        dt, du = distance(q, t), distance(q, u)
        if abs(dt - du) < 1e-6:
            return  # too close to the boundary for a robust check
        assert hp.contains(q) == (dt < du)
