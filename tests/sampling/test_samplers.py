"""Tests for uniform and census-weighted query samplers."""

import math

import numpy as np
import pytest

from repro.datasets import PopulationGrid
from repro.geometry import ConvexPolygon, Disk, Point, Rect
from repro.sampling import GridWeightedSampler, UniformSampler

BOX = Rect(0, 0, 100, 100)


def triangle():
    return ConvexPolygon([Point(10, 10), Point(50, 10), Point(10, 50)])


class TestUniformSampler:
    def test_density(self):
        s = UniformSampler(BOX)
        assert s.density(Point(50, 50)) == pytest.approx(1e-4)
        assert s.density(Point(500, 50)) == 0.0

    def test_measure_polygon(self):
        s = UniformSampler(BOX)
        assert s.measure_polygon(triangle()) == pytest.approx(800 / 10000)
        assert s.measure_polygon(ConvexPolygon.empty()) == 0.0

    def test_measure_with_disk(self):
        s = UniformSampler(BOX)
        sq = ConvexPolygon.from_rect(Rect(0, 0, 50, 50))
        m = s.measure_polygon(sq, Disk(Point(0, 0), 10))
        assert m == pytest.approx((math.pi * 100 / 4) / 10000)

    def test_restricted_samples_inside(self):
        s = UniformSampler(BOX)
        rs = s.restricted([triangle()])
        rng = np.random.default_rng(0)
        tri = triangle()
        for _ in range(200):
            assert tri.contains(rs.sample(rng), tol=1e-9)

    def test_restricted_with_disk_rejection(self):
        s = UniformSampler(BOX)
        disk = Disk(Point(10, 10), 15)
        rs = s.restricted([triangle()], disk)
        rng = np.random.default_rng(0)
        for _ in range(100):
            p = rs.sample(rng)
            assert disk.contains_point(p)

    def test_restricted_empty_raises(self):
        s = UniformSampler(BOX)
        with pytest.raises(ValueError):
            s.restricted([ConvexPolygon.empty()])

    def test_measure_region_additive(self):
        s = UniformSampler(BOX)
        a = ConvexPolygon.from_rect(Rect(0, 0, 10, 10))
        b = ConvexPolygon.from_rect(Rect(20, 20, 30, 30))
        assert s.measure_region([a, b]) == pytest.approx(0.02)


class TestGridWeightedSampler:
    def test_uniform_grid_equals_uniform_sampler(self):
        grid = PopulationGrid.uniform(BOX, 8, 8)
        ws = GridWeightedSampler(grid)
        us = UniformSampler(BOX)
        for poly in (triangle(), ConvexPolygon.from_rect(Rect(5, 5, 95, 60))):
            assert ws.measure_polygon(poly) == pytest.approx(us.measure_polygon(poly))

    def test_density_integrates_via_measure(self):
        weights = np.arange(1.0, 17.0).reshape(4, 4)
        grid = PopulationGrid(BOX, weights)
        ws = GridWeightedSampler(grid)
        whole = ConvexPolygon.from_rect(BOX)
        assert ws.measure_polygon(whole) == pytest.approx(1.0)

    def test_measure_matches_monte_carlo(self):
        weights = np.array([[1.0, 5.0], [2.0, 0.5]])
        grid = PopulationGrid(BOX, weights)
        ws = GridWeightedSampler(grid)
        poly = triangle()
        exact = ws.measure_polygon(poly)
        rng = np.random.default_rng(3)
        hits = sum(poly.contains(ws.sample(rng)) for _ in range(20000))
        assert exact == pytest.approx(hits / 20000, abs=0.01)

    def test_measure_with_disk(self):
        grid = PopulationGrid.uniform(BOX, 4, 4)
        ws = GridWeightedSampler(grid)
        us = UniformSampler(BOX)
        sq = ConvexPolygon.from_rect(Rect(10, 10, 60, 60))
        disk = Disk(Point(30, 30), 15)
        assert ws.measure_polygon(sq, disk) == pytest.approx(us.measure_polygon(sq, disk))

    def test_restricted_follows_density(self):
        weights = np.array([[1.0], [9.0]])  # right half 9x denser
        grid = PopulationGrid(BOX, weights)
        ws = GridWeightedSampler(grid)
        whole = ConvexPolygon.from_rect(BOX)
        rs = ws.restricted([whole])
        rng = np.random.default_rng(0)
        right = sum(rs.sample(rng).x >= 50 for _ in range(3000))
        assert 0.85 < right / 3000 < 0.95

    def test_sample_density_zero_outside(self):
        grid = PopulationGrid.uniform(BOX, 2, 2)
        ws = GridWeightedSampler(grid)
        assert ws.density(Point(101, 0)) == 0.0
