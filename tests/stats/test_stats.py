"""Tests for running statistics and estimation results."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import EstimationResult, RatioStat, RunningStat, TracePoint, normal_ci

values = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=2, max_size=50
)


class TestRunningStat:
    @given(values)
    @settings(max_examples=100)
    def test_matches_numpy(self, xs):
        rs = RunningStat()
        for x in xs:
            rs.push(x)
        assert rs.mean == pytest.approx(np.mean(xs), rel=1e-9, abs=1e-6)
        assert rs.variance() == pytest.approx(np.var(xs, ddof=1), rel=1e-6, abs=1e-3)

    def test_empty(self):
        rs = RunningStat()
        assert rs.n == 0 and rs.variance() == 0.0
        assert rs.sem() == float("inf")

    def test_single_value(self):
        rs = RunningStat()
        rs.push(5.0)
        assert rs.mean == 5.0 and rs.variance() == 0.0

    @given(values, values)
    @settings(max_examples=50)
    def test_merge(self, xs, ys):
        a, b, c = RunningStat(), RunningStat(), RunningStat()
        for x in xs:
            a.push(x)
            c.push(x)
        for y in ys:
            b.push(y)
            c.push(y)
        m = a.merge(b)
        assert m.n == c.n
        assert m.mean == pytest.approx(c.mean, rel=1e-9, abs=1e-6)
        assert m.variance() == pytest.approx(c.variance(), rel=1e-6, abs=1e-3)


class TestRatioStat:
    def test_ratio(self):
        rs = RatioStat()
        rs.push(10, 2)
        rs.push(20, 3)
        assert rs.estimate() == pytest.approx(30 / 5)
        assert rs.n == 2

    def test_zero_denominator_nan(self):
        rs = RatioStat()
        rs.push(1, 0)
        assert math.isnan(rs.estimate())


class TestNormalCi:
    def test_width_scales_with_level(self):
        lo90, hi90 = normal_ci(0, 1, 0.90)
        lo99, hi99 = normal_ci(0, 1, 0.99)
        assert hi99 - lo99 > hi90 - lo90

    def test_unsupported_level(self):
        with pytest.raises(ValueError):
            normal_ci(0, 1, 0.42)


class TestEstimationResult:
    def _result(self, estimates):
        trace = [TracePoint(10 * (i + 1), i + 1, e) for i, e in enumerate(estimates)]
        return EstimationResult(estimates[-1], 10 * len(estimates), len(estimates), trace=trace)

    def test_relative_error(self):
        r = self._result([90.0])
        assert r.relative_error(100.0) == pytest.approx(0.1)
        with pytest.raises(ValueError):
            r.relative_error(0.0)

    def test_queries_to_reach_requires_staying(self):
        # Dips inside the band then leaves: the early crossing must not count.
        r = self._result([100, 150, 100, 100])
        assert r.queries_to_reach(100, 0.05) == 30

    def test_queries_to_reach_never(self):
        r = self._result([200, 300])
        assert r.queries_to_reach(100, 0.1) is None

    def test_queries_to_reach_immediately(self):
        r = self._result([101, 99, 100])
        assert r.queries_to_reach(100, 0.05) == 10

    def test_ci_no_stat(self):
        r = self._result([100])
        lo, hi = r.ci()
        assert lo == -math.inf and hi == math.inf

    def test_ci_with_stat(self):
        rs = RunningStat()
        for x in (9, 10, 11, 10):
            rs.push(x)
        r = EstimationResult(10, 100, 4, stat=rs)
        lo, hi = r.ci(0.95)
        assert lo < 10 < hi

    def test_confidence_interval_alias(self):
        rs = RunningStat()
        for x in (9, 10, 11, 10):
            rs.push(x)
        r = EstimationResult(10, 100, 4, stat=rs)
        assert r.confidence_interval(0.95) == r.ci(0.95)
        # Wider level, wider interval.
        lo95, hi95 = r.confidence_interval(0.95)
        lo99, hi99 = r.confidence_interval(0.99)
        assert hi99 - lo99 > hi95 - lo95
        with pytest.raises(ValueError):
            r.confidence_interval(0.42)

    def test_confidence_interval_undefined_below_two_samples(self):
        r = self._result([100])
        lo, hi = r.confidence_interval()
        assert lo == -math.inf and hi == math.inf

    def test_relative_error_of_live_run(self):
        r = self._result([90.0, 95.0])
        assert r.relative_error(95.0) == 0.0

    def test_running_stat_state_round_trip(self):
        rs = RunningStat()
        for x in (1.0, 2.5, -3.25, 7.0):
            rs.push(x)
        back = RunningStat.from_state(rs.state_dict())
        assert back.n == rs.n and back.mean == rs.mean
        assert back.variance() == rs.variance()

    def test_ratio_stat_state_round_trip(self):
        rat = RatioStat()
        rat.push(1.0, 2.0)
        rat.push(3.0, 4.0)
        back = RatioStat.from_state(rat.state_dict())
        assert back.estimate() == rat.estimate() and back.n == rat.n


class TestCheckpoint:
    def test_relative_ci_halfwidth(self):
        from repro.stats import Checkpoint

        cp = Checkpoint(queries=10, samples=5, estimate=100.0,
                        ci=(90.0, 110.0), sem=5.1)
        assert cp.relative_ci_halfwidth() == pytest.approx(0.1)
        undefined = Checkpoint(queries=0, samples=1, estimate=100.0,
                               ci=(-math.inf, math.inf), sem=math.inf)
        assert undefined.relative_ci_halfwidth() == math.inf
