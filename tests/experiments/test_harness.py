"""Tests for the experiment harness."""

import multiprocessing as mp
import os

import pytest

from repro.experiments.harness import (
    ExperimentTable,
    _run_estimations,
    cost_to_reach,
    median_or_none,
    poi_world,
    user_world,
)
from repro.stats import EstimationResult, TracePoint


class TestExperimentTable:
    def test_format_and_columns(self):
        t = ExperimentTable("Title", ["a", "b"])
        t.add(1, 2.5)
        t.add(None, "x")
        text = t.formatted()
        assert "Title" in text and "2.5" in text and "-" in text
        assert t.column("a") == [1, None]

    def test_unknown_column(self):
        t = ExperimentTable("T", ["a"])
        with pytest.raises(ValueError):
            t.column("zzz")


class _FakeEstimator:
    """Deterministic trace: error halves every 10 queries.

    Implements the uniform driver signature ``run(until, batch_size=...)``
    that ``cost_to_reach`` now drives estimators through.
    """

    def __init__(self, truth, final_err):
        self.truth = truth
        self.final_err = final_err

    def run(self, until, batch_size=1):
        max_queries = until.limit
        trace = []
        err = 1.0
        q = 0
        while err > self.final_err and q < max_queries:
            q += 10
            err /= 2
            trace.append(TracePoint(q, q // 10, self.truth * (1 + err)))
        return EstimationResult(self.truth, q, q // 10, trace=trace)


class TestCostToReach:
    def test_monotone_targets(self):
        costs = cost_to_reach(
            lambda s: _FakeEstimator(100.0, 0.001),
            truth=100.0, targets=(0.5, 0.1, 0.01), n_runs=2, max_queries=500,
        )
        assert costs[0.5] <= costs[0.1] <= costs[0.01]

    def test_unreached_charged_budget(self):
        costs = cost_to_reach(
            lambda s: _FakeEstimator(100.0, 0.2),
            truth=100.0, targets=(0.01,), n_runs=2, max_queries=300,
        )
        assert costs[0.01] == 300.0

    def test_median_or_none(self):
        assert median_or_none([]) is None
        assert median_or_none([1.0, 3.0, 2.0]) == 2.0


class TestWorlds:
    def test_poi_world_deterministic(self):
        a = poi_world(seed=5)
        b = poi_world(seed=5)
        assert a.db.locations() == b.db.locations()
        assert len(a.db) == 500

    def test_user_world(self):
        w = user_world(seed=5)
        assert len(w.db) > 0
        assert all("gender" in t.attrs for t in w.db)

    def test_census_attached(self):
        w = poi_world(seed=6)
        assert w.census.region == w.region


@pytest.mark.skipif("fork" not in mp.get_all_start_methods(),
                    reason="the fork-wave fan-out needs fork")
class TestForkWaveRecovery:
    def test_dead_child_recovered_by_in_parent_rerun(self):
        """A forked wave child that dies without reporting (EOF on the
        pipe) is recovered by rerunning its seed in the parent — same
        deterministic result, no crash surfaced."""
        parent_pid = os.getpid()

        def make_estimator(s):
            if s == 2 and os.getpid() != parent_pid:
                os._exit(5)  # die in the child, before reporting
            return _FakeEstimator(100.0 + s, 0.01)

        recovered = _run_estimations(
            make_estimator, seeds=[1, 2, 3], max_queries=500,
            batch_size=1, workers=3,
        )
        sequential = _run_estimations(
            lambda s: _FakeEstimator(100.0 + s, 0.01), seeds=[1, 2, 3],
            max_queries=500, batch_size=1, workers=1,
        )
        assert [(r.estimate, r.queries, r.trace) for r in recovered] == \
               [(r.estimate, r.queries, r.trace) for r in sequential]
