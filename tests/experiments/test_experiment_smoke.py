"""Tiny-scale smoke runs of the cheaper experiment modules.

Full regenerations live in ``benchmarks/``; these tests only prove that
each module executes end to end and emits a well-formed table.
"""

import pytest

from repro.datasets import PoiConfig, UserConfig
from repro.experiments import (
    fig11_voronoi_map,
    fig12_unbiasedness,
    fig17_avg_rating_austin,
    fig21_localization,
    table1_online,
)
from repro.experiments.harness import poi_world, user_world
from repro.geometry import Rect

TINY_BOX = Rect(0, 0, 120, 90)


@pytest.fixture(scope="module")
def tiny_world():
    return poi_world(
        seed=23,
        region=TINY_BOX,
        config=PoiConfig(n_restaurants=60, n_schools=40, n_banks=5, n_cafes=5),
        n_cities=6,
    )


def test_fig11_smoke(tiny_world):
    table = fig11_voronoi_map.run(tiny_world, brand="independent")
    assert table.rows
    stats = dict(zip(table.column("statistic"), table.column("area")))
    assert stats["max"] >= stats["median"] >= stats["min"] > 0


def test_fig12_smoke(tiny_world):
    table = fig12_unbiasedness.run(tiny_world, max_queries=400, seed=2)
    assert table.headers[0] == "queries"
    assert table.rows
    assert all(row[-1] == table.rows[0][-1] for row in table.rows)  # truth constant


def test_fig17_smoke(tiny_world):
    table = fig17_avg_rating_austin.run(
        tiny_world, n_runs=1, max_queries=300, include_lnr=False
    )
    assert "LR-LBS-AGG" in table.headers
    assert len(table.rows) == 5


def test_fig21_smoke(tiny_world):
    table = fig21_localization.run(tiny_world, n_targets=4, obfuscation_sigma=1.0)
    percents = [row[1] for row in table.rows]
    assert sum(percents) == pytest.approx(100.0, abs=1.0)


def test_table1_smoke():
    poi = poi_world(
        seed=7, region=TINY_BOX,
        config=PoiConfig(n_restaurants=60, n_schools=10, n_banks=5, n_cafes=5),
        n_cities=5,
    )
    wechat = user_world(seed=11, region=TINY_BOX, config=UserConfig(n_users=50, male_fraction=0.7))
    weibo = user_world(seed=13, region=TINY_BOX, config=UserConfig(n_users=50, male_fraction=0.5))
    table, truths = table1_online.run(
        poi, wechat, weibo, budget_places=400, budget_social=1200
    )
    assert len(table.rows) == 6
    assert set(truths) == {
        "starbucks", "open_sunday", "wechat_count", "wechat_ratio",
        "weibo_count", "weibo_ratio",
    }
