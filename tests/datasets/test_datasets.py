"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    CityModel,
    PoiConfig,
    PopulationGrid,
    UserConfig,
    generate_poi_database,
    generate_user_database,
    is_brand,
    is_category,
    subrect,
)
from repro.geometry import Point, Rect

BOX = Rect(0, 0, 200, 100)


class TestCityModel:
    def test_generate_and_sample(self):
        rng = np.random.default_rng(0)
        model = CityModel.generate(BOX, 10, rng)
        for _ in range(200):
            assert BOX.contains(model.sample_point(rng))

    def test_density_positive(self):
        rng = np.random.default_rng(0)
        model = CityModel.generate(BOX, 5, rng)
        for _ in range(50):
            assert model.density(BOX.sample(rng)) > 0

    def test_density_peaks_at_city(self):
        rng = np.random.default_rng(1)
        model = CityModel.generate(BOX, 3, rng, rural_fraction=0.05)
        biggest = max(model.cities, key=lambda c: c.weight)
        far = Point((biggest.center.x + 100) % 200, (biggest.center.y + 50) % 100)
        assert model.density(biggest.center) > model.density(far)

    def test_invalid_params(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            CityModel.generate(BOX, 0, rng)
        with pytest.raises(ValueError):
            CityModel(BOX, [], rural_fraction=0.5)

    def test_clustering_increases_with_sharp_cities(self):
        rng = np.random.default_rng(2)
        sharp = CityModel.generate(BOX, 5, np.random.default_rng(2),
                                   base_sigma_fraction=0.005, rural_fraction=0.02)
        pts = sharp.sample_points(300, rng)
        xs = np.array([p.x for p in pts])
        # Strong clustering: sample variance well below the uniform value.
        assert xs.var() != pytest.approx(200 ** 2 / 12, rel=0.1)


class TestPopulationGrid:
    def test_density_integrates_to_one(self):
        rng = np.random.default_rng(0)
        model = CityModel.generate(BOX, 6, rng)
        grid = PopulationGrid.from_city_model(model, nx=10, ny=5)
        total = sum(
            grid.density(grid.cell_rect(i, j).center) * grid.cell_area()
            for i in range(grid.nx) for j in range(grid.ny)
        )
        assert total == pytest.approx(1.0)

    def test_cell_of_clamps(self):
        grid = PopulationGrid.uniform(BOX, 4, 2)
        assert grid.cell_of(Point(-10, -10)) == (0, 0)
        assert grid.cell_of(Point(1000, 1000)) == (3, 1)

    def test_sampling_follows_weights(self):
        weights = np.zeros((2, 1))
        weights[0, 0] = 1.0
        weights[1, 0] = 3.0
        grid = PopulationGrid(BOX, weights)
        rng = np.random.default_rng(0)
        right = sum(grid.sample_point(rng).x >= 100 for _ in range(2000))
        assert 0.68 < right / 2000 < 0.82

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            PopulationGrid(BOX, np.array([[-1.0]]))
        with pytest.raises(ValueError):
            PopulationGrid(BOX, np.zeros((2, 2)))

    def test_noise_changes_weights(self):
        rng = np.random.default_rng(0)
        model = CityModel.generate(BOX, 4, rng)
        clean = PopulationGrid.from_city_model(model, nx=6, ny=3, noise=0.0)
        noisy = PopulationGrid.from_city_model(
            model, nx=6, ny=3, noise=0.8, rng=np.random.default_rng(1)
        )
        assert not np.allclose(clean.weights, noisy.weights)


class TestPoiGenerator:
    def test_counts_and_attrs(self):
        rng = np.random.default_rng(0)
        cfg = PoiConfig(n_restaurants=50, n_schools=30, n_banks=10, n_cafes=5)
        db = generate_poi_database(BOX, rng, cfg)
        assert len(db) == cfg.total == 95
        assert db.ground_truth_count(is_category("restaurant")) == 50
        assert db.ground_truth_count(is_category("school")) == 30
        for t in db:
            if t.get("category") == "restaurant":
                assert 1.0 <= t["rating"] <= 5.0
                assert isinstance(t["open_sundays"], bool)
                assert t["review_count"] >= 1
            if t.get("category") == "school":
                assert t["enrollment"] >= 20

    def test_deterministic(self):
        cfg = PoiConfig(n_restaurants=20, n_schools=10, n_banks=0, n_cafes=0)
        a = generate_poi_database(BOX, np.random.default_rng(42), cfg)
        b = generate_poi_database(BOX, np.random.default_rng(42), cfg)
        assert a.locations() == b.locations()

    def test_brands_exist(self):
        rng = np.random.default_rng(0)
        cfg = PoiConfig(n_restaurants=400, n_schools=0, n_banks=0, n_cafes=0)
        db = generate_poi_database(BOX, rng, cfg)
        assert db.ground_truth_count(is_brand("starbucks")) > 0


class TestUserGenerator:
    def test_gender_ratio(self):
        rng = np.random.default_rng(0)
        db = generate_user_database(BOX, rng, UserConfig(n_users=2000, male_fraction=0.7))
        males = db.ground_truth_count(lambda t: t["gender"] == "m")
        assert 0.65 < males / len(db) < 0.75
        assert db.ground_truth_avg("is_male") == pytest.approx(males / len(db))

    def test_location_enabled_rate(self):
        rng = np.random.default_rng(0)
        db = generate_user_database(
            BOX, rng, UserConfig(n_users=1000, location_enabled_rate=0.5)
        )
        assert 380 < len(db) < 620


class TestRegions:
    def test_subrect(self):
        sub = subrect(BOX, 0.25, 0.0, 0.75, 1.0)
        assert sub == Rect(50, 0, 150, 100)
