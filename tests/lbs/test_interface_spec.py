"""InterfaceSpec / RankingSpec: validation, serde, and build()."""

import json

import numpy as np
import pytest

from repro.geometry import Point, Rect
from repro.lbs import (
    DistanceRanking,
    InterfaceSpec,
    LbsTuple,
    LnrLbsInterface,
    LrLbsInterface,
    ObfuscationModel,
    ProminenceRanking,
    QueryBudget,
    QueryEngineConfig,
    RankingSpec,
    SpatialDatabase,
)

BOX = Rect(0, 0, 100, 100)


def make_db(n=40, seed=0):
    rng = np.random.default_rng(seed)
    return SpatialDatabase(
        [
            LbsTuple(i, Point(rng.random() * 100, rng.random() * 100),
                     {"idx": i, "popularity": float(rng.random())})
            for i in range(n)
        ],
        BOX,
    )


class TestRankingSpec:
    def test_defaults_are_distance(self):
        assert RankingSpec().policy == "distance"
        assert RankingSpec.distance().prominence_kwargs() is None

    def test_prominence_requires_static_attr(self):
        with pytest.raises(ValueError, match="static_attr"):
            RankingSpec(policy="prominence")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            RankingSpec(policy="alphabetical")

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            RankingSpec.prominence("popularity", weight_distance=-0.1)

    def test_nonpositive_cap_rejected(self):
        with pytest.raises(ValueError):
            RankingSpec.prominence("popularity", distance_cap=0.0)

    def test_round_trip(self):
        spec = RankingSpec.prominence("popularity", 0.7, 0.3, 25.0)
        assert RankingSpec.from_dict(spec.to_dict()) == spec


class TestInterfaceSpecValidation:
    def test_bad_kind(self):
        with pytest.raises(ValueError):
            InterfaceSpec(kind="rest")

    def test_bad_k(self):
        with pytest.raises(ValueError):
            InterfaceSpec(k=0)

    def test_bad_max_radius(self):
        with pytest.raises(ValueError):
            InterfaceSpec(max_radius=-1.0)

    def test_visible_attrs_normalized_to_tuple(self):
        spec = InterfaceSpec(visible_attrs=["a", "b"])
        assert spec.visible_attrs == ("a", "b")

    def test_returns_location(self):
        assert InterfaceSpec(kind="lr").returns_location
        assert not InterfaceSpec(kind="lnr").returns_location


class TestInterfaceSpecSerde:
    def test_full_round_trip(self):
        spec = InterfaceSpec(
            kind="lnr",
            k=7,
            max_radius=12.5,
            visible_attrs=("gender", "idx"),
            obfuscation=ObfuscationModel(sigma=2.0, seed=3, clip=5.0),
            ranking=RankingSpec.prominence("popularity", 0.6, 0.4, 30.0),
        )
        text = spec.to_json()
        json.loads(text)  # valid JSON
        assert InterfaceSpec.from_json(text) == spec

    def test_minimal_round_trip(self):
        spec = InterfaceSpec()
        assert InterfaceSpec.from_dict(spec.to_dict()) == spec


class TestInterfaceSpecBuild:
    def test_kind_picks_interface_class(self):
        db = make_db()
        assert isinstance(InterfaceSpec(kind="lr").build(db), LrLbsInterface)
        assert isinstance(InterfaceSpec(kind="lnr").build(db), LnrLbsInterface)

    def test_capabilities_wired_through(self):
        db = make_db()
        api = InterfaceSpec(
            kind="lr",
            k=3,
            max_radius=20.0,
            visible_attrs=("idx",),
            obfuscation=ObfuscationModel(sigma=1.0, seed=1),
            ranking=RankingSpec.prominence("popularity", distance_cap=40.0),
        ).build(db)
        assert api.k == 3
        assert api.max_radius == 20.0
        assert api.visible_attrs == ("idx",)
        assert isinstance(api.ranking, ProminenceRanking)
        answer = api.query(Point(50, 50))
        assert all(set(r.attrs) <= {"idx"} for r in answer)
        # Obfuscation: the service ranks by jittered positions.
        some = next(iter(db))
        assert api.effective_location(some.tid) != some.location

    def test_default_ranking_is_distance(self):
        api = InterfaceSpec(kind="lr", k=4).build(make_db())
        assert isinstance(api.ranking, DistanceRanking)

    def test_build_equals_hand_construction(self):
        db = make_db()
        spec = InterfaceSpec(kind="lnr", k=5,
                             obfuscation=ObfuscationModel(sigma=1.5, seed=2))
        by_spec = spec.build(db)
        by_hand = LnrLbsInterface(db, k=5,
                                  obfuscation=ObfuscationModel(sigma=1.5, seed=2))
        points = [Point(10, 10), Point(80, 20), Point(40, 70)]
        assert [by_spec.query(p) for p in points] == [by_hand.query(p) for p in points]

    def test_budget_and_engine_forwarded(self):
        db = make_db()
        budget = QueryBudget(5)
        api = InterfaceSpec(kind="lr").build(
            db, budget=budget, engine=QueryEngineConfig(index_backend="brute")
        )
        api.query(Point(1, 1))
        assert budget.used == 1
        assert api.engine.index_backend == "brute"
