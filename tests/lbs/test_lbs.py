"""Tests for the simulated LBS: database, budget, LR/LNR interfaces."""

import numpy as np
import pytest

from repro.geometry import Point, Rect, distance
from repro.lbs import (
    BudgetExhausted,
    LbsTuple,
    LnrLbsInterface,
    LrLbsInterface,
    ObfuscationModel,
    QueryBudget,
    SpatialDatabase,
)

BOX = Rect(0, 0, 100, 100)


def make_db(n=30, seed=0, **attr_factories):
    rng = np.random.default_rng(seed)
    tuples = []
    for i in range(n):
        attrs = {"idx": i, "popularity": float(rng.random())}
        tuples.append(LbsTuple(i, Point(rng.random() * 100, rng.random() * 100), attrs))
    return SpatialDatabase(tuples, BOX)


class TestLbsTuple:
    def test_attr_access(self):
        t = LbsTuple(1, Point(0, 0), {"a": 5})
        assert t["a"] == 5
        assert t.get("missing") is None

    def test_attrs_read_only(self):
        t = LbsTuple(1, Point(0, 0), {"a": 5})
        with pytest.raises(TypeError):
            t.attrs["a"] = 6

    def test_equality_by_id(self):
        assert LbsTuple(1, Point(0, 0)) == LbsTuple(1, Point(5, 5))
        assert hash(LbsTuple(1, Point(0, 0))) == hash(LbsTuple(1, Point(5, 5)))


class TestSpatialDatabase:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            SpatialDatabase([LbsTuple(1, Point(1, 1)), LbsTuple(1, Point(2, 2))], BOX)

    def test_out_of_region_rejected(self):
        with pytest.raises(ValueError):
            SpatialDatabase([LbsTuple(1, Point(200, 1))], BOX)

    def test_ground_truth_count(self):
        db = make_db(20)
        assert db.ground_truth_count() == 20
        assert db.ground_truth_count(lambda t: t["idx"] < 5) == 5

    def test_ground_truth_sum_avg(self):
        db = SpatialDatabase(
            [LbsTuple(0, Point(1, 1), {"v": 2}), LbsTuple(1, Point(2, 2), {"v": 4}),
             LbsTuple(2, Point(3, 3), {})],
            BOX,
        )
        assert db.ground_truth_sum("v") == 6
        assert db.ground_truth_avg("v") == 3  # missing attr excluded

    def test_avg_empty_selection_raises(self):
        db = make_db(3)
        with pytest.raises(ValueError):
            db.ground_truth_avg("nope")

    def test_filtered(self):
        db = make_db(20)
        sub = db.filtered(lambda t: t["idx"] % 2 == 0)
        assert len(sub) == 10

    def test_subsample(self):
        db = make_db(40)
        rng = np.random.default_rng(1)
        sub = db.subsample(0.5, rng)
        assert len(sub) == 20
        for t in sub:
            assert t.tid in db
        with pytest.raises(ValueError):
            db.subsample(0.0, rng)

    def test_knn_order(self):
        db = make_db(25)
        res = db.knn(Point(50, 50), 5)
        dists = [d for d, _t in res]
        assert dists == sorted(dists)


class TestQueryBudget:
    def test_unlimited(self):
        b = QueryBudget(None)
        b.spend(1000)
        assert b.remaining is None
        assert not b.exhausted()

    def test_limit_enforced(self):
        b = QueryBudget(2)
        b.spend()
        b.spend()
        assert b.exhausted()
        with pytest.raises(BudgetExhausted):
            b.spend()

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            QueryBudget(-1)


class TestLrInterface:
    def test_returns_locations_and_distances(self):
        db = make_db()
        api = LrLbsInterface(db, k=4)
        ans = api.query(Point(50, 50))
        assert len(ans) == 4
        for r in ans:
            assert r.location is not None
            assert r.distance == pytest.approx(distance(Point(50, 50), r.location))
        assert [r.rank for r in ans] == [1, 2, 3, 4]

    def test_answers_sorted_by_distance(self):
        db = make_db()
        ans = LrLbsInterface(db, k=6).query(Point(10, 90))
        dists = [r.distance for r in ans]
        assert dists == sorted(dists)

    def test_budget_counted(self):
        db = make_db()
        api = LrLbsInterface(db, k=2, budget=QueryBudget(3))
        api.query(Point(1, 1))
        api.query(Point(2, 2))
        assert api.queries_used == 2
        api.query(Point(3, 3))
        with pytest.raises(BudgetExhausted):
            api.query(Point(4, 4))

    def test_max_radius_truncates(self):
        db = make_db()
        api = LrLbsInterface(db, k=10, max_radius=5.0)
        ans = api.query(Point(50, 50))
        for r in ans:
            assert r.distance <= 5.0

    def test_max_radius_empty(self):
        db = SpatialDatabase([LbsTuple(0, Point(1, 1))], BOX)
        api = LrLbsInterface(db, k=3, max_radius=2.0)
        assert api.query(Point(90, 90)).is_empty()

    def test_filtered_shares_budget(self):
        db = make_db()
        api = LrLbsInterface(db, k=3, budget=QueryBudget(10))
        sub = api.filtered(lambda t: t["idx"] < 10)
        sub.query(Point(5, 5))
        assert api.queries_used == 1
        assert all(r.tid < 10 for r in sub.query(Point(50, 50)))

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            LrLbsInterface(make_db(), k=0)

    def test_visible_attrs(self):
        db = make_db()
        api = LrLbsInterface(db, k=1, visible_attrs=["idx"])
        ans = api.query(Point(0, 0))
        assert set(ans.top().attrs) == {"idx"}


class TestLnrInterface:
    def test_suppresses_location(self):
        db = make_db()
        ans = LnrLbsInterface(db, k=5).query(Point(50, 50))
        for r in ans:
            assert r.location is None and r.distance is None

    def test_same_ranking_as_lr(self):
        db = make_db()
        q = Point(33, 66)
        lr = LrLbsInterface(db, k=5).query(q)
        lnr = LnrLbsInterface(db, k=5).query(q)
        assert lr.tids() == lnr.tids()

    def test_rank_of_and_contains(self):
        db = make_db()
        ans = LnrLbsInterface(db, k=5).query(Point(20, 20))
        first = ans.tids()[0]
        assert ans.rank_of(first) == 1
        assert ans.contains(first)
        assert ans.rank_of(-99) is None

    def test_ranked_before(self):
        db = make_db()
        ans = LnrLbsInterface(db, k=5).query(Point(20, 20))
        tids = ans.tids()
        assert ans.ranked_before(tids[0], tids[1])
        assert not ans.ranked_before(tids[1], tids[0])
        assert ans.ranked_before(tids[0], -99)  # absent counts as after
        assert not ans.ranked_before(-99, tids[0])


class TestObfuscation:
    def test_deterministic(self):
        db = make_db()
        m = ObfuscationModel(sigma=2.0, seed=5)
        a = m.effective_locations(db.tuples())
        b = m.effective_locations(db.tuples())
        assert a == b

    def test_displacement_scale(self):
        db = make_db(200)
        m = ObfuscationModel(sigma=3.0, seed=5)
        eff = m.effective_locations(db.tuples())
        disp = [distance(eff[t.tid], t.location) for t in db]
        assert 1.0 < float(np.mean(disp)) < 8.0

    def test_clip(self):
        db = make_db(100)
        m = ObfuscationModel(sigma=10.0, seed=5, clip=1.0)
        eff = m.effective_locations(db.tuples())
        for t in db:
            assert distance(eff[t.tid], t.location) <= 1.0 + 1e-9

    def test_vectorized_jitter_matches_scalar_reference(self):
        # The (N, 2) normal draw must replay the historical per-tuple
        # size-2 stream bit for bit, clipping included.
        db = make_db(80, seed=4)
        for clip in (None, 3.0):
            m = ObfuscationModel(sigma=4.0, seed=7, clip=clip)
            eff = m.effective_locations(db.tuples())
            rng = np.random.default_rng(7)
            for t in sorted(db.tuples(), key=lambda t: t.tid):
                dx, dy = rng.normal(0.0, 4.0, size=2)
                if clip is not None:
                    norm = float(np.hypot(dx, dy))
                    if norm > clip > 0.0:
                        dx *= clip / norm
                        dy *= clip / norm
                expected = Point(t.location.x + float(dx), t.location.y + float(dy))
                assert eff[t.tid] == expected

    def test_serde_round_trip(self):
        m = ObfuscationModel(sigma=2.5, seed=9, clip=1.5)
        assert ObfuscationModel.from_dict(m.to_dict()) == m

    def test_filtered_view_keeps_realized_jitters(self):
        # The service drew each tuple's jitter once; a filtered view must
        # rank by the same effective positions, not re-roll them over
        # the narrowed tuple set.
        db = make_db(30)
        api = LnrLbsInterface(db, k=3, obfuscation=ObfuscationModel(sigma=2.0, seed=5))
        view = api.filtered(lambda t: t["idx"] % 2 == 0)
        for t in db:
            if t["idx"] % 2 == 0:
                assert view.effective_location(t.tid) == api.effective_location(t.tid)

    def test_interface_ranks_by_effective(self):
        db = make_db()
        api = LnrLbsInterface(db, k=3, obfuscation=ObfuscationModel(sigma=5.0, seed=1))
        q = Point(40, 40)
        ans = api.query(q)
        # Ranking must be consistent with effective locations.
        effs = [api.effective_location(t) for t in ans.tids()]
        dists = [distance(q, e) for e in effs]
        assert dists == sorted(dists)


class TestProminence:
    def test_static_score_dominates_when_weighted(self):
        db = make_db(20)
        api = LrLbsInterface(
            db, k=3,
            prominence={"static_attr": "popularity", "weight_distance": 0.0,
                        "weight_static": 1.0, "distance_cap": 50.0},
        )
        ans1 = api.query(Point(10, 10))
        ans2 = api.query(Point(90, 90))
        assert ans1.tids() == ans2.tids()  # pure popularity: location-independent

    def test_distance_only_matches_default(self):
        db = make_db(20)
        plain = LrLbsInterface(db, k=5)
        prom = LrLbsInterface(
            db, k=5,
            prominence={"static_attr": "popularity", "weight_distance": 1.0,
                        "weight_static": 0.0, "distance_cap": 1000.0},
        )
        q = Point(42, 17)
        assert plain.query(q).tids() == prom.query(q).tids()

    def test_filtered_view_keeps_prominence_ranking(self):
        # Regression: filtered() used to drop the prominence config, so
        # views silently reverted to distance order.
        db = make_db(30)
        api = LrLbsInterface(
            db, k=3,
            prominence={"static_attr": "popularity", "weight_distance": 0.0,
                        "weight_static": 1.0, "distance_cap": 50.0},
        )
        view = api.filtered(lambda t: t["idx"] % 2 == 0)
        ans1 = view.query(Point(10, 10))
        ans2 = view.query(Point(90, 90))
        # Pure popularity order is location-independent...
        assert ans1.tids() == ans2.tids()
        # ...and is exactly the parent's order restricted to the view.
        pops = {t.tid: t["popularity"] for t in db if t.tid % 2 == 0}
        expect = sorted(pops, key=lambda tid: (-pops[tid], tid))[:3]
        assert ans1.tids() == expect

    def test_filtered_view_keeps_parent_normalization(self):
        # The service's scoring function is fixed: a narrowed candidate
        # set keeps the popularity normalization of the full database.
        db = make_db(30)
        api = LrLbsInterface(
            db, k=4,
            prominence={"static_attr": "popularity", "weight_distance": 0.5,
                        "weight_static": 0.5, "distance_cap": 40.0},
        )
        view = api.filtered(lambda t: t["idx"] < 15)
        assert view.ranking.static_range == api.ranking.static_range
