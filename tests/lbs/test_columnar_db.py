"""Row/columnar equivalence suite for the columnar ``SpatialDatabase``.

The data spine's contract: ``from_columns`` (the zero-copy ingest of
world builds) and the legacy row-iterable constructor produce
**bit-identical** databases — same tids, same coordinates, same rebuilt
attrs (values *and* types), same kNN answers, same ground truths, same
derived ``filtered()``/``subsample()`` databases — across every
registry scenario and across a JSON world round trip.  Plus property
tests pinning the null-mask semantics of SUM/AVG (absent and ``None``
values are excluded, exactly like the row loop).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import worlds
from repro.core.aggregates import AttrEquals
from repro.geometry import Point, Rect
from repro.lbs import Column, LbsTuple, LnrLbsInterface, LrLbsInterface, SpatialDatabase
from repro.lbs.columns import column_from_values, columns_from_rows, concat_columns
from repro.worlds import WorldSpec
from repro.worlds.attrs import synthesize_columns, synthesize_tuples

BOX = Rect(0.0, 0.0, 100.0, 80.0)
#: Registry scenarios are exercised at a reduced ``n`` — the generator
#: pipeline is size-independent and the full sizes belong to the bench.
TEST_N = 1200


def row_build(spec: WorldSpec) -> SpatialDatabase:
    """The seed's row-oriented build: synthesize rows, shred on ingest."""
    rng, rect, xy, labels = spec.synthesis_inputs()
    return SpatialDatabase(synthesize_tuples(rng, xy, labels, spec.attrs), rect)


def columnar_build(spec: WorldSpec) -> SpatialDatabase:
    """The zero-copy build: synthesize columns, ingest via from_columns."""
    rng, rect, xy, labels = spec.synthesis_inputs()
    return SpatialDatabase.from_columns(
        *synthesize_columns(rng, xy, labels, spec.attrs), rect
    )


def assert_db_identical(a: SpatialDatabase, b: SpatialDatabase) -> None:
    assert len(a) == len(b)
    assert a.tid_list() == b.tid_list()
    assert np.array_equal(a.coords, b.coords)
    for x, y in zip(a.tuples(), b.tuples()):
        assert x.tid == y.tid
        assert x.location == y.location
        assert dict(x.attrs) == dict(y.attrs)
        for key, value in x.attrs.items():
            assert type(value) is type(y.attrs[key]), (x.tid, key)
    rng = np.random.default_rng(7)
    region = a.region
    for u, v in rng.random((8, 2)):
        p = Point(region.x0 + u * region.width, region.y0 + v * region.height)
        ka = [(d, t.tid, dict(t.attrs)) for d, t in a.knn(p, 6)]
        kb = [(d, t.tid, dict(t.attrs)) for d, t in b.knn(p, 6)]
        assert ka == kb


@pytest.mark.parametrize("name", worlds.names())
class TestRegistryEquivalence:
    def test_columnar_build_matches_row_build(self, name):
        spec = worlds.get(name).with_size(TEST_N)
        assert_db_identical(columnar_build(spec), row_build(spec))

    def test_spec_build_uses_columnar_path_bit_identically(self, name):
        spec = worlds.get(name).with_size(TEST_N)
        assert_db_identical(spec.build().db, row_build(spec))

    def test_json_round_tripped_build_identical(self, name):
        spec = worlds.get(name).with_size(TEST_N)
        rt = WorldSpec.from_json(spec.to_json())
        assert_db_identical(spec.build().db, rt.build().db)

    def test_ground_truths_match_row_reference(self, name):
        db = worlds.get(name).with_size(TEST_N).build().db
        rows = db.tuples()
        for attr in ("category", "gender", "brand"):
            col = db.column(attr)
            if col is None:
                continue
            seen = sorted({t.get(attr) for t in rows if t.get(attr) is not None})
            for value in seen[:4]:
                cond = AttrEquals(attr, value)
                assert db.ground_truth_count(cond) == sum(
                    1 for t in rows if t.get(attr) == value
                )
        for attr, cond in (
            ("is_male", None),
            ("rating", AttrEquals("category", "restaurant")),
            ("enrollment", AttrEquals("category", "school")),
            ("popularity", None),
        ):
            if db.column(attr) is None:
                continue
            total = 0.0
            count = 0
            for t in rows:
                if cond is not None and not cond(t):
                    continue
                value = t.get(attr)
                if value is not None:
                    total += float(value)
                    count += 1
            assert db.ground_truth_sum(attr, cond) == total
            if count:
                assert db.ground_truth_avg(attr, cond) == total / count

    def test_filtered_mask_matches_row_fallback(self, name):
        db = worlds.get(name).with_size(TEST_N).build().db
        attr = "category" if db.column("category") is not None else "gender"
        value = db.tuples()[0].get(attr)
        cond = AttrEquals(attr, value)
        by_mask = db.filtered(cond)
        by_rows = db.filtered(lambda t: t.get(attr) == value)
        assert_db_identical(by_mask, by_rows)
        # Derived databases answer ground truths like the parent subset.
        assert by_mask.ground_truth_count() == db.ground_truth_count(cond)


def _mixed_columns(n, rng):
    """A column set covering every dtype class, with null masks."""
    cat = np.array(
        [("a", "b", "c")[i] for i in rng.integers(0, 3, n)], dtype=object
    )
    return {
        "cat": Column(cat),
        "score": Column(rng.random(n), rng.random(n) < 0.7),
        "n_vis": Column(
            rng.integers(0, 50, n).astype(np.int64), rng.random(n) < 0.5
        ),
        "flag": Column(rng.random(n) < 0.4),
        "note": column_from_values(
            [None if i % 5 == 0 else f"note{i}" for i in range(n)]
        ),
    }


def _rows_of(xy, tids, columns):
    rows = []
    for i, tid in enumerate(tids.tolist()):
        attrs = {
            name: col.value_at(i)
            for name, col in columns.items()
            if col.present_at(i)
        }
        rows.append(LbsTuple(tid, Point(float(xy[i, 0]), float(xy[i, 1])), attrs))
    return rows


class TestFromColumns:
    def make_pair(self, n=200, seed=3):
        rng = np.random.default_rng(seed)
        xy = rng.random((n, 2)) * [BOX.width, BOX.height]
        tids = np.arange(n, dtype=np.int64)
        columns = _mixed_columns(n, rng)
        db_cols = SpatialDatabase.from_columns(xy, tids, columns, BOX)
        db_rows = SpatialDatabase(_rows_of(xy, tids, columns), BOX)
        return db_cols, db_rows

    def test_bit_identical_to_row_constructor(self):
        db_cols, db_rows = self.make_pair()
        assert_db_identical(db_cols, db_rows)

    def test_accepts_plain_arrays_and_value_lists(self):
        rng = np.random.default_rng(0)
        xy = rng.random((50, 2)) * 10
        db = SpatialDatabase.from_columns(
            xy,
            np.arange(50),
            {
                "w": rng.random(50),                      # bare ndarray
                "tag": [f"t{i}" for i in range(50)],      # python values
                "half": (list(range(50)), np.arange(50) % 2 == 0),  # pair
            },
            Rect(0, 0, 10, 10),
        )
        t = db.get(4)
        assert t["tag"] == "t4" and t["half"] == 4
        assert "half" not in db.get(5).attrs

    def test_subsample_identical_across_paths(self):
        db_cols, db_rows = self.make_pair()
        a = db_cols.subsample(0.4, np.random.default_rng(11))
        b = db_rows.subsample(0.4, np.random.default_rng(11))
        assert_db_identical(a, b)

    def test_interfaces_answer_identically(self):
        db_cols, db_rows = self.make_pair()
        for cls, kwargs in (
            (LrLbsInterface, {}),
            (LnrLbsInterface, {"visible_attrs": ("cat", "score", "missing")}),
        ):
            api_a = cls(db_cols, k=4, **kwargs)
            api_b = cls(db_rows, k=4, **kwargs)
            rng = np.random.default_rng(2)
            pts = [Point(x * BOX.width, y * BOX.height) for x, y in rng.random((12, 2))]
            answers_a = api_a.query_batch(pts)
            answers_b = [api_b.query(p) for p in pts]
            for qa, qb in zip(answers_a, answers_b):
                assert qa.to_state() == qb.to_state()

    def test_filtered_view_shares_budget_and_matches(self):
        db_cols, db_rows = self.make_pair()
        va = LrLbsInterface(db_cols, k=3).filtered(AttrEquals("cat", "b"))
        vb = LrLbsInterface(db_rows, k=3).filtered(AttrEquals("cat", "b"))
        p = Point(5.0, 5.0)
        assert va.query(p).to_state() == vb.query(p).to_state()

    def test_tid_lookup_keeps_dict_key_semantics(self):
        # The old store was a dict keyed by tid: 2.0 found tuple 2
        # (hash/eq equivalence), 2.7 and "2" did not.
        db_cols, _ = self.make_pair()
        assert db_cols.get(2.0).tid == 2
        assert 2.0 in db_cols and np.int64(3) in db_cols
        for bad in (2.7, "2", "abc", None):
            assert bad not in db_cols
            with pytest.raises(KeyError):
                db_cols.get(bad)

    def test_gather_attrs_accepts_tid_arrays(self):
        db_cols, _ = self.make_pair()
        from_array = db_cols.gather_attrs(np.array([4, 9], dtype=np.int64))
        assert from_array == db_cols.gather_attrs([4, 9])
        assert db_cols.gather_attrs(np.empty(0, dtype=np.int64)) == []

    def test_duplicate_ids_rejected(self):
        xy = np.zeros((2, 2))
        with pytest.raises(ValueError, match="duplicate tuple id 7"):
            SpatialDatabase.from_columns(xy, [7, 7], {}, BOX)

    def test_out_of_region_reports_offending_tid(self):
        xy = np.array([[1.0, 1.0], [200.0, 1.0]])
        with pytest.raises(ValueError, match="tuple 3"):
            SpatialDatabase.from_columns(xy, [2, 3], {}, BOX)

    def test_non_finite_coordinates_rejected(self):
        xy = np.array([[1.0, np.nan]])
        with pytest.raises(ValueError, match="outside region"):
            SpatialDatabase.from_columns(xy, [0], {}, BOX)

    def test_shape_mismatches_rejected(self):
        with pytest.raises(ValueError, match=r"\(N, 2\)"):
            SpatialDatabase.from_columns(np.zeros((3, 3)), [0, 1, 2], {}, BOX)
        with pytest.raises(ValueError, match="one id per"):
            SpatialDatabase.from_columns(np.zeros((3, 2)), [0, 1], {}, BOX)
        with pytest.raises(ValueError, match="column"):
            SpatialDatabase.from_columns(
                np.zeros((3, 2)), [0, 1, 2], {"x": [1.0, 2.0]}, BOX
            )

    def test_concat_columns_masks_absent_blocks(self):
        a = {"cat": Column(np.array(["r"] * 3, dtype=object)),
             "rating": Column(np.array([1.0, 2.0, 3.0]))}
        b = {"cat": Column(np.array(["s"] * 2, dtype=object)),
             "enrollment": Column(np.array([10, 20], dtype=np.int64))}
        merged = concat_columns([(3, a), (2, b)])
        assert merged["cat"].present is None
        assert merged["rating"].present.tolist() == [True] * 3 + [False] * 2
        assert merged["enrollment"].present.tolist() == [False] * 3 + [True] * 2
        db = SpatialDatabase.from_columns(
            np.arange(10, dtype=float).reshape(5, 2), np.arange(5), merged, BOX
        )
        assert db.ground_truth_sum("rating") == 6.0
        assert db.ground_truth_sum("enrollment") == 30.0
        assert "enrollment" not in db.get(0).attrs

    def test_columns_from_rows_round_trips_types(self):
        rows = [
            {"a": 1.5, "b": True, "c": 3, "d": "x", "e": None},
            {"a": 2.5, "b": False, "c": 4},
        ]
        cols = columns_from_rows(rows)
        assert cols["a"].values.dtype == np.float64
        assert cols["b"].values.dtype == np.bool_
        assert cols["c"].values.dtype == np.int64
        assert cols["d"].values.dtype == object
        rebuilt = [
            {k: c.value_at(i) for k, c in cols.items() if c.present_at(i)}
            for i in range(2)
        ]
        assert rebuilt == rows


# ----------------------------------------------------------------------
# Null-mask SUM/AVG semantics (property-based)
# ----------------------------------------------------------------------
finite = st.floats(allow_nan=False, allow_infinity=False, width=32)
cell = st.one_of(st.none(), st.integers(-1000, 1000), finite, st.booleans())


@settings(max_examples=60, deadline=None)
@given(values=st.lists(st.tuples(cell, st.booleans()), min_size=1, max_size=60))
def test_null_mask_sum_avg_match_row_semantics(values):
    """SUM/AVG over a masked column equal the row loop bit for bit:
    absent slots and stored ``None`` both drop out of numerator and
    denominator, regardless of whether the column is typed or object."""
    n = len(values)
    raw = [v for v, _p in values]
    present = np.array([p for _v, p in values], dtype=bool)
    xy = np.stack([np.linspace(1, 99, n), np.linspace(1, 79, n)], axis=1)
    tids = np.arange(n, dtype=np.int64)
    db = SpatialDatabase.from_columns(
        xy, tids, {"v": column_from_values(raw, present)}, BOX
    )
    total = 0.0
    count = 0
    for value, p in values:
        if p and value is not None:
            total += float(value)
            count += 1
    assert db.ground_truth_sum("v") == total
    if count == 0:
        with pytest.raises(ValueError, match="empty selection"):
            db.ground_truth_avg("v")
    else:
        assert db.ground_truth_avg("v") == total / count
    # AttrEquals(attr, None) matches absent rows *and* stored Nones.
    assert db.ground_truth_count(AttrEquals("v", None)) == sum(
        1 for value, p in values if (not p) or value is None
    )
    # Missing column: SUM is 0, AVG is an empty selection.
    assert db.ground_truth_sum("nope") == 0.0
    with pytest.raises(ValueError):
        db.ground_truth_avg("nope")


@settings(max_examples=40, deadline=None)
@given(
    data=st.lists(
        st.tuples(st.sampled_from(["a", "b", None]), st.booleans()),
        min_size=1,
        max_size=50,
    ),
    target=st.sampled_from(["a", "b", "c", None]),
)
def test_attr_equals_mask_matches_row_predicate(data, target):
    n = len(data)
    raw = [v for v, _p in data]
    present = np.array([p for _v, p in data], dtype=bool)
    xy = np.stack([np.linspace(1, 99, n), np.linspace(1, 79, n)], axis=1)
    db = SpatialDatabase.from_columns(
        xy, np.arange(n), {"g": column_from_values(raw, present)}, BOX
    )
    cond = AttrEquals("g", target)
    expected = [t.tid for t in db.tuples() if t.get("g") == target]
    assert db.ground_truth_count(cond) == len(expected)
    assert db.filtered(cond).tid_list() == expected


class TestFrozenStorage:
    """Ingested arrays become the database's storage without a copy, so
    the ingest freezes them — accidental in-place writes raise instead
    of silently corrupting the database (and, for shared-memory or
    mmapped worlds, every attached process)."""

    def _assert_frozen(self, db):
        assert not db.coords.flags.writeable
        assert not db.tids.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            db.coords[0, 0] = 123.0
        with pytest.raises((ValueError, RuntimeError)):
            db.tids[0] = 999
        for name in db.column_names():
            col = db.column(name)
            assert not col.values.flags.writeable, name
            with pytest.raises((ValueError, RuntimeError)):
                col.values[0] = col.values[0]
            if col.present is not None:
                assert not col.present.flags.writeable, name
                with pytest.raises((ValueError, RuntimeError)):
                    col.present[0] = True

    def test_from_columns_freezes_ingested_arrays(self):
        n = 16
        xy = np.stack([np.linspace(1, 99, n), np.linspace(1, 79, n)], axis=1)
        vals = np.arange(n, dtype=np.float64)
        present = np.ones(n, dtype=bool)
        db = SpatialDatabase.from_columns(
            xy, np.arange(n), {"v": Column(vals, present)}, BOX
        )
        self._assert_frozen(db)
        # The caller's own references hit the same storage: also frozen.
        assert not xy.flags.writeable and not vals.flags.writeable

    def test_world_builds_are_frozen(self):
        db = worlds.registry.get("paper/clustered").with_size(200).build().db
        self._assert_frozen(db)

    def test_derived_databases_stay_frozen(self):
        db = worlds.registry.get("paper/clustered").with_size(200).build().db
        self._assert_frozen(db.filtered(AttrEquals("category", "restaurant")))
        self._assert_frozen(db.subsample(0.5, np.random.default_rng(3)))
