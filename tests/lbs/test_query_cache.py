"""The query engine's cache, batch, and budget semantics.

Covers the contract the estimators rely on: batched answers identical to
looped single queries (LR and LNR), cache hits never drawing budget,
filtered() views never serving stale parent answers, and budget
exhaustion mid-batch paying for exactly the affordable prefix.
"""

import numpy as np
import pytest

from repro.geometry import Point, Rect
from repro.lbs import (
    BudgetExhausted,
    LbsTuple,
    LnrLbsInterface,
    LrLbsInterface,
    QueryAnswerCache,
    QueryBudget,
    QueryEngineConfig,
    SpatialDatabase,
)

BOX = Rect(0, 0, 100, 100)


def make_db(n=40, seed=0):
    rng = np.random.default_rng(seed)
    return SpatialDatabase(
        [
            LbsTuple(i, Point(rng.random() * 100, rng.random() * 100),
                     {"idx": i, "even": i % 2 == 0})
            for i in range(n)
        ],
        BOX,
    )


def random_points(n, seed=1):
    rng = np.random.default_rng(seed)
    return [Point(rng.random() * 100, rng.random() * 100) for _ in range(n)]


class TestAnswerCache:
    def test_hit_costs_no_budget(self):
        api = LrLbsInterface(make_db(), k=3, budget=QueryBudget(10))
        p = Point(20, 30)
        first = api.query(p)
        assert api.queries_used == 1
        second = api.query(p)
        assert api.queries_used == 1  # replay is free
        assert second == first
        assert api.cache_stats["hits"] == 1

    def test_float_noise_still_hits(self):
        api = LrLbsInterface(make_db(), k=3)
        api.query(Point(20, 30))
        api.query(Point(20 + 1e-13, 30 - 1e-13))
        assert api.queries_used == 1

    def test_distinct_points_miss(self):
        api = LrLbsInterface(make_db(), k=3)
        api.query(Point(20, 30))
        api.query(Point(21, 30))
        assert api.queries_used == 2

    def test_cache_disabled(self):
        api = LrLbsInterface(
            make_db(), k=3, engine=QueryEngineConfig(cache_size=0)
        )
        p = Point(20, 30)
        assert api.query(p) == api.query(p)
        assert api.queries_used == 2  # every call is a network call

    def test_lru_eviction(self):
        cache = QueryAnswerCache(capacity=2, resolution=1e-9)
        for i, label in enumerate("abc"):
            cache.put(cache.key(float(i), 0.0), label)
        assert cache.peek(cache.key(0.0, 0.0)) is None  # evicted
        assert cache.peek(cache.key(2.0, 0.0)) == "c"
        assert len(cache) == 2

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            QueryAnswerCache(capacity=-1, resolution=1e-9)
        with pytest.raises(ValueError):
            QueryAnswerCache(capacity=4, resolution=0.0)
        with pytest.raises(ValueError):
            QueryEngineConfig(cache_size=-5)


class TestQueryBatchRegression:
    """query_batch must be indistinguishable from a loop of query()."""

    @pytest.mark.parametrize("cls", [LrLbsInterface, LnrLbsInterface])
    @pytest.mark.parametrize("backend", ["kdtree", "grid", "brute", "auto"])
    def test_batch_equals_loop(self, cls, backend):
        db = make_db(60, seed=5)
        engine = QueryEngineConfig(index_backend=backend)
        points = random_points(30, seed=7)
        looped = [cls(db, k=4, engine=engine).query(p) for p in points]
        batched = cls(db, k=4, engine=engine).query_batch(points)
        assert batched == looped

    @pytest.mark.parametrize("cls", [LrLbsInterface, LnrLbsInterface])
    def test_batch_with_max_radius(self, cls):
        db = make_db(60, seed=5)
        points = random_points(25, seed=9)
        looped = [cls(db, k=6, max_radius=9.0).query(p) for p in points]
        batched = cls(db, k=6, max_radius=9.0).query_batch(points)
        assert batched == looped

    def test_batch_with_duplicates_pays_unique_misses(self):
        api = LrLbsInterface(make_db(), k=3, budget=QueryBudget(10))
        p1, p2 = Point(10, 10), Point(60, 60)
        answers = api.query_batch([p1, p2, p1, p2, p1])
        assert api.queries_used == 2
        assert answers[0] == answers[2] == answers[4]
        assert answers[1] == answers[3]

    def test_batch_reuses_prior_cache(self):
        api = LrLbsInterface(make_db(), k=3)
        p = Point(10, 10)
        single = api.query(p)
        answers = api.query_batch([p, Point(50, 50)])
        assert api.queries_used == 2  # only the new point paid
        assert answers[0] == single

    def test_cache_disabled_batch_matches_loop_accounting(self):
        # With the cache off, every point — duplicates included — is a
        # network call, exactly like the loop of query() calls.
        api = LrLbsInterface(make_db(), k=3, engine=QueryEngineConfig(cache_size=0))
        p = Point(10, 10)
        got = api.query_batch([p, p, p])
        assert api.queries_used == 3
        assert got[0] == got[1] == got[2]

    def test_batch_with_prominence_ranking(self):
        # Prominence batches through the pruned vectorized rank_batch;
        # answers must still match the looped scalar path exactly.
        db = make_db(30, seed=3)
        prominence = {
            "static_attr": "idx", "weight_distance": 1.0,
            "weight_static": 0.2, "distance_cap": 50.0,
        }
        points = random_points(10, seed=13)
        looped = [
            LrLbsInterface(db, k=3, prominence=prominence).query(p) for p in points
        ]
        batched = LrLbsInterface(db, k=3, prominence=prominence).query_batch(points)
        assert batched == looped


class TestFilteredViewCache:
    def test_view_never_serves_parent_answers(self):
        db = make_db(40)
        api = LrLbsInterface(db, k=5)
        p = Point(50, 50)
        full = api.query(p)  # parent cache now holds the full-db answer
        view = api.filtered(lambda t: t["even"])
        narrowed = view.query(p)
        assert all(r.tid % 2 == 0 for r in narrowed)
        assert narrowed != full
        # And the parent must not pick up the view's answers either.
        assert api.query(p) == full

    def test_view_has_its_own_cache_but_shared_budget(self):
        api = LrLbsInterface(make_db(), k=3, budget=QueryBudget(10))
        view = api.filtered(lambda t: t["even"])
        p = Point(10, 20)
        api.query(p)
        view.query(p)  # same location, different database: a real query
        assert api.queries_used == 2
        view.query(p)  # now cached in the view
        assert api.queries_used == 2

    def test_stacked_views_stay_isolated(self):
        api = LrLbsInterface(make_db(), k=4)
        view1 = api.filtered(lambda t: t["even"])
        view2 = view1.filtered(lambda t: t["idx"] < 20)
        p = Point(33, 44)
        a1 = view1.query(p)
        a2 = view2.query(p)
        assert all(r.tid % 2 == 0 for r in a1)
        assert all(r.tid % 2 == 0 and r.tid < 20 for r in a2)
        assert view1.query(p) == a1  # replay unaffected by view2's cache


class TestBudgetExhaustionMidBatch:
    def test_affordable_prefix_paid_then_raises(self):
        api = LrLbsInterface(make_db(), k=3, budget=QueryBudget(3))
        points = random_points(5, seed=21)
        with pytest.raises(BudgetExhausted):
            api.query_batch(points)
        assert api.queries_used == 3  # exactly the affordable prefix
        # The paid answers are cached: replaying them needs no budget.
        for p in points[:3]:
            api.query(p)
        assert api.queries_used == 3
        # The unpaid tail still raises.
        with pytest.raises(BudgetExhausted):
            api.query(points[3])

    def test_cache_hits_do_not_count_toward_exhaustion(self):
        api = LrLbsInterface(make_db(), k=3, budget=QueryBudget(3))
        warm = random_points(2, seed=22)
        api.query_batch(warm)
        assert api.queries_used == 2
        # 2 cached + 1 new = 1 real query; fits in the remaining budget.
        answers = api.query_batch([warm[0], warm[1], Point(77, 77)])
        assert api.queries_used == 3
        assert len(answers) == 3

    def test_exhausted_batch_of_only_cache_hits_succeeds(self):
        api = LrLbsInterface(make_db(), k=3, budget=QueryBudget(2))
        warm = random_points(2, seed=23)
        api.query_batch(warm)
        assert api.budget.exhausted()
        replay = api.query_batch(list(warm))
        assert len(replay) == 2
        assert api.queries_used == 2

    def test_matches_sequential_loop_semantics(self):
        points = random_points(6, seed=24)
        batch_api = LrLbsInterface(make_db(), k=3, budget=QueryBudget(4))
        loop_api = LrLbsInterface(make_db(), k=3, budget=QueryBudget(4))
        with pytest.raises(BudgetExhausted):
            batch_api.query_batch(points)
        loop_answers = []
        with pytest.raises(BudgetExhausted):
            for p in points:
                loop_answers.append(loop_api.query(p))
        assert batch_api.queries_used == loop_api.queries_used == 4
        # The paid prefix answers agree.
        assert [batch_api.query(p) for p in points[:4]] == loop_answers

    def test_affordable_helper(self):
        b = QueryBudget(5)
        assert b.affordable(3) == 3
        b.spend(4)
        assert b.affordable(3) == 1
        b.spend(1)
        assert b.affordable(3) == 0
        assert QueryBudget(None).affordable(1000) == 1000
