"""Columnar obfuscation path: bit-identity against the dict path, jitter
edge cases, per-tid stability, and loud engine-state rejection.

The frozen reference here is the pre-columnar interface build: sort the
materialized rows by tid, draw one positional jitter stream, clip and
clamp per point, and carry a ``{tid: Point}`` dict through the pipeline.
The array-native path (one ``(N, 2)`` draw over the coordinate columns,
vectorized clip/clamp, lazy mapping view, row-sliced ``filtered()``
inheritance) must reproduce it bit for bit — scalar and batch, LR and
LNR, distance- and prominence-ranked, through filtered chains.
"""

import numpy as np
import pytest

from repro import worlds
from repro.core.aggregates import AttrEquals
from repro.geometry import Point, Rect, distance
from repro.lbs import (
    LbsTuple,
    LnrLbsInterface,
    LrLbsInterface,
    ObfuscationModel,
    SpatialDatabase,
)

BOX = Rect(0.0, 0.0, 100.0, 100.0)
#: Registry scenarios run at a reduced ``n`` — the jitter/clamp/ranking
#: machinery is size-independent; full sizes belong to the bench.
TEST_N = 900


def make_db(n=60, seed=0):
    rng = np.random.default_rng(seed)
    tuples = [
        LbsTuple(i, Point(rng.random() * 100, rng.random() * 100),
                 {"idx": i, "popularity": float(rng.random())})
        for i in range(n)
    ]
    return SpatialDatabase(tuples, BOX)


def dict_path_locations(db, model):
    """The pre-columnar reference: positional stream over tid-sorted
    rows, per-point clip (with the historical ``clip > 0`` guard) and
    ``region.clamp``, materialized as a dict."""
    ordered = sorted(db.tuples(), key=lambda t: t.tid)
    rng = np.random.default_rng(model.seed)
    offsets = rng.normal(0.0, model.sigma, size=(len(ordered), 2))
    if model.clip is not None and model.clip > 0.0:
        norms = np.hypot(offsets[:, 0], offsets[:, 1])
        safe = np.where(norms > 0.0, norms, 1.0)
        scale = np.where(norms > model.clip, model.clip / safe, 1.0)
        offsets = offsets * scale[:, None]
    region = db.region
    return {
        t.tid: region.clamp(
            Point(t.location.x + float(dx), t.location.y + float(dy))
        )
        for t, (dx, dy) in zip(ordered, offsets)
    }


def probe_points(region, n=10, seed=3):
    rng = np.random.default_rng(seed)
    return [
        Point(region.x0 + u * region.width, region.y0 + v * region.height)
        for u, v in rng.random((n, 2))
    ]


def assert_same_answers(api, ref_api, pts):
    """Scalar and batch answers of both interfaces agree bit for bit."""
    batch = api.query_batch(pts)
    ref_scalar = [ref_api.query(p) for p in pts]
    for a, b in zip(batch, ref_scalar):
        assert a.to_state() == b.to_state()
    for p, b in zip(pts, ref_scalar):
        assert api.query(p).to_state() == b.to_state()


def first_static_attr(db):
    for cand in ("popularity", "rating", "n_visits", "enrollment"):
        if db.column(cand) is not None:
            return cand
    return None


def first_filter(db):
    for attr in ("category", "gender", "brand", "component"):
        if db.column(attr) is not None:
            return AttrEquals(attr, db.tuples()[0].get(attr))
    return None


# ----------------------------------------------------------------------
# Bit-identity against the dict-path reference, all registry scenarios
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", worlds.names())
def test_registry_obfuscated_answers_match_dict_path(name):
    db = worlds.get(name).with_size(TEST_N).build().db
    region = db.region
    sigma = 0.01 * max(region.width, region.height)
    model = ObfuscationModel(sigma=sigma, seed=9, clip=2.5 * sigma)
    ref = dict_path_locations(db, model)
    pts = probe_points(region)
    for cls in (LrLbsInterface, LnrLbsInterface):
        api = cls(db, k=5, obfuscation=model)
        ref_api = cls(db, k=5, obfuscation=model, effective_locations=ref)
        for tid in db.tid_list()[:40]:
            assert api.effective_location(tid) == ref[tid]
        assert_same_answers(api, ref_api, pts)
        cond = first_filter(db)
        if cond is not None:
            assert_same_answers(api.filtered(cond), ref_api.filtered(cond), pts)
    static = first_static_attr(db)
    if static is not None:
        prominence = {"static_attr": static, "weight_distance": 0.6,
                      "weight_static": 0.4, "distance_cap": 0.1 * region.width}
        api = LrLbsInterface(db, k=5, obfuscation=model, prominence=prominence)
        ref_api = LrLbsInterface(db, k=5, obfuscation=model,
                                 prominence=prominence, effective_locations=ref)
        assert_same_answers(api, ref_api, pts)


def test_wechat_subsample_filtered_chain_two_deep():
    """Regression: dict-path vs columnar bit-identity for obfuscated
    filtered() chains (two levels) on wechat-like-1m subsampled to 10k —
    non-contiguous tids, row-sliced jitter inheritance at every level."""
    db = worlds.get("wechat-like-1m").with_size(30_000).build().db
    sub = db.subsample(10_000 / len(db), np.random.default_rng(42))
    assert len(sub) == 10_000
    region = sub.region
    sigma = 0.01 * max(region.width, region.height)
    model = ObfuscationModel(sigma=sigma, seed=9, clip=2.5 * sigma)
    ref = dict_path_locations(sub, model)
    pts = probe_points(region)
    api = LnrLbsInterface(sub, k=5, obfuscation=model)
    ref_api = LnrLbsInterface(sub, k=5, obfuscation=model, effective_locations=ref)
    assert_same_answers(api, ref_api, pts)
    gender = AttrEquals("gender", sub.tuples()[0].get("gender"))
    view, ref_view = api.filtered(gender), ref_api.filtered(gender)
    assert_same_answers(view, ref_view, pts)
    keep = set(view.database.tid_list()[::2])
    pred = lambda t: t.tid in keep  # noqa: E731
    view2, ref_view2 = view.filtered(pred), ref_view.filtered(pred)
    assert_same_answers(view2, ref_view2, pts)
    # Realized jitters survived both slicing levels unchanged.
    for tid in view2.database.tid_list()[:40]:
        assert view2.effective_location(tid) == ref[tid]


# ----------------------------------------------------------------------
# Jitter edge cases
# ----------------------------------------------------------------------
class TestJitterEdgeCases:
    def test_clip_zero_means_zero_displacement(self):
        # The historical `clip > 0` guard silently treated clip=0.0 as
        # *unclipped*; a configured zero-displacement clip must pin
        # every effective position to the truth.
        db = make_db(80)
        m = ObfuscationModel(sigma=5.0, seed=3, clip=0.0)
        eff = m.effective_coords(db.coords, db.tids)
        assert np.array_equal(eff, db.coords)
        api = LrLbsInterface(db, k=3, obfuscation=m)
        plain = LrLbsInterface(db, k=3)
        p = Point(50.0, 50.0)
        assert api.query(p).to_state() == plain.query(p).to_state()

    def test_sigma_zero_is_identity_jitter(self):
        db = make_db(50)
        for clip in (None, 0.0, 2.0):
            m = ObfuscationModel(sigma=0.0, seed=1, clip=clip)
            assert np.array_equal(m.effective_coords(db.coords, db.tids), db.coords)

    def test_clip_smaller_than_typical_norms(self):
        # sigma=10 draws have norm ~12 on average; every displacement
        # must cap at the tiny clip, none at zero (norms can't vanish).
        db = make_db(150, seed=2)
        clip = 0.05
        m = ObfuscationModel(sigma=10.0, seed=5, clip=clip)
        eff = m.effective_coords(db.coords, db.tids)
        norms = np.hypot(*(eff - db.coords).T)
        assert norms.max() <= clip + 1e-12
        assert (norms > clip * 0.999999).all()  # all hit the cap

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError, match="sigma"):
            ObfuscationModel(sigma=-1.0)
        with pytest.raises(ValueError, match="clip"):
            ObfuscationModel(sigma=1.0, clip=-0.5)

    def test_jitters_clamped_at_all_four_edges(self):
        # Points hugging each edge with a huge jitter: effective
        # positions stay inside the region, and each edge actually
        # clamps (some coordinate lands exactly on it).
        rng = np.random.default_rng(8)
        tuples = []
        tid = 0
        for _ in range(40):
            along = rng.random() * 100
            for loc in (Point(0.01, along), Point(99.99, along),
                        Point(along, 0.01), Point(along, 99.99)):
                tuples.append(LbsTuple(tid, loc, {}))
                tid += 1
        db = SpatialDatabase(tuples, BOX)
        api = LrLbsInterface(db, k=3, obfuscation=ObfuscationModel(sigma=30.0, seed=4))
        eff = np.array([[api.effective_location(t).x, api.effective_location(t).y]
                        for t in db.tid_list()])
        assert (eff[:, 0] >= BOX.x0).all() and (eff[:, 0] <= BOX.x1).all()
        assert (eff[:, 1] >= BOX.y0).all() and (eff[:, 1] <= BOX.y1).all()
        assert (eff[:, 0] == BOX.x0).any() and (eff[:, 0] == BOX.x1).any()
        assert (eff[:, 1] == BOX.y0).any() and (eff[:, 1] == BOX.y1).any()

    def test_serde_round_trip_exact(self):
        for m in (
            ObfuscationModel(sigma=2.5, seed=9, clip=1.5),
            ObfuscationModel(sigma=2.5, seed=9, clip=0.0),
            ObfuscationModel(sigma=0.0, seed=0, per_tid=True),
        ):
            assert ObfuscationModel.from_dict(m.to_dict()) == m
        # Dicts written before per_tid existed still load (default off).
        legacy = ObfuscationModel.from_dict({"sigma": 1.0, "seed": 2, "clip": None})
        assert legacy == ObfuscationModel(sigma=1.0, seed=2)


# ----------------------------------------------------------------------
# Per-tid jitter stability (the opt-in)
# ----------------------------------------------------------------------
class TestPerTidStability:
    def test_positional_stream_rerolls_on_direct_subset_build(self):
        # The documented hazard: the default stream assigns jitters by
        # *position* over tid-sorted tuples, so an interface built
        # directly on a filtered database re-rolls them.
        db = make_db(100)
        sub = db.filtered(lambda t: t["idx"] % 3 == 0)
        m = ObfuscationModel(sigma=2.0, seed=7)
        parent = LnrLbsInterface(db, k=3, obfuscation=m)
        direct = LnrLbsInterface(sub, k=3, obfuscation=m)
        moved = [t for t in sub.tid_list()[1:]
                 if direct.effective_location(t) != parent.effective_location(t)]
        assert moved  # jitters re-rolled (tid 0 keeps the stream head)

    def test_per_tid_stream_is_stable_across_subsets(self):
        # With per_tid=True a tuple's jitter depends only on (seed, tid):
        # direct builds on filtered/subsampled databases agree with the
        # parent world — the "drawn once, for good" invariant holds.
        db = make_db(100)
        m = ObfuscationModel(sigma=2.0, seed=7, per_tid=True)
        parent = LnrLbsInterface(db, k=3, obfuscation=m)
        sub = db.filtered(lambda t: t["idx"] % 3 == 0)
        direct = LnrLbsInterface(sub, k=3, obfuscation=m)
        view = parent.filtered(lambda t: t["idx"] % 3 == 0)
        for t in sub.tid_list():
            assert direct.effective_location(t) == parent.effective_location(t)
            assert view.effective_location(t) == parent.effective_location(t)
        # Same through a subsample (non-contiguous tids).
        rng = np.random.default_rng(1)
        ss = db.subsample(0.3, rng)
        on_ss = LnrLbsInterface(ss, k=3, obfuscation=m)
        for t in ss.tid_list():
            assert on_ss.effective_location(t) == parent.effective_location(t)

    def test_per_tid_deterministic_and_seed_sensitive(self):
        db = make_db(200, seed=3)
        a = ObfuscationModel(sigma=2.0, seed=1, per_tid=True)
        b = ObfuscationModel(sigma=2.0, seed=2, per_tid=True)
        ea = a.effective_coords(db.coords, db.tids)
        assert np.array_equal(ea, a.effective_coords(db.coords, db.tids))
        assert not np.array_equal(ea, b.effective_coords(db.coords, db.tids))

    def test_per_tid_displacement_scale_and_clip(self):
        db = make_db(400, seed=5)
        m = ObfuscationModel(sigma=3.0, seed=11, per_tid=True)
        disp = np.hypot(*(m.effective_coords(db.coords, db.tids) - db.coords).T)
        # Rayleigh mean is sigma * sqrt(pi/2) ~ 3.76.
        assert 2.5 < float(disp.mean()) < 5.5
        clipped = ObfuscationModel(sigma=3.0, seed=11, clip=1.0, per_tid=True)
        norms = np.hypot(*(clipped.effective_coords(db.coords, db.tids) - db.coords).T)
        assert norms.max() <= 1.0 + 1e-12

    def test_effective_locations_dict_agrees_with_coords(self):
        db = make_db(60, seed=6)
        for m in (ObfuscationModel(sigma=2.0, seed=5),
                  ObfuscationModel(sigma=2.0, seed=5, per_tid=True)):
            eff = m.effective_locations(db.tuples())
            arr = m.effective_coords(db.coords, db.tids)
            for i, tid in enumerate(db.tid_list()):
                assert eff[tid] == Point(float(arr[i, 0]), float(arr[i, 1]))


# ----------------------------------------------------------------------
# Interface plumbing around the columnar effective positions
# ----------------------------------------------------------------------
class TestInterfacePlumbing:
    def test_interface_ranks_by_effective_positions(self):
        db = make_db()
        api = LnrLbsInterface(db, k=3, obfuscation=ObfuscationModel(sigma=5.0, seed=1))
        q = Point(40, 40)
        dists = [distance(q, api.effective_location(t)) for t in api.query(q).tids()]
        assert dists == sorted(dists)

    def test_lr_reports_effective_not_true_locations(self):
        db = make_db()
        api = LrLbsInterface(db, k=4, obfuscation=ObfuscationModel(sigma=3.0, seed=2))
        for r in api.query(Point(20, 80)):
            assert r.location == api.effective_location(r.tid)

    def test_effective_coords_shape_validated(self):
        db = make_db(10)
        with pytest.raises(ValueError, match="effective_coords"):
            LrLbsInterface(db, k=2, effective_coords=np.zeros((3, 2)))

    def test_restore_engine_state_rejects_malformed_snapshots(self):
        # Pre-cache-stats snapshots must fail loudly (state-v2
        # convention), not with a bare KeyError mid-restore.
        db = make_db()
        api = LrLbsInterface(db, k=2)
        api.query(Point(5.0, 5.0))
        good = api.engine_state()
        for dropped in ("budget_used", "cache"):
            bad = {k: v for k, v in good.items() if k != dropped}
            fresh = LrLbsInterface(db, k=2)
            with pytest.raises(ValueError, match="incompatible release"):
                fresh.restore_engine_state(bad)
        with pytest.raises(ValueError, match="budget_used.*cache"):
            LrLbsInterface(db, k=2).restore_engine_state({})
        # Optional cache statistics still default quietly.
        fresh = LrLbsInterface(db, k=2)
        fresh.restore_engine_state(
            {"budget_used": good["budget_used"], "cache": good["cache"]}
        )
        assert fresh.queries_used == api.queries_used
        assert fresh.query(Point(5.0, 5.0)).to_state() == api.query(Point(5.0, 5.0)).to_state()
