"""Property-based capability grid: batched answers are bit-identical.

Every combination of service capabilities — ranking policy (distance |
prominence), ``max_radius``, obfuscation, ``visible_attrs`` — over both
interface families (LR and LNR) must answer ``query_batch`` exactly as a
loop of single ``query`` calls would: same tuples, same ranks, same
attrs, same (possibly suppressed) locations and distances, bit for bit.
This is the contract that lets the estimators prefetch whole batches
through the vectorized pipeline without changing what any sample means.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point, Rect
from repro.lbs import (
    LbsTuple,
    LnrLbsInterface,
    LrLbsInterface,
    ObfuscationModel,
    ProminenceRanking,
    SpatialDatabase,
)

BOX = Rect(0, 0, 100, 100)

coord = st.floats(min_value=0, max_value=100, allow_nan=False)

#: Cap small relative to the region (~4.5% coverage) so the *pruned*
#: batch kernel — not its wide-cap full-scan fallback — is what the
#: property grid exercises.
PROMINENCE = {
    "static_attr": "popularity",
    "weight_distance": 0.6,
    "weight_static": 0.4,
    "distance_cap": 12.0,
}

#: The full capability grid (16 combinations), spelled out so a failure
#: names its cell.
GRID = [
    pytest.param(prom, radius, obf, vis,
                 id=f"prom={prom}-radius={radius}-obf={obf}-vis={vis}")
    for prom in (False, True)
    for radius in (False, True)
    for obf in (False, True)
    for vis in (False, True)
]


def make_db(n=70, seed=0):
    rng = np.random.default_rng(seed)
    return SpatialDatabase(
        [
            LbsTuple(
                i,
                Point(rng.random() * 100, rng.random() * 100),
                {"idx": i, "popularity": float(rng.random()), "even": i % 2 == 0},
            )
            for i in range(n)
        ],
        BOX,
    )


DB = make_db()


def interface_kwargs(prom, radius, obf, vis):
    kwargs = {}
    if prom:
        kwargs["prominence"] = dict(PROMINENCE)
    if radius:
        kwargs["max_radius"] = 18.0
    if obf:
        kwargs["obfuscation"] = ObfuscationModel(sigma=2.0, seed=5)
    if vis:
        kwargs["visible_attrs"] = ("idx", "popularity")
    return kwargs


class TestCapabilityGridBatchEquivalence:
    @pytest.mark.parametrize("cls", [LrLbsInterface, LnrLbsInterface])
    @pytest.mark.parametrize("prom,radius,obf,vis", GRID)
    @given(raw=st.lists(st.tuples(coord, coord), min_size=1, max_size=10))
    @settings(max_examples=15, deadline=None)
    def test_batched_equals_looped(self, cls, prom, radius, obf, vis, raw):
        points = [Point(x, y) for x, y in raw]
        kwargs = interface_kwargs(prom, radius, obf, vis)
        loop_api = cls(DB, k=4, **kwargs)
        looped = [loop_api.query(p) for p in points]
        batched = cls(DB, k=4, **kwargs).query_batch(points)
        assert batched == looped

    @pytest.mark.parametrize("prom,radius,obf,vis", GRID)
    def test_duplicates_and_revisits(self, prom, radius, obf, vis):
        # Repeated locations inside and across batches must replay the
        # identical answer object for free.
        kwargs = interface_kwargs(prom, radius, obf, vis)
        api = LrLbsInterface(DB, k=3, **kwargs)
        p = Point(33.0, 41.0)
        first = api.query(p)
        used = api.queries_used
        again = api.query_batch([p, Point(70.0, 9.0), p])
        assert again[0] == first == again[2]
        assert api.queries_used == used + 1  # only the new point paid


class TestProminenceKernel:
    """The vectorized prominence kernel vs the scalar full scan."""

    @given(
        raw=st.lists(st.tuples(coord, coord), min_size=1, max_size=15),
        k=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_rank_batch_matches_rank(self, raw, k):
        api = LrLbsInterface(DB, k=5, prominence=dict(PROMINENCE))
        ranking = api.ranking
        assert isinstance(ranking, ProminenceRanking)
        points = [Point(x, y) for x, y in raw]
        assert ranking.rank_batch(points, k) == [ranking.rank(p, k) for p in points]

    @given(
        raw=st.lists(st.tuples(coord, coord), min_size=1, max_size=10),
        k=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=20, deadline=None)
    def test_region_covering_cap_matches_too(self, raw, k):
        # A cap wider than the region routes rank_batch through its
        # full-scan crossover path — answers must stay identical.
        api = LrLbsInterface(
            DB, k=5,
            prominence={"static_attr": "popularity", "weight_distance": 0.6,
                        "weight_static": 0.4, "distance_cap": 500.0},
        )
        ranking = api.ranking
        points = [Point(x, y) for x, y in raw]
        assert ranking.rank_batch(points, k) == [ranking.rank(p, k) for p in points]

    def test_far_but_popular_tuples_survive_pruning(self):
        # A tuple far beyond distance_cap but with the top static score
        # must still appear — pruning may not lose it.
        rng = np.random.default_rng(1)
        tuples = [
            LbsTuple(i, Point(rng.random() * 10, rng.random() * 10),
                     {"popularity": 0.1})
            for i in range(80)
        ]
        tuples.append(LbsTuple(99, Point(95.0, 95.0), {"popularity": 1.0}))
        db = SpatialDatabase(tuples, BOX)
        api = LrLbsInterface(
            db, k=3,
            prominence={"static_attr": "popularity", "weight_distance": 0.2,
                        "weight_static": 0.8, "distance_cap": 5.0},
        )
        points = [Point(2.0, 2.0), Point(8.0, 3.0)]
        for answer in api.query_batch(points):
            assert 99 in answer.tids()
        fresh = LrLbsInterface(
            db, k=3,
            prominence={"static_attr": "popularity", "weight_distance": 0.2,
                        "weight_static": 0.8, "distance_cap": 5.0},
        )
        assert [fresh.query(p) for p in points] == api.query_batch(points)
