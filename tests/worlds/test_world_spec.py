"""WorldSpec build determinism and serialization tests."""

import json

import numpy as np
import pytest

from repro.worlds import (
    AttrSchema,
    CensusSpec,
    Constant,
    GaussianClusters,
    RegionSpec,
    UniformField,
    WorldSpec,
)


def _spec(**kw):
    base = dict(
        name="t",
        region=RegionSpec(0, 0, 100, 80),
        n=400,
        spatial=GaussianClusters(centers=((0.4, 0.6),), sigmas=(0.1,),
                                 weights=(1.0,), background=0.3),
        attrs=AttrSchema(fields=(Constant("category", "poi"),)),
        census=CensusSpec(nx=8, ny=6, noise=0.2),
        seed=5,
    )
    base.update(kw)
    return WorldSpec(**base)


def _db_fingerprint(db):
    return (
        sorted((t.tid, t.location.x, t.location.y, tuple(sorted(t.attrs.items())))
               for t in db),
        db.region,
    )


class TestRegionSpec:
    def test_named_regions(self):
        us = RegionSpec.named("us")
        assert us.rect.width == 4500.0 and us.name == "us"
        with pytest.raises(ValueError):
            RegionSpec.named("atlantis")

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            RegionSpec(0, 0, 0, 10)

    def test_round_trip(self):
        r = RegionSpec.named("austin")
        assert RegionSpec.from_dict(r.to_dict()) == r


class TestBuild:
    def test_same_spec_same_seed_bit_identical(self):
        a = _spec().build()
        b = _spec().build()
        assert _db_fingerprint(a.db) == _db_fingerprint(b.db)
        assert np.array_equal(a.census.weights, b.census.weights)

    def test_seed_changes_world(self):
        a = _spec().build()
        b = _spec().build(seed=6)
        assert _db_fingerprint(a.db) != _db_fingerprint(b.db)

    def test_json_round_trip_builds_identically(self):
        spec = _spec()
        rt = WorldSpec.from_json(spec.to_json())
        assert rt == spec
        assert _db_fingerprint(spec.build().db) == _db_fingerprint(rt.build().db)

    def test_json_is_plain(self):
        doc = _spec().to_json()
        assert json.loads(doc)["region"]["x1"] == 100

    def test_census_optional(self):
        w = _spec(census=None).build()
        assert w.census is None

    def test_census_noise_consumes_stream_after_tuples(self):
        clean = _spec(census=CensusSpec(nx=8, ny=6, noise=0.0)).build()
        noisy = _spec().build()
        # Same tuples either way: census noise draws after synthesis.
        assert _db_fingerprint(clean.db) == _db_fingerprint(noisy.db)
        assert not np.allclose(clean.census.weights, noisy.census.weights)

    def test_with_size(self):
        w = _spec().with_size(50).build()
        assert len(w.db) == 50

    def test_world_contract_for_sessions(self):
        w = _spec().build()
        assert w.db is not None and w.census is not None
        assert w.region.width == 100
        assert w.name == "t"
        assert len(w) == len(w.db)

    def test_build_seed_recorded_in_spec(self):
        w = _spec().build(seed=9)
        assert w.spec.seed == 9
        again = w.spec.build()
        assert _db_fingerprint(again.db) == _db_fingerprint(w.db)

    def test_bad_n_rejected(self):
        with pytest.raises(ValueError):
            _spec(n=0)

    def test_default_spec_builds(self):
        w = WorldSpec(n=64).build()
        assert len(w.db) == 64
        assert w.census is None

    def test_uniform_field_spec(self):
        w = _spec(spatial=UniformField(), census=None).build()
        xs = [t.location.x for t in w.db]
        assert min(xs) >= 0 and max(xs) <= 100


class TestContentHash:
    def test_stable_across_json_round_trip_and_key_order(self):
        spec = _spec()
        h = spec.content_hash()
        assert len(h) == 64 and int(h, 16) >= 0  # hex sha256
        # JSON round trip preserves the hash.
        assert WorldSpec.from_json(spec.to_json()).content_hash() == h
        # So does loading the dict form with scrambled key order.
        data = spec.to_dict()
        scrambled = json.loads(json.dumps(data, sort_keys=True))
        shuffled = dict(reversed(list(scrambled.items())))
        assert WorldSpec.from_dict(shuffled).content_hash() == h

    def test_every_field_change_changes_the_hash(self):
        spec = _spec()
        h = spec.content_hash()
        variants = [
            spec.replace(name="other"),
            spec.replace(n=401),
            spec.replace(seed=6),
            spec.replace(region=RegionSpec(0, 0, 100, 81)),
            spec.replace(spatial=UniformField()),
            spec.replace(census=None),
            spec.replace(census=CensusSpec(nx=8, ny=6, noise=0.25)),
            spec.replace(attrs=AttrSchema(fields=(Constant("category", "bank"),))),
        ]
        hashes = [v.content_hash() for v in variants]
        assert h not in hashes
        assert len(set(hashes)) == len(hashes)  # all distinct from each other

    def test_identical_specs_hash_identically(self):
        assert _spec().content_hash() == _spec().content_hash()

    def test_estimation_spec_exposes_world_hash(self):
        from repro.api import EstimationSpec

        spec = _spec()
        est = EstimationSpec(world=spec)
        assert est.world_content_hash() == spec.content_hash()
        assert EstimationSpec().world_content_hash() is None
