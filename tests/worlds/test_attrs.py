"""Attribute-schema tests: columns, conditions, skews, visibility, serde."""

import numpy as np
import pytest

from repro.worlds import (
    AttrSchema,
    Bernoulli,
    Categorical,
    Constant,
    Indicator,
    Numeric,
    Tag,
    attr_field_from_dict,
    synthesize_tuples,
)


def _sample(schema, n=1000, labels=None, seed=0):
    labels = np.full(n, -1, dtype=np.int64) if labels is None else labels
    return schema.sample_columns(np.random.default_rng(seed), n, labels)


class TestFields:
    def test_constant(self):
        cols, _ = _sample(AttrSchema(fields=(Constant("category", "bank"),)), n=5)
        assert cols["category"] == ["bank"] * 5

    def test_categorical_follows_probs(self):
        f = Categorical("c", ("a", "b"), (0.8, 0.2))
        cols, _ = _sample(AttrSchema(fields=(f,)), n=4000)
        share = cols["c"].count("a") / 4000
        assert 0.76 < share < 0.84

    def test_categorical_uniform_default(self):
        f = Categorical("c", ("a", "b", "c", "d"))
        cols, _ = _sample(AttrSchema(fields=(f,)), n=4000)
        for v in "abcd":
            assert 0.2 < cols["c"].count(v) / 4000 < 0.3

    def test_cluster_skew_tilts_mix_per_cluster(self):
        f = Categorical("c", ("a", "b"), (0.5, 0.5), cluster_skew=0.6)
        labels = np.repeat([0, 1], 3000)
        cols, _ = _sample(AttrSchema(fields=(f,)), n=6000, labels=labels)
        share0 = cols["c"][:3000].count("a") / 3000
        share1 = cols["c"][3000:].count("a") / 3000
        assert abs(share0 - share1) > 0.1  # visibly different mixes

    def test_cluster_skew_leaves_background_mix_alone(self):
        # The diffuse background (label -1) is tilt-neutral: a skewed
        # field over an unclustered population keeps its declared mix.
        f = Categorical("c", ("a", "b"), (0.5, 0.5), cluster_skew=0.6)
        labels = np.full(6000, -1, dtype=np.int64)
        cols, _ = _sample(AttrSchema(fields=(f,)), n=6000, labels=labels)
        assert 0.47 < cols["c"].count("a") / 6000 < 0.53

    def test_numeric_clip_round_int(self):
        schema = AttrSchema(fields=(
            Numeric("rating", "normal", 3.8, 0.7, low=1.0, high=5.0, decimals=1),
            Numeric("count", "lognormal", 3.0, 1.0, offset=1.0, integer=True),
            Numeric("pop", "pareto", 1.5, 2.0),
        ))
        cols, _ = _sample(schema, n=2000)
        ratings = np.array(cols["rating"])
        assert ratings.min() >= 1.0 and ratings.max() <= 5.0
        assert np.allclose(ratings, np.round(ratings, 1))
        counts = cols["count"]
        assert all(isinstance(c, int) and c >= 1 for c in counts)
        pops = np.array(cols["pop"])
        assert pops.min() >= 2.0  # pareto scale floor
        assert pops.max() > 10.0  # heavy tail

    def test_bernoulli_rate(self):
        cols, _ = _sample(AttrSchema(fields=(Bernoulli("f", 0.25),)), n=4000)
        assert all(isinstance(v, bool) for v in cols["f"])
        assert 0.21 < sum(cols["f"]) / 4000 < 0.29

    def test_indicator_mirrors_categorical(self):
        schema = AttrSchema(fields=(
            Categorical("gender", ("m", "f"), (0.7, 0.3)),
            Indicator("is_male", source="gender", value="m"),
        ))
        cols, _ = _sample(schema)
        assert all(
            (g == "m") == bool(i) for g, i in zip(cols["gender"], cols["is_male"])
        )

    def test_conditional_column_only_where_matching(self):
        schema = AttrSchema(fields=(
            Categorical("category", ("restaurant", "school"), (0.5, 0.5)),
            Numeric("enrollment", "lognormal", 6.2, 0.7, offset=20.0,
                    integer=True, when=("category", "school")),
        ))
        rng = np.random.default_rng(0)
        xy = rng.random((500, 2)) * 50
        tuples = synthesize_tuples(rng, xy, np.full(500, -1), schema)
        for t in tuples:
            if t["category"] == "school":
                assert t["enrollment"] >= 20
            else:
                assert "enrollment" not in t.attrs

    def test_unknown_when_column_rejected(self):
        schema = AttrSchema(fields=(
            Numeric("x", when=("missing", "v")),
        ))
        with pytest.raises(ValueError, match="unknown column"):
            _sample(schema, n=10)


class TestSchema:
    def test_visible_rate_drops_rows_with_contiguous_tids(self):
        schema = AttrSchema(fields=(Constant("a", 1),), visible_rate=0.5)
        rng = np.random.default_rng(3)
        xy = rng.random((1000, 2)) * 50
        tuples = synthesize_tuples(rng, xy, np.full(1000, -1), schema)
        assert 380 < len(tuples) < 620
        assert [t.tid for t in tuples] == list(range(len(tuples)))

    def test_tag_uses_tid(self):
        schema = AttrSchema(fields=(Tag("name", prefix="user"),),
                            visible_rate=0.6)
        rng = np.random.default_rng(1)
        xy = rng.random((200, 2)) * 50
        tuples = synthesize_tuples(rng, xy, np.full(200, -1), schema, tid_start=10)
        assert tuples[0].tid == 10
        assert all(t["name"] == f"user{t.tid}" for t in tuples)

    def test_duplicate_column_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            AttrSchema(fields=(Constant("a", 1), Constant("a", 2)))

    def test_visible_rate_zero_means_empty_database(self):
        # Legal degenerate world: everyone exists, nobody is visible
        # (location_enabled_rate=0 sweeps rely on it).
        schema = AttrSchema(fields=(Constant("a", 1),), visible_rate=0.0)
        rng = np.random.default_rng(0)
        xy = rng.random((50, 2))
        assert synthesize_tuples(rng, xy, np.full(50, -1), schema) == []

    def test_bad_rates_rejected(self):
        with pytest.raises(ValueError):
            AttrSchema(visible_rate=-0.1)
        with pytest.raises(ValueError):
            Bernoulli("f", 1.5)
        with pytest.raises(ValueError):
            Numeric("x", dist="cauchy")
        with pytest.raises(ValueError):
            Categorical("c", ())

    def test_serde_round_trip_every_field_kind(self):
        schema = AttrSchema(
            fields=(
                Constant("k", "poi"),
                Categorical("c", ("a", "b"), (0.6, 0.4), cluster_skew=0.2),
                Numeric("v", "pareto", 1.5, 2.0, low=2.0, decimals=2,
                        when=("c", "a")),
                Bernoulli("flag", 0.3),
                Indicator("is_a", source="c", value="a"),
                Tag("name", prefix="u"),
            ),
            visible_rate=0.8,
        )
        rt = AttrSchema.from_dict(schema.to_dict())
        assert rt == schema
        import json

        assert json.loads(json.dumps(schema.to_dict())) == schema.to_dict()

    def test_field_from_dict_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            attr_field_from_dict({"kind": "wat", "name": "x"})
