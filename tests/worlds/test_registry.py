"""Registry-gallery tests: every scenario round-trips and rebuilds
bit-identically (the satellite determinism guarantee).

Large scenarios are exercised at a reduced ``n`` via ``with_size`` —
the generator pipeline (sampling order, column draws, visibility,
census noise) is identical at any size, and the full sizes are swept by
``benchmarks/bench_scaling.py``.
"""

import pytest

from repro import worlds
from repro.worlds import WorldSpec

#: Scenario size used for the determinism builds.
TEST_N = 1500


def _fingerprint(world):
    return (
        sorted((t.tid, t.location.x, t.location.y, tuple(sorted(t.attrs.items())))
               for t in world.db),
        None if world.census is None else world.census.weights.tobytes(),
    )


def test_gallery_is_big_enough():
    assert len(worlds.names()) >= 6


@pytest.mark.parametrize("name", worlds.names())
class TestEveryScenario:
    def test_spec_json_round_trip(self, name):
        spec = worlds.get(name)
        rt = WorldSpec.from_json(spec.to_json())
        assert rt == spec

    def test_two_builds_bit_identical(self, name):
        spec = worlds.get(name).with_size(TEST_N)
        assert _fingerprint(spec.build()) == _fingerprint(spec.build())

    def test_json_round_trip_build_bit_identical(self, name):
        spec = worlds.get(name).with_size(TEST_N)
        rt = WorldSpec.from_json(spec.to_json())
        assert _fingerprint(spec.build()) == _fingerprint(rt.build())

    def test_tuples_in_region_with_contiguous_ids(self, name):
        spec = worlds.get(name).with_size(TEST_N)
        world = spec.build()
        region = world.region
        assert 0 < len(world.db) <= TEST_N
        assert sorted(t.tid for t in world.db) == list(range(len(world.db)))
        for t in world.db:
            assert region.contains(t.location)

    def test_census_declared_census_built(self, name):
        spec = worlds.get(name).with_size(TEST_N)
        world = spec.build()
        assert (world.census is not None) == (spec.census is not None)


class TestRegistryApi:
    def test_get_unknown(self):
        with pytest.raises(ValueError, match="unknown world"):
            worlds.get("nope")

    def test_register_requires_name_and_uniqueness(self):
        with pytest.raises(ValueError):
            worlds.register(WorldSpec(n=10))
        with pytest.raises(ValueError):
            worlds.register(worlds.get("ring-city"))

    def test_build_rescale_reseed(self):
        a = worlds.build("paper/uniform-10k", n=200)
        b = worlds.build("paper/uniform-10k", n=200, seed=9)
        assert len(a.db) == 200
        assert a.db.locations() != b.db.locations()

    def test_visibility_shapes_population(self):
        # wechat-like drops ~10% of generated accounts; tids stay
        # contiguous over the visible subset.
        world = worlds.build("wechat-like-1m", n=4000)
        assert 3400 < len(world.db) < 3800
        males = world.db.ground_truth_avg("is_male")
        assert 0.62 < males < 0.72
