"""Spatial-model tests: containment, labels, densities, serde."""

import numpy as np
import pytest

from repro.geometry import Rect
from repro.worlds import (
    GaussianClusters,
    MixtureField,
    RingRoad,
    UniformField,
    ZipfHotspots,
    spatial_model_from_dict,
)

BOX = Rect(0.0, 0.0, 200.0, 100.0)

MODELS = [
    UniformField(),
    GaussianClusters(centers=((0.3, 0.4), (0.8, 0.7)), sigmas=(0.05, 0.02),
                     weights=(2.0, 1.0), background=0.2),
    ZipfHotspots(n_hotspots=12, sigma_fraction=0.02, layout_seed=3),
    RingRoad(rings=((0.5, 0.5, 0.3),), roads=((0.1, 0.1, 0.9, 0.9),),
             width_fraction=0.02),
    MixtureField(components=(
        (0.6, GaussianClusters(centers=((0.5, 0.5),), sigmas=(0.04,),
                               weights=(1.0,), background=0.0)),
        (0.4, UniformField()),
    )),
]


@pytest.mark.parametrize("model", MODELS, ids=lambda m: m.kind)
class TestEveryModel:
    def test_sample_in_region_with_labels(self, model):
        rng = np.random.default_rng(0)
        xy, labels = model.sample(rng, 500, BOX)
        assert xy.shape == (500, 2)
        assert labels.shape == (500,)
        assert np.all(xy[:, 0] >= BOX.x0) and np.all(xy[:, 0] <= BOX.x1)
        assert np.all(xy[:, 1] >= BOX.y0) and np.all(xy[:, 1] <= BOX.y1)
        assert labels.dtype == np.int64

    def test_sampling_is_deterministic(self, model):
        a = model.sample(np.random.default_rng(7), 300, BOX)
        b = model.sample(np.random.default_rng(7), 300, BOX)
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])

    def test_density_grid_finite_positive(self, model):
        grid = model.density_grid(BOX, 16, 8)
        assert grid.shape == (16, 8)
        assert np.all(np.isfinite(grid))
        assert np.all(grid >= 0.0)
        assert grid.sum() > 0.0

    def test_serde_round_trip(self, model):
        rt = spatial_model_from_dict(model.to_dict())
        assert rt == model
        # And a round-tripped model samples identically.
        a = model.sample(np.random.default_rng(1), 100, BOX)
        b = rt.sample(np.random.default_rng(1), 100, BOX)
        assert np.array_equal(a[0], b[0])


class TestShapes:
    def test_gaussian_clusters_concentrate(self):
        model = GaussianClusters(centers=((0.25, 0.5),), sigmas=(0.02,),
                                 weights=(1.0,), background=0.0)
        xy, labels = model.sample(np.random.default_rng(0), 2000, BOX)
        # Nearly all mass within a few sigmas of the centre.
        d = np.hypot(xy[:, 0] - 50.0, xy[:, 1] - 50.0)
        assert np.median(d) < 5.0
        assert set(np.unique(labels)) == {0}

    def test_background_labelled_minus_one(self):
        model = GaussianClusters(centers=((0.5, 0.5),), sigmas=(0.01,),
                                 weights=(1.0,), background=0.5)
        _xy, labels = model.sample(np.random.default_rng(0), 1000, BOX)
        frac_bg = np.mean(labels == -1)
        assert 0.4 < frac_bg < 0.6

    def test_zipf_layout_is_pure_function_of_seed(self):
        a = ZipfHotspots(n_hotspots=8, layout_seed=5).materialize()
        b = ZipfHotspots(n_hotspots=8, layout_seed=5).materialize()
        c = ZipfHotspots(n_hotspots=8, layout_seed=6).materialize()
        assert a == b
        assert a != c

    def test_zipf_weights_decay(self):
        m = ZipfHotspots(n_hotspots=5, zipf_exponent=1.0).materialize()
        assert list(m.weights) == sorted(m.weights, reverse=True)

    def test_ringroad_census_background_share(self):
        # Regression: the density grid must keep background and skeleton
        # terms in the same (per-cell mass) units — a corner cell far
        # from the skeleton carries ~background/(nx*ny) of the mass, and
        # the raster's background share matches the sampler's.
        model = RingRoad(rings=((0.5, 0.5, 0.25),), roads=(),
                         width_fraction=0.01, background=0.2)
        nx, ny = 20, 10
        grid = model.density_grid(BOX, nx, ny)
        mass = grid / grid.sum()
        corner = mass[0, 0]  # far from the centred ring
        expected = model.background / (nx * ny)
        assert expected / 2 < corner < expected * 2
        _xy, labels = model.sample(np.random.default_rng(0), 4000, BOX)
        assert abs(np.mean(labels == -1) - model.background) < 0.05

    def test_ringroad_mass_on_skeleton(self):
        model = RingRoad(rings=((0.5, 0.5, 0.3),), roads=(),
                         width_fraction=0.01, background=0.0)
        xy, _ = model.sample(np.random.default_rng(0), 1000, BOX)
        r = np.hypot(xy[:, 0] - 100.0, xy[:, 1] - 50.0)
        # Ring radius = 0.3 * min(w, h) = 30, cross-section sigma = 1.
        assert abs(np.median(r) - 30.0) < 1.0
        assert np.percentile(np.abs(r - 30.0), 90) < 3.0

    def test_mixture_component_shares(self):
        model = MixtureField(components=(
            (0.75, UniformField()),
            (0.25, GaussianClusters(centers=((0.5, 0.5),), sigmas=(0.05,),
                                    weights=(1.0,), background=0.0)),
        ))
        _xy, labels = model.sample(np.random.default_rng(0), 2000, BOX)
        # The uniform component is diffuse background: its rows keep the
        # -1 label through the mixture (so attr skews never tilt them);
        # the cluster component keeps its index.
        assert 0.68 < np.mean(labels == -1) < 0.82
        assert set(np.unique(labels)) == {-1, 1}

    def test_far_outside_cluster_clamps_not_hangs(self):
        model = GaussianClusters(centers=((5.0, 5.0),), sigmas=(0.001,),
                                 weights=(1.0,), background=0.0)
        xy, _ = model.sample(np.random.default_rng(0), 50, BOX)
        assert np.all(xy[:, 0] <= BOX.x1) and np.all(xy[:, 1] <= BOX.y1)


class TestValidation:
    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            GaussianClusters(centers=(), sigmas=(), weights=())
        with pytest.raises(ValueError):
            GaussianClusters(centers=((0.5, 0.5),), sigmas=(0.0,), weights=(1.0,))
        with pytest.raises(ValueError):
            ZipfHotspots(n_hotspots=0)
        with pytest.raises(ValueError):
            RingRoad(rings=(), roads=())
        with pytest.raises(ValueError, match="positive length"):
            RingRoad(rings=(), roads=((0.5, 0.5, 0.5, 0.5),))
        with pytest.raises(ValueError):
            MixtureField(components=())
        with pytest.raises(ValueError):
            spatial_model_from_dict({"kind": "nope"})
