"""End-to-end tests for LR-LBS-AGG and the NNO baseline."""

import numpy as np
import pytest

from repro.core import AggregateQuery, LrLbsAgg, LrLbsNno, NnoConfig
from repro.core.config import LrAggConfig
from repro.lbs import LnrLbsInterface, LrLbsInterface, QueryBudget
from repro.sampling import UniformSampler


def run_lr(db, box, query, config=None, seed=0, n_samples=80, k=3):
    api = LrLbsInterface(db, k=k)
    agg = LrLbsAgg(api, UniformSampler(box), query, config or LrAggConfig(), seed=seed)
    return agg.run(n_samples=n_samples)


class TestLrAggCount:
    def test_count_star_close(self, small_db, box):
        res = run_lr(small_db, box, AggregateQuery.count(), seed=1, n_samples=120)
        assert res.estimate == pytest.approx(len(small_db), rel=0.35)

    def test_count_unbiased_across_runs(self, small_db, box):
        """Mean over several independent runs converges to the truth."""
        estimates = [
            run_lr(small_db, box, AggregateQuery.count(), seed=s, n_samples=50).estimate
            for s in range(8)
        ]
        assert float(np.mean(estimates)) == pytest.approx(len(small_db), rel=0.2)

    def test_count_with_condition(self, small_db, box):
        query = AggregateQuery.count(lambda a, _l: a.get("category") == "school")
        truth = small_db.ground_truth_count(lambda t: t["category"] == "school")
        estimates = [
            run_lr(small_db, box, query, seed=s, n_samples=60).estimate for s in range(6)
        ]
        assert float(np.mean(estimates)) == pytest.approx(truth, rel=0.3)

    def test_sum(self, small_db, box):
        query = AggregateQuery.sum("value")
        truth = small_db.ground_truth_sum("value")
        estimates = [
            run_lr(small_db, box, query, seed=s, n_samples=60).estimate for s in range(6)
        ]
        assert float(np.mean(estimates)) == pytest.approx(truth, rel=0.3)

    def test_avg_ratio(self, small_db, box):
        query = AggregateQuery.avg("value")
        truth = small_db.ground_truth_avg("value")
        res = run_lr(small_db, box, query, seed=3, n_samples=100)
        # Ratio estimates converge much faster than their components.
        assert res.estimate == pytest.approx(truth, rel=0.25)

    def test_pass_through_filtering(self, small_db, box):
        api = LrLbsInterface(small_db, k=3)
        schools = api.filtered(lambda t: t["category"] == "school")
        agg = LrLbsAgg(schools, UniformSampler(box), AggregateQuery.count(),
                       LrAggConfig(), seed=2)
        res = agg.run(n_samples=60)
        truth = small_db.ground_truth_count(lambda t: t["category"] == "school")
        assert res.estimate == pytest.approx(truth, rel=0.4)


class TestLrAggMechanics:
    def test_requires_location_interface(self, small_db, box):
        api = LnrLbsInterface(small_db, k=3)
        with pytest.raises(ValueError):
            LrLbsAgg(api, UniformSampler(box), AggregateQuery.count())

    def test_run_requires_some_limit(self, small_db, box):
        api = LrLbsInterface(small_db, k=3)
        agg = LrLbsAgg(api, UniformSampler(box), AggregateQuery.count())
        with pytest.raises(ValueError):
            agg.run()

    def test_trace_monotone(self, small_db, box):
        res = run_lr(small_db, box, AggregateQuery.count(), seed=0, n_samples=30)
        costs = [pt.queries for pt in res.trace]
        assert costs == sorted(costs)
        assert res.samples == 30

    def test_budget_stops_cleanly(self, small_db, box):
        api = LrLbsInterface(small_db, k=3, budget=QueryBudget(40))
        agg = LrLbsAgg(api, UniformSampler(box), AggregateQuery.count(), seed=0)
        res = agg.run(n_samples=10_000)
        assert res.queries <= 40

    def test_max_queries_respected_approximately(self, small_db, box):
        api = LrLbsInterface(small_db, k=3)
        agg = LrLbsAgg(api, UniformSampler(box), AggregateQuery.count(), seed=0)
        res = agg.run(max_queries=100)
        # One in-flight sample may overshoot, but not by more than a cell.
        assert res.queries < 400

    def test_adaptive_variant_runs(self, small_db, box):
        res = run_lr(
            small_db, box, AggregateQuery.count(),
            LrAggConfig(adaptive_h=True), seed=1, n_samples=25, k=3,
        )
        assert res.samples == 25
        assert res.estimate > 0

    def test_every_ladder_variant_estimates(self, small_db, box):
        for name, config in LrAggConfig.ladder().items():
            res = run_lr(small_db, box, AggregateQuery.count(), config, seed=4, n_samples=15)
            assert res.samples == 15, name
            assert np.isfinite(res.estimate), name


class TestMaxRadiusEstimation:
    def test_count_with_service_radius(self, small_db, box):
        api = LrLbsInterface(small_db, k=3, max_radius=15.0)
        agg = LrLbsAgg(api, UniformSampler(box), AggregateQuery.count(),
                       LrAggConfig(), seed=5)
        estimates = []
        for s in range(6):
            api = LrLbsInterface(small_db, k=3, max_radius=15.0)
            agg = LrLbsAgg(api, UniformSampler(box), AggregateQuery.count(),
                           LrAggConfig(), seed=s)
            estimates.append(agg.run(n_samples=60).estimate)
        assert float(np.mean(estimates)) == pytest.approx(len(small_db), rel=0.3)


class TestNnoBaseline:
    def test_produces_estimate(self, small_db, box):
        api = LrLbsInterface(small_db, k=3)
        nno = LrLbsNno(api, UniformSampler(box), AggregateQuery.count(), seed=0)
        res = nno.run(n_samples=40)
        assert res.samples == 40
        assert res.estimate > 0

    def test_more_queries_per_sample_than_agg(self, small_db, box):
        api1 = LrLbsInterface(small_db, k=3)
        nno = LrLbsNno(api1, UniformSampler(box), AggregateQuery.count(), seed=0)
        nno_res = nno.run(n_samples=30)
        agg_res = run_lr(small_db, box, AggregateQuery.count(), seed=0, n_samples=30)
        # NNO spends a fixed probe budget per sample; AGG amortizes via
        # history, so over 30 samples it must be cheaper.
        assert agg_res.queries < nno_res.queries

    def test_requires_location(self, small_db, box):
        api = LnrLbsInterface(small_db, k=3)
        with pytest.raises(ValueError):
            LrLbsNno(api, UniformSampler(box), AggregateQuery.count())

    def test_config_probe_budget(self, small_db, box):
        api = LrLbsInterface(small_db, k=3)
        nno = LrLbsNno(api, UniformSampler(box), AggregateQuery.count(),
                       NnoConfig(area_probes=5, boundary_probes=3), seed=0)
        res = nno.run(n_samples=10)
        assert res.queries >= 10 * (1 + 5)  # query + area probes at least
