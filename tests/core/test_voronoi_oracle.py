"""The Theorem-1 cell oracle must reproduce ground-truth cells exactly."""

import numpy as np
import pytest

from repro.core import ObservationHistory, TopHCellOracle
from repro.core.config import LrAggConfig
from repro.geometry import polygon_disk_area, true_topk_cell, true_voronoi_cell
from repro.lbs import LrLbsInterface, QueryBudget, BudgetExhausted
from repro.sampling import UniformSampler


def make_oracle(db, box, config=None, k=5, seed=0, max_radius=None):
    api = LrLbsInterface(db, k=k, max_radius=max_radius)
    hist = ObservationHistory(api, enabled=(config or LrAggConfig()).use_history)
    sampler = UniformSampler(box)
    oracle = TopHCellOracle(
        hist, sampler, config or LrAggConfig(use_mc_bounds=False), np.random.default_rng(seed)
    )
    return api, hist, oracle


class TestExactTop1:
    def test_matches_ground_truth(self, small_db, box):
        api, hist, oracle = make_oracle(small_db, box)
        locs = small_db.locations()
        for tid in list(locs)[:15]:
            out = oracle.compute(tid, locs[tid], h=1, init_radius=8.0)
            others = [p for i, p in locs.items() if i != tid]
            truth = true_voronoi_cell(locs[tid], others, box)
            assert out.exact
            assert out.measure * box.area == pytest.approx(truth.area(), rel=1e-6)

    def test_all_config_variants_exact(self, small_db, box):
        locs = small_db.locations()
        for name, config in LrAggConfig.ladder().items():
            api, hist, oracle = make_oracle(small_db, box, config)
            tid = 7
            out = oracle.compute(tid, locs[tid], h=1, init_radius=8.0)
            others = [p for i, p in locs.items() if i != tid]
            truth = true_voronoi_cell(locs[tid], others, box)
            if out.exact:
                assert out.measure * box.area == pytest.approx(truth.area(), rel=1e-6), name

    def test_history_reduces_cost(self, small_db, box):
        locs = small_db.locations()
        # Without history: every cell starts cold.
        api1, _h1, oracle1 = make_oracle(
            small_db, box, LrAggConfig(use_history=False, use_mc_bounds=False)
        )
        for tid in list(locs)[:8]:
            oracle1.compute(tid, locs[tid], h=1, init_radius=8.0)
        cold = api1.queries_used
        # With history: later cells reuse earlier discoveries.
        api2, _h2, oracle2 = make_oracle(
            small_db, box, LrAggConfig(use_history=True, use_mc_bounds=False)
        )
        for tid in list(locs)[:8]:
            oracle2.compute(tid, locs[tid], h=1, init_radius=8.0)
        warm = api2.queries_used
        assert warm < cold

    def test_h_exceeding_k_rejected(self, small_db, box):
        api, hist, oracle = make_oracle(small_db, box, k=3)
        t = small_db.get(0)
        with pytest.raises(ValueError):
            oracle.compute(0, t.location, h=4)


class TestExactTopH:
    @pytest.mark.parametrize("h", [2, 3])
    def test_matches_ground_truth(self, small_db, box, h):
        api, hist, oracle = make_oracle(small_db, box)
        locs = small_db.locations()
        for tid in list(locs)[:6]:
            out = oracle.compute(tid, locs[tid], h=h, init_radius=8.0)
            others = [p for i, p in locs.items() if i != tid]
            truth = true_topk_cell(locs[tid], others, h, box)
            assert out.exact
            assert out.measure * box.area == pytest.approx(truth.area(), rel=1e-6)


class TestMonteCarloFinish:
    def test_mc_unbiased_statistically(self, small_db, box):
        """Average MC inv-prob over repeats ≈ exact 1/p."""
        locs = small_db.locations()
        tid = 4
        others = [p for i, p in locs.items() if i != tid]
        truth_area = true_voronoi_cell(locs[tid], others, box).area()
        true_inv = box.area / truth_area

        estimates = []
        for seed in range(40):
            api, hist, oracle = make_oracle(
                small_db, box,
                LrAggConfig(use_mc_bounds=True, mc_tightness=0.5), seed=seed,
            )
            out = oracle.compute(tid, locs[tid], h=1, init_radius=8.0)
            estimates.append(out.inv_prob)
        mean = float(np.mean(estimates))
        # Loose tolerance: geometric trials are noisy at this sample size.
        assert mean == pytest.approx(true_inv, rel=0.35)


class TestMaxRadius:
    def test_cell_clipped_by_service_disk(self, small_db, box):
        locs = small_db.locations()
        tid = 2
        radius = 3.0
        api, hist, oracle = make_oracle(small_db, box, max_radius=radius)
        out = oracle.compute(tid, locs[tid], h=1, init_radius=4.0)
        others = [p for i, p in locs.items() if i != tid]
        truth = true_voronoi_cell(locs[tid], others, box)
        clipped = polygon_disk_area(truth.vertices, locs[tid], radius)
        # Inscribed 256-gon approximation: within 0.1 % of the exact clip.
        assert out.measure * box.area == pytest.approx(clipped, rel=1e-3)


class TestBudget:
    def test_budget_exhaustion_propagates(self, small_db, box):
        api = LrLbsInterface(small_db, k=3, budget=QueryBudget(5))
        hist = ObservationHistory(api)
        oracle = TopHCellOracle(
            hist, UniformSampler(box), LrAggConfig(), np.random.default_rng(0)
        )
        with pytest.raises(BudgetExhausted):
            for tid in range(10):
                tt = small_db.get(tid)
                oracle.compute(tid, tt.location, h=1, init_radius=2.0)
