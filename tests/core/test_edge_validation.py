"""Focused tests for the two-point edge validation (DESIGN.md §5).

These use pure geometric predicates (no LBS in the loop) so the failure
mode — corner chords masquerading as edges — can be staged precisely.
"""

import math

import pytest

from repro.core.edge_search import _line_validates, estimate_boundary_line
from repro.geometry import Point, Rect, normalize

BOX = Rect(-100, -100, 100, 100)


def halfplane_pred(a, b, c):
    """Inside = {p : a x + b y < c}."""
    return lambda p: a * p.x + b * p.y < c


class TestLineValidates:
    def test_true_edge_passes(self):
        pred = halfplane_pred(0, 1, 5)  # inside: y < 5
        ok = _line_validates(
            pred, Point(0, 5), Point(1, 0), inside_hint=Point(0, 4.99),
            delta=1e-4, separation=1.0, rect=BOX,
        )
        assert ok

    def test_tilted_chord_fails(self):
        pred = halfplane_pred(0, 1, 5)
        # A 30-degree wrong direction through a boundary point.
        bad_dir = normalize(Point(math.cos(0.5), math.sin(0.5)))
        ok = _line_validates(
            pred, Point(0, 5), bad_dir, inside_hint=Point(0, 4.99),
            delta=1e-4, separation=2.0, rect=BOX,
        )
        assert not ok

    def test_corner_chord_fails(self):
        # Inside = quadrant; chord from (1, 0.5) to (0.5, 1) cuts the corner.
        def pred(p):
            return p.x < 1.0 and p.y < 1.0
        start = Point(1.0, 0.5)
        direction = normalize(Point(0.5, 1.0) - start)
        ok = _line_validates(
            pred, start, direction, inside_hint=Point(0.99, 0.5),
            delta=1e-3, separation=math.hypot(0.5, 0.5), rect=BOX,
        )
        assert not ok


class TestEstimateAgainstSyntheticCells:
    def test_oblique_edge_precise(self):
        """A steeply oblique edge — the case the perpendicular fallback
        would get badly wrong — must come out two-point and accurate."""
        pred = halfplane_pred(1, 3, 4)
        est = estimate_boundary_line(
            pred, Point(0, 0), Point(20, 0), delta=1e-6, delta_prime=0.02, rect=BOX
        )
        assert est is not None and est.two_point
        # est.direction must be orthogonal to the normal (1, 3).
        n = math.hypot(1, 3)
        assert abs(est.direction.x * 1 + est.direction.y * 3) / n < 1e-2

    def test_all_cardinal_walks_find_square(self):
        """Walking out of a square in all four directions recovers all
        four of its edges."""
        def pred(p):
            return abs(p.x) < 3 and abs(p.y) < 3
        found = []
        for d in (Point(1, 0), Point(-1, 0), Point(0, 1), Point(0, -1)):
            far = Point(d.x * 50, d.y * 50)
            est = estimate_boundary_line(
                pred, Point(0, 0), far, delta=1e-5, delta_prime=0.05, rect=BOX
            )
            assert est is not None
            found.append(est)
        # Each recovered line sits at distance ~3 from the origin.
        for est in found:
            assert max(abs(est.point.x), abs(est.point.y)) == pytest.approx(3.0, abs=1e-3)
