"""Lower-bound soundness (§3.2.4) and adaptive-h selection (§3.2.3)."""

import numpy as np

from repro.core import AdaptiveHSelector, LowerBoundTester, ObservationHistory, TopHCellOracle
from repro.core.config import LrAggConfig
from repro.geometry import Point
from repro.index import BruteForceIndex
from repro.lbs import LrLbsInterface
from repro.sampling import UniformSampler


class TestLowerBoundSoundness:
    def test_never_claims_outside_point(self, small_db, box):
        """certainly_inside must imply true top-h membership — always."""
        api = LrLbsInterface(small_db, k=4)
        hist = ObservationHistory(api)
        rng = np.random.default_rng(0)
        # Seed history with real answers.
        for _ in range(60):
            hist.query(box.sample(rng))
        index = BruteForceIndex(
            [(t.location.x, t.location.y, t.tid) for t in small_db]
        )
        for h in (1, 2):
            for tid in list(small_db.locations())[:10]:
                t_loc = small_db.get(tid).location
                tester = LowerBoundTester(hist, tid, t_loc, h)
                claims = 0
                for _ in range(120):
                    x = box.sample(rng)
                    if tester.certainly_inside(x):
                        claims += 1
                        topk = [i for _, i in index.knn(x.x, x.y, h)]
                        assert tid in topk, (tid, h, x)
        # (claims may be zero for sparsely-covered tuples: soundness only)

    def test_trivial_inside_at_tuple(self, small_db, box):
        api = LrLbsInterface(small_db, k=4)
        hist = ObservationHistory(api)
        t = small_db.get(0)
        tester = LowerBoundTester(hist, 0, t.location, 1)
        assert tester.certainly_inside(t.location)

    def test_claims_do_happen_with_rich_history(self, small_db, box):
        """With dense coverage the lower bound should fire sometimes
        (otherwise the optimization is dead code)."""
        api = LrLbsInterface(small_db, k=4)
        hist = ObservationHistory(api)
        rng = np.random.default_rng(1)
        for _ in range(300):
            hist.query(box.sample(rng))
        fired = 0
        for tid in list(small_db.locations())[:20]:
            t_loc = small_db.get(tid).location
            tester = LowerBoundTester(hist, tid, t_loc, 1)
            for _ in range(40):
                # Points near the tuple are most likely certifiable.
                x = Point(
                    t_loc.x + rng.normal(0, 1.0), t_loc.y + rng.normal(0, 1.0)
                )
                if box.contains(x) and tester.certainly_inside(x):
                    fired += 1
        assert fired > 0


class TestAdaptiveH:
    def _selector(self, db, box, k=5, lambda0=None):
        api = LrLbsInterface(db, k=k)
        config = LrAggConfig(adaptive_h=True, lambda0=lambda0)
        hist = ObservationHistory(api)
        oracle = TopHCellOracle(hist, UniformSampler(box), config, np.random.default_rng(0))
        return api, hist, AdaptiveHSelector(oracle, k, config)

    def test_lambdas_monotone_in_h(self, small_db, box):
        api, hist, selector = self._selector(small_db, box)
        rng = np.random.default_rng(0)
        for _ in range(30):
            hist.query(box.sample(rng))
        t = small_db.get(5)
        lambdas = selector.history_lambdas(t.location)
        values = [lambdas[h] for h in sorted(lambdas)]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    def test_h_one_without_observations(self, small_db, box):
        api, hist, selector = self._selector(small_db, box)
        assert selector.choose(small_db.get(0).location) == 1

    def test_huge_lambda0_picks_max_h(self, small_db, box):
        api, hist, selector = self._selector(small_db, box, lambda0=1e9)
        rng = np.random.default_rng(0)
        for _ in range(10):
            hist.query(box.sample(rng))
        assert selector.choose(small_db.get(0).location) == 5

    def test_tiny_lambda0_picks_one(self, small_db, box):
        api, hist, selector = self._selector(small_db, box, lambda0=1e-12)
        rng = np.random.default_rng(0)
        for _ in range(10):
            hist.query(box.sample(rng))
        assert selector.choose(small_db.get(0).location) == 1

    def test_adaptive_off_returns_config_h(self, small_db, box):
        api = LrLbsInterface(small_db, k=5)
        config = LrAggConfig(h=3, adaptive_h=False)
        hist = ObservationHistory(api)
        oracle = TopHCellOracle(hist, UniformSampler(box), config, np.random.default_rng(0))
        selector = AdaptiveHSelector(oracle, 5, config)
        assert selector.choose(small_db.get(0).location) == 3
