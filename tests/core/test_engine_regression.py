"""Estimator regression tests for the batched query engine.

Seed-pinned smoke tests assert that LR-COUNT and LNR-COUNT stay inside
the pre-refactor tolerance bands on tiny synthetic databases, that
batched runs (`run(..., batch_size=N)`) keep the estimators unbiased,
and that batching never changes what a sample *means* — only how its
queries reach the service.
"""

import numpy as np
import pytest

from repro.core import (
    AggregateQuery,
    LnrLbsAgg,
    LrAggConfig,
    LrLbsAgg,
    QueryEngineConfig,
)
from repro.geometry import Point, Rect
from repro.lbs import LbsTuple, LnrLbsInterface, LrLbsInterface, SpatialDatabase
from repro.sampling import UniformSampler

BOX = Rect(0.0, 0.0, 100.0, 100.0)


def make_db(n, seed=3):
    rng = np.random.default_rng(seed)
    return SpatialDatabase(
        [
            LbsTuple(i, Point(rng.random() * 100.0, rng.random() * 100.0),
                     {"v": float(i % 7)})
            for i in range(n)
        ],
        BOX,
    )


class TestLrCountBands:
    """LR-COUNT, 60 tuples: the seed run landed ~0.05 off truth; hold a
    0.25 relative band so only a genuine engine regression can break it."""

    def _run(self, batch_size, seed=0, backend="auto"):
        db = make_db(60)
        api = LrLbsInterface(db, k=5, engine=QueryEngineConfig(index_backend=backend))
        agg = LrLbsAgg(api, UniformSampler(BOX), AggregateQuery.count(), seed=seed)
        return agg.run(n_samples=60, batch_size=batch_size)

    def test_sequential_band(self):
        res = self._run(batch_size=1)
        assert res.samples == 60
        assert res.estimate == pytest.approx(60, rel=0.25)

    @pytest.mark.parametrize("batch_size", [8, 32])
    def test_batched_band(self, batch_size):
        res = self._run(batch_size=batch_size)
        assert res.samples == 60
        assert res.estimate == pytest.approx(60, rel=0.25)

    @pytest.mark.parametrize("backend", ["kdtree", "grid", "brute"])
    def test_backend_invariance(self, backend):
        # The index backend is an implementation detail: identical
        # answers, identical estimate.
        ref = self._run(batch_size=8, backend="kdtree").estimate
        assert self._run(batch_size=8, backend=backend).estimate == ref

    def test_mean_over_seeds_unbiased(self):
        estimates = [self._run(batch_size=16, seed=s).estimate for s in range(4)]
        assert float(np.mean(estimates)) == pytest.approx(60, rel=0.15)

    def test_batched_matches_sequential_exactly(self):
        # The lazy-reveal prefetch keeps a batched run's knowledge at
        # every sample identical to the unbatched run's, and the oracle
        # runs on its own RNG stream — so batching changes *nothing*
        # observable but the timing of query spending.
        seq = self._run(batch_size=1)
        bat = self._run(batch_size=32)
        assert bat.estimate == seq.estimate
        assert bat.samples == seq.samples
        assert bat.queries == seq.queries

    def test_adaptive_h_batches_bit_identically(self):
        # Adaptive h may only see *past* answers; the lazy-reveal split
        # keeps prefetched answers unrevealed until their sample runs,
        # so batched adaptive-h runs reproduce the sequential run
        # exactly instead of degrading to batch_size=1.
        db = make_db(60)
        config = LrAggConfig(adaptive_h=True)

        def run(bs):
            api = LrLbsInterface(db, k=5)
            agg = LrLbsAgg(api, UniformSampler(BOX), AggregateQuery.count(),
                           config=config, seed=2)
            return agg.run(n_samples=30, batch_size=bs)

        seq = run(1)
        bat = run(16)
        assert bat.estimate == seq.estimate
        assert bat.queries == seq.queries

    @pytest.mark.parametrize("cache_size", [0, 4, 65536])
    def test_batched_matches_sequential_whatever_the_cache(self, cache_size):
        # The lazy-reveal staging must not depend on the interface's
        # LRU cache: sample-bound batched runs reproduce sequential
        # ones even with the cache disabled or tiny.
        db = make_db(60)

        def run(bs):
            api = LrLbsInterface(
                db, k=5, engine=QueryEngineConfig(cache_size=cache_size)
            )
            agg = LrLbsAgg(api, UniformSampler(BOX), AggregateQuery.count(), seed=1)
            return agg.run(n_samples=10, batch_size=bs)

        seq, bat = run(1), run(8)
        assert bat.estimate == seq.estimate
        assert bat.queries == seq.queries

    def test_history_off_still_degrades_to_sequential(self):
        # The ablation variants retain nothing between samples; batch
        # prefetch stays disabled so their cost accounting is untouched.
        db = make_db(60)
        api = LrLbsInterface(db, k=5)
        agg = LrLbsAgg(api, UniformSampler(BOX), AggregateQuery.count(),
                       config=LrAggConfig(use_history=False), seed=2)
        assert agg._effective_batch_size(16) == 1


class TestLnrCountBands:
    """LNR-COUNT, 12 tuples (LNR cells are query-hungry): 0.3 band."""

    def _run(self, batch_size, seed=1):
        db = make_db(12, seed=9)
        api = LnrLbsInterface(db, k=4)
        agg = LnrLbsAgg(api, UniformSampler(BOX), AggregateQuery.count(), seed=seed)
        return agg.run(n_samples=25, batch_size=batch_size)

    def test_sequential_band(self):
        res = self._run(batch_size=1)
        assert res.samples == 25
        assert res.estimate == pytest.approx(12, rel=0.3)

    def test_batched_matches_sequential_exactly(self):
        # LNR consumes randomness only for sample points, and the uniform
        # sampler's batch draw replays the single-draw stream — so the
        # batched run must reproduce the sequential run bit for bit.
        seq = self._run(batch_size=1)
        bat = self._run(batch_size=8)
        assert bat.estimate == seq.estimate
        assert bat.samples == seq.samples
        assert bat.queries == seq.queries

    def test_band_across_seeds(self):
        estimates = [self._run(batch_size=8, seed=s).estimate for s in range(3)]
        assert float(np.mean(estimates)) == pytest.approx(12, rel=0.25)


class TestRunArgumentValidation:
    def test_bad_batch_size_rejected(self):
        db = make_db(20)
        api = LrLbsInterface(db, k=3)
        agg = LrLbsAgg(api, UniformSampler(BOX), AggregateQuery.count(), seed=0)
        with pytest.raises(ValueError):
            agg.run(n_samples=5, batch_size=0)

    def test_sample_batch_stays_in_region(self):
        sampler = UniformSampler(BOX)
        rng = np.random.default_rng(0)
        pts = sampler.sample_batch(rng, 100)
        assert len(pts) == 100
        assert all(BOX.contains(p) for p in pts)

    def test_uniform_sample_batch_replays_single_stream(self):
        sampler = UniformSampler(BOX)
        batch = sampler.sample_batch(np.random.default_rng(7), 20)
        rng = np.random.default_rng(7)
        singles = [sampler.sample(rng) for _ in range(20)]
        assert batch == singles

    def test_census_sample_batch_replays_single_stream(self):
        # The bit-identity guarantee covers census-weighted runs too:
        # the weighted batch draw must consume the stream exactly like
        # single draws.
        from repro.datasets import PopulationGrid
        from repro.sampling import GridWeightedSampler

        weights = np.arange(1.0, 13.0).reshape(4, 3)
        sampler = GridWeightedSampler(PopulationGrid(BOX, weights))
        batch = sampler.sample_batch(np.random.default_rng(7), 20)
        rng = np.random.default_rng(7)
        singles = [sampler.sample(rng) for _ in range(20)]
        assert batch == singles

    def test_census_batched_run_matches_sequential(self):
        # End to end: a census-weighted sample-bound batched run is
        # bit-identical to its sequential twin.
        from repro.datasets import PopulationGrid
        from repro.sampling import GridWeightedSampler

        db = make_db(60)
        weights = 1.0 + np.random.default_rng(5).random((6, 5))
        sampler = GridWeightedSampler(PopulationGrid(BOX, weights))

        def run(bs):
            api = LrLbsInterface(db, k=5)
            agg = LrLbsAgg(api, sampler, AggregateQuery.count(), seed=3)
            return agg.run(n_samples=12, batch_size=bs)

        seq, bat = run(1), run(8)
        assert bat.estimate == seq.estimate
        assert bat.queries == seq.queries
