"""Tests for aggregate specs and the observation history."""

import pytest

from repro.core import AggregateKind, AggregateQuery, DiskLedger, ObservationHistory
from repro.geometry import Disk, Point
from repro.lbs import LrLbsInterface, LnrLbsInterface


class TestAggregateQuery:
    def test_count_numerator(self):
        q = AggregateQuery.count()
        assert q.numerator({"a": 1}, None) == 1.0
        assert q.denominator({"a": 1}, None) == 1.0

    def test_count_with_condition(self):
        q = AggregateQuery.count(lambda attrs, _loc: attrs.get("x") == 1)
        assert q.numerator({"x": 1}, None) == 1.0
        assert q.numerator({"x": 2}, None) == 0.0

    def test_sum(self):
        q = AggregateQuery.sum("v")
        assert q.numerator({"v": 7}, None) == 7.0
        assert q.numerator({}, None) == 0.0  # missing attr

    def test_sum_requires_attr(self):
        with pytest.raises(ValueError):
            AggregateQuery(AggregateKind.SUM)

    def test_avg_is_ratio(self):
        q = AggregateQuery.avg("v")
        assert q.is_ratio
        assert q.numerator({"v": 4}, None) == 4.0
        assert q.denominator({"v": 4}, None) == 1.0
        assert q.denominator({}, None) == 0.0  # missing excluded from AVG

    def test_location_condition(self):
        q = AggregateQuery.count(
            lambda _a, loc: loc is not None and loc.x < 50, needs_location=True
        )
        assert q.numerator({}, Point(10, 0)) == 1.0
        assert q.numerator({}, Point(90, 0)) == 0.0
        assert q.numerator({}, None) == 0.0


class TestDiskLedger:
    def test_add_and_near(self):
        ledger = DiskLedger(cell_size=10.0)
        ledger.add(Disk(Point(5, 5), 2.0))
        ledger.add(Disk(Point(95, 95), 1.0))
        near = ledger.near(Point(6, 6), 3.0)
        assert len(near) == 1
        assert near[0].center == Point(5, 5)

    def test_zero_radius_ignored(self):
        ledger = DiskLedger(cell_size=10.0)
        ledger.add(Disk(Point(0, 0), 0.0))
        assert ledger.count == 0

    def test_invalid_cell_size(self):
        with pytest.raises(ValueError):
            DiskLedger(cell_size=0.0)

    def test_near_uses_max_radius(self):
        ledger = DiskLedger(cell_size=5.0)
        ledger.add(Disk(Point(0, 0), 40.0))  # huge disk far away
        assert len(ledger.near(Point(30, 0), 1.0)) == 1


class TestObservationHistory:
    def test_cache_hits_do_not_spend_budget(self, small_db):
        api = LrLbsInterface(small_db, k=3)
        hist = ObservationHistory(api)
        p = Point(10, 10)
        a1 = hist.query(p)
        a2 = hist.query(p)
        assert a1 is a2
        assert api.queries_used == 1

    def test_locations_recorded_lr(self, small_db):
        api = LrLbsInterface(small_db, k=3)
        hist = ObservationHistory(api)
        ans = hist.query(Point(50, 50))
        for r in ans:
            assert hist.locations[r.tid] == r.location

    def test_no_locations_recorded_lnr(self, small_db):
        api = LnrLbsInterface(small_db, k=3)
        hist = ObservationHistory(api)
        hist.query(Point(50, 50))
        assert not hist.locations

    def test_snapped_neighbour_point_cached_under_queried_key(self, small_db):
        # The interface's snapped cache can serve a point an answer
        # computed for a *different* exact location; the history must
        # cache it under the queried key too, or every repeat would
        # re-record the answer and pile up duplicate known-disks.
        from repro.lbs import QueryEngineConfig

        api = LrLbsInterface(
            small_db, k=3, engine=QueryEngineConfig(snap_resolution=1.0)
        )
        hist = ObservationHistory(api)
        p1, p2 = Point(10.0, 10.0), Point(10.2, 10.1)  # same snapped cell
        a1 = hist.query(p1)
        a2 = hist.query(p2)
        assert a2 is a1  # served from the snapped interface cache
        disks_before = hist.disks.count
        hist.query(p2)  # repeat must hit the history cache...
        hist.query(p2)
        assert hist.disks.count == disks_before  # ...not re-record

    def test_prefetch_stages_without_revealing(self, small_db):
        hist = ObservationHistory(LrLbsInterface(small_db, k=3))
        pts = [Point(10, 10), Point(60, 60)]
        hist.prefetch(pts)
        assert not hist.locations and hist.disks.count == 0  # nothing revealed
        assert hist.queries_used == 2  # but fully paid for
        hist.query(pts[0])
        assert hist.locations and hist.disks.count == 1  # revealed on use
        assert hist.queries_used == 2  # for free

    def test_prefetch_exhaustion_stages_sequential_prefix(self, small_db):
        # Mid-batch exhaustion must pay for — and keep — exactly the
        # prefix a sequential loop would have afforded, even with the
        # interface answer cache disabled (staging does not rely on it).
        from repro.lbs import BudgetExhausted, QueryBudget, QueryEngineConfig

        api = LrLbsInterface(small_db, k=3, budget=QueryBudget(2),
                             engine=QueryEngineConfig(cache_size=0))
        hist = ObservationHistory(api)
        pts = [Point(10, 10), Point(60, 60), Point(30, 80)]
        with pytest.raises(BudgetExhausted):
            hist.prefetch(pts)
        assert api.queries_used == 2
        # The paid prefix is staged: revealing it costs nothing.
        hist.query(pts[0])
        hist.query(pts[1])
        assert api.queries_used == 2
        with pytest.raises(BudgetExhausted):
            hist.query(pts[2])

    def test_query_batch_reveals_staged_snapped_point_once(self, small_db):
        # Revealing a staged answer through query_batch must behave like
        # query(): cached under the requested key, recorded exactly once
        # — even when the staged answer carries a snapped neighbour's
        # query point.
        from repro.lbs import QueryEngineConfig

        api = LrLbsInterface(
            small_db, k=3, engine=QueryEngineConfig(snap_resolution=1.0)
        )
        hist = ObservationHistory(api)
        hist.query(Point(10.0, 10.0))
        hist.prefetch([Point(10.2, 10.1)])  # snapped hit: staged, free
        hist.query_batch([Point(10.2, 10.1), Point(10.2, 10.1)])
        after_reveal = hist.disks.count  # reveal records (at most) once
        hist.query_batch([Point(10.2, 10.1)])
        hist.query_batch([Point(10.2, 10.1)])
        assert hist.disks.count == after_reveal  # repeats never re-record
        assert api.queries_used == 1  # and never re-pay

    def test_staged_snapped_answer_survives_state_round_trip(self, small_db):
        # Staged answers are keyed by the *requested* point; the state
        # round trip must preserve that key even when it differs from
        # the answer's own query point.
        from repro.lbs import QueryEngineConfig

        def make():
            api = LrLbsInterface(
                small_db, k=3, engine=QueryEngineConfig(snap_resolution=1.0)
            )
            return ObservationHistory(api)

        hist = make()
        hist.query(Point(10.0, 10.0))
        hist.prefetch([Point(10.2, 10.1)])
        state = hist.state_dict()
        restored = make()
        restored.load_state_dict(state)
        assert set(restored._staged) == {(10.2, 10.1)}

    def test_prominence_answers_certify_no_disks(self, small_db):
        # A prominence-ranked answer is not nearest-first: its k-th
        # distance (or a short answer) says nothing about which tuples
        # are near the query, so no known disk may be recorded.
        api = LrLbsInterface(
            small_db, k=3,
            prominence={"static_attr": "value", "weight_distance": 0.3,
                        "weight_static": 0.7, "distance_cap": 20.0},
        )
        hist = ObservationHistory(api)
        hist.query(Point(50, 50))
        hist.query(Point(20, 80))
        assert hist.disks.count == 0
        assert hist.locations  # locations themselves are still truthful

    def test_known_disk_radius_is_kth_distance(self, small_db):
        api = LrLbsInterface(small_db, k=3)
        hist = ObservationHistory(api)
        ans = hist.query(Point(50, 50))
        disks = hist.disks.near(Point(50, 50), 0.1)
        assert len(disks) == 1
        assert disks[0].radius == pytest.approx(ans.results[-1].distance)

    def test_no_disk_for_lnr(self, small_db):
        api = LnrLbsInterface(small_db, k=3)
        hist = ObservationHistory(api)
        hist.query(Point(50, 50))
        assert hist.disks.count == 0

    def test_short_answer_certifies_max_radius(self, small_db):
        api = LrLbsInterface(small_db, k=10, max_radius=4.0)
        hist = ObservationHistory(api)
        ans = hist.query(Point(50, 50))
        if len(ans) < 10:  # short answer under the service radius
            disks = hist.disks.near(Point(50, 50), 0.1)
            assert disks and disks[0].radius == pytest.approx(4.0)

    def test_reset_sample_when_disabled(self, small_db):
        api = LrLbsInterface(small_db, k=3)
        hist = ObservationHistory(api, enabled=False)
        hist.query(Point(50, 50))
        assert hist.locations
        hist.reset_sample()
        assert not hist.locations

    def test_reset_sample_noop_when_enabled(self, small_db):
        api = LrLbsInterface(small_db, k=3)
        hist = ObservationHistory(api, enabled=True)
        hist.query(Point(50, 50))
        hist.reset_sample()
        assert hist.locations
