"""Tests for aggregate specs and the observation history."""

import pytest

from repro.core import AggregateKind, AggregateQuery, DiskLedger, ObservationHistory
from repro.geometry import Disk, Point
from repro.lbs import LrLbsInterface, LnrLbsInterface


class TestAggregateQuery:
    def test_count_numerator(self):
        q = AggregateQuery.count()
        assert q.numerator({"a": 1}, None) == 1.0
        assert q.denominator({"a": 1}, None) == 1.0

    def test_count_with_condition(self):
        q = AggregateQuery.count(lambda attrs, _loc: attrs.get("x") == 1)
        assert q.numerator({"x": 1}, None) == 1.0
        assert q.numerator({"x": 2}, None) == 0.0

    def test_sum(self):
        q = AggregateQuery.sum("v")
        assert q.numerator({"v": 7}, None) == 7.0
        assert q.numerator({}, None) == 0.0  # missing attr

    def test_sum_requires_attr(self):
        with pytest.raises(ValueError):
            AggregateQuery(AggregateKind.SUM)

    def test_avg_is_ratio(self):
        q = AggregateQuery.avg("v")
        assert q.is_ratio
        assert q.numerator({"v": 4}, None) == 4.0
        assert q.denominator({"v": 4}, None) == 1.0
        assert q.denominator({}, None) == 0.0  # missing excluded from AVG

    def test_location_condition(self):
        q = AggregateQuery.count(
            lambda _a, loc: loc is not None and loc.x < 50, needs_location=True
        )
        assert q.numerator({}, Point(10, 0)) == 1.0
        assert q.numerator({}, Point(90, 0)) == 0.0
        assert q.numerator({}, None) == 0.0


class TestDiskLedger:
    def test_add_and_near(self):
        ledger = DiskLedger(cell_size=10.0)
        ledger.add(Disk(Point(5, 5), 2.0))
        ledger.add(Disk(Point(95, 95), 1.0))
        near = ledger.near(Point(6, 6), 3.0)
        assert len(near) == 1
        assert near[0].center == Point(5, 5)

    def test_zero_radius_ignored(self):
        ledger = DiskLedger(cell_size=10.0)
        ledger.add(Disk(Point(0, 0), 0.0))
        assert ledger.count == 0

    def test_invalid_cell_size(self):
        with pytest.raises(ValueError):
            DiskLedger(cell_size=0.0)

    def test_near_uses_max_radius(self):
        ledger = DiskLedger(cell_size=5.0)
        ledger.add(Disk(Point(0, 0), 40.0))  # huge disk far away
        assert len(ledger.near(Point(30, 0), 1.0)) == 1


class TestObservationHistory:
    def test_cache_hits_do_not_spend_budget(self, small_db):
        api = LrLbsInterface(small_db, k=3)
        hist = ObservationHistory(api)
        p = Point(10, 10)
        a1 = hist.query(p)
        a2 = hist.query(p)
        assert a1 is a2
        assert api.queries_used == 1

    def test_locations_recorded_lr(self, small_db):
        api = LrLbsInterface(small_db, k=3)
        hist = ObservationHistory(api)
        ans = hist.query(Point(50, 50))
        for r in ans:
            assert hist.locations[r.tid] == r.location

    def test_no_locations_recorded_lnr(self, small_db):
        api = LnrLbsInterface(small_db, k=3)
        hist = ObservationHistory(api)
        hist.query(Point(50, 50))
        assert not hist.locations

    def test_known_disk_radius_is_kth_distance(self, small_db):
        api = LrLbsInterface(small_db, k=3)
        hist = ObservationHistory(api)
        ans = hist.query(Point(50, 50))
        disks = hist.disks.near(Point(50, 50), 0.1)
        assert len(disks) == 1
        assert disks[0].radius == pytest.approx(ans.results[-1].distance)

    def test_no_disk_for_lnr(self, small_db):
        api = LnrLbsInterface(small_db, k=3)
        hist = ObservationHistory(api)
        hist.query(Point(50, 50))
        assert hist.disks.count == 0

    def test_short_answer_certifies_max_radius(self, small_db):
        api = LrLbsInterface(small_db, k=10, max_radius=4.0)
        hist = ObservationHistory(api)
        ans = hist.query(Point(50, 50))
        if len(ans) < 10:  # short answer under the service radius
            disks = hist.disks.near(Point(50, 50), 0.1)
            assert disks and disks[0].radius == pytest.approx(4.0)

    def test_reset_sample_when_disabled(self, small_db):
        api = LrLbsInterface(small_db, k=3)
        hist = ObservationHistory(api, enabled=False)
        hist.query(Point(50, 50))
        assert hist.locations
        hist.reset_sample()
        assert not hist.locations

    def test_reset_sample_noop_when_enabled(self, small_db):
        api = LrLbsInterface(small_db, k=3)
        hist = ObservationHistory(api, enabled=True)
        hist.query(Point(50, 50))
        hist.reset_sample()
        assert hist.locations
