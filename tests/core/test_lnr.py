"""Tests for the LNR side: edge search, cell discovery, localization,
and the LNR-LBS-AGG estimator."""

import math

import numpy as np
import pytest

from repro.core import (
    AggregateQuery,
    LnrCellOracle,
    LnrLbsAgg,
    ObservationHistory,
    TupleLocalizer,
    binary_transition,
    estimate_boundary_line,
    ray_exit,
)
from repro.core.config import LnrAggConfig
from repro.geometry import Point, Rect, distance, true_topk_cell, true_voronoi_cell
from repro.lbs import LnrLbsInterface, ObfuscationModel
from repro.sampling import UniformSampler


class TestBinaryTransition:
    def test_precision(self):
        def pred(p):
            return p.x < 3.0
        seg = binary_transition(pred, Point(0, 0), Point(10, 0), delta=1e-6)
        assert seg.length() <= 1e-6
        assert abs(seg.mid.x - 3.0) < 1e-6

    def test_cost_logarithmic(self):
        calls = []
        def pred(p):
            calls.append(p)
            return p.x < 3.0
        binary_transition(pred, Point(0, 0), Point(10, 0), delta=1e-6)
        assert len(calls) <= math.ceil(math.log2(10 / 1e-6)) + 2


class TestRayExit:
    def test_axis(self):
        box = Rect(0, 0, 10, 5)
        assert ray_exit(Point(2, 2), Point(1, 0), box) == Point(10, 2)
        assert ray_exit(Point(2, 2), Point(0, -1), box) == Point(2, 0)

    def test_diagonal(self):
        box = Rect(0, 0, 10, 10)
        p = ray_exit(Point(1, 1), Point(1, 1), box)
        assert p.x == pytest.approx(10) or p.y == pytest.approx(10)


class TestEstimateBoundaryLine:
    def test_recovers_known_line(self):
        """Synthetic membership: inside = left of the line x + 2y = 8."""
        box = Rect(0, 0, 100, 100)
        def pred(p):
            return p.x + 2 * p.y < 8.0
        est = estimate_boundary_line(
            pred, Point(0, 0), Point(50, 0), delta=1e-5, delta_prime=0.05, rect=box
        )
        assert est is not None and est.two_point
        # Direction must be parallel to the true line x + 2y = 8.
        normal = Point(1.0, 2.0)
        dot = abs(est.direction.x * normal.x + est.direction.y * normal.y)
        assert dot / math.hypot(1, 2) < 1e-2
        assert abs(est.point.x + 2 * est.point.y - 8.0) < 1e-3

    def test_none_when_no_boundary(self):
        box = Rect(0, 0, 10, 10)
        est = estimate_boundary_line(
            lambda p: True, Point(5, 5), Point(10, 5), 1e-4, 0.01, box
        )
        assert est is None

    def test_corner_chord_rejected(self):
        """Near a 90° corner the two transitions land on different edges;
        validation must reject the chord (two_point becomes False)."""
        box = Rect(-50, -50, 50, 50)
        # Inside = quadrant x < 1 AND y < 1; walk diagonally at the corner.
        def pred(p):
            return p.x < 1.0 and p.y < 1.0
        est = estimate_boundary_line(
            pred, Point(0, 0), Point(30, 29.9), delta=1e-5, delta_prime=0.5, rect=box
        )
        assert est is not None
        if est.two_point:
            # If accepted, it must coincide with one of the true edges.
            horiz = abs(est.direction.y) < 1e-2
            vert = abs(est.direction.x) < 1e-2
            assert horiz or vert


class TestLnrCell:
    def test_top1_matches_truth(self, small_db, box):
        api = LnrLbsInterface(small_db, k=3)
        hist = ObservationHistory(api)
        oracle = LnrCellOracle(hist, UniformSampler(box), LnrAggConfig(h=1))
        locs = small_db.locations()
        for tid in list(locs)[:8]:
            out = oracle.compute(tid, locs[tid], h=1)
            others = [p for i, p in locs.items() if i != tid]
            truth = true_voronoi_cell(locs[tid], others, box)
            assert out.measure * box.area == pytest.approx(truth.area(), rel=0.02)

    def test_top2_matches_truth(self, small_db, box):
        api = LnrLbsInterface(small_db, k=3)
        hist = ObservationHistory(api)
        oracle = LnrCellOracle(hist, UniformSampler(box), LnrAggConfig(h=2))
        locs = small_db.locations()
        for tid in list(locs)[:5]:
            out = oracle.compute(tid, locs[tid], h=2)
            others = [p for i, p in locs.items() if i != tid]
            truth = true_topk_cell(locs[tid], others, 2, box)
            assert out.measure * box.area == pytest.approx(truth.area(), rel=0.08)

    def test_seed_must_contain_tuple(self, small_db, box):
        api = LnrLbsInterface(small_db, k=3)
        hist = ObservationHistory(api)
        oracle = LnrCellOracle(hist, UniformSampler(box), LnrAggConfig(h=1))
        t0 = small_db.get(0)
        # A far-away seed almost surely answers some other tuple.
        far = Point((t0.location.x + 50) % 100, (t0.location.y + 50) % 100)
        if api.query(far).top().tid != 0:
            with pytest.raises(ValueError):
                oracle.compute(0, far, h=1)

    def test_edge_error_controls_accuracy(self, tiny_db, box):
        """Corollary 2: smaller ε ⇒ smaller cell-measure error."""
        locs = tiny_db.locations()
        errors = {}
        for eps in (4e-2, 2e-3):
            api = LnrLbsInterface(tiny_db, k=3)
            hist = ObservationHistory(api)
            oracle = LnrCellOracle(hist, UniformSampler(box), LnrAggConfig(h=1, edge_error=eps))
            errs = []
            for tid in list(locs)[:6]:
                out = oracle.compute(tid, locs[tid], h=1)
                others = [p for i, p in locs.items() if i != tid]
                truth = true_voronoi_cell(locs[tid], others, box).area()
                errs.append(abs(out.measure * box.area - truth) / truth)
            errors[eps] = float(np.mean(errs))
        assert errors[2e-3] <= errors[4e-2] + 1e-3


class TestLocalization:
    def test_accurate_without_obfuscation(self, small_db, box):
        api = LnrLbsInterface(small_db, k=3)
        hist = ObservationHistory(api)
        config = LnrAggConfig(h=1, edge_error=2e-3)
        oracle = LnrCellOracle(hist, UniformSampler(box), config)
        localizer = TupleLocalizer(hist, oracle, config)
        errs = []
        for tid in list(small_db.locations())[:8]:
            t = small_db.get(tid)
            res = localizer.locate(tid, t.location)
            errs.append(distance(res.location, t.location))
        assert float(np.median(errs)) < 0.1  # 0.1 % of the box side

    def test_obfuscation_floor(self, small_db, box):
        sigma = 2.0
        api = LnrLbsInterface(small_db, k=3, obfuscation=ObfuscationModel(sigma=sigma, seed=2))
        hist = ObservationHistory(api)
        config = LnrAggConfig(h=1, edge_error=2e-3)
        oracle = LnrCellOracle(hist, UniformSampler(box), config)
        localizer = TupleLocalizer(hist, oracle, config)
        errs = []
        for tid in list(small_db.locations())[:8]:
            t = small_db.get(tid)
            seed_pt = api.effective_location(tid)
            res = localizer.locate(tid, seed_pt)
            errs.append(distance(res.location, t.location))
        # Error should be comparable to the jitter, not to the cell size.
        assert 0.1 * sigma < float(np.median(errs)) < 5 * sigma


class TestLnrAgg:
    def test_count_close(self, small_db, box):
        api = LnrLbsInterface(small_db, k=3)
        agg = LnrLbsAgg(api, UniformSampler(box), AggregateQuery.count(),
                        LnrAggConfig(h=1), seed=5)
        res = agg.run(n_samples=50)
        assert res.estimate == pytest.approx(len(small_db), rel=0.45)

    def test_avg_gender_ratio(self, small_db, box):
        api = LnrLbsInterface(small_db, k=3)
        agg = LnrLbsAgg(api, UniformSampler(box), AggregateQuery.avg("is_male"),
                        LnrAggConfig(h=1), seed=6)
        res = agg.run(n_samples=50)
        truth = small_db.ground_truth_avg("is_male")
        assert res.estimate == pytest.approx(truth, abs=0.2)

    def test_adaptive_h_uses_rank(self, tiny_db, box):
        api = LnrLbsInterface(tiny_db, k=3)
        agg = LnrLbsAgg(api, UniformSampler(box), AggregateQuery.count(),
                        LnrAggConfig(adaptive_h=True), seed=7)
        res = agg.run(n_samples=10)
        assert res.samples == 10
        assert np.isfinite(res.estimate)

    def test_location_condition_triggers_localizer(self, tiny_db, box):
        half = Rect(0, 0, 50, 100)
        query = AggregateQuery.count(
            lambda _a, loc: loc is not None and half.contains(loc),
            needs_location=True,
        )
        api = LnrLbsInterface(tiny_db, k=3)
        agg = LnrLbsAgg(api, UniformSampler(box), query, LnrAggConfig(h=1), seed=8)
        res = agg.run(n_samples=12)
        assert np.isfinite(res.estimate)
        assert res.estimate >= 0
