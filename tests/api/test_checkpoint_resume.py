"""Checkpoint round-trips: pause → serialize → resume must be invisible.

The acceptance bar of the streaming executor: for every driver, batched
and unbatched, interrupting a run, pushing its state through JSON, and
resuming on a freshly built estimator yields the *same*
EstimationResult — estimate, query accounting, and full trace — as the
uninterrupted run.
"""

import json

import pytest

from repro.api import MaxQueries, MaxSamples, ObfuscationModel, RankingSpec, Session
from repro.core import (
    AggregateQuery,
    LnrLbsAgg,
    LrAggConfig,
    LrLbsAgg,
    LrLbsNno,
)
from repro.lbs import LnrLbsInterface, LrLbsInterface
from repro.sampling import UniformSampler


def _assert_same_result(a, b):
    assert a.estimate == b.estimate
    assert a.queries == b.queries
    assert a.samples == b.samples
    assert a.trace == b.trace


def _round_trip(make, until, batch_size, pause_after=8):
    """Straight run vs paused-at-sample-N + JSON + resumed run."""
    straight = make().run(until, batch_size=batch_size)

    paused = make()
    for i, _cp in enumerate(paused.run_iter(until, batch_size=batch_size)):
        if i + 1 == pause_after:
            break
    state = json.loads(json.dumps(paused.to_state(queries_start=0)))

    resumed = make()
    resumed.load_state(state)
    result = resumed.run(until, batch_size=batch_size)
    _assert_same_result(result, straight)
    return straight


class TestDriverRoundTrips:
    @pytest.mark.parametrize("batch_size", [1, 8])
    def test_lr(self, small_db, box, batch_size):
        def make():
            return LrLbsAgg(LrLbsInterface(small_db, k=5), UniformSampler(box),
                            AggregateQuery.count(), seed=0)

        res = _round_trip(make, MaxSamples(30), batch_size)
        assert res.samples == 30

    @pytest.mark.parametrize("batch_size", [1, 8])
    def test_lr_adaptive_h(self, small_db, box, batch_size):
        # Adaptive h now prefetches batches (lazy-reveal history); the
        # paused-mid-batch state must carry the staged answers along.
        def make():
            return LrLbsAgg(LrLbsInterface(small_db, k=5), UniformSampler(box),
                            AggregateQuery.count(),
                            LrAggConfig(adaptive_h=True), seed=2)

        _round_trip(make, MaxSamples(20), batch_size=batch_size)

    @pytest.mark.parametrize("batch_size", [1, 8])
    def test_lr_query_budget(self, small_db, box, batch_size):
        # Budget-bounded runs exercise the mid-batch exhaustion path.
        def make():
            return LrLbsAgg(LrLbsInterface(small_db, k=5), UniformSampler(box),
                            AggregateQuery.count(), seed=1)

        res = _round_trip(make, MaxQueries(120), batch_size)
        assert res.queries <= 120 + 8  # a sample may overshoot slightly

    @pytest.mark.parametrize("batch_size", [1, 8])
    def test_lnr(self, tiny_db, box, batch_size):
        def make():
            return LnrLbsAgg(LnrLbsInterface(tiny_db, k=4), UniformSampler(box),
                             AggregateQuery.count(), seed=1)

        _round_trip(make, MaxSamples(12), batch_size, pause_after=5)

    @pytest.mark.parametrize("batch_size", [1, 8])
    def test_nno(self, small_db, box, batch_size):
        # NNO degrades batches to 1 but must accept the parameter.
        def make():
            return LrLbsNno(LrLbsInterface(small_db, k=5), UniformSampler(box),
                            AggregateQuery.count(), seed=3)

        _round_trip(make, MaxSamples(15), batch_size)

    def test_avg_ratio_state(self, small_db, box):
        def make():
            return LrLbsAgg(LrLbsInterface(small_db, k=5), UniformSampler(box),
                            AggregateQuery.avg("value"), seed=0)

        _round_trip(make, MaxSamples(25), batch_size=8)

    def test_state_rejects_stale_version(self, small_db, box):
        # v1 snapshots predate the lazy-reveal prefetch and the LR
        # oracle's private RNG stream; resuming one would silently
        # diverge, so load_state must refuse.
        est = LrLbsAgg(LrLbsInterface(small_db, k=5), UniformSampler(box),
                       AggregateQuery.count(), seed=0)
        est.run(MaxSamples(3))
        state = est.to_state()
        state["version"] = 1
        fresh = LrLbsAgg(LrLbsInterface(small_db, k=5), UniformSampler(box),
                         AggregateQuery.count(), seed=0)
        with pytest.raises(ValueError, match="version"):
            fresh.load_state(state)

    def test_state_rejects_wrong_driver(self, small_db, box):
        lr = LrLbsAgg(LrLbsInterface(small_db, k=5), UniformSampler(box),
                      AggregateQuery.count(), seed=0)
        lr.run(MaxSamples(3))
        nno = LrLbsNno(LrLbsInterface(small_db, k=5), UniformSampler(box),
                       AggregateQuery.count(), seed=0)
        with pytest.raises(ValueError, match="driver"):
            nno.load_state(lr.to_state())


class TestSessionRoundTrips:
    def test_pause_persist_resume_matches_straight_run(self, small_db):
        """The acceptance path: seed-pinned session pause → serialize →
        resume equals a straight run exactly."""
        session = Session(small_db).lr(k=5).count().seed(42).batch(4)
        straight = session.run(MaxSamples(40))

        run = session.start(MaxSamples(40))
        for cp in run:
            if cp.samples >= 15:
                break
        state = json.loads(json.dumps(run.to_state()))  # survives persistence
        resumed_result = Session.resume(small_db, state).run()
        _assert_same_result(resumed_result, straight)

    def test_resume_restores_rule_from_state(self, small_db):
        session = Session(small_db).lr(k=5).count().seed(0)
        run = session.start(MaxSamples(10))
        next(iter(run))
        state = run.to_state()
        resumed = Session.resume(small_db, state)  # no until= passed
        assert resumed.run().samples == 10

    def test_checkpoint_state_every(self, small_db):
        session = Session(small_db).lr(k=5).count().seed(0)
        states = [
            cp.state
            for cp in session.start(MaxSamples(9), state_every=3)
        ]
        assert [s is not None for s in states] == [
            False, False, True, False, False, True, False, False, True
        ]
        # An embedded snapshot resumes just like run.to_state().
        mid = states[5]
        est = session.build()
        est.load_state(mid)
        assert est.samples == 6

    def test_result_valid_at_pause(self, small_db):
        run = Session(small_db).lr(k=5).count().seed(0).start(MaxSamples(20))
        for cp in run:
            if cp.samples == 7:
                break
        partial = run.result()
        assert partial.samples == 7
        assert partial.queries == run.queries_spent


class TestCapabilitySessionRoundTrips:
    """Pause/resume through interface capabilities held in the spec."""

    def test_prominence_lnr_with_obfuscation_resumes_bit_identically(self, small_db):
        # The full WeChat/Places-style surface: rank-only answers over a
        # prominence order, obfuscated positions, projected attributes —
        # all declarative, all restored from JSON on resume.
        session = (
            Session(small_db)
            .lnr(k=4)
            .service(
                obfuscation=ObfuscationModel(sigma=1.5, seed=3),
                visible_attrs=("category", "value"),
                ranking=RankingSpec.prominence("value", 0.6, 0.4, 30.0),
            )
            .count()
            .seed(11)
            .batch(4)
        )
        straight = session.run(MaxSamples(12))

        run = session.start(MaxSamples(12))
        for cp in run:
            if cp.samples >= 5:
                break
        state = json.loads(json.dumps(run.to_state()))
        assert state["spec"]["interface"]["ranking"]["policy"] == "prominence"
        resumed = Session.resume(small_db, state).run()
        _assert_same_result(resumed, straight)

    def test_max_radius_lr_resumes_bit_identically(self, small_db):
        session = (
            Session(small_db).lr(k=5).service(max_radius=25.0).count().seed(4)
        )
        straight = session.run(MaxSamples(15))
        run = session.start(MaxSamples(15))
        for cp in run:
            if cp.samples >= 6:
                break
        state = json.loads(json.dumps(run.to_state()))
        resumed = Session.resume(small_db, state).run()
        _assert_same_result(resumed, straight)

    def test_batched_session_equals_sequential_session(self, small_db):
        # batch() is pure throughput: the spec's batch_size must not
        # change the result, interface capabilities included.
        base = (
            Session(small_db).lr(k=5)
            .service(max_radius=30.0)
            .count().seed(9)
        )
        seq = base.run(MaxSamples(20))
        bat = base.batch(8).run(MaxSamples(20))
        assert bat.estimate == seq.estimate
        assert bat.queries == seq.queries
