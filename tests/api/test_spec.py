"""EstimationSpec: validation, serialization, and the fluent builder."""

import json

import pytest

from repro.api import (
    AggregateSpec,
    EstimationSpec,
    InterfaceSpec,
    ObfuscationModel,
    RankingSpec,
    Session,
)
from repro.core import AttrEquals, LnrAggConfig, LrAggConfig, NnoConfig, QueryEngineConfig
from repro.datasets import is_brand, is_category
from repro.lbs import LnrLbsInterface, ProminenceRanking


class TestAggregateSpec:
    def test_defaults(self):
        agg = AggregateSpec()
        assert agg.kind == "count" and agg.where is None

    def test_sum_needs_attr(self):
        with pytest.raises(ValueError):
            AggregateSpec("sum")

    def test_pass_through_needs_where(self):
        with pytest.raises(ValueError):
            AggregateSpec("count", pass_through=True)

    def test_lambda_condition_runs_but_does_not_serialize(self):
        agg = AggregateSpec("count", where=lambda attrs, loc: True)
        with pytest.raises(ValueError, match="AttrEquals"):
            agg.to_dict()


class TestAttrEquals:
    def test_dual_calling_conventions(self):
        cond = AttrEquals("category", "school")
        assert cond({"category": "school"}, None)
        assert not cond({"category": "cafe"}, None)

    def test_predicate_factories(self, small_db):
        # is_category/is_brand are usable as tuple predicates...
        n = small_db.ground_truth_count(is_category("school"))
        assert n > 0
        # ...and serialize.
        assert is_brand("starbucks").to_dict()["attr"] == "brand"
        rebuilt = AttrEquals.from_dict(is_category("school").to_dict())
        assert rebuilt == is_category("school")


class TestEstimationSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            EstimationSpec(method="xyz")
        with pytest.raises(ValueError):
            EstimationSpec(sampler="grid")
        with pytest.raises(ValueError):
            EstimationSpec(batch_size=0)
        with pytest.raises(ValueError):
            EstimationSpec(k=0)

    def test_config_must_match_method(self):
        with pytest.raises(ValueError):
            EstimationSpec(method="lr", config=LnrAggConfig())
        EstimationSpec(method="lnr", config=LnrAggConfig())  # ok
        EstimationSpec(method="nno", config=NnoConfig())  # ok

    def test_json_round_trip(self):
        spec = EstimationSpec(
            method="lnr",
            k=7,
            aggregate=AggregateSpec("avg", "rating", is_category("restaurant")),
            sampler="census",
            engine=QueryEngineConfig(index_backend="grid", cache_size=128),
            config=LnrAggConfig(h=2, edge_error=1e-2),
            seed=99,
            batch_size=16,
        )
        text = spec.to_json()
        json.loads(text)  # valid JSON
        assert EstimationSpec.from_json(text) == spec

    def test_minimal_round_trip(self):
        spec = EstimationSpec()
        assert EstimationSpec.from_dict(spec.to_dict()) == spec

    def test_interface_round_trip(self):
        spec = EstimationSpec(
            method="lnr",
            k=8,
            interface=InterfaceSpec(
                kind="lnr", k=8, max_radius=9.0,
                visible_attrs=("gender",),
                obfuscation=ObfuscationModel(sigma=1.0, seed=2),
                ranking=RankingSpec.prominence("rating"),
            ),
        )
        assert EstimationSpec.from_json(spec.to_json()) == spec

    def test_interface_kind_must_match_method(self):
        with pytest.raises(ValueError, match="interface"):
            EstimationSpec(method="lr", interface=InterfaceSpec(kind="lnr"))
        # NNO reads locations, so it runs against an LR interface.
        with pytest.raises(ValueError, match="interface"):
            EstimationSpec(method="nno", interface=InterfaceSpec(kind="lnr"))

    def test_interface_k_must_match_spec_k(self):
        with pytest.raises(ValueError, match="k="):
            EstimationSpec(method="lr", k=5, interface=InterfaceSpec(kind="lr", k=3))

    def test_interface_spec_defaults_to_plain_service(self):
        spec = EstimationSpec(method="lnr", k=7)
        derived = spec.interface_spec()
        assert derived.kind == "lnr" and derived.k == 7
        assert derived.obfuscation is None and derived.max_radius is None


class TestSessionBuilder:
    def test_fluent_chain_is_immutable(self, small_db):
        base = Session(small_db).lr(k=5)
        a = base.count(is_category("school"))
        b = base.sum("value")
        assert a.spec.aggregate.kind == "count"
        assert b.spec.aggregate.kind == "sum"
        assert base.spec.aggregate.kind == "count"  # default untouched

    def test_builder_produces_expected_spec(self, small_db):
        spec = (
            Session(small_db)
            .lnr(k=4, config=LnrAggConfig(h=2))
            .avg("value", is_category("school"))
            .seed(7)
            .batch(8)
            .spec
        )
        assert spec == EstimationSpec(
            method="lnr", k=4, config=LnrAggConfig(h=2),
            aggregate=AggregateSpec("avg", "value", is_category("school")),
            seed=7, batch_size=8,
        )

    def test_nno_and_engine(self, small_db):
        spec = (
            Session(small_db)
            .nno(k=3, config=NnoConfig(area_probes=12))
            .engine(QueryEngineConfig(index_backend="brute"))
            .spec
        )
        assert spec.method == "nno"
        assert spec.engine.index_backend == "brute"

    def test_bad_world_rejected(self):
        with pytest.raises(TypeError):
            Session(object())

    def test_census_without_grid_fails_at_build(self, small_db):
        session = Session(small_db).lr().census_weighted().count()
        with pytest.raises(ValueError, match="census"):
            session.build()

    def test_build_constructs_matching_driver(self, small_db):
        from repro.core import LnrLbsAgg, LrAggConfig, LrLbsAgg

        est = Session(small_db).lr(k=3, config=LrAggConfig(h=1)).count().build()
        assert isinstance(est, LrLbsAgg) and est.interface.k == 3
        est = Session(small_db).lnr(k=4).count().build()
        assert isinstance(est, LnrLbsAgg)

    def test_service_derives_kind_and_k(self, small_db):
        spec = (
            Session(small_db)
            .lnr(k=6)
            .service(obfuscation=ObfuscationModel(sigma=1.0), visible_attrs=["gender"])
            .spec
        )
        assert spec.interface.kind == "lnr" and spec.interface.k == 6
        assert spec.interface.visible_attrs == ("gender",)

    def test_service_tracks_later_method_changes(self, small_db):
        session = (
            Session(small_db).lr(k=3)
            .service(ranking=RankingSpec.prominence("value"))
            .lnr(k=5)
        )
        iface = session.spec.interface
        assert iface.kind == "lnr" and iface.k == 5
        assert iface.ranking.policy == "prominence"

    def test_service_rejects_spec_plus_kwargs(self, small_db):
        with pytest.raises(ValueError, match="not both"):
            Session(small_db).lr().service(InterfaceSpec(), max_radius=5.0)

    def test_build_constructs_capability_interface(self, small_db):
        est = (
            Session(small_db)
            .lnr(k=4)
            .service(
                obfuscation=ObfuscationModel(sigma=2.0, seed=1),
                ranking=RankingSpec.prominence("value"),
            )
            .count()
            .build()
        )
        assert isinstance(est.interface, LnrLbsInterface)
        assert isinstance(est.interface.ranking, ProminenceRanking)
        assert est.interface.obfuscation is not None

    def test_pass_through_builds_filtered_view(self, small_db):
        est = (
            Session(small_db).lr(k=3)
            .count(is_category("school"), pass_through=True)
            .build()
        )
        # The filtered view's database holds only matching tuples.
        assert len(est.interface.database) == small_db.ground_truth_count(
            is_category("school")
        )
        assert est.query.condition is None  # unconditioned over the view
