"""Session runs: the facade end-to-end, adaptive stopping, run_many."""

import pytest

from repro.api import (
    MaxQueries,
    MaxSamples,
    Session,
    TargetRelativeCI,
    estimate,
    run_many,
)
from repro.datasets import is_category


class TestSessionRun:
    def test_count_estimate_sane(self, small_db):
        result = Session(small_db).lr(k=5).count().seed(0).run(MaxQueries(400))
        assert result.samples > 0
        assert result.estimate == pytest.approx(len(small_db), rel=1.0)

    def test_conditioned_count(self, small_db):
        truth = small_db.ground_truth_count(is_category("school"))
        result = (
            Session(small_db).lr(k=5)
            .count(is_category("school"))
            .seed(1)
            .run(MaxSamples(120))
        )
        assert result.estimate == pytest.approx(truth, rel=0.6)

    def test_streaming_checkpoints_monotone(self, small_db):
        run = Session(small_db).lr(k=5).count().seed(0).start(MaxSamples(10))
        checkpoints = list(run)
        assert [cp.samples for cp in checkpoints] == list(range(1, 11))
        assert all(
            b.queries >= a.queries for a, b in zip(checkpoints, checkpoints[1:])
        )
        assert run.last is checkpoints[-1]

    def test_target_ci_stops_before_budget(self, small_db):
        result = (
            Session(small_db).lr(k=5).count().seed(0)
            .run(TargetRelativeCI(0.5, min_samples=5) | MaxQueries(4000))
        )
        assert result.queries < 4000  # the CI rule fired first

    def test_estimate_functional_form(self, small_db):
        session = Session(small_db).lr(k=5).count().seed(0)
        a = estimate(small_db, session.spec, MaxSamples(12))
        b = session.run(MaxSamples(12))
        assert a.estimate == b.estimate and a.queries == b.queries

    def test_batched_session_equals_unbatched_lnr(self, tiny_db):
        # LNR consumes randomness only for sample points, so the batched
        # facade run must reproduce the sequential one bit for bit.
        base = Session(tiny_db).lnr(k=4).count().seed(1)
        seq = base.run(MaxSamples(10))
        bat = base.batch(8).run(MaxSamples(10))
        assert bat.estimate == seq.estimate
        assert bat.queries == seq.queries


class TestRunMany:
    def test_shared_pool_interleaves(self, small_db):
        runs = [
            Session(small_db).lr(k=5).count().seed(s).start(MaxQueries(10_000))
            for s in range(3)
        ]
        results = run_many(runs, max_total_queries=300)
        assert sum(r.queries for r in results) >= 300
        # Round-robin: no run starves while another exhausts the pool.
        assert all(r.samples > 0 for r in results)
        samples = [r.samples for r in results]
        assert max(samples) - min(samples) <= max(samples) // 2 + 1

    def test_individual_rules_respected(self, small_db):
        runs = [
            Session(small_db).lr(k=5).count().seed(0).start(MaxSamples(5)),
            Session(small_db).lr(k=5).count().seed(1).start(MaxSamples(9)),
        ]
        results = run_many(runs)
        assert [r.samples for r in results] == [5, 9]

    def test_paused_runs_stay_resumable(self, small_db):
        runs = [
            Session(small_db).lr(k=5).count().seed(s).start(MaxSamples(50))
            for s in range(2)
        ]
        results = run_many(runs, max_total_queries=80)
        assert all(r.samples < 50 for r in results)
        # Each paused run can still be serialized and finished later.
        state = runs[0].to_state()
        finished = Session.resume(small_db, state).run()
        assert finished.samples == 50

    def test_validation(self, small_db):
        with pytest.raises(ValueError):
            run_many([], max_total_queries=-1)
