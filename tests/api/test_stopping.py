"""Stopping rules: firing conditions, batch clamps, composition, serde."""

import math

import pytest

from repro.api import (
    AnyRule,
    MaxQueries,
    MaxSamples,
    TargetRelativeCI,
    stopping_rule_from_dict,
)
from repro.stats import Checkpoint


def cp(queries=0, samples=0, estimate=0.0, sem=math.inf):
    if math.isfinite(sem):
        ci = (estimate - 1.959963984540054 * sem, estimate + 1.959963984540054 * sem)
    else:
        ci = (-math.inf, math.inf)
    return Checkpoint(queries=queries, samples=samples, estimate=estimate,
                      ci=ci, sem=sem)


class TestHardLimits:
    def test_max_queries(self):
        rule = MaxQueries(100)
        assert not rule.should_stop(cp(queries=99))
        assert rule.should_stop(cp(queries=100))
        assert rule.remaining_queries(cp(queries=40)) == 60
        assert rule.remaining_queries(cp(queries=400)) == 0
        assert rule.remaining_samples(cp()) is None

    def test_max_samples(self):
        rule = MaxSamples(10)
        assert not rule.should_stop(cp(samples=9))
        assert rule.should_stop(cp(samples=10))
        assert rule.remaining_samples(cp(samples=4)) == 6
        assert rule.remaining_queries(cp()) is None

    def test_negative_limits_rejected(self):
        with pytest.raises(ValueError):
            MaxQueries(-1)
        with pytest.raises(ValueError):
            MaxSamples(-1)


class TestTargetRelativeCI:
    def test_fires_only_when_tight(self):
        rule = TargetRelativeCI(0.1, min_samples=5)
        # 1.96 * 2 = 3.92 half-width on estimate 100 -> 3.9% relative.
        assert rule.should_stop(cp(samples=50, estimate=100.0, sem=2.0))
        assert not rule.should_stop(cp(samples=50, estimate=100.0, sem=20.0))

    def test_min_samples_guard(self):
        rule = TargetRelativeCI(0.1, min_samples=30)
        assert not rule.should_stop(cp(samples=29, estimate=100.0, sem=0.1))
        assert rule.should_stop(cp(samples=30, estimate=100.0, sem=0.1))

    def test_undefined_interval_never_stops(self):
        rule = TargetRelativeCI(0.5, min_samples=2)
        assert not rule.should_stop(cp(samples=10, estimate=0.0, sem=0.01))
        assert not rule.should_stop(cp(samples=10, estimate=5.0, sem=math.inf))

    def test_validation(self):
        with pytest.raises(ValueError):
            TargetRelativeCI(0.0)
        with pytest.raises(ValueError):
            TargetRelativeCI(0.1, level=0.8)
        with pytest.raises(ValueError):
            TargetRelativeCI(0.1, min_samples=1)


class TestComposition:
    def test_or_fires_on_any(self):
        rule = MaxQueries(100) | MaxSamples(10)
        assert isinstance(rule, AnyRule)
        assert rule.should_stop(cp(queries=100, samples=0))
        assert rule.should_stop(cp(queries=0, samples=10))
        assert not rule.should_stop(cp(queries=99, samples=9))

    def test_or_flattens(self):
        rule = MaxQueries(1) | MaxSamples(2) | TargetRelativeCI(0.1)
        assert len(rule.rules) == 3

    def test_remaining_takes_min(self):
        rule = MaxQueries(100) | MaxQueries(60) | TargetRelativeCI(0.1)
        assert rule.remaining_queries(cp(queries=10)) == 50
        assert rule.remaining_samples(cp()) is None


class TestSerde:
    @pytest.mark.parametrize("rule", [
        MaxQueries(500),
        MaxSamples(32),
        TargetRelativeCI(0.05, level=0.99, min_samples=20),
        MaxQueries(500) | MaxSamples(32) | TargetRelativeCI(0.1),
    ])
    def test_round_trip(self, rule):
        rebuilt = stopping_rule_from_dict(rule.to_dict())
        assert rebuilt.to_dict() == rule.to_dict()

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError):
            stopping_rule_from_dict({"rule": "nope"})
