"""One-document experiments: EstimationSpec embedding a WorldSpec.

The acceptance property of the worlds subsystem: a full scenario —
world + interface + estimation — serializes to ONE JSON document, and
``Session.from_spec(doc)`` reproduces the original run bit-identically
(same database, same estimate, same query accounting).
"""

import json

import pytest

from repro.api import (
    EstimationSpec,
    MaxQueries,
    MaxSamples,
    ObfuscationModel,
    Session,
)
from repro.datasets import is_category
from repro.worlds import get as get_world


def _small_world_spec(name="paper/clustered", n=300):
    return get_world(name).with_size(n)


class TestSessionWorldSpec:
    def test_session_accepts_world_spec_and_embeds_it(self):
        session = Session(_small_world_spec()).lr(k=4).count()
        assert session.spec.world is not None
        assert session.spec.world.n == 300

    def test_session_accepts_registry_name(self):
        session = Session("ring-city")
        assert session.spec.world == get_world("ring-city")

    def test_built_world_embeds_its_spec_too(self):
        # worlds.build(...) sessions are as one-document reproducible as
        # WorldSpec sessions: the built World still carries its spec.
        built = _small_world_spec().build(seed=5)
        session = Session(built).lr(k=4).count().seed(1)
        assert session.spec.world == built.spec
        a = session.run(MaxSamples(6))
        b = Session.from_spec(session.spec.to_json()).run(MaxSamples(6))
        assert b.estimate == a.estimate

    def test_built_world_session_resumes_without_world(self):
        from repro.worlds import build as build_world

        session = Session(build_world("paper/clustered", n=200)).lr(k=3).count()
        run = session.start(MaxSamples(6))
        for checkpoint in run:
            if checkpoint.samples >= 2:
                break
        resumed = Session.resume(None, run.to_state()).run()
        assert resumed.samples == 6

    def test_spec_world_survives_json(self):
        spec = Session(_small_world_spec()).lnr(k=3).count().spec
        rt = EstimationSpec.from_json(spec.to_json())
        assert rt == spec
        assert rt.world == spec.world

    def test_from_spec_requires_world(self):
        spec = EstimationSpec()
        with pytest.raises(ValueError, match="no WorldSpec"):
            Session.from_spec(spec)

    def test_from_spec_with_external_world_override(self):
        built = _small_world_spec().build()
        spec = EstimationSpec(seed=3)
        result = Session.from_spec(spec, world=built).run(MaxSamples(5))
        assert result.samples == 5

    def test_world_override_discards_stale_embedded_spec(self):
        # A document embedding world A, run against world B: pausing and
        # resuming with None must continue over B (whose spec replaced
        # the stale embed), never over a rebuilt A.
        doc = Session(_small_world_spec("paper/uniform-10k", n=200)) \
            .lr(k=3).count().seed(5).spec.to_json()
        external = _small_world_spec("paper/clustered", n=300).build()

        session = Session.from_spec(doc, world=external)
        assert session.spec.world == external.spec
        straight = session.run(MaxSamples(12))

        run = Session.from_spec(doc, world=external).start(MaxSamples(12))
        for checkpoint in run:
            if checkpoint.samples >= 4:
                break
        resumed = Session.resume(None, run.to_state()).run()
        assert resumed.estimate == straight.estimate

    def test_resume_world_override_discards_stale_embedded_spec(self):
        # Same staleness rule at the resume() entry point.
        session = Session(_small_world_spec("paper/uniform-10k", n=200)) \
            .lr(k=3).count().seed(5)
        run = session.start(MaxSamples(8))
        for checkpoint in run:
            if checkpoint.samples >= 3:
                break
        external = _small_world_spec("paper/clustered", n=300).build()
        resumed_run = Session.resume(external, run.to_state())
        assert resumed_run.spec.world == external.spec


class TestOneDocumentReproduction:
    def test_full_scenario_round_trips_bit_identically(self):
        # World + interface capabilities + estimation in one document.
        session = (
            Session(_small_world_spec())
            .lr(k=5)
            .service(max_radius=120.0)
            .count(is_category("restaurant"))
            .seed(11)
            .batch(8)
        )
        doc = session.spec.to_json()
        original = session.run(MaxQueries(400))
        reproduced = Session.from_spec(doc).run(MaxQueries(400))
        assert reproduced.estimate == original.estimate
        assert reproduced.queries == original.queries
        assert reproduced.samples == original.samples

    def test_census_weighted_scenario_reproduces(self):
        session = (
            Session(_small_world_spec())
            .lr(k=4)
            .census_weighted()
            .count()
            .seed(2)
        )
        doc = session.spec.to_json()
        a = session.run(MaxQueries(300))
        b = Session.from_spec(doc).run(MaxQueries(300))
        assert b.estimate == a.estimate

    def test_obfuscated_lnr_scenario_reproduces(self):
        spec = _small_world_spec("wechat-like-1m", n=150)
        session = (
            Session(spec)
            .lnr(k=5)
            .service(obfuscation=ObfuscationModel(sigma=1.0, seed=0),
                     visible_attrs=("gender", "is_male"))
            .avg("is_male")
            .seed(4)
        )
        doc = session.spec.to_json()
        a = session.run(MaxQueries(800))
        b = Session.from_spec(doc).run(MaxQueries(800))
        assert b.estimate == a.estimate

    def test_resume_from_state_with_embedded_world(self):
        session = Session(_small_world_spec()).lr(k=4).count().seed(7)
        straight = session.run(MaxQueries(300))

        run = Session.from_spec(session.spec.to_json()).start(MaxQueries(300))
        for checkpoint in run:
            if checkpoint.samples >= 8:
                break
        state = json.loads(json.dumps(run.to_state()))
        resumed = Session.resume(None, state).run()
        assert resumed.estimate == straight.estimate
        assert resumed.queries == straight.queries

    def test_resume_without_world_needs_embedded_spec(self):
        # A bare database carries no WorldSpec (unlike a built World),
        # so a spec-less state cannot rebuild its world.
        db = _small_world_spec().build().db
        run = Session(db, EstimationSpec(seed=1)).start(MaxSamples(3))
        for _ in run:
            pass
        with pytest.raises(ValueError, match="embeds no WorldSpec"):
            Session.resume(None, run.to_state())

    def test_document_is_self_contained_plain_json(self):
        doc = Session(_small_world_spec()).lr(k=5).count().spec.to_json()
        data = json.loads(doc)
        assert data["world"]["spatial"]["kind"] == "zipf"
        assert data["world"]["n"] == 300
