"""FaultSpec / FaultState: determinism, validation, serde, capping."""

import json

import pytest

from repro.resilience import (
    FAULT_KINDS,
    AnswerDropped,
    FaultSpec,
    FaultState,
    ServiceRateLimited,
    ServiceTimeout,
    TransientServiceError,
    fault_error,
)


class TestFaultSpecValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError, match="timeout_rate"):
            FaultSpec(timeout_rate=1.5)
        with pytest.raises(ValueError, match="drop_rate"):
            FaultSpec(drop_rate=-0.1)

    def test_certain_fault_rejected_without_cap(self):
        with pytest.raises(ValueError, match="sum to >= 1"):
            FaultSpec(timeout_rate=0.5, rate_limit_rate=0.5)
        # With a cap the connection eventually heals, so it's legal.
        FaultSpec(timeout_rate=0.5, rate_limit_rate=0.5, max_faults=3)

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError, match="max_faults"):
            FaultSpec(timeout_rate=0.1, max_faults=-1)

    def test_default_is_faultless(self):
        spec = FaultSpec()
        assert spec.total_rate == 0.0
        assert all(spec.draw(i) is None for i in range(100))


class TestDeterminism:
    def test_draw_is_pure(self):
        spec = FaultSpec(timeout_rate=0.1, rate_limit_rate=0.1, drop_rate=0.1, seed=5)
        first = [spec.draw(i) for i in range(200)]
        assert [spec.draw(i) for i in range(200)] == first
        assert set(first) <= set(FAULT_KINDS) | {None}
        # The rates actually express: a 30% faulty stream faults.
        assert 20 <= sum(k is not None for k in first) <= 90

    def test_seed_changes_the_stream(self):
        a = FaultSpec(timeout_rate=0.2, seed=1)
        b = FaultSpec(timeout_rate=0.2, seed=2)
        assert [a.draw(i) for i in range(100)] != [b.draw(i) for i in range(100)]

    def test_kind_edges_are_cumulative(self):
        # With one rate at 1.0 (capped), every fault is that kind.
        spec = FaultSpec(drop_rate=1.0, seed=3, max_faults=5)
        st = FaultState()
        kinds = [st.next_fault(spec) for _ in range(10)]
        assert kinds[:5] == ["drop"] * 5
        assert kinds[5:] == [None] * 5  # cap reached, connection heals


class TestFaultState:
    def test_stream_ticks_even_when_capped(self):
        """Enabling max_faults must not shift later draws."""
        spec = FaultSpec(timeout_rate=0.3, seed=7)
        capped = spec.replace(max_faults=2)
        free, limited = FaultState(), FaultState()
        free_kinds = [free.next_fault(spec) for _ in range(50)]
        capped_kinds = [limited.next_fault(capped) for _ in range(50)]
        assert free.attempts == limited.attempts == 50
        # The capped stream is the free stream with all faults after the
        # cap replaced by None — never different faults.
        seen = 0
        for f, c in zip(free_kinds, capped_kinds):
            if f is not None:
                seen += 1
                assert c == (f if seen <= 2 else None)
            else:
                assert c is None
        assert limited.faults_injected == 2

    def test_tallies_by_kind(self):
        spec = FaultSpec(timeout_rate=0.2, rate_limit_rate=0.1, drop_rate=0.1, seed=11)
        st = FaultState()
        for _ in range(300):
            st.next_fault(spec)
        assert st.faults_injected == sum(st.injected.values())
        assert st.faults_injected > 0
        assert set(st.injected) == set(FAULT_KINDS)

    def test_state_round_trips(self):
        spec = FaultSpec(timeout_rate=0.25, seed=2)
        st = FaultState()
        for _ in range(40):
            st.next_fault(spec)
        st.retries = 7
        st.backoff_seconds = 1.25
        restored = FaultState()
        restored.restore(json.loads(json.dumps(st.to_dict())))
        assert restored.to_dict() == st.to_dict()
        # The restored stream continues exactly where the original does.
        assert [restored.next_fault(spec) for _ in range(40)] == \
               [st.next_fault(spec) for _ in range(40)]

    def test_restore_rejects_missing_keys_loudly(self):
        st = FaultState()
        with pytest.raises(ValueError, match="'attempts'"):
            st.restore({"injected": {}})
        with pytest.raises(ValueError, match="'injected'"):
            st.restore({"attempts": 3})


class TestSerde:
    def test_json_round_trip(self):
        spec = FaultSpec(timeout_rate=0.1, rate_limit_rate=0.05, drop_rate=0.02,
                         seed=42, max_faults=100)
        assert FaultSpec.from_json(spec.to_json()) == spec

    def test_defaults_round_trip(self):
        assert FaultSpec.from_dict(FaultSpec().to_dict()) == FaultSpec()

    def test_replace(self):
        spec = FaultSpec(timeout_rate=0.1, seed=1)
        assert spec.replace(seed=2) == FaultSpec(timeout_rate=0.1, seed=2)
        assert spec.seed == 1  # frozen original untouched


class TestExceptions:
    def test_hierarchy_and_kinds(self):
        assert issubclass(ServiceTimeout, TransientServiceError)
        assert issubclass(ServiceRateLimited, TransientServiceError)
        assert issubclass(AnswerDropped, TransientServiceError)
        for kind, cls in (("timeout", ServiceTimeout),
                          ("rate_limit", ServiceRateLimited),
                          ("drop", AnswerDropped)):
            err = fault_error(kind, attempt=3)
            assert isinstance(err, cls)
            assert err.kind == kind
            assert "attempt 3" in str(err)
