"""RetryPolicy: backoff shape, deterministic jitter, validation, serde."""

import pytest

from repro.resilience import RetryPolicy


class TestValidation:
    def test_bounds(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="non-negative"):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)

    def test_retry_number_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            RetryPolicy().delay(0, 0)


class TestBackoffShape:
    def test_exponential_growth_capped(self):
        p = RetryPolicy(base_delay=1.0, multiplier=2.0, max_delay=5.0, jitter=0.0)
        assert p.delay(1, 0) == 1.0
        assert p.delay(2, 0) == 2.0
        assert p.delay(3, 0) == 4.0
        assert p.delay(4, 0) == 5.0  # capped
        assert p.delay(10, 0) == 5.0

    def test_jitter_is_bounded_and_deterministic(self):
        p = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.25, seed=9)
        delays = [p.delay(1, c) for c in range(200)]
        assert delays == [p.delay(1, c) for c in range(200)]  # pure
        assert all(0.75 <= d <= 1.25 for d in delays)
        assert len(set(delays)) > 100  # the substream actually varies

    def test_jitter_counter_indexes_the_stream(self):
        p = RetryPolicy(jitter=0.5, seed=4)
        assert p.delay(1, 0) != p.delay(1, 1)

    def test_seed_decorrelates_policies(self):
        a = RetryPolicy(jitter=0.5, seed=1)
        b = RetryPolicy(jitter=0.5, seed=2)
        assert [a.delay(1, c) for c in range(20)] != \
               [b.delay(1, c) for c in range(20)]


class TestSerde:
    def test_json_round_trip(self):
        p = RetryPolicy(max_attempts=7, base_delay=0.5, multiplier=3.0,
                        max_delay=20.0, jitter=0.2, seed=13,
                        charge_faults=True, sleep=True)
        assert RetryPolicy.from_json(p.to_json()) == p

    def test_defaults_round_trip(self):
        assert RetryPolicy.from_dict(RetryPolicy().to_dict()) == RetryPolicy()

    def test_replace(self):
        p = RetryPolicy(max_attempts=3)
        assert p.replace(charge_faults=True).charge_faults is True
        assert p.charge_faults is False
