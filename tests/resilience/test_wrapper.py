"""ResilientInterface: bit-identity, budget semantics, state, metrics."""

import json

import pytest

from repro.api import MaxQueries, MaxSamples, Session
from repro.geometry import Point
from repro.lbs import BudgetExhausted, LrLbsInterface, QueryBudget
from repro.obs import MetricsRegistry
from repro.obs import registry as obs_registry
from repro.resilience import (
    FaultSpec,
    ResilientInterface,
    RetriesExhausted,
    RetryPolicy,
    TransientServiceError,
)
from repro.worlds import registry as world_registry

FAULTY = FaultSpec(timeout_rate=0.08, rate_limit_rate=0.05, drop_rate=0.04, seed=17)
PATIENT = RetryPolicy(max_attempts=10)


def _points(n, step=7.3):
    return [Point((i * step) % 100.0, (i * step * 1.7) % 100.0) for i in range(n)]


@pytest.fixture(scope="module")
def world_spec():
    return world_registry.get("paper/clustered").with_size(300)


class TestAnswerIdentity:
    def test_scalar_answers_match_unwrapped(self, small_db):
        plain = LrLbsInterface(small_db, k=5)
        wrapped = ResilientInterface(
            LrLbsInterface(small_db, k=5), fault=FAULTY, retry=PATIENT
        )
        for p in _points(40):
            assert wrapped.query(p) == plain.query(p)
        assert wrapped.budget.used == plain.budget.used
        assert wrapped.state.faults_injected > 0  # faults actually fired

    def test_batch_matches_loop_under_faults(self, small_db):
        loop = ResilientInterface(
            LrLbsInterface(small_db, k=5), fault=FAULTY, retry=PATIENT
        )
        batch = ResilientInterface(
            LrLbsInterface(small_db, k=5), fault=FAULTY, retry=PATIENT
        )
        pts = _points(30)
        assert batch.query_batch(pts) == [loop.query(p) for p in pts]
        assert batch.state.attempts == loop.state.attempts
        assert batch.budget.used == loop.budget.used

    def test_fault_off_batch_passes_through(self, small_db):
        plain = LrLbsInterface(small_db, k=5)
        wrapped = ResilientInterface(LrLbsInterface(small_db, k=5))
        pts = _points(20)
        assert wrapped.query_batch(pts) == plain.query_batch(pts)
        assert wrapped.state.attempts == 0  # no fault stream ticked

    def test_cache_hits_are_never_faulted(self, small_db):
        wrapped = ResilientInterface(
            LrLbsInterface(small_db, k=5), fault=FAULTY, retry=PATIENT
        )
        p = Point(31.0, 57.0)
        wrapped.query(p)
        attempts = wrapped.state.attempts
        used = wrapped.budget.used
        for _ in range(5):
            wrapped.query(p)  # cache hit: no network call, no fault draw
        assert wrapped.state.attempts == attempts
        assert wrapped.budget.used == used

    def test_delegation_reads_through(self, small_db):
        inner = LrLbsInterface(small_db, k=5)
        wrapped = ResilientInterface(inner, fault=FAULTY, retry=PATIENT)
        assert wrapped.k == 5
        assert wrapped.returns_location is True
        assert wrapped.region == inner.region
        assert wrapped.cache_stats == inner.cache_stats


class TestFailureModes:
    def test_no_retry_policy_propagates_first_fault(self, small_db):
        wrapped = ResilientInterface(
            LrLbsInterface(small_db, k=5),
            fault=FaultSpec(timeout_rate=0.9, seed=1, max_faults=50),
        )
        with pytest.raises(TransientServiceError):
            for p in _points(60):
                wrapped.query(p)

    def test_retries_exhausted(self, small_db):
        wrapped = ResilientInterface(
            LrLbsInterface(small_db, k=5),
            fault=FaultSpec(timeout_rate=0.9, seed=1, max_faults=1000),
            retry=RetryPolicy(max_attempts=2),
        )
        with pytest.raises(RetriesExhausted) as err:
            for p in _points(60):
                wrapped.query(p)
        assert err.value.attempts == 2

    def test_charge_faults_draws_budget(self, small_db):
        """With charge_faults the rate limiter counts failed calls too."""
        free = ResilientInterface(
            LrLbsInterface(small_db, k=5, budget=QueryBudget(1000)),
            fault=FAULTY, retry=PATIENT,
        )
        charged = ResilientInterface(
            LrLbsInterface(small_db, k=5, budget=QueryBudget(1000)),
            fault=FAULTY, retry=PATIENT.replace(charge_faults=True),
        )
        pts = _points(40)
        assert charged.query_batch(pts) == free.query_batch(pts)  # answers equal
        faults = charged.state.faults_injected
        assert faults > 0
        assert free.budget.used == len(pts)
        assert charged.budget.used == len(pts) + faults

    def test_charge_faults_can_exhaust_budget_mid_retry(self, small_db):
        wrapped = ResilientInterface(
            LrLbsInterface(small_db, k=5, budget=QueryBudget(3)),
            fault=FaultSpec(timeout_rate=0.9, seed=1, max_faults=1000),
            retry=RetryPolicy(max_attempts=50, charge_faults=True),
        )
        with pytest.raises(BudgetExhausted):
            for p in _points(60):
                wrapped.query(p)


class TestFilteredViews:
    def test_filtered_shares_the_fault_stream(self, small_db):
        wrapped = ResilientInterface(
            LrLbsInterface(small_db, k=5), fault=FAULTY, retry=PATIENT
        )
        view = wrapped.filtered(lambda t: t.attrs["category"] == "school")
        assert isinstance(view, ResilientInterface)
        assert view.state is wrapped.state
        assert view.budget is wrapped.budget
        before = wrapped.state.attempts
        view.query(Point(10.0, 20.0))
        assert wrapped.state.attempts > before  # one connection, one stream


class TestEngineState:
    def test_state_round_trips_and_stream_continues(self, small_db):
        a = ResilientInterface(
            LrLbsInterface(small_db, k=5), fault=FAULTY, retry=PATIENT
        )
        for p in _points(20):
            a.query(p)
        state = json.loads(json.dumps(a.engine_state()))
        assert "resilience" in state

        b = ResilientInterface(
            LrLbsInterface(small_db, k=5), fault=FAULTY, retry=PATIENT
        )
        b.restore_engine_state(state)
        assert b.state.to_dict() == a.state.to_dict()
        # Both connections continue the stream identically.
        for p in _points(20, step=3.1):
            assert b.query(p) == a.query(p)
        assert b.state.to_dict() == a.state.to_dict()

    def test_restore_rejects_state_without_resilience(self, small_db):
        bare = LrLbsInterface(small_db, k=5)
        for p in _points(5):
            bare.query(p)
        wrapped = ResilientInterface(
            LrLbsInterface(small_db, k=5), fault=FAULTY, retry=PATIENT
        )
        with pytest.raises(ValueError, match="resilience"):
            wrapped.restore_engine_state(bare.engine_state())


class TestSessionIntegration:
    def test_faulty_run_bit_identical_to_fault_free(self, world_spec):
        base = Session(world_spec).lr(k=5).count().seed(1)
        plain = base.run(MaxQueries(300))
        faulty = base.resilience(fault=FAULTY, retry=PATIENT).run(MaxQueries(300))
        assert faulty.estimate == plain.estimate
        assert faulty.queries == plain.queries
        assert faulty.samples == plain.samples
        assert faulty.trace == plain.trace

    def test_fault_off_spec_builds_the_bare_interface(self, world_spec):
        driver = Session(world_spec).lr(k=5).count().seed(1).build()
        assert not isinstance(driver.interface, ResilientInterface)

    def test_faulty_spec_builds_the_wrapper(self, world_spec):
        driver = (Session(world_spec).lr(k=5).count().seed(1)
                  .resilience(fault=FAULTY, retry=PATIENT).build())
        assert isinstance(driver.interface, ResilientInterface)

    def test_pause_resume_replays_the_fault_stream(self, world_spec):
        base = Session(world_spec).lr(k=5).count().seed(2)
        plain = base.run(MaxSamples(30))
        run = base.resilience(fault=FAULTY, retry=PATIENT).start(MaxSamples(30))
        for i, _cp in enumerate(run):
            if i == 11:
                break
        state = json.loads(json.dumps(run.to_state()))
        assert state["driver"]["version"] == 4
        assert "resilience" in state["driver"]["interface"]
        resumed = Session.resume(None, state).run()
        assert resumed.estimate == plain.estimate
        assert resumed.queries == plain.queries
        assert resumed.trace == plain.trace

    def test_v3_snapshot_rejected_loudly(self, world_spec):
        base = Session(world_spec).lr(k=5).count().seed(2)
        run = base.start(MaxSamples(5))
        for _ in run:
            pass
        state = run.to_state()
        state["driver"]["version"] = 3
        with pytest.raises(ValueError, match="version-3 snapshot"):
            Session.resume(None, state)

    def test_resilience_serializes_on_the_spec(self, world_spec):
        spec = (Session(world_spec).lr(k=5).count()
                .resilience(fault=FAULTY, retry=PATIENT).spec)
        rebuilt = type(spec).from_json(spec.to_json())
        assert rebuilt.interface.fault == FAULTY
        assert rebuilt.interface.retry == PATIENT
        # resilience() with no arguments clears the fault model.
        cleared = Session.from_spec(spec).resilience().spec
        assert cleared.interface.fault is None
        assert cleared.interface.retry is None


class TestMetrics:
    def test_fault_and_retry_metrics(self, small_db):
        wrapped = ResilientInterface(
            LrLbsInterface(small_db, k=5), fault=FAULTY, retry=PATIENT
        )
        reg = MetricsRegistry()
        with obs_registry.collecting(reg):
            for p in _points(40):
                wrapped.query(p)
        metrics = reg.to_dict()["metrics"]
        injected = {
            s["labels"]["kind"]: s["value"]
            for s in metrics["faults_injected_total"]["series"]
        }
        assert sum(injected.values()) == wrapped.state.faults_injected
        assert injected == {
            k: v for k, v in wrapped.state.injected.items() if v > 0
        }
        retries = metrics["retries_total"]["series"][0]["value"]
        assert retries == wrapped.state.retries
        hist = metrics["retry_backoff_seconds"]["series"][0]
        assert hist["count"] == wrapped.state.retries
        assert hist["sum"] == pytest.approx(wrapped.state.backoff_seconds)

    def test_queries_counter_mirrors_budget_with_charge_faults(self, small_db):
        wrapped = ResilientInterface(
            LrLbsInterface(small_db, k=5, budget=QueryBudget(1000)),
            fault=FAULTY, retry=PATIENT.replace(charge_faults=True),
        )
        reg = MetricsRegistry()
        with obs_registry.collecting(reg):
            for p in _points(40):
                wrapped.query(p)
        metrics = reg.to_dict()["metrics"]
        total = sum(
            s["value"] for s in metrics["interface_queries_total"]["series"]
        )
        assert total == wrapped.budget.used  # the obs invariant holds
