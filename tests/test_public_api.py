"""Public API surface checks and the README quickstart path."""

import numpy as np
import pytest

import repro


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__ == "1.1.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_all_exports_resolve(self):
        import repro.api
        import repro.core
        import repro.datasets
        import repro.geometry
        import repro.lbs
        import repro.parallel
        import repro.resilience
        import repro.sampling
        import repro.stats

        for mod in (repro.api, repro.core, repro.datasets, repro.geometry,
                    repro.lbs, repro.parallel, repro.resilience,
                    repro.sampling, repro.stats):
            for name in mod.__all__:
                assert hasattr(mod, name), f"{mod.__name__}.{name}"

    def test_api_surface_at_root(self):
        # The session facade is reachable from the package root.
        for name in ("Session", "SessionRun", "EstimationSpec", "AggregateSpec",
                     "MaxQueries", "MaxSamples", "TargetRelativeCI",
                     "StoppingRule", "Checkpoint", "run_many"):
            assert hasattr(repro, name), name

    def test_experiment_registry_complete(self):
        from repro.experiments import ALL_EXPERIMENTS

        expected = {f"fig{n}" for n in range(11, 22)} | {"table1"}
        assert set(ALL_EXPERIMENTS) == expected


def _tiny_poi_db():
    from repro import PoiConfig, generate_poi_database
    from repro.geometry import Rect

    region = Rect(0, 0, 100, 100)
    return generate_poi_database(
        region, np.random.default_rng(7),
        PoiConfig(n_restaurants=40, n_schools=20, n_banks=0, n_cafes=0),
    )


class TestReadmeQuickstart:
    def test_quickstart_flow(self):
        """The README snippet, condensed: it must run and be sane."""
        from repro import MaxQueries, Session

        db = _tiny_poi_db()
        result = Session(db).lr(k=5).count().seed(0).run(MaxQueries(400))
        assert result.samples > 0
        assert result.estimate == pytest.approx(len(db), rel=1.0)
        lo, hi = result.confidence_interval(0.95)
        assert lo < hi


class TestDeprecationShims:
    """The pre-session entrypoints still work, with warnings."""

    def _agg(self, db, seed=0):
        from repro import AggregateQuery, LrLbsAgg, LrLbsInterface, UniformSampler

        return LrLbsAgg(LrLbsInterface(db, k=5), UniformSampler(db.region),
                        AggregateQuery.count(), seed=seed)

    def test_legacy_kwargs_warn_but_match_new_style(self):
        from repro import MaxQueries

        db = _tiny_poi_db()
        with pytest.warns(DeprecationWarning):
            legacy = self._agg(db).run(max_queries=300)
        new = self._agg(db).run(MaxQueries(300))
        assert legacy.estimate == new.estimate
        assert legacy.queries == new.queries
        assert legacy.trace == new.trace

    def test_legacy_n_samples_and_batch(self):
        db = _tiny_poi_db()
        with pytest.warns(DeprecationWarning):
            res = self._agg(db).run(n_samples=10, batch_size=4)
        assert res.samples == 10

    def test_positional_int_warns(self):
        db = _tiny_poi_db()
        with pytest.warns(DeprecationWarning):
            res = self._agg(db).run(200)
        assert res.queries >= 200

    def test_no_rule_at_all_raises(self):
        db = _tiny_poi_db()
        with pytest.raises(ValueError):
            self._agg(db).run()

    def test_rule_plus_legacy_kwargs_rejected(self):
        from repro import MaxQueries

        db = _tiny_poi_db()
        with pytest.raises(ValueError):
            self._agg(db).run(MaxQueries(10), n_samples=5)
