"""Public API surface checks and the README quickstart path."""

import numpy as np
import pytest

import repro


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_all_exports_resolve(self):
        import repro.core
        import repro.datasets
        import repro.geometry
        import repro.lbs
        import repro.sampling
        import repro.stats

        for mod in (repro.core, repro.datasets, repro.geometry,
                    repro.lbs, repro.sampling, repro.stats):
            for name in mod.__all__:
                assert hasattr(mod, name), f"{mod.__name__}.{name}"

    def test_experiment_registry_complete(self):
        from repro.experiments import ALL_EXPERIMENTS

        expected = {f"fig{n}" for n in range(11, 22)} | {"table1"}
        assert set(ALL_EXPERIMENTS) == expected


class TestReadmeQuickstart:
    def test_quickstart_flow(self):
        """The README snippet, condensed: it must run and be sane."""
        from repro import (AggregateQuery, LrLbsAgg, LrLbsInterface,
                           PoiConfig, UniformSampler, generate_poi_database)
        from repro.geometry import Rect

        region = Rect(0, 0, 100, 100)
        db = generate_poi_database(
            region, np.random.default_rng(7),
            PoiConfig(n_restaurants=40, n_schools=20, n_banks=0, n_cafes=0),
        )
        api = LrLbsInterface(db, k=5)
        agg = LrLbsAgg(api, UniformSampler(region), AggregateQuery.count(), seed=0)
        result = agg.run(max_queries=400)
        assert result.samples > 0
        assert result.estimate == pytest.approx(len(db), rel=1.0)
        lo, hi = result.ci(0.95)
        assert lo < hi
