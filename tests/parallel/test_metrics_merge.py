"""Cross-process metric merging: exact totals, failure labelling.

The acceptance bar of the obs fan-out protocol: after
``run_many_parallel``, the parent registry's ``interface_queries_total``
equals the sum of per-run budget usage *exactly* (each worker collects
into a fresh registry, each snapshot merges exactly once), and a failed
run's partial counts survive but are stamped ``outcome="failed"`` so
they never mix with completed totals.
"""

import pytest

from repro.api import MaxSamples, Session
from repro.obs import registry as obs
from repro.parallel import ParallelRunError, parallel_knn_batch, run_many_parallel
from repro.worlds import registry


@pytest.fixture(scope="module")
def lr_specs():
    base = Session(registry.get("paper/clustered").with_size(300)).lr(k=5).count()
    return [base.seed(s).spec for s in (1, 2, 3)]


class TestExactMerge:
    def test_merged_queries_equal_sum_of_run_budgets(self, lr_specs):
        with obs.collecting() as reg:
            results = run_many_parallel(lr_specs, MaxSamples(12), workers=2)
        expected = float(sum(r.queries for r in results))
        assert reg.total("interface_queries_total") == expected
        assert reg.get("parallel_runs_total", {"outcome": "ok"}) == 3.0
        # Per-run telemetry agrees with the merged registry.
        assert expected == float(sum(r.telemetry.queries for r in results))

    def test_single_worker_pool_merges_identically(self, lr_specs):
        with obs.collecting() as reg:
            results = run_many_parallel(lr_specs, MaxSamples(8), workers=1)
        assert reg.total("interface_queries_total") == float(
            sum(r.queries for r in results)
        )

    def test_no_collection_when_parent_disabled(self, lr_specs):
        assert obs.active() is None
        results = run_many_parallel(lr_specs, MaxSamples(5), workers=2)
        assert all(r is not None for r in results)
        assert obs.active() is None  # nothing installed behind our back

    def test_run_metrics_cover_samples_and_checkpoints(self, lr_specs):
        with obs.collecting() as reg:
            run_many_parallel(lr_specs, MaxSamples(6), workers=2)
        assert reg.total("run_samples_total") == 18.0
        assert reg.total("run_checkpoints_total") == 18.0


class TestFailedRunLabelling:
    def test_failed_partials_labelled_not_double_counted(self):
        wspec = registry.get("paper/clustered").with_size(300).replace(census=None)
        good = Session(wspec).lr(k=5).count().seed(1).spec
        bad = good.replace(sampler="census", seed=2)  # no census grid: raises
        with obs.collecting() as reg:
            with pytest.raises(ParallelRunError) as err:
                run_many_parallel([good, bad], MaxSamples(10), workers=2)
        completed = err.value.results[0]
        assert completed is not None
        assert reg.get("parallel_runs_total", {"outcome": "ok"}) == 1.0
        assert reg.get("parallel_runs_total", {"outcome": "error"}) == 1.0
        # Completed-run series carry no outcome label; the failed run's
        # partial counts (if any) live only under outcome="failed".
        clean = sum(
            v for key, v in reg.series("interface_queries_total").items()
            if ("outcome", "failed") not in key
        )
        assert clean == float(completed.queries)
        failed = sum(
            v for key, v in reg.series("interface_queries_total").items()
            if ("outcome", "failed") in key
        )
        # The bad run died in the sampler before spending budget — its
        # partial snapshot merged (possibly empty) without polluting the
        # clean totals.
        assert failed >= 0.0
        assert reg.total("interface_queries_total") == clean + failed


class TestShardedKnnMerge:
    def test_worker_slices_merge_into_coordinator(self):
        world = registry.get("paper/clustered").with_size(2000).build()
        region = world.db.region
        import numpy as np

        rng = np.random.default_rng(5)
        u = rng.random((64, 2))
        queries = [
            (float(region.x0 + ux * region.width),
             float(region.y0 + uy * region.height))
            for ux, uy in u
        ]
        with obs.collecting() as reg:
            answers = parallel_knn_batch(world, queries, 3, workers=2,
                                         tiles_per_side=4)
        assert len(answers) == 64
        assert reg.get("index_queries_total",
                       {"backend": "sharded", "mode": "batch"}) == 64.0

    def test_stats_list_still_returned(self):
        world = registry.get("paper/clustered").with_size(1000).build()
        region = world.db.region
        import numpy as np

        rng = np.random.default_rng(6)
        u = rng.random((32, 2))
        queries = [
            (float(region.x0 + ux * region.width),
             float(region.y0 + uy * region.height))
            for ux, uy in u
        ]
        _answers, stats = parallel_knn_batch(world, queries, 3, workers=2,
                                             tiles_per_side=4,
                                             return_stats=True)
        assert stats and all("tiles_built" in s for s in stats)
