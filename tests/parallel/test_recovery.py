"""Crash-recovering run_many_parallel: respawn, watchdog, clean reaping."""

import json
import multiprocessing as mp
import os
import time

import pytest

from repro.api import MaxSamples, Session
from repro.obs import MetricsRegistry
from repro.obs import registry as obs_registry
from repro.parallel import ParallelRunError, run_many_parallel
from repro.parallel import executor
from repro.resilience import FaultSpec, RetryPolicy
from repro.worlds import registry

needs_fork = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="crash-injection hooks propagate to workers via fork",
)


@pytest.fixture(scope="module")
def lr_specs():
    base = Session(registry.get("paper/clustered").with_size(300)).lr(k=5).count()
    return [base.seed(s).spec for s in (1, 2, 3)]


@pytest.fixture
def checkpoint_hook():
    """Install a worker-side checkpoint hook; always uninstalled after."""

    def install(hook):
        executor._test_checkpoint_hook = hook

    yield install
    executor._test_checkpoint_hook = None


def sequential(specs, until):
    return [Session.from_spec(s).run(until) for s in specs]


def assert_results_identical(seq, par):
    assert len(seq) == len(par)
    for a, b in zip(seq, par):
        assert a.estimate == b.estimate
        assert a.queries == b.queries
        assert a.samples == b.samples
        assert a.trace == b.trace


@needs_fork
class TestCrashRecovery:
    def test_crashed_worker_respawns_and_resumes_bit_identically(
        self, lr_specs, tmp_path, checkpoint_hook
    ):
        until = MaxSamples(20)
        seq = sequential(lr_specs, until)

        def crash_once(run_index, samples, attempt):
            if run_index == 1 and samples == 12 and attempt == 0:
                os._exit(13)

        checkpoint_hook(crash_once)
        reg = MetricsRegistry()
        with obs_registry.collecting(reg):
            par = run_many_parallel(lr_specs, until, workers=2, retries=2,
                                    checkpoint_dir=str(tmp_path), state_every=5)
        assert_results_identical(seq, par)
        metrics = reg.to_dict()["metrics"]
        assert metrics["runs_recovered_total"]["series"][0]["value"] == 1.0
        deaths = {s["labels"]["reason"]: s["value"]
                  for s in metrics["parallel_worker_deaths_total"]["series"]}
        assert deaths == {"died": 1.0}

    def test_crash_without_checkpoints_restarts_from_scratch(
        self, lr_specs, checkpoint_hook
    ):
        # No checkpoint_dir: the retry has nothing to resume from and
        # must rerun the whole run — still bit-identical.
        until = MaxSamples(12)
        seq = sequential(lr_specs, until)

        def crash_once(run_index, samples, attempt):
            if run_index == 0 and samples == 8 and attempt == 0:
                os._exit(7)

        checkpoint_hook(crash_once)
        par = run_many_parallel(lr_specs, until, workers=2, retries=1)
        assert_results_identical(seq, par)

    def test_retries_exhausted_raises_with_checkpoint_preserved(
        self, lr_specs, tmp_path, checkpoint_hook
    ):
        until = MaxSamples(20)

        def always_crash(run_index, samples, attempt):
            if run_index == 2 and samples == 12:
                os._exit(13)

        checkpoint_hook(always_crash)
        with pytest.raises(ParallelRunError) as err:
            run_many_parallel(lr_specs, until, workers=2, retries=1,
                              checkpoint_dir=str(tmp_path), state_every=5)
        e = err.value
        assert [i for i, _s, _t in e.failures] == [2]
        assert "retries exhausted" in e.failures[0][2]
        assert e.results[2] is None
        assert e.results[0] is not None and e.results[1] is not None
        # The failed run's rolling checkpoint file survives for manual
        # recovery (exercised in TestManualRecovery below).
        assert (tmp_path / "run-002.state.json").is_file()

    def test_hung_worker_killed_by_watchdog_and_recovered(
        self, lr_specs, tmp_path, checkpoint_hook
    ):
        until = MaxSamples(15)
        seq = sequential(lr_specs, until)

        def hang_once(run_index, samples, attempt):
            if run_index == 0 and samples == 8 and attempt == 0:
                time.sleep(300)  # far past the deadline; watchdog kills us

        checkpoint_hook(hang_once)
        reg = MetricsRegistry()
        start = time.monotonic()
        with obs_registry.collecting(reg):
            par = run_many_parallel(lr_specs, until, workers=2, retries=1,
                                    run_deadline=1.5,
                                    checkpoint_dir=str(tmp_path), state_every=5)
        assert time.monotonic() - start < 60.0  # did not wait out the sleep
        assert_results_identical(seq, par)
        metrics = reg.to_dict()["metrics"]
        deaths = {s["labels"]["reason"]: s["value"]
                  for s in metrics["parallel_worker_deaths_total"]["series"]}
        assert deaths == {"hung": 1.0}
        assert metrics["runs_recovered_total"]["series"][0]["value"] == 1.0

    def test_no_zombie_children_after_recovery(self, lr_specs, checkpoint_hook):
        def crash_once(run_index, samples, attempt):
            if run_index == 1 and samples == 5 and attempt == 0:
                os._exit(1)

        checkpoint_hook(crash_once)
        run_many_parallel(lr_specs, MaxSamples(8), workers=2, retries=1)
        # Deterministic reaping: terminate→kill escalation joins every
        # spawned process, so none linger (zombie or alive).
        assert mp.active_children() == []

    def test_bad_arguments(self, lr_specs):
        with pytest.raises(ValueError, match="retries"):
            run_many_parallel(lr_specs, MaxSamples(5), retries=-1)
        with pytest.raises(ValueError, match="run_deadline"):
            run_many_parallel(lr_specs, MaxSamples(5), run_deadline=0.0)


@needs_fork
class TestManualRecovery:
    def test_failed_runs_resume_from_preserved_checkpoints(
        self, lr_specs, tmp_path, checkpoint_hook
    ):
        """The satellite contract: after ParallelRunError, every failed
        run recovers today via Session.resume on its checkpoint file,
        bit-identical to a run that never crashed."""
        until = MaxSamples(20)
        seq = sequential(lr_specs, until)

        def always_crash(run_index, samples, attempt):
            if run_index in (0, 2) and samples == 12:
                os._exit(13)

        checkpoint_hook(always_crash)
        with pytest.raises(ParallelRunError) as err:
            run_many_parallel(lr_specs, until, workers=2, retries=0,
                              checkpoint_dir=str(tmp_path), state_every=5)
        e = err.value
        assert sorted(i for i, _s, _t in e.failures) == [0, 2]
        results = list(e.results)
        executor._test_checkpoint_hook = None  # recover without crashing
        for i, _spec_json, _tb in e.failures:
            state = json.loads(
                (tmp_path / f"run-{i:03d}.state.json").read_text()
            )
            results[i] = Session.resume(None, state).run()
        assert_results_identical(seq, results)


@needs_fork
class TestChaos:
    def test_faults_and_crash_recover_to_fault_free_results(
        self, tmp_path, checkpoint_hook
    ):
        """The acceptance smoke: transient interface faults (retried
        in-place) plus a worker crash (respawned and resumed) — and the
        results still match a fault-free sequential run, bit for bit."""
        base = (Session(registry.get("paper/clustered").with_size(300))
                .lr(k=5).count())
        plain = [base.seed(s).spec for s in (1, 2, 3)]
        faulty = [
            Session.from_spec(s).resilience(
                fault=FaultSpec(timeout_rate=0.05, rate_limit_rate=0.03,
                                drop_rate=0.02, seed=23),
                retry=RetryPolicy(max_attempts=10),
            ).spec
            for s in plain
        ]
        until = MaxSamples(20)
        seq = sequential(plain, until)  # fault-free, sequential

        def crash_once(run_index, samples, attempt):
            if run_index == 1 and samples == 14 and attempt == 0:
                os._exit(11)

        checkpoint_hook(crash_once)
        reg = MetricsRegistry()
        with obs_registry.collecting(reg):
            par = run_many_parallel(faulty, until, workers=2, retries=2,
                                    checkpoint_dir=str(tmp_path), state_every=5)
        assert_results_identical(seq, par)
        metrics = reg.to_dict()["metrics"]
        injected = sum(s["value"]
                       for s in metrics["faults_injected_total"]["series"])
        assert injected > 0  # workers really ran through faults
        assert metrics["retries_total"]["series"][0]["value"] > 0
        assert metrics["runs_recovered_total"]["series"][0]["value"] == 1.0
