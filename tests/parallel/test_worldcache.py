"""WorldCache: bit-identical round trips, atomicity, eviction, mmap loads."""

import json
import mmap
import os

import numpy as np
import pytest

from repro.parallel import WorldCache, WorldCacheError
from repro.api import MaxSamples, Session
from repro.worlds import registry


def small_spec(name="paper/clustered", n=300):
    return registry.get(name).with_size(n)


def assert_worlds_identical(a, b):
    assert np.array_equal(a.db.coords, b.db.coords)
    assert np.array_equal(a.db.tids, b.db.tids)
    assert a.db.column_names() == b.db.column_names()
    assert a.db.tuples() == b.db.tuples()
    assert a.db.region == b.db.region
    if a.census is None:
        assert b.census is None
    else:
        assert np.array_equal(a.census.weights, b.census.weights)
        assert a.census.region == b.census.region


class TestRoundTrip:
    def test_miss_then_hit(self, tmp_path):
        cache = WorldCache(tmp_path)
        spec = small_spec()
        assert not cache.has(spec)
        w1 = cache.load_or_build(spec)
        assert cache.has(spec)
        w2 = cache.load_or_build(spec)
        assert cache.counters() == {"hits": 1, "misses": 1, "entries": 1}
        assert_worlds_identical(w1, w2)

    def test_hit_matches_fresh_build(self, tmp_path):
        cache = WorldCache(tmp_path)
        spec = small_spec()
        cache.load_or_build(spec)
        assert_worlds_identical(cache.load_or_build(spec), spec.build())

    def test_string_and_masked_columns_round_trip(self, tmp_path):
        # wechat-like worlds carry str columns (gender, name) and a
        # visibility-driven schema; value equality must survive the
        # fixed-width re-encoding.
        cache = WorldCache(tmp_path)
        spec = small_spec("wechat-like-1m", 500)
        loaded = cache.load_or_build(spec)
        cached = cache.load_or_build(spec)
        assert cache.hits == 1
        assert_worlds_identical(loaded, cached)
        assert_worlds_identical(cached, spec.build())

    def test_estimation_over_cached_world_is_identical(self, tmp_path):
        cache = WorldCache(tmp_path)
        spec = small_spec()
        cache.load_or_build(spec)
        cached = cache.load_or_build(spec)
        r_cached = Session(cached).lr(k=5).count().seed(3).run(MaxSamples(25))
        r_fresh = Session(spec.build()).lr(k=5).count().seed(3).run(MaxSamples(25))
        assert r_cached.estimate == r_fresh.estimate
        assert r_cached.queries == r_fresh.queries
        assert r_cached.trace == r_fresh.trace

    def test_ground_truth_identical(self, tmp_path):
        from repro.datasets import is_category

        cache = WorldCache(tmp_path)
        spec = small_spec()
        cache.load_or_build(spec)
        cached, fresh = cache.load_or_build(spec), spec.build()
        pred = is_category("restaurant")
        assert cached.db.ground_truth_count(pred) == fresh.db.ground_truth_count(pred)
        assert cached.db.ground_truth_sum("rating") == fresh.db.ground_truth_sum("rating")


class TestStorageProperties:
    def test_loaded_arrays_are_readonly_mmaps(self, tmp_path):
        cache = WorldCache(tmp_path)
        spec = small_spec()
        cache.load_or_build(spec)
        world = cache.load_or_build(spec)

        def backing(arr):
            while isinstance(arr, np.ndarray) and arr.base is not None:
                arr = arr.base
            return arr

        # Ingest rewraps the mmap as a plain ndarray view; the storage
        # underneath must still be the on-disk mapping, not a copy.
        assert isinstance(backing(world.db.coords), (np.memmap, mmap.mmap))
        assert not world.db.coords.flags.writeable
        assert not world.db.tids.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            world.db.coords[0, 0] = 1.0

    def test_seed_override_is_part_of_the_key(self, tmp_path):
        cache = WorldCache(tmp_path)
        spec = small_spec()
        w5 = cache.load_or_build(spec, seed=5)
        w6 = cache.load_or_build(spec, seed=6)
        assert cache.misses == 2 and cache.counters()["entries"] == 2
        assert not np.array_equal(w5.db.coords, w6.db.coords)
        again = cache.load_or_build(spec, seed=5)
        assert cache.hits == 1
        assert_worlds_identical(w5, again)

    def test_no_census_world(self, tmp_path):
        cache = WorldCache(tmp_path)
        spec = small_spec().replace(census=None)
        cache.load_or_build(spec)
        assert cache.load_or_build(spec).census is None

    def test_store_requires_a_spec(self, tmp_path):
        with pytest.raises(TypeError, match="WorldSpec"):
            WorldCache(tmp_path).store(object())


class TestAtomicityAndEviction:
    def test_no_partial_entries_visible(self, tmp_path):
        cache = WorldCache(tmp_path)
        cache.load_or_build(small_spec())
        published = [p for p in cache.root.iterdir() if not p.name.startswith(".")]
        assert len(published) == 1
        assert (published[0] / "meta.json").is_file()
        # nothing staged left behind
        assert not list(cache.root.glob(".tmp-*"))

    def test_corrupt_entry_is_evicted_and_rebuilt(self, tmp_path):
        cache = WorldCache(tmp_path)
        spec = small_spec()
        path = cache.store(spec.build())
        (path / "xy.npy").write_bytes(b"garbage")
        with pytest.raises(WorldCacheError):
            cache.load(spec)
        world = cache.load_or_build(spec)  # evicts + rebuilds
        assert cache.misses == 1
        assert_worlds_identical(world, spec.build())
        assert_worlds_identical(cache.load_or_build(spec), world)

    def test_format_mismatch_rejected(self, tmp_path):
        cache = WorldCache(tmp_path)
        spec = small_spec()
        path = cache.store(spec.build())
        meta = json.loads((path / "meta.json").read_text())
        meta["format"] = meta["format"] + 1
        (path / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(WorldCacheError, match="format"):
            cache.load(spec)

    def test_hash_mismatch_rejected(self, tmp_path):
        cache = WorldCache(tmp_path)
        spec = small_spec()
        path = cache.store(spec.build())
        other = spec.with_size(301)
        renamed = cache.entry_path(other)
        os.rename(path, renamed)
        with pytest.raises(WorldCacheError, match="different world"):
            cache.load(other)

    def test_prune_staging_removes_foreign_leftovers(self, tmp_path):
        cache = WorldCache(tmp_path)
        stale = cache.root / ".tmp-deadbeef-99999999"
        stale.mkdir()
        mine = cache.root / f".tmp-cafe-{os.getpid()}"
        mine.mkdir()
        assert cache.prune_staging() == 1
        assert not stale.exists() and mine.exists()

    def test_evict(self, tmp_path):
        cache = WorldCache(tmp_path)
        spec = small_spec()
        cache.store(spec.build())
        assert cache.evict(spec) is True
        assert not cache.has(spec)
        assert cache.evict(spec) is False
