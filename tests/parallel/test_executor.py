"""run_many_parallel: bit-identity vs sequential, checkpoints, failures."""

import json
import os

import pytest

from repro.api import MaxSamples, Session, run_many
from repro.lbs import ObfuscationModel, RankingSpec
from repro.parallel import ParallelRunError, RunProgress, WorldCache, run_many_parallel
from repro.worlds import registry


@pytest.fixture(scope="module")
def lr_specs():
    """Plain LR COUNT runs over a clustered registry world, three seeds."""
    base = Session(registry.get("paper/clustered").with_size(300)).lr(k=5).count()
    return [base.seed(s).spec for s in (1, 2, 3)]


@pytest.fixture(scope="module")
def lnr_specs():
    """Obfuscated prominence-ranked LNR runs (the WeChat-style surface)."""
    base = (
        Session(registry.get("paper/places-prominence").with_size(250))
        .lnr(k=5)
        .service(
            obfuscation=ObfuscationModel(sigma=2.0, seed=11),
            ranking=RankingSpec.prominence("popularity"),
        )
        .count()
    )
    return [base.seed(s).spec for s in (4, 5)]


def sequential(specs, until):
    return [Session.from_spec(s).run(until) for s in specs]


def assert_results_identical(seq, par):
    assert len(seq) == len(par)
    for a, b in zip(seq, par):
        assert a.estimate == b.estimate
        assert a.queries == b.queries
        assert a.samples == b.samples
        assert a.trace == b.trace


class TestBitIdentity:
    def test_plain_lr_two_workers(self, lr_specs):
        until = MaxSamples(25)
        assert_results_identical(
            sequential(lr_specs, until),
            run_many_parallel(lr_specs, until, workers=2),
        )

    def test_obfuscated_prominence_lnr_two_workers(self, lnr_specs):
        until = MaxSamples(15)
        assert_results_identical(
            sequential(lnr_specs, until),
            run_many_parallel(lnr_specs, until, workers=2),
        )

    def test_one_worker_and_excess_workers_agree(self, lr_specs):
        until = MaxSamples(10)
        seq = sequential(lr_specs, until)
        assert_results_identical(seq, run_many_parallel(lr_specs, until, workers=1))
        assert_results_identical(seq, run_many_parallel(lr_specs, until, workers=5))

    def test_per_run_stopping_rules(self, lr_specs):
        untils = [MaxSamples(5), MaxSamples(10), MaxSamples(15)]
        par = run_many_parallel(lr_specs, untils, workers=2)
        assert [r.samples for r in par] == [5, 10, 15]
        assert_results_identical(
            [Session.from_spec(s).run(u) for s, u in zip(lr_specs, untils)], par
        )

    def test_census_weighted_runs(self):
        base = (Session(registry.get("paper/clustered").with_size(300))
                .lr(k=5).census_weighted().count())
        specs = [base.seed(s).spec for s in (7, 8)]
        until = MaxSamples(12)
        assert_results_identical(
            sequential(specs, until),
            run_many_parallel(specs, until, workers=2),
        )

    def test_world_loaded_through_cache(self, lr_specs, tmp_path):
        until = MaxSamples(10)
        cache = WorldCache(tmp_path)
        par = run_many_parallel(lr_specs, until, workers=2, cache=cache)
        assert cache.misses == 1
        assert_results_identical(sequential(lr_specs, until), par)
        # Second launch hits the cache and still matches.
        par2 = run_many_parallel(lr_specs, until, workers=2, cache=cache)
        assert cache.hits == 1
        assert_results_identical(par, par2)

    def test_prebuilt_world_supplied(self, lr_specs):
        until = MaxSamples(10)
        world = lr_specs[0].world.build()
        assert_results_identical(
            sequential(lr_specs, until),
            run_many_parallel(lr_specs, until, workers=2, world=world),
        )


class TestCheckpoints:
    def test_state_files_written_and_resume_continues_bit_identically(
        self, lr_specs, tmp_path
    ):
        ckpt = tmp_path / "ckpts"
        run_many_parallel(lr_specs, MaxSamples(20), workers=2,
                          checkpoint_dir=str(ckpt), state_every=10)
        files = sorted(os.listdir(ckpt))
        assert files == [f"run-{i:03d}.state.json" for i in range(len(lr_specs))]
        # Resume run 1 from its persisted JSON checkpoint and extend the
        # stream; the continued run must match one that never paused.
        state = json.loads((ckpt / "run-001.state.json").read_text())
        resumed = Session.resume(None, state, until=MaxSamples(40)).run()
        uninterrupted = Session.from_spec(lr_specs[1]).run(MaxSamples(40))
        assert resumed.estimate == uninterrupted.estimate
        assert resumed.queries == uninterrupted.queries
        assert resumed.samples == uninterrupted.samples
        assert resumed.trace == uninterrupted.trace

    def test_progress_streams_per_sample(self, lr_specs):
        events = []
        run_many_parallel(lr_specs, MaxSamples(8), workers=2,
                          on_progress=events.append)
        assert all(isinstance(e, RunProgress) for e in events)
        by_run = {}
        for e in events:
            by_run.setdefault(e.run_index, []).append(e.samples)
        assert set(by_run) == {0, 1, 2}
        for samples in by_run.values():
            assert samples == list(range(1, 9))  # every checkpoint, in order


class TestFailures:
    def test_failing_run_surfaces_spec_and_keeps_completed_results(
        self, tmp_path
    ):
        wspec = registry.get("paper/clustered").with_size(300).replace(census=None)
        good = Session(wspec).lr(k=5).count().seed(1).spec
        bad = good.replace(sampler="census", seed=2)  # no census grid: worker raises
        ckpt = tmp_path / "ckpts"
        with pytest.raises(ParallelRunError) as err:
            run_many_parallel([good, bad], MaxSamples(10), workers=2,
                              checkpoint_dir=str(ckpt), state_every=5)
        e = err.value
        assert [i for i, _s, _t in e.failures] == [1]
        assert "census" in e.failures[0][1]          # the failing spec's JSON
        assert "census" in e.failures[0][2]          # the worker traceback
        assert e.results[1] is None
        completed = e.results[0]
        assert completed is not None
        assert completed.estimate == Session.from_spec(good).run(MaxSamples(10)).estimate
        # The completed run's checkpoint file is preserved.
        assert (ckpt / "run-000.state.json").is_file()

    def test_all_specs_must_embed_the_same_world(self, lr_specs, lnr_specs):
        with pytest.raises(ValueError, match="different WorldSpec"):
            run_many_parallel([lr_specs[0], lnr_specs[0]], MaxSamples(5), workers=2)

    def test_spec_without_world_rejected(self, small_db):
        spec = Session(small_db).lr(k=5).count().spec
        assert spec.world is None
        with pytest.raises(ValueError, match="embed a WorldSpec"):
            run_many_parallel([spec], MaxSamples(5), workers=2)

    def test_adhoc_callable_condition_rejected_before_spawning(self, lr_specs):
        spec = lr_specs[0].replace()
        bad = Session.from_spec(spec).count(where=lambda t: True).spec
        with pytest.raises(ValueError, match="AttrEquals"):
            run_many_parallel([bad], MaxSamples(5), workers=2)

    def test_mismatched_world_override_rejected(self, lr_specs):
        other = registry.get("paper/uniform-10k").with_size(100).build()
        with pytest.raises(ValueError, match="does not match"):
            run_many_parallel(lr_specs, MaxSamples(5), workers=2, world=other)

    def test_bad_arguments(self, lr_specs):
        with pytest.raises(ValueError, match="workers"):
            run_many_parallel(lr_specs, MaxSamples(5), workers=0)
        with pytest.raises(ValueError, match="stopping rules"):
            run_many_parallel(lr_specs, [MaxSamples(5)], workers=2)
        assert run_many_parallel([], MaxSamples(5), workers=2) == []


class TestRunManyDoor:
    def test_run_many_workers_matches_sequential(self, lr_specs):
        until = MaxSamples(12)

        def fresh_runs():
            return [Session.from_spec(s).start(until) for s in lr_specs]

        seq = run_many(fresh_runs())
        par = run_many(fresh_runs(), workers=2)
        assert_results_identical(seq, par)

    def test_workers_with_shared_pool_rejected(self, lr_specs):
        runs = [Session.from_spec(s).start(MaxSamples(5)) for s in lr_specs]
        with pytest.raises(ValueError, match="shared query pool"):
            run_many(runs, max_total_queries=100, workers=2)

    def test_workers_with_advanced_run_rejected(self, lr_specs):
        runs = [Session.from_spec(s).start(MaxSamples(5)) for s in lr_specs]
        next(iter(runs[0]))  # advance one sample
        with pytest.raises(ValueError, match="fresh runs"):
            run_many(runs, workers=2)

    def test_workers_one_or_none_stays_sequential(self, lr_specs):
        runs = [Session.from_spec(s).start(MaxSamples(5)) for s in lr_specs]
        results = run_many(runs, workers=1)  # sequential round-robin path
        assert all(r.samples == 5 for r in results)
