"""SharedWorld: export/attach round trips, lifecycle, stale-segment sweep."""

import multiprocessing as mp
import os

import numpy as np
import pytest

from repro.api import MaxSamples, Session
from repro.parallel import SharedWorld, cleanup_stale_segments
from repro.parallel.sharedmem import _PREFIX, _SHM_DIR
from repro.worlds import registry


@pytest.fixture(scope="module")
def world():
    return registry.get("paper/clustered").with_size(300).build()


def _segment_names():
    try:
        return {e for e in os.listdir(_SHM_DIR) if e.startswith(_PREFIX + "-")}
    except OSError:
        return set()


class TestRoundTrip:
    def test_same_process_attach_is_value_identical(self, world):
        with SharedWorld.export(world) as shared:
            att = SharedWorld.attach(shared.descriptor())
            try:
                copy = att.world()
                assert np.array_equal(copy.db.coords, world.db.coords)
                assert np.array_equal(copy.db.tids, world.db.tids)
                assert copy.db.tuples() == world.db.tuples()
                assert copy.spec == world.spec
                assert np.array_equal(copy.census.weights, world.census.weights)
            finally:
                att.close()

    def test_attached_arrays_are_readonly(self, world):
        with SharedWorld.export(world) as shared:
            att = SharedWorld.attach(shared.descriptor())
            try:
                db = att.world().db
                assert not db.coords.flags.writeable
                with pytest.raises((ValueError, RuntimeError)):
                    db.coords[0, 0] = 99.0
            finally:
                att.close()

    def test_string_columns_round_trip(self):
        world = registry.get("wechat-like-1m").with_size(400).build()
        with SharedWorld.export(world) as shared:
            att = SharedWorld.attach(shared.descriptor())
            try:
                assert att.world().db.tuples() == world.db.tuples()
            finally:
                att.close()

    def test_extras_travel(self, world):
        eff = world.db.coords + 1.0
        with SharedWorld.export(world, extras={"eff": eff}) as shared:
            att = SharedWorld.attach(shared.descriptor())
            try:
                got = att.extra("eff")
                assert np.array_equal(got, eff)
                assert not got.flags.writeable
            finally:
                att.close()

    def test_estimation_over_attached_world_is_identical(self, world):
        with SharedWorld.export(world) as shared:
            att = SharedWorld.attach(shared.descriptor())
            try:
                r_shared = (Session(att.world()).lr(k=5).count().seed(2)
                            .run(MaxSamples(20)))
                r_local = (Session(world).lr(k=5).count().seed(2)
                           .run(MaxSamples(20)))
                assert r_shared.estimate == r_local.estimate
                assert r_shared.queries == r_local.queries
            finally:
                att.close()

    def test_descriptor_pickles_across_processes(self, world):
        ctx = mp.get_context()
        with SharedWorld.export(world) as shared:
            parent, child = ctx.Pipe()
            p = ctx.Process(target=_child_checksum,
                            args=(shared.descriptor(), child))
            p.start()
            got = parent.recv()
            p.join(timeout=30)
            assert p.exitcode == 0
            assert got == [
                float(world.db.coords.sum()),
                int(world.db.tids.sum()),
                len(world.db),
            ]

    def test_export_requires_a_spec(self, world):
        with pytest.raises(TypeError, match="WorldSpec"):
            SharedWorld.export(world.db)


def _child_checksum(descriptor, conn):
    att = SharedWorld.attach(descriptor)
    try:
        db = att.world().db
        conn.send([float(db.coords.sum()), int(db.tids.sum()), len(db)])
    finally:
        att.close()


class TestLifecycle:
    def test_destroy_removes_segments(self, world):
        before = _segment_names()
        shared = SharedWorld.export(world)
        created = _segment_names() - before
        assert created  # segments actually live in /dev/shm
        shared.destroy()
        assert not (_segment_names() & created)

    def test_destroy_is_idempotent_and_owner_only(self, world):
        shared = SharedWorld.export(world)
        att = SharedWorld.attach(shared.descriptor())
        with pytest.raises(RuntimeError, match="exporting process"):
            att.destroy()
        att.close()
        att.close()
        shared.destroy()
        shared.destroy()

    def test_attach_after_destroy_fails(self, world):
        shared = SharedWorld.export(world)
        descriptor = shared.descriptor()
        shared.destroy()
        with pytest.raises(FileNotFoundError):
            SharedWorld.attach(descriptor)

    def test_cleanup_stale_segments_sweeps_dead_pids_only(self, world):
        if not os.path.isdir(_SHM_DIR):
            pytest.skip("no /dev/shm on this platform")
        # Forge a segment owned by a pid that cannot exist.
        stale = f"{_PREFIX}-{0x7FFFFFFE:08x}-feedface"
        stale_path = os.path.join(_SHM_DIR, stale)
        with open(stale_path, "wb") as f:
            f.write(b"\0" * 16)
        shared = SharedWorld.export(world)  # live segments, our pid
        try:
            removed = cleanup_stale_segments()
            assert stale in removed
            assert not os.path.exists(stale_path)
            # Our live export is untouched.
            att = SharedWorld.attach(shared.descriptor())
            att.close()
        finally:
            shared.destroy()
            if os.path.exists(stale_path):
                os.unlink(stale_path)
