"""WorldCache crash consistency: torn entries are evicted, never served."""

import json

import pytest

from repro.parallel import WorldCache
from repro.parallel.worldcache import WorldCacheError
from repro.worlds import registry


@pytest.fixture
def spec():
    return registry.get("paper/clustered").with_size(200)


@pytest.fixture
def cache(tmp_path, spec):
    cache = WorldCache(tmp_path)
    cache.load_or_build(spec)  # publish one complete entry
    assert cache.misses == 1
    return cache


def _world_fingerprint(world):
    db = world.db
    return (len(db), db.coords.tobytes(), db.tids.tobytes())


class TestTornEntries:
    """Corruption injected into a *published* entry — simulating a torn
    write or partial disk state — must evict and rebuild, not serve
    garbage or crash."""

    @pytest.mark.parametrize("victim", ["xy.npy", "tids.npy", "col000.npy"])
    def test_truncated_array_evicts_and_rebuilds(self, cache, spec, victim):
        entry = cache.entry_path(spec)
        path = entry / victim
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])  # torn mid-array

        with pytest.raises(WorldCacheError):
            cache.load(spec)
        world = cache.load_or_build(spec)  # evicts, rebuilds, republishes
        assert cache.misses == 2
        assert _world_fingerprint(world) == _world_fingerprint(spec.build())
        # The republished entry is whole again and serves as a hit.
        cache.load_or_build(spec)
        assert cache.hits == 1

    def test_truncated_meta_json_evicts_and_rebuilds(self, cache, spec):
        meta = cache.entry_path(spec) / "meta.json"
        text = meta.read_text()
        meta.write_text(text[: len(text) // 2])  # torn mid-JSON

        with pytest.raises(WorldCacheError):
            cache.load(spec)
        world = cache.load_or_build(spec)
        assert cache.misses == 2
        assert _world_fingerprint(world) == _world_fingerprint(spec.build())

    def test_missing_array_file_evicts_and_rebuilds(self, cache, spec):
        (cache.entry_path(spec) / "xy.npy").unlink()

        with pytest.raises(WorldCacheError):
            cache.load(spec)
        assert cache.load_or_build(spec) is not None
        assert cache.misses == 2

    def test_zero_byte_array_evicts_and_rebuilds(self, cache, spec):
        # The extreme torn write: the file exists but holds nothing.
        (cache.entry_path(spec) / "tids.npy").write_bytes(b"")

        with pytest.raises(WorldCacheError):
            cache.load(spec)
        assert cache.load_or_build(spec) is not None
        assert cache.misses == 2

    def test_entry_claiming_wrong_world_evicts(self, cache, spec):
        # meta.json intact JSON but describing a different world than
        # the directory hash claims — e.g. a corrupted rename.
        meta_path = cache.entry_path(spec) / "meta.json"
        meta = json.loads(meta_path.read_text())
        other = registry.get("paper/clustered").with_size(150)
        meta["world"] = other.to_dict()
        meta_path.write_text(json.dumps(meta))

        with pytest.raises(WorldCacheError, match="different world"):
            cache.load(spec)
        world = cache.load_or_build(spec)
        assert cache.misses == 2
        assert _world_fingerprint(world) == _world_fingerprint(spec.build())

    def test_rebuilt_world_runs_bit_identically(self, cache, spec):
        """End to end: estimates over a rebuilt-after-corruption world
        match estimates over a freshly built one."""
        from repro.api import MaxSamples, Session

        entry = cache.entry_path(spec)
        data = (entry / "xy.npy").read_bytes()
        (entry / "xy.npy").write_bytes(data[:100])

        recovered = cache.load_or_build(spec)
        want = Session(spec.build()).lr(k=5).count().seed(4).run(MaxSamples(10))
        got = Session(recovered).lr(k=5).count().seed(4).run(MaxSamples(10))
        assert got.estimate == want.estimate
        assert got.queries == want.queries
        assert got.trace == want.trace
