"""parallel_knn_batch: bit-identity vs single-process, laziness, edges."""

import numpy as np
import pytest

from repro.index import BruteForceIndex, ShardedGridIndex
from repro.parallel import parallel_knn_batch
from repro.parallel.shardedknn import _assign_tiles_to_workers
from repro.worlds import registry


@pytest.fixture(scope="module")
def world():
    return registry.get("paper/clustered").with_size(3000).build()


@pytest.fixture(scope="module")
def queries(world):
    region = world.db.region
    rng = np.random.default_rng(21)
    u = rng.random((400, 2))
    return [(float(region.x0 + a * region.width),
             float(region.y0 + b * region.height)) for a, b in u]


@pytest.fixture(scope="module")
def oracle(world, queries):
    return BruteForceIndex.from_arrays(world.db.coords, world.db.tids)


class TestBitIdentity:
    def test_matches_oracle_two_workers(self, world, queries, oracle):
        ans = parallel_knn_batch(world, queries, 5, workers=2, tiles_per_side=3)
        assert ans == oracle.knn_batch(queries, 5)

    def test_matches_single_process_sharded(self, world, queries):
        single = ShardedGridIndex.from_arrays(
            world.db.coords, world.db.tids, tiles_per_side=3
        ).knn_batch(queries, 5)
        assert parallel_knn_batch(
            world, queries, 5, workers=2, tiles_per_side=3
        ) == single

    def test_workers_one_is_sequential_baseline(self, world, queries, oracle):
        ans = parallel_knn_batch(world, queries, 5, workers=1, tiles_per_side=3)
        assert ans == oracle.knn_batch(queries, 5)

    def test_k_exceeding_tile_population(self, world, queries, oracle):
        # ~333 points per tile at T=3: k=500 forces cross-tile merges in
        # every worker.
        ans = parallel_knn_batch(world, queries[:30], 500, workers=2,
                                 tiles_per_side=3)
        assert ans == oracle.knn_batch(queries[:30], 500)

    def test_more_workers_than_tiles(self, world, queries, oracle):
        ans = parallel_knn_batch(world, queries, 3, workers=5, tiles_per_side=2)
        assert ans == oracle.knn_batch(queries, 3)


class TestLazinessAndStats:
    def test_workers_build_tile_subsets(self, world, queries):
        _ans, stats = parallel_knn_batch(
            world, queries, 5, workers=2, tiles_per_side=4, return_stats=True
        )
        assert 1 <= len(stats) <= 2
        for s in stats:
            assert s["tiles_built"] < s["tiles_nonempty"]

    def test_empty_queries(self, world):
        assert parallel_knn_batch(world, [], 5, workers=2) == []

    def test_bad_args(self, world, queries):
        with pytest.raises(ValueError):
            parallel_knn_batch(world, queries, 5, workers=0)
        with pytest.raises(ValueError):
            parallel_knn_batch(world, queries, 0, workers=2)


class TestAssignment:
    def test_contiguous_balanced_partition(self):
        qt = np.array([0] * 10 + [1] * 10 + [2] * 10 + [3] * 10)
        buckets = _assign_tiles_to_workers(qt, 2)
        assert sorted(len(b) for b in buckets) == [20, 20]
        # whole tile groups, in tile order: worker 0 gets tiles {0, 1}
        assert sorted(qt[buckets[0]].tolist()) == [0] * 10 + [1] * 10
        assert sorted(qt[buckets[1]].tolist()) == [2] * 10 + [3] * 10

    def test_every_query_assigned_exactly_once(self):
        rng = np.random.default_rng(22)
        qt = rng.integers(0, 9, 500)
        buckets = _assign_tiles_to_workers(qt, 3)
        together = np.concatenate(buckets)
        assert sorted(together.tolist()) == list(range(500))

    def test_skewed_groups_rebalance(self):
        # one huge group + many small ones: later workers must not starve
        qt = np.array([0] * 90 + [1, 2, 3, 4, 5, 6])
        buckets = _assign_tiles_to_workers(qt, 3)
        nonempty = [b for b in buckets if len(b)]
        assert len(nonempty) >= 2
