"""Property-based equivalence of every SpatialIndex backend.

BruteForceIndex's single-point loops are the executable specification;
KdTree, GridIndex, and ShardedGridIndex — single-point and batched —
must match them answer-for-answer on randomized point sets, including
tie-breaking by id and inclusive radius boundaries.  The
interface-level test pins down ``max_radius`` filtering across
backends.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point, Rect
from repro.index import (
    BruteForceIndex,
    GridIndex,
    KdTree,
    QueryEngineConfig,
    ShardedGridIndex,
    SpatialIndex,
    make_index,
)
from repro.lbs import LbsTuple, LrLbsInterface, SpatialDatabase

coord = st.floats(min_value=-100, max_value=100, allow_nan=False)


def _sharded(points):
    # Force a multi-tile grid even at property-test sizes (the auto rule
    # would give one tile, which is just GridIndex behind a router).
    return ShardedGridIndex(points, tiles_per_side=3)


BACKENDS = [KdTree, GridIndex, BruteForceIndex, _sharded]


def build_all(points):
    return [cls(points) for cls in BACKENDS]


def oracle_knn(points, x, y, k):
    return BruteForceIndex(points).knn(x, y, k)


class TestKnnEquivalence:
    @given(
        st.lists(st.tuples(coord, coord), min_size=1, max_size=70),
        coord, coord, st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_all_backends_match_oracle(self, raw, qx, qy, k):
        pts = [(x, y, i) for i, (x, y) in enumerate(raw)]
        ref = oracle_knn(pts, qx, qy, k)
        for index in build_all(pts):
            assert index.knn(qx, qy, k) == ref, type(index).__name__

    @given(
        st.lists(st.tuples(coord, coord), min_size=1, max_size=50),
        st.lists(st.tuples(coord, coord), min_size=1, max_size=12),
        st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=50, deadline=None)
    def test_batch_equals_looped_single(self, raw, queries, k):
        pts = [(x, y, i) for i, (x, y) in enumerate(raw)]
        for index in build_all(pts):
            looped = [index.knn(x, y, k) for x, y in queries]
            assert index.knn_batch(queries, k) == looped, type(index).__name__

    def test_exact_tie_broken_by_id(self):
        # Two points equidistant from the query: the smaller id must win
        # in every backend, single and batched.
        pts = [(1.0, 0.0, 7), (-1.0, 0.0, 3)]
        for index in build_all(pts):
            assert index.knn(0, 0, 1)[0][1] == 3, type(index).__name__
            assert index.knn_batch([(0, 0)], 1)[0][0][1] == 3

    def test_duplicate_locations_tie_by_id(self):
        pts = [(5.0, 5.0, 9), (5.0, 5.0, 2), (1.0, 1.0, 1)]
        ref = oracle_knn(pts, 5, 5, 2)
        assert [item for _d, item in ref] == [2, 9]
        for index in build_all(pts):
            assert index.knn(5, 5, 2) == ref
            assert index.knn_batch([(5, 5)], 2) == [ref]

    def test_many_ties_on_circle(self):
        pts = [
            (np.cos(a), np.sin(a), i)
            for i, a in enumerate(np.linspace(0, 2 * np.pi, 9)[:-1])
        ]
        ref = oracle_knn(pts, 0, 0, 3)
        for index in build_all(pts):
            assert index.knn(0, 0, 3) == ref
            assert index.knn_batch([(0.0, 0.0)] * 3, 3) == [ref] * 3

    def test_k_of_zero_and_overlong_k(self):
        pts = [(0.0, 0.0, 0), (1.0, 1.0, 1)]
        for index in build_all(pts):
            assert index.knn(0.5, 0.5, 0) == []
            assert index.knn_batch([(0.5, 0.5)], 0) == [[]]
            assert len(index.knn(0.5, 0.5, 10)) == 2

    def test_empty_index(self):
        for index in build_all([]):
            assert index.knn(0, 0, 3) == []
            assert index.knn_batch([(0, 0), (1, 1)], 3) == [[], []]
            assert index.within_radius(0, 0, 5) == []
            assert index.range_batch([(0, 0)], 5) == [[]]


class TestRadiusEquivalence:
    @given(
        st.lists(st.tuples(coord, coord), min_size=1, max_size=50),
        coord, coord, st.floats(min_value=0, max_value=150),
    )
    @settings(max_examples=50, deadline=None)
    def test_all_backends_match_oracle(self, raw, qx, qy, r):
        pts = [(x, y, i) for i, (x, y) in enumerate(raw)]
        ref = BruteForceIndex(pts).within_radius(qx, qy, r)
        for index in build_all(pts):
            assert index.within_radius(qx, qy, r) == ref, type(index).__name__
            assert index.range_batch([(qx, qy)], r) == [ref]

    def test_inclusive_boundary(self):
        pts = [(3.0, 4.0, 0)]
        for index in build_all(pts):
            assert index.within_radius(0, 0, 5.0) == [(pytest.approx(5.0), 0)]
            assert index.range_batch([(0, 0)], 5.0)[0] == [(pytest.approx(5.0), 0)]

    def test_negative_radius(self):
        pts = [(0.0, 0.0, 0)]
        for index in build_all(pts):
            assert index.within_radius(0, 0, -1.0) == []
            assert index.range_batch([(0, 0)], -1.0) == [[]]

    @given(
        st.lists(st.tuples(coord, coord), min_size=1, max_size=40),
        st.lists(st.tuples(coord, coord), max_size=8),
        st.floats(min_value=0, max_value=120),
    )
    @settings(max_examples=40, deadline=None)
    def test_range_batch_ids_matches_range_batch(self, raw, queries, r):
        # The CSR form must carry exactly range_batch's items, in its
        # per-point order — every backend, empty query lists included.
        pts = [(x, y, i) for i, (x, y) in enumerate(raw)]
        for index in build_all(pts):
            lists = index.range_batch(queries, r)
            counts, items = index.range_batch_ids(queries, r)
            assert counts.tolist() == [len(lst) for lst in lists]
            assert items.tolist() == [tid for lst in lists for _d, tid in lst]


class TestClusteredEquivalence:
    """The estimator workloads are clustered; hammer that shape too."""

    def test_clustered_with_duplicates(self):
        rng = np.random.default_rng(42)
        centers = rng.random((6, 2)) * 100
        pts_xy = centers[rng.integers(0, 6, 300)] + rng.normal(0, 0.05, (300, 2))
        pts = [(float(x), float(y), i) for i, (x, y) in enumerate(pts_xy)]
        pts[10] = (pts[0][0], pts[0][1], 10)  # exact duplicate location
        queries = [(float(x), float(y)) for x, y in rng.random((40, 2)) * 120 - 10]
        oracle = BruteForceIndex(pts)
        for k in (1, 5, 30):
            ref = [oracle.knn(x, y, k) for x, y in queries]
            for index in build_all(pts):
                assert index.knn_batch(queries, k) == ref, (type(index).__name__, k)


class TestMakeIndex:
    def test_protocol_conformance(self):
        pts = [(0.0, 0.0, 0), (1.0, 1.0, 1)]
        for index in build_all(pts):
            assert isinstance(index, SpatialIndex)
            assert len(index) == 2

    def test_explicit_backends(self):
        pts = [(float(i), float(i), i) for i in range(10)]
        assert isinstance(make_index(pts, "kdtree"), KdTree)
        assert isinstance(make_index(pts, "grid"), GridIndex)
        assert isinstance(make_index(pts, "brute"), BruteForceIndex)
        assert isinstance(make_index(pts, "sharded"), ShardedGridIndex)

    def test_auto_picks_by_size(self):
        small = [(float(i), float(i), i) for i in range(10)]
        big = [(float(i), float(i % 17), i) for i in range(200)]
        assert isinstance(make_index(small, "auto"), BruteForceIndex)
        assert isinstance(make_index(big, "auto"), GridIndex)
        assert isinstance(make_index(big, "auto", auto_brute_max=500), BruteForceIndex)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            make_index([], "rtree")
        with pytest.raises(ValueError):
            QueryEngineConfig(index_backend="rtree")


class TestInterfaceMaxRadius:
    """max_radius filtering must not depend on the index backend."""

    @staticmethod
    def _db(n=60, seed=3):
        rng = np.random.default_rng(seed)
        region = Rect(0, 0, 100, 100)
        tuples = [
            LbsTuple(i, Point(rng.random() * 100, rng.random() * 100), {"i": i})
            for i in range(n)
        ]
        return SpatialDatabase(tuples, region)

    def test_backends_agree_under_max_radius(self):
        db = self._db()
        rng = np.random.default_rng(11)
        queries = [Point(rng.random() * 100, rng.random() * 100) for _ in range(25)]
        answers = {}
        for backend in ("kdtree", "grid", "brute", "sharded"):
            api = LrLbsInterface(
                db, k=8, max_radius=12.0,
                engine=QueryEngineConfig(index_backend=backend),
            )
            answers[backend] = [api.query(q) for q in queries]
            for ans in answers[backend]:
                for r in ans:
                    assert r.distance <= 12.0
        assert (answers["kdtree"] == answers["grid"] == answers["brute"]
                == answers["sharded"])
