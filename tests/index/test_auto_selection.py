"""Regression tests for the measured "auto" backend crossover.

The crossover was re-tuned on the ``repro.worlds`` registry scenarios
(≥100k-point Zipf-hotspot worlds; see the measurement table in
``QueryEngineConfig.auto_brute_max``): scalar kNN ties at n≈96 and the
grid wins from n=128 up, so ``auto`` hands tiny (sub-crossover)
databases to the vectorized brute scan and everything else to the grid.
These tests pin the *selection behaviour*, not the timings — a timing
re-run belongs in ``benchmarks/bench_scaling.py``.
"""

import numpy as np
import pytest

from repro.index import (
    BruteForceIndex,
    GridIndex,
    QueryEngineConfig,
    ShardedGridIndex,
    make_index,
)

#: The measured scalar-path crossover (brute wins below, grid above).
MEASURED_CROSSOVER = 96


def _pts(n, seed=0):
    rng = np.random.default_rng(seed)
    return [(float(x), float(y), i) for i, (x, y) in enumerate(rng.random((n, 2)) * 100)]


class TestAutoSelection:
    def test_default_matches_measured_crossover(self):
        assert QueryEngineConfig().auto_brute_max == MEASURED_CROSSOVER
        import inspect

        sig = inspect.signature(make_index)
        assert sig.parameters["auto_brute_max"].default == MEASURED_CROSSOVER

    @pytest.mark.parametrize("n", [1, 16, MEASURED_CROSSOVER])
    def test_auto_picks_brute_up_to_crossover(self, n):
        assert isinstance(make_index(_pts(n), "auto"), BruteForceIndex)

    @pytest.mark.parametrize("n", [MEASURED_CROSSOVER + 1, 512, 4096])
    def test_auto_picks_grid_past_crossover(self, n):
        assert isinstance(make_index(_pts(n), "auto"), GridIndex)

    def test_auto_honours_custom_threshold(self):
        assert isinstance(make_index(_pts(200), "auto", auto_brute_max=500),
                          BruteForceIndex)
        assert isinstance(make_index(_pts(20), "auto", auto_brute_max=10),
                          GridIndex)

    def test_auto_never_picks_sharded_by_default(self):
        # The measured reality (see QueryEngineConfig.auto_sharded_min):
        # the monolithic grid wins raw batch throughput at every size
        # measured, so sharding is an opt-in for build-dominated and
        # multi-process workloads, never an auto default.
        assert QueryEngineConfig().auto_sharded_min is None
        assert isinstance(make_index(_pts(4096), "auto"), GridIndex)

    def test_auto_honours_sharded_threshold(self):
        assert isinstance(
            make_index(_pts(512), "auto", auto_sharded_min=500),
            ShardedGridIndex,
        )
        assert isinstance(
            make_index(_pts(512), "auto", auto_sharded_min=1000),
            GridIndex,
        )
        # Brute still wins the bottom tier even with sharding enabled.
        assert isinstance(
            make_index(_pts(20), "auto", auto_sharded_min=10),
            BruteForceIndex,
        )

    def test_interface_threads_config_threshold(self):
        # The engine config's crossover reaches make_index through the
        # interface, so re-tuning the default re-tunes every service.
        from repro.geometry import Point, Rect
        from repro.lbs import LbsTuple, LrLbsInterface, SpatialDatabase

        db = SpatialDatabase(
            [LbsTuple(i, Point(float(x), float(y)), {})
             for x, y, i in _pts(60)],
            Rect(0, 0, 100, 100),
        )
        api = LrLbsInterface(db, k=3,
                             engine=QueryEngineConfig(auto_brute_max=10))
        assert isinstance(api._index, GridIndex)
        api = LrLbsInterface(db, k=3)
        assert isinstance(api._index, BruteForceIndex)
