"""ShardedGridIndex edge geometry, routing, and laziness.

The 4-backend property suite (test_index_equivalence) already holds the
sharded index to the oracle on randomized inputs; this module targets
the geometry the tiling itself introduces — queries *on* tile walls,
tiles too small for ``k``, empty tiles, both batch paths (per-tile
delegate and flat plane) — plus the registry-scenario sweep and the
interface-level views (filtered / subsample / obfuscated) the
acceptance bar names.
"""

import numpy as np
import pytest

from repro import worlds
from repro.geometry import Point, Rect
from repro.index import BruteForceIndex, QueryEngineConfig, ShardedGridIndex
from repro.index.sharded import auto_tiles_per_side, route_home_tiles
from repro.lbs import LbsTuple, LrLbsInterface, ObfuscationModel, SpatialDatabase


def _pts(n, seed=0, span=100.0):
    rng = np.random.default_rng(seed)
    xy = rng.random((n, 2)) * span
    return [(float(x), float(y), i) for i, (x, y) in enumerate(xy)]


def _oracle(pts):
    return BruteForceIndex(pts)


class TestTileBoundaryGeometry:
    def test_queries_on_tile_walls(self):
        # Queries placed exactly on every interior tile wall (and on the
        # corners where four tiles meet) must match the oracle: the
        # settled test uses strict inequality against wall clearance, so
        # a zero-clearance query always escalates rather than trusting
        # its home tile.
        pts = _pts(400, seed=1)
        idx = ShardedGridIndex(pts, tiles_per_side=4)
        oracle = _oracle(pts)
        walls_x = [idx._x0 + i * idx._tw for i in range(1, 4)]
        walls_y = [idx._y0 + j * idx._th for j in range(1, 4)]
        queries = (
            [(wx, 50.0) for wx in walls_x]
            + [(50.0, wy) for wy in walls_y]
            + [(wx, wy) for wx in walls_x for wy in walls_y]
        )
        for k in (1, 3, 17):
            ref = [oracle.knn(x, y, k) for x, y in queries]
            assert [idx.knn(x, y, k) for x, y in queries] == ref
            assert idx.knn_batch(queries, k) == ref
        for r in (0.0, 3.0, 40.0):
            for x, y in queries:
                assert idx.within_radius(x, y, r) == oracle.within_radius(x, y, r)

    def test_points_on_bbox_border(self):
        # Clipping assigns out-of-tile-range coordinates to border
        # tiles; the bbox corners themselves must round-trip.
        pts = [(0.0, 0.0, 0), (100.0, 100.0, 1), (0.0, 100.0, 2),
               (100.0, 0.0, 3), (50.0, 50.0, 4)]
        idx = ShardedGridIndex(pts, tiles_per_side=3)
        oracle = _oracle(pts)
        for x, y in [(0, 0), (100, 100), (0, 100), (100, 0), (50, 50), (-5, 105)]:
            assert idx.knn(x, y, 5) == oracle.knn(x, y, 5)


class TestSmallAndEmptyTiles:
    def test_k_larger_than_any_tile_population(self):
        # 9 tiles over 30 points: every tile holds ~3, so k=12 forces
        # cross-tile merging on every query.
        pts = _pts(30, seed=2)
        idx = ShardedGridIndex(pts, tiles_per_side=3)
        oracle = _oracle(pts)
        queries = [(x, y) for x, y, _i in _pts(25, seed=3, span=120.0)]
        ref = [oracle.knn(x, y, 12) for x, y in queries]
        assert [idx.knn(x, y, 12) for x, y in queries] == ref
        assert idx.knn_batch(queries, 12) == ref

    def test_empty_tiles(self):
        # All mass in one corner of a 4x4 tiling: most tiles are empty,
        # and far-away queries must still find the corner cluster.
        rng = np.random.default_rng(4)
        xy = rng.random((80, 2)) * 10.0
        pts = [(float(x), float(y), i) for i, (x, y) in enumerate(xy)]
        pts.append((100.0, 100.0, 80))  # stretch the bbox
        idx = ShardedGridIndex(pts, tiles_per_side=4)
        oracle = _oracle(pts)
        stats = idx.counters()
        assert stats["tiles_nonempty"] < 16
        for x, y in [(95.0, 95.0), (50.0, 50.0), (5.0, 95.0), (0.0, 0.0)]:
            assert idx.knn(x, y, 7) == oracle.knn(x, y, 7)
            assert idx.within_radius(x, y, 60.0) == oracle.within_radius(x, y, 60.0)

    def test_empty_index_and_single_point(self):
        empty = ShardedGridIndex([], tiles_per_side=2)
        assert empty.knn(0, 0, 3) == []
        assert empty.knn_batch([(0, 0)], 3) == [[]]
        assert empty.within_radius(0, 0, 1) == []
        one = ShardedGridIndex([(5.0, 5.0, 42)], tiles_per_side=2)
        assert one.knn(0, 0, 3) == _oracle([(5.0, 5.0, 42)]).knn(0, 0, 3)


class TestBatchPaths:
    """Both knn_batch routes — per-tile delegate and flat plane — are
    bit-identical to the oracle, and the delegate route stays lazy."""

    @staticmethod
    def _clustered(n=600, seed=5):
        rng = np.random.default_rng(seed)
        centers = np.array([[10.0, 10.0], [90.0, 85.0], [15.0, 80.0]])
        xy = centers[rng.integers(0, 3, n)] + rng.normal(0, 2.0, (n, 2))
        return [(float(x), float(y), i) for i, (x, y) in enumerate(xy)]

    def test_plane_path_matches_oracle(self):
        pts = self._clustered()
        idx = ShardedGridIndex(pts, tiles_per_side=3)
        oracle = _oracle(pts)
        rng = np.random.default_rng(6)
        queries = [(float(x), float(y)) for x, y in rng.random((300, 2)) * 110 - 5]
        # scattered homes keep m < homes * _DELEGATE_MIN_GROUP -> plane
        assert idx.knn_batch(queries, 5) == oracle.knn_batch(queries, 5)
        assert idx.counters()["batch_queries"] == 300

    def test_delegate_path_matches_oracle_and_stays_lazy(self):
        pts = self._clustered()
        idx = ShardedGridIndex(pts, tiles_per_side=3, prefer_delegate=True)
        oracle = _oracle(pts)
        rng = np.random.default_rng(7)
        # queries concentrated near one cluster: only that neighborhood
        # of tiles gets built
        queries = [(float(10 + dx), float(10 + dy))
                   for dx, dy in rng.normal(0, 3.0, (200, 2))]
        assert idx.knn_batch(queries, 5) == oracle.knn_batch(queries, 5)
        stats = idx.counters()
        assert stats["tiles_built"] < stats["tiles_nonempty"]

    def test_stats_accounting(self):
        pts = self._clustered()
        idx = ShardedGridIndex(pts, tiles_per_side=3)
        rng = np.random.default_rng(8)
        queries = [(float(x), float(y)) for x, y in rng.random((150, 2)) * 100]
        idx.knn_batch(queries, 4)
        s = idx.counters()
        assert (s["batch_settled"] + s["batch_escalated"] + s["batch_scalar"]
                == s["batch_queries"] == 150)
        # inner grid counters (satellite: the no-longer-silent fallback)
        inner = s["inner"]
        assert inner["batch_chunked"] + inner["batch_fallback"] \
            == inner["batch_queries"]


class TestRouting:
    def test_route_home_tiles_matches_index_geometry(self):
        pts = _pts(200, seed=9)
        data_xy = np.array([[x, y] for x, y, _i in pts])
        idx = ShardedGridIndex(pts, tiles_per_side=4)
        rng = np.random.default_rng(10)
        q = rng.random((100, 2)) * 120 - 10
        qt, t = route_home_tiles(data_xy, q, tiles_per_side=4)
        assert t == 4
        expect = [idx._tile_y(y) * 4 + idx._tile_x(x) for x, y in q]
        assert qt.tolist() == expect

    def test_auto_tiles_per_side(self):
        assert auto_tiles_per_side(0) == 1
        assert auto_tiles_per_side(10_000) == 1
        assert auto_tiles_per_side(1_000_000) >= 2
        # monotone non-decreasing, capped
        sides = [auto_tiles_per_side(n) for n in (10**3, 10**5, 10**6, 10**8, 10**12)]
        assert sides == sorted(sides)
        assert sides[-1] <= 32


class TestRegistryScenarios:
    """Every registry world: sharded == brute on all three query kinds
    (the acceptance sweep, shrunk to test-suite scale)."""

    @pytest.mark.parametrize("name", worlds.names())
    def test_world_equivalence(self, name):
        w = worlds.get(name).with_size(1500).build()
        db = w.db
        sharded = ShardedGridIndex.from_arrays(db.coords, db.tids,
                                               tiles_per_side=3)
        brute = BruteForceIndex.from_arrays(db.coords, db.tids)
        region = db.region
        rng = np.random.default_rng(11)
        u = rng.random((40, 2))
        qs = [(float(region.x0 + a * region.width),
               float(region.y0 + b * region.height)) for a, b in u]
        assert sharded.knn_batch(qs, 6) == brute.knn_batch(qs, 6)
        radius = 0.05 * region.width
        for x, y in qs[:10]:
            assert sharded.within_radius(x, y, radius) \
                == brute.within_radius(x, y, radius)
        sc, si = sharded.range_batch_ids(qs, radius)
        bc, bi = brute.range_batch_ids(qs, radius)
        assert sc.tolist() == bc.tolist()
        assert si.tolist() == bi.tolist()


class TestInterfaceViews:
    """filtered()/subsample() views and obfuscated interfaces over a
    sharded backend answer exactly like a brute-force one."""

    @staticmethod
    def _db(n=300, seed=12):
        rng = np.random.default_rng(seed)
        region = Rect(0, 0, 100, 100)
        tuples = [
            LbsTuple(i, Point(rng.random() * 100, rng.random() * 100),
                     {"even": bool(i % 2 == 0)})
            for i in range(n)
        ]
        return SpatialDatabase(tuples, region), region

    @staticmethod
    def _queries(seed=13, m=30):
        rng = np.random.default_rng(seed)
        return [Point(rng.random() * 100, rng.random() * 100) for _ in range(m)]

    def _apis(self, db, **kwargs):
        return {
            backend: LrLbsInterface(
                db, k=6, engine=QueryEngineConfig(index_backend=backend),
                **kwargs,
            )
            for backend in ("sharded", "brute")
        }

    def test_filtered_view_over_sharded_parent(self):
        db, _region = self._db()
        apis = self._apis(db)
        views = {b: api.filtered(lambda t: t.attrs["even"])
                 for b, api in apis.items()}
        for q in self._queries():
            assert views["sharded"].query(q) == views["brute"].query(q)
            for r in views["sharded"].query(q):
                assert r.attrs["even"]

    def test_subsampled_database(self):
        db, _region = self._db()
        sub = db.subsample(0.4, np.random.default_rng(14))
        apis = self._apis(sub)
        for q in self._queries(15):
            assert apis["sharded"].query(q) == apis["brute"].query(q)

    def test_obfuscated_interface(self):
        db, _region = self._db()
        apis = self._apis(db, obfuscation=ObfuscationModel(sigma=2.0, seed=3))
        for q in self._queries(16):
            assert apis["sharded"].query(q) == apis["brute"].query(q)

    def test_filtered_view_over_obfuscated_sharded_parent(self):
        db, _region = self._db()
        apis = self._apis(db, obfuscation=ObfuscationModel(sigma=2.0, seed=3))
        views = {b: api.filtered(lambda t: not t.attrs["even"])
                 for b, api in apis.items()}
        for q in self._queries(17):
            assert views["sharded"].query(q) == views["brute"].query(q)
