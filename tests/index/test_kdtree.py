"""KD-tree vs brute-force oracle, including tie handling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import BruteForceIndex, KdTree

coord = st.floats(min_value=-100, max_value=100, allow_nan=False)


def build_pair(points):
    return KdTree(points), BruteForceIndex(points)


class TestKnn:
    def test_empty_tree(self):
        kt = KdTree([])
        assert kt.knn(0, 0, 3) == []
        assert kt.within_radius(0, 0, 5) == []

    def test_k_zero(self):
        kt = KdTree([(0, 0, 1)])
        assert kt.knn(0, 0, 0) == []

    def test_k_larger_than_n(self):
        kt, bf = build_pair([(0, 0, 0), (1, 1, 1)])
        assert kt.knn(0.2, 0.2, 10) == bf.knn(0.2, 0.2, 10)

    def test_exact_tie_broken_by_id(self):
        # Two points equidistant from the query: smaller id must win.
        pts = [(1.0, 0.0, 7), (-1.0, 0.0, 3)]
        kt = KdTree(pts)
        assert kt.knn(0, 0, 1)[0][1] == 3

    def test_many_ties_on_circle(self):
        pts = [(np.cos(a), np.sin(a), i) for i, a in enumerate(np.linspace(0, 2 * np.pi, 9)[:-1])]
        kt, bf = build_pair(pts)
        assert kt.knn(0, 0, 3) == bf.knn(0, 0, 3)

    def test_duplicate_locations(self):
        pts = [(5.0, 5.0, 2), (5.0, 5.0, 9), (1.0, 1.0, 1)]
        kt, bf = build_pair(pts)
        assert kt.knn(5, 5, 2) == bf.knn(5, 5, 2)

    @given(
        st.lists(st.tuples(coord, coord), min_size=1, max_size=80),
        coord, coord, st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=120, deadline=None)
    def test_matches_brute_force(self, raw, qx, qy, k):
        pts = [(x, y, i) for i, (x, y) in enumerate(raw)]
        kt, bf = build_pair(pts)
        assert kt.knn(qx, qy, k) == bf.knn(qx, qy, k)

    def test_len(self):
        assert len(KdTree([(0, 0, 0), (1, 1, 1)])) == 2


class TestRadius:
    @given(
        st.lists(st.tuples(coord, coord), min_size=1, max_size=60),
        coord, coord, st.floats(min_value=0, max_value=150),
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_brute_force(self, raw, qx, qy, r):
        pts = [(x, y, i) for i, (x, y) in enumerate(raw)]
        kt, bf = build_pair(pts)
        assert kt.within_radius(qx, qy, r) == bf.within_radius(qx, qy, r)

    def test_negative_radius(self):
        kt = KdTree([(0, 0, 0)])
        assert kt.within_radius(0, 0, -1) == []

    def test_inclusive_boundary(self):
        kt = KdTree([(3, 4, 0)])
        assert kt.within_radius(0, 0, 5.0) == [(pytest.approx(5.0), 0)]
