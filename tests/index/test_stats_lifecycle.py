"""Index counter lifecycle: counters(), reset_stats(), deprecation shims.

Counters live for the *instance*: internal rebuilds must never zero them
(they used to, silently), and only an explicit ``reset_stats()`` does.
The legacy ``stats()`` spelling survives as a deprecation shim on every
carrier (grid, sharded, answer cache, world cache).
"""

import numpy as np
import pytest

from repro.geometry import Point, Rect
from repro.index.grid import GridIndex
from repro.index.sharded import ShardedGridIndex
from repro.lbs import LrLbsInterface
from repro.obs import registry as obs
from repro.parallel import WorldCache
from repro.worlds import registry as worlds


def _grid(n=200, seed=0):
    rng = np.random.default_rng(seed)
    xy = rng.random((n, 2)) * 100.0
    return GridIndex.from_arrays(xy, np.arange(n)), xy


class TestGridLifecycle:
    def test_counters_accumulate_and_reset_explicitly(self):
        idx, xy = _grid()
        idx.knn_batch([(10.0, 10.0), (50.0, 50.0)], 3)
        c = idx.counters()
        assert c["batch_queries"] == 2
        idx.reset_stats()
        assert idx.counters()["batch_queries"] == 0

    def test_counters_survive_internal_rebuild(self):
        idx, xy = _grid()
        idx.knn_batch([(10.0, 10.0)], 3)
        before = idx.counters()["batch_queries"]
        # An in-place rebuild (what from_arrays does under the hood) must
        # preserve the instance's counters — the silent-reset bug.
        idx._build(np.ascontiguousarray(xy[:, 0]), np.ascontiguousarray(xy[:, 1]),
                   list(range(len(xy))), 0.5)
        assert idx.counters()["batch_queries"] == before == 1

    def test_stats_shim_warns_and_matches_counters(self):
        idx, _xy = _grid()
        idx.knn_batch([(10.0, 10.0)], 3)
        with pytest.warns(DeprecationWarning, match="counters"):
            legacy = idx.stats()
        assert legacy == idx.counters()

    def test_registry_mirrors_batch_accounting(self):
        idx, _xy = _grid()
        with obs.collecting() as reg:
            idx.knn_batch([(10.0, 10.0), (20.0, 20.0), (30.0, 30.0)], 3)
            idx.knn(40.0, 40.0, 3)
        assert reg.get("index_queries_total",
                       {"backend": "grid", "mode": "batch"}) == 3.0
        assert reg.get("index_queries_total",
                       {"backend": "grid", "mode": "scalar"}) == 1.0
        assert reg.total("index_batch_queries_total") == 3.0


class TestShardedLifecycle:
    def _sharded(self, n=400, seed=1):
        rng = np.random.default_rng(seed)
        xy = rng.random((n, 2)) * 100.0
        return ShardedGridIndex.from_arrays(xy, np.arange(n), tiles_per_side=4)

    def test_reset_zeroes_inner_tiles_too(self):
        idx = self._sharded()
        idx.knn_batch([(10.0, 10.0), (90.0, 90.0)], 3)
        assert idx.counters()["batch_queries"] == 2
        idx.reset_stats()
        c = idx.counters()
        assert c["batch_queries"] == 0
        # Built tiles stay built; only their counters reset.
        assert c["tiles_built"] > 0
        assert c["inner"]["batch_queries"] == 0

    def test_stats_shim_warns(self):
        idx = self._sharded()
        with pytest.warns(DeprecationWarning, match="counters"):
            idx.stats()

    def test_inner_tiles_report_under_grid_backend(self):
        # prefer_delegate routes settled batches through the per-tile
        # GridIndex kernels, which count as grid — kernel-level
        # accounting, documented in counters().
        rng = np.random.default_rng(1)
        xy = rng.random((400, 2)) * 100.0
        idx = ShardedGridIndex.from_arrays(xy, np.arange(400),
                                           tiles_per_side=4,
                                           prefer_delegate=True)
        with obs.collecting() as reg:
            idx.knn_batch([(10.0, 10.0), (90.0, 90.0)], 3)
        assert reg.get("index_queries_total",
                       {"backend": "sharded", "mode": "batch"}) == 2.0
        assert reg.get("index_queries_total",
                       {"backend": "grid", "mode": "batch"}) is not None
        assert reg.total("index_tiles_built_total") > 0


class TestCacheShims:
    def test_answer_cache_stats_shim_warns(self, small_db):
        api = LrLbsInterface(small_db, k=3)
        api.query(Point(20, 30))
        with pytest.warns(DeprecationWarning, match="counters"):
            legacy = api._cache.stats()
        assert legacy == api._cache.counters()
        assert legacy["misses"] == 1

    def test_world_cache_stats_shim_warns(self, tmp_path):
        cache = WorldCache(tmp_path)
        spec = worlds.get("paper/uniform-10k").with_size(50)
        cache.load_or_build(spec)
        with pytest.warns(DeprecationWarning, match="counters"):
            legacy = cache.stats()
        assert legacy == cache.counters()
        assert legacy == {"hits": 0, "misses": 1, "entries": 1}

    def test_world_cache_registry_counters(self, tmp_path):
        cache = WorldCache(tmp_path)
        spec = worlds.get("paper/uniform-10k").with_size(50)
        with obs.collecting() as reg:
            cache.load_or_build(spec)
            cache.load_or_build(spec)
        assert reg.total("world_cache_misses_total") == 1.0
        assert reg.total("world_cache_hits_total") == 1.0
        # The build and the cache load each left a span behind.
        names = {r["name"] for r in reg.spans}
        assert "world_build" in names and "world_cache_load" in names
