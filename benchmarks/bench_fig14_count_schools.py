"""Figure 14 benchmark — COUNT(schools) cost vs error, three algorithms."""

from _bench_utils import finite, run_once

from repro.core import AggregateQuery
from repro.datasets import is_category
from repro.experiments.cost_vs_error import cost_vs_error_table


def test_fig14(benchmark, bench_world):
    query = AggregateQuery.count(lambda a, _l: a.get("category") == "school")
    truth = bench_world.db.ground_truth_count(is_category("school"))
    table = run_once(
        benchmark,
        lambda: cost_vs_error_table(
            "Figure 14 (bench) — COUNT(schools)",
            bench_world, query, truth,
            targets=(0.5, 0.3, 0.2), n_runs=3, max_queries=2500,
            lnr_max_queries=8000,
        ),
    )
    table.show()
    lr = finite(table.column("LR-LBS-AGG"))
    nno = finite(table.column("LR-LBS-NNO"))
    # Paper shape: LR-LBS-AGG dominates the NNO baseline overall.
    assert sum(lr) <= sum(nno) * 1.15
