"""Table 1 benchmark — the simulated online demonstrations."""

from _bench_utils import run_once

from repro.datasets import PoiConfig, UserConfig
from repro.experiments import table1_online
from repro.experiments.harness import poi_world, user_world


def test_table1(benchmark):
    poi = poi_world(
        seed=7,
        config=PoiConfig(n_restaurants=150, n_schools=30, n_banks=10, n_cafes=10),
        n_cities=10,
    )
    wechat = user_world(seed=11, config=UserConfig(n_users=120, male_fraction=0.671))
    weibo = user_world(seed=13, config=UserConfig(n_users=120, male_fraction=0.504))

    table, truths = run_once(
        benchmark,
        lambda: table1_online.run(
            poi, wechat, weibo, budget_places=1500, budget_social=4000,
        ),
    )
    table.show()
    est, truth = truths["starbucks"]
    assert abs(est - truth) / truth < 0.6  # small-budget slack
    est, truth = truths["wechat_ratio"]
    assert abs(est - truth) < 0.25
    est, truth = truths["weibo_ratio"]
    assert abs(est - truth) < 0.25
