"""Extra ablation — LNR cell bias vs the edge-error target ε.

Empirical check of Theorem 2 / Corollaries 1-2: the LNR cell-measure
error shrinks as ε does, while the per-cell query cost grows only
logarithmically.
"""

import numpy as np
from _bench_utils import run_once

from repro.core import LnrCellOracle, ObservationHistory
from repro.core.config import LnrAggConfig
from repro.geometry import true_voronoi_cell
from repro.lbs import LnrLbsInterface
from repro.sampling import UniformSampler


def test_edge_error_ablation(benchmark, bench_world):
    locs = bench_world.db.locations()
    tids = list(locs)[:6]
    box = bench_world.region

    def measure_errors(eps: float):
        api = LnrLbsInterface(bench_world.db, k=3)
        hist = ObservationHistory(api)
        oracle = LnrCellOracle(
            hist, UniformSampler(box), LnrAggConfig(h=1, edge_error=eps)
        )
        errs, cost0 = [], api.queries_used
        for tid in tids:
            out = oracle.compute(tid, locs[tid], h=1)
            others = [p for i, p in locs.items() if i != tid]
            truth = true_voronoi_cell(locs[tid], others, box).area()
            errs.append(abs(out.measure * box.area - truth) / truth)
        return float(np.mean(errs)), api.queries_used - cost0

    def compute():
        return {eps: measure_errors(eps) for eps in (4e-2, 1e-2, 1e-3)}

    results = run_once(benchmark, compute)
    for eps, (err, cost) in sorted(results.items(), reverse=True):
        print(f"eps={eps:8.0e}  mean cell rel-err={err:.5f}  queries={cost}")
    errs = [results[eps][0] for eps in (4e-2, 1e-2, 1e-3)]
    # Bias shrinks (weakly) with ε.
    assert errs[2] <= errs[0] + 1e-3
    costs = [results[eps][1] for eps in (4e-2, 1e-2, 1e-3)]
    # Cost grows, but sub-linearly in 1/ε (logarithmic per Corollary 1).
    assert costs[2] < costs[0] * 8
