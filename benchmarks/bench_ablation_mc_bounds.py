"""Extra ablation — the §3.2.4 Monte-Carlo finish on/off.

Not a paper figure on its own (it is the last rung of Fig. 20), but
DESIGN.md calls it out as a load-bearing design choice: the MC finish
must preserve the estimate while trimming refinement queries when the
bound is already tight.
"""

import numpy as np
from _bench_utils import run_once

from repro.core import AggregateQuery, LrLbsAgg
from repro.core.config import LrAggConfig
from repro.lbs import LrLbsInterface
from repro.sampling import UniformSampler


def test_mc_bounds_ablation(benchmark, bench_world):
    query = AggregateQuery.count()
    truth = len(bench_world.db)
    sampler = UniformSampler(bench_world.region)

    def run_variant(use_mc: bool, seed: int):
        api = LrLbsInterface(bench_world.db, k=3)
        agg = LrLbsAgg(
            api, sampler, query,
            LrAggConfig(use_mc_bounds=use_mc, mc_tightness=0.25), seed=seed,
        )
        return agg.run(n_samples=60)

    def compute():
        on = [run_variant(True, s) for s in range(3)]
        off = [run_variant(False, s) for s in range(3)]
        return on, off

    on, off = run_once(benchmark, compute)
    est_on = float(np.mean([r.estimate for r in on]))
    est_off = float(np.mean([r.estimate for r in off]))
    print(f"MC on : est={est_on:.1f}  queries={[r.queries for r in on]}")
    print(f"MC off: est={est_off:.1f}  queries={[r.queries for r in off]}")
    # Both remain unbiased estimators of the same truth.
    assert abs(est_on - truth) / truth < 0.5
    assert abs(est_off - truth) / truth < 0.5
