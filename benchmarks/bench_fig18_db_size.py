"""Figure 18 benchmark — cost at fixed error vs database fraction."""

from _bench_utils import finite, run_once

from repro.experiments import fig18_db_size


def test_fig18(benchmark, bench_world):
    table = run_once(
        benchmark,
        lambda: fig18_db_size.run(
            bench_world, fractions=(0.5, 1.0), rel_error=0.3,
            n_runs=3, max_queries=2500, include_lnr=False,
        ),
    )
    table.show()
    lr = finite(table.column("LR-LBS-AGG"))
    # Paper shape: cost does not blow up with database size (allow 3x
    # slack — the trend is near-flat, not strictly monotone).
    assert max(lr) <= 3.0 * max(min(lr), 1.0)
