"""Figure 11 benchmark — Voronoi cell-size skew of branded POIs."""

from _bench_utils import run_once

from repro.datasets import PoiConfig
from repro.experiments import fig11_voronoi_map
from repro.experiments.harness import poi_world


def test_fig11(benchmark):
    world = poi_world(
        seed=7,
        config=PoiConfig(n_restaurants=600, n_schools=20, n_banks=10, n_cafes=10),
        n_cities=20,
        base_sigma_fraction=0.012,
        rural_fraction=0.08,
    )
    table = run_once(benchmark, lambda: fig11_voronoi_map.run(world))
    table.show()
    ratio = dict(zip(table.column("statistic"), table.column("area")))["max/min ratio"]
    # Paper shape: cell sizes span orders of magnitude.
    assert ratio > 50.0
