"""Figure 13 benchmark — uniform vs census-weighted sampling."""

from _bench_utils import finite, run_once

from repro.datasets import PoiConfig
from repro.experiments import fig13_weighted_sampling
from repro.experiments.harness import poi_world


def test_fig13(benchmark):
    # A clustered world: that is where weighted sampling earns its keep.
    world = poi_world(
        seed=19,
        config=PoiConfig(n_restaurants=100, n_schools=120, n_banks=10, n_cafes=10),
        n_cities=12,
        base_sigma_fraction=0.02,
        rural_fraction=0.12,
    )
    table = run_once(
        benchmark,
        lambda: fig13_weighted_sampling.run(
            world, n_runs=3, max_queries=2500,
            targets=(0.5, 0.3, 0.2), include_lnr=False,
        ),
    )
    table.show()
    uniform = finite(table.column("LR-LBS-AGG"))
    weighted = finite(table.column("LR-LBS-AGG-US"))
    # Paper shape: weighted sampling is cheaper overall.
    assert sum(weighted) <= sum(uniform) * 1.1
