"""Helpers shared by the benchmark files."""


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are themselves repetitions over randomized runs;
    re-running them for timing statistics would only burn minutes.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def finite(values):
    """Numeric values of a table column, dropping '-' placeholders."""
    return [v for v in values if isinstance(v, (int, float)) and v is not None]
