"""Shared fixtures for the per-figure benchmarks.

Benchmarks regenerate every figure/table of the paper at a reduced scale
(small worlds, few runs, coarse targets) so the whole suite finishes in
minutes.  Each benchmark asserts the *shape* of the paper's result —
who wins, in which direction — not absolute numbers (see EXPERIMENTS.md).
"""

import pytest

from repro.datasets import PoiConfig, UserConfig
from repro.experiments.harness import World, poi_world, user_world
from repro.geometry import Rect

BENCH_BOX = Rect(0.0, 0.0, 200.0, 150.0)


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="run benchmarks at a reduced load (CI perf smoke)",
    )


@pytest.fixture(scope="session")
def bench_world() -> World:
    """A small POI world shared by the cost-figure benchmarks."""
    return poi_world(
        seed=7,
        region=BENCH_BOX,
        config=PoiConfig(n_restaurants=120, n_schools=80, n_banks=20, n_cafes=20),
        n_cities=10,
    )


@pytest.fixture(scope="session")
def bench_user_world() -> World:
    return user_world(
        seed=11,
        region=BENCH_BOX,
        config=UserConfig(n_users=150, male_fraction=0.671),
    )
