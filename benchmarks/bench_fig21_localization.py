"""Figure 21 benchmark — localization accuracy, plain vs obfuscated."""

import numpy as np
from _bench_utils import run_once

from repro.experiments import fig21_localization


def test_fig21(benchmark, bench_world):
    sigma = 2.0

    def compute():
        places = fig21_localization.localization_errors(
            bench_world, n_targets=12, obfuscation_sigma=0.0, seed=3
        )
        wechat = fig21_localization.localization_errors(
            bench_world, n_targets=12, obfuscation_sigma=sigma, seed=3
        )
        return places, wechat

    places, wechat = run_once(benchmark, compute)
    table = fig21_localization.run(bench_world, n_targets=12, obfuscation_sigma=sigma)
    table.show()
    # Paper shape: un-obfuscated localization is near-exact for most
    # targets; obfuscation sets a floor near its jitter scale.
    assert float(np.median(places)) < 0.2
    assert float(np.median(wechat)) > float(np.median(places))
