"""Figure 17 benchmark — AVG(rating) in the metro sub-region."""

from _bench_utils import finite, run_once

from repro.experiments import fig17_avg_rating_austin


def test_fig17(benchmark, bench_world):
    table = run_once(
        benchmark,
        lambda: fig17_avg_rating_austin.run(
            bench_world, n_runs=2, max_queries=1500, include_lnr=False,
        ),
    )
    table.show()
    lr = finite(table.column("LR-LBS-AGG"))
    nno = finite(table.column("LR-LBS-NNO"))
    # AVG is a ratio estimate: both converge fast, AGG at least as fast.
    assert sum(lr) <= sum(nno) * 1.25
