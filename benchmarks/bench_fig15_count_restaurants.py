"""Figure 15 benchmark — COUNT(restaurants) cost vs error."""

from _bench_utils import finite, run_once

from repro.core import AggregateQuery
from repro.datasets import is_category
from repro.experiments.cost_vs_error import cost_vs_error_table


def test_fig15(benchmark, bench_world):
    query = AggregateQuery.count(lambda a, _l: a.get("category") == "restaurant")
    truth = bench_world.db.ground_truth_count(is_category("restaurant"))
    table = run_once(
        benchmark,
        lambda: cost_vs_error_table(
            "Figure 15 (bench) — COUNT(restaurants)",
            bench_world, query, truth,
            # 6000 queries de-saturates the budget cap: LR actually
            # reaches every target (sum ~8.9k) while the biased NNO
            # stalls outside the tighter bands and gets charged the full
            # budget (sum ~14.9k) — at 2500 both series pinned at the
            # cap and the comparison degenerated to a coin flip.
            targets=(0.5, 0.3, 0.2), n_runs=3, max_queries=6000,
            lnr_max_queries=8000,
        ),
    )
    table.show()
    lr = finite(table.column("LR-LBS-AGG"))
    nno = finite(table.column("LR-LBS-NNO"))
    assert sum(lr) <= sum(nno) * 1.15
