"""Figure 19 benchmark — cost at fixed error vs h, fixed and adaptive."""

from _bench_utils import finite, run_once

from repro.experiments import fig19_vary_k


def test_fig19(benchmark, bench_world):
    table = run_once(
        benchmark,
        lambda: fig19_vary_k.run(
            bench_world, hs=(1, 2, 3), k=3, rel_error=0.3,
            n_runs=3, max_queries=2500, include_lnr=False,
        ),
    )
    table.show()
    rows = dict(zip(table.column("h"), table.column("LR-LBS-AGG")))
    costs = finite(rows.values())
    assert len(costs) == 4  # h = 1, 2, 3 and adaptive all measured
    # Paper shape: adaptive is competitive with the best fixed h (the
    # paper reports ~10 % savings at full scale; at bench scale the
    # selector's warm-up overhead dominates — measured 3.1-4.0x the best
    # fixed h on this clustered world across 2.5k-6k budgets, so the
    # slack only catches a catastrophic selector regression — see
    # EXPERIMENTS.md).
    assert rows["adaptive"] <= 4.5 * min(finite([rows[1], rows[2], rows[3]]))
    # ... and it must beat the *worst* fixed choice.
    assert rows["adaptive"] <= 1.2 * max(finite([rows[1], rows[2], rows[3]]))
