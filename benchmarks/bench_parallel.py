"""Perf smoke for ``repro.parallel``: world cache and process fan-out.

Two floors, measured over the ``wechat-like-1m`` registry scenario (the
paper's largest surface):

* **World cache** — a :class:`repro.parallel.WorldCache` hit (mmap-load
  of the stored arrays) must beat a cold ``WorldSpec.build`` by
  ``CACHE_FLOOR``x.  Unconditional: the cache's whole point is that a
  load is dramatically cheaper than regenerating the world, on any
  machine.
* **Parallel fan-out** — :func:`repro.parallel.run_many_parallel` at 2
  workers must finish the same batch of runs ``PARALLEL_FLOOR``x faster
  than at 1 worker (both pay the same export/fork machinery, so this is
  pure scaling).  Conditional on the machine actually having the cores:
  on fewer than 2 CPUs the measurement is recorded but not asserted.
* **Sharded kNN fan-out** — :func:`repro.parallel.parallel_knn_batch` at
  2 workers must beat the same call at 1 worker by ``SHARDED_FLOOR``x
  (queries are routed by home tile; each worker builds only the tiles
  its slice touches over the shared world).  Cpu-gated like the above.
* **Resilience** — one run driven through injected interface faults
  (:class:`repro.resilience.FaultSpec` + retry) must produce the exact
  result of the fault-free run (bit-identity is the assertion; the
  fault-path wall-clock ratio is recorded, not asserted — retries are
  ``sleep=False`` so the cost is pure re-draw work).

Runs standalone (``python benchmarks/bench_parallel.py [--quick] [--out
PATH]``) or under pytest (always the quick load — the CI smoke uploads
the JSON as an artifact).  The full mode runs the 1M world and adds a
4-worker point; the committed full-scale trajectory lives in
``BENCH_scaling.json`` (this file is the gate, that one is the record).
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.api import MaxSamples, Session
from repro.obs import MetricsRegistry
from repro.obs import registry as obs
from repro.parallel import WorldCache, parallel_knn_batch, run_many_parallel
from repro.resilience import FaultSpec, RetryPolicy
from repro import worlds

WORLD = "wechat-like-1m"
QUICK_N = 100_000
FULL_N = 1_000_000
RUNS = 6
#: Per-run stopping rule: long enough that per-sample estimation work
#: dominates the fixed export/fork/index overhead of a launch.
SAMPLES = {True: 40, False: 80}
WORKER_COUNTS = {True: (1, 2), False: (1, 2, 4)}
#: A cache hit mmap-loads arrays; even a small world clears 5x.
CACHE_FLOOR = 5.0
#: 2 workers vs 1, same machinery both sides (asserted when the
#: machine has >= 2 CPUs).
PARALLEL_FLOOR = 1.6
#: Sharded kNN fan-out: one batch of uniform queries routed by home
#: tile, 2 workers vs 1 over the same SharedWorld (cpu-gated the same
#: way).  The single-tile (one-worker) call is the baseline the ISSUE's
#: floor names.
SHARDED_FLOOR = 1.5
SHARDED_QUERIES = {True: 1_000, False: 4_000}
SHARDED_TILES = 4
SHARDED_K = 5

_REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = _REPO_ROOT / "BENCH_parallel.json"
DEFAULT_QUICK_OUT = _REPO_ROOT / "BENCH_parallel_quick.json"


def bench_world_cache(spec) -> dict:
    """Cold build vs store vs mmap-load hit, in a throwaway cache root."""
    gc.collect()
    t0 = time.perf_counter()
    world = spec.build()
    cold = time.perf_counter() - t0
    with tempfile.TemporaryDirectory() as root:
        cache = WorldCache(root)
        t0 = time.perf_counter()
        cache.store(world)
        store = time.perf_counter() - t0
        gc.collect()
        t0 = time.perf_counter()
        loaded = cache.load(spec)
        hit = time.perf_counter() - t0
        assert loaded is not None and len(loaded.db) == len(world.db)
    return {
        "cold_build_seconds": round(cold, 4),
        "store_seconds": round(store, 4),
        "hit_seconds": round(hit, 4),
        "hit_speedup": round(cold / hit, 1),
    }


def bench_parallel(spec, quick: bool) -> dict:
    """The same batch of runs at each worker count, wall-clocked."""
    world = spec.build()
    base = Session(world).lr(k=5).count()
    specs = [base.seed(s).spec for s in range(RUNS)]
    until = MaxSamples(SAMPLES[quick])
    out: dict = {
        "runs": RUNS,
        "samples_per_run": SAMPLES[quick],
        "workers": {},
    }
    baseline = None
    for w in WORKER_COUNTS[quick]:
        gc.collect()
        t0 = time.perf_counter()
        results = run_many_parallel(specs, until, workers=w, world=world)
        wall = time.perf_counter() - t0
        queries = sum(r.queries for r in results)
        entry = {
            "wall_seconds": round(wall, 3),
            "total_queries": queries,
            "aggregate_qps": round(queries / wall, 1),
        }
        if baseline is None:
            baseline = wall
        entry["speedup_vs_1"] = round(baseline / wall, 2)
        out["workers"][str(w)] = entry
    return out


def bench_sharded_knn(spec, quick: bool) -> dict:
    """One kNN batch fanned across workers by home tile."""
    world = spec.build()
    region = world.db.region
    nq = SHARDED_QUERIES[quick]
    rng = np.random.default_rng(20150810)
    u = rng.random((nq, 2))
    queries = [
        (float(region.x0 + a * region.width),
         float(region.y0 + b * region.height))
        for a, b in u
    ]
    out: dict = {
        "n_queries": nq,
        "k": SHARDED_K,
        "tiles_per_side": SHARDED_TILES,
        "workers": {},
    }
    baseline = None
    for w in WORKER_COUNTS[quick]:
        gc.collect()
        t0 = time.perf_counter()
        _answers, stats = parallel_knn_batch(
            world, queries, SHARDED_K, workers=w,
            tiles_per_side=SHARDED_TILES, return_stats=True,
        )
        wall = time.perf_counter() - t0
        if baseline is None:
            baseline = wall
        out["workers"][str(w)] = {
            "wall_seconds": round(wall, 3),
            "qps": round(nq / wall, 1),
            "speedup_vs_1": round(baseline / wall, 2),
            "tiles_built": [s["tiles_built"] for s in stats],
            "tiles_nonempty": stats[0]["tiles_nonempty"] if stats else 0,
        }
    return out


def bench_resilience(spec, quick: bool) -> dict:
    """One run through injected faults vs the same run fault-free.

    The gate is bit-identity (estimate/queries/trace equal exactly);
    the wall-clock ratio is informational — ``sleep=False`` retries
    cost only the re-drawn fault stream, not real backoff time.
    """
    world = spec.build()
    until = MaxSamples(SAMPLES[quick])
    base = Session(world).lr(k=5).count().seed(0)
    faulty = base.resilience(
        fault=FaultSpec(timeout_rate=0.05, rate_limit_rate=0.03,
                        drop_rate=0.02, seed=23),
        retry=RetryPolicy(max_attempts=10),
    )
    gc.collect()
    t0 = time.perf_counter()
    plain = base.run(until)
    plain_wall = time.perf_counter() - t0
    gc.collect()
    reg = MetricsRegistry()
    t0 = time.perf_counter()
    with obs.collecting(reg):
        recovered = faulty.run(until)
    faulty_wall = time.perf_counter() - t0
    return {
        "samples": SAMPLES[quick],
        "plain_wall_seconds": round(plain_wall, 3),
        "faulty_wall_seconds": round(faulty_wall, 3),
        "faulty_over_plain": round(faulty_wall / plain_wall, 2),
        "faults_injected": int(reg.total("faults_injected_total")),
        "retries": int(reg.total("retries_total")),
        "bit_identical": (recovered.estimate == plain.estimate
                          and recovered.queries == plain.queries
                          and recovered.trace == plain.trace),
    }


def run_bench(quick: bool = False) -> dict:
    n = QUICK_N if quick else FULL_N
    spec = worlds.get(WORLD).with_size(n)
    print(f"  {WORLD}@{n:,}: world cache ...")
    cache_row = bench_world_cache(spec)
    print(f"    cold {cache_row['cold_build_seconds']}s  "
          f"hit {cache_row['hit_seconds']}s  "
          f"({cache_row['hit_speedup']}x)")
    print(f"  {WORLD}@{n:,}: parallel fan-out ...")
    par_row = bench_parallel(spec, quick)
    for w, e in par_row["workers"].items():
        print(f"    workers={w}: {e['wall_seconds']}s  "
              f"{e['aggregate_qps']} q/s  ({e['speedup_vs_1']}x)")
    print(f"  {WORLD}@{n:,}: sharded kNN fan-out ...")
    sharded_row = bench_sharded_knn(spec, quick)
    for w, e in sharded_row["workers"].items():
        print(f"    workers={w}: {e['wall_seconds']}s  "
              f"{e['qps']} q/s  ({e['speedup_vs_1']}x)")
    print(f"  {WORLD}@{n:,}: resilience (faulty vs fault-free run) ...")
    res_row = bench_resilience(spec, quick)
    print(f"    plain {res_row['plain_wall_seconds']}s  "
          f"faulty {res_row['faulty_wall_seconds']}s  "
          f"({res_row['faulty_over_plain']}x, "
          f"{res_row['faults_injected']} faults, "
          f"{res_row['retries']} retries, "
          f"identical={res_row['bit_identical']})")
    return {
        "meta": {
            "world": WORLD,
            "n": n,
            "quick": quick,
            "cpu_count": os.cpu_count(),
            "cache_floor": CACHE_FLOOR,
            "parallel_floor": PARALLEL_FLOOR,
            "sharded_floor": SHARDED_FLOOR,
        },
        "world_cache": cache_row,
        "parallel": par_row,
        "sharded_knn": sharded_row,
        "resilience": res_row,
    }


def check_report(report: dict) -> None:
    """The CI floors; parallel scaling only where the cores exist."""
    cache = report["world_cache"]
    assert cache["hit_seconds"] > 0
    assert cache["hit_speedup"] >= CACHE_FLOOR, (
        f"world-cache hit only {cache['hit_speedup']}x a cold build "
        f"(floor {CACHE_FLOOR}x)"
    )
    workers = report["parallel"]["workers"]
    assert "1" in workers and "2" in workers
    for e in workers.values():
        assert e["aggregate_qps"] > 0
    sharded = report["sharded_knn"]["workers"]
    assert "1" in sharded and "2" in sharded
    for e in sharded.values():
        assert e["qps"] > 0
        assert e["tiles_nonempty"] > 0
    res = report["resilience"]
    assert res["faults_injected"] > 0, "fault stream never fired"
    assert res["retries"] > 0, "no fault was retried"
    assert res["bit_identical"], (
        "run through injected faults diverged from the fault-free run"
    )
    cpus = report["meta"]["cpu_count"] or 1
    if cpus >= 2:
        got = workers["2"]["speedup_vs_1"]
        assert got >= PARALLEL_FLOOR, (
            f"2 workers only {got}x one worker on a {cpus}-CPU machine "
            f"(floor {PARALLEL_FLOOR}x)"
        )
        got = sharded["2"]["speedup_vs_1"]
        assert got >= SHARDED_FLOOR, (
            f"sharded kNN fan-out at 2 workers only {got}x one worker "
            f"on a {cpus}-CPU machine (floor {SHARDED_FLOOR}x)"
        )
    else:
        print(f"    ({cpus} CPU: parallel floors recorded, not asserted)")


def write_report(report: dict, out: Path) -> None:
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")


def test_parallel_bench_quick(tmp_path):
    """CI smoke: cache-hit floor always; 2-worker floor when the runner
    has the cores.  Always the quick load under pytest."""
    report = run_bench(quick=True)
    out = tmp_path / "BENCH_parallel.json"
    write_report(report, out)
    check_report(json.loads(out.read_text()))


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="100k world, 1/2 workers (CI smoke)")
    parser.add_argument("--out", type=Path, default=None,
                        help=f"output JSON path (default {DEFAULT_OUT}, or "
                             f"{DEFAULT_QUICK_OUT} with --quick)")
    parser.add_argument("--metrics-out", type=Path, default=None,
                        help="collect repro.obs metrics across the bench and "
                             "write the registry snapshot to this JSON path")
    args = parser.parse_args()
    out = args.out if args.out is not None else (
        DEFAULT_QUICK_OUT if args.quick else DEFAULT_OUT
    )
    if args.metrics_out is not None:
        with obs.collecting() as reg:
            report = run_bench(quick=args.quick)
        args.metrics_out.write_text(
            json.dumps(reg.to_dict(), indent=1, sort_keys=True) + "\n"
        )
        print(f"wrote {args.metrics_out} (obs registry snapshot)")
    else:
        report = run_bench(quick=args.quick)
    check_report(report)
    write_report(report, out)
