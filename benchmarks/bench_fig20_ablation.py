"""Figure 20 benchmark — the §3.2 error-reduction ladder."""

from _bench_utils import finite, run_once

from repro.experiments import fig20_ablation


def test_fig20(benchmark, bench_world):
    table = run_once(
        benchmark,
        lambda: fig20_ablation.run(
            bench_world, targets=(0.5, 0.3, 0.2), n_runs=3, max_queries=2500, k=3,
        ),
    )
    table.show()
    bare = sum(finite(table.column("LR-LBS-AGG-0")))
    with_history = sum(finite(table.column("LR-LBS-AGG-2")))
    full = sum(finite(table.column("LR-LBS-AGG")))
    # Paper shape: history is the big win; the full stack beats the bare
    # baseline (small-scale noise gets 15 % slack).
    assert with_history <= bare * 1.05
    assert full <= bare * 1.15
