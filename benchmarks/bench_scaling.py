"""Scaling trajectory: registry worlds × sizes × backends × batch sizes.

Sweeps every ``repro.worlds`` registry scenario across population sizes
(10k → 1M generated tuples), spatial-index backends, and query batch
sizes, and writes the measurements to ``BENCH_scaling.json`` — the
bench trajectory every later perf PR (hierarchical grid, distance-
matrix prominence) is measured against.  Recorded per combination:

* world build time (sampling + tuple synthesis + census raster),
* database construction time down both ingest paths — ``row`` (legacy
  per-tuple ``LbsTuple`` assembly + shredding) vs ``columnar``
  (``synthesize_columns`` → ``SpatialDatabase.from_columns``, the
  default since the columnar core landed) — and their speedup,
* obfuscated-interface build time down both paths — the ``{tid: Point}``
  jitter dict + per-point clamp loop vs one columnar ``(N, 2)`` draw +
  vectorized clip/clamp + array-native index — and their speedup,
* index build time per backend (plus the index's own ``stats()``
  counters when it keeps them — the grid's chunked-vs-fallback split
  and the sharded index's settled/escalated routing),
* kNN throughput at each batch size (``1`` = the scalar single-query
  path; larger sizes go through the vectorized ``knn_batch`` kernel in
  chunks of that size),
* ``sharded_qps``: one kNN batch routed by home tile and fanned across
  worker processes over a SharedWorld (tiles × workers; each worker
  builds only the tiles its queries touch).

Backends that cannot sensibly run a size are *skipped and recorded*
(no silent caps): the pure-Python KD-tree build and the O(n)-per-query
brute scan are excluded at 1M.

Runs standalone (``python benchmarks/bench_scaling.py [--quick] [--out
PATH]``) or under pytest (the ``--quick`` CI smoke asserts the sweep's
structure and a modest batched-vs-scalar floor; absolute throughput
regressions are ``bench_query_engine.py``'s job).
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import worlds
from repro.api import MaxSamples, Session
from repro.index import make_index, make_index_arrays
from repro.index.sharded import auto_tiles_per_side
from repro.lbs import ObfuscationModel, SpatialDatabase
from repro.obs import registry as obs
from repro.parallel import WorldCache, parallel_knn_batch, run_many_parallel
from repro.worlds.attrs import synthesize_columns, synthesize_tuples

K = 5
#: Query batch sizes: the scalar path, a driver-sized batch, an
#: ingest-sized batch.
BATCH_SIZES = (1, 64, 512)
FULL_SIZES = {"10k": 10_000, "100k": 100_000, "1m": 1_000_000}
QUICK_SIZES = {"10k": 10_000}
#: Per-(backend, size) caps, recorded in the report when they bite.
BACKEND_MAX_N = {"grid": 1_000_000, "sharded": 1_000_000,
                 "kdtree": 100_000, "brute": 100_000}
#: Rough per-query cost ratios used to budget query counts so the full
#: sweep stays in minutes: brute is O(n) per query, the KD-tree batch
#: path just loops the scalar search.
_QUERY_BUDGET = {"grid": 4_000, "sharded": 4_000, "kdtree": 2_000,
                 "brute": 2_000}
#: The CI floor: on every world the grid's batched kernel must beat its
#: own scalar path by this factor at 10k points (a lost batch kernel
#: drops to ~1x; normal runs sit far above).
QUICK_BATCH_FLOOR = 2.0
#: Process fan-out measured at each worker count per sweep cell; the
#: same batch of LR COUNT runs each time, so ``speedup_vs_1`` is pure
#: scaling (every worker count pays the same export/fork machinery).
PARALLEL_WORKERS = (1, 2, 4)
PARALLEL_RUNS = 4
PARALLEL_SAMPLES = {True: 10, False: 25}
#: World-cache hit (mmap load) vs cold build floors, by size.  At 10k a
#: build is milliseconds and the ratio is noise; no floor there.
CACHE_FLOOR_1M = 5.0
CACHE_FLOOR_100K = 2.0
#: 4 workers vs 1 on the full-scale wechat world — only meaningful on a
#: machine that has the cores, so the assertion is cpu-gated.
PARALLEL_FLOOR_4W = 3.0
#: One kNN batch fanned across workers by home tile (sharded_qps rows);
#: query count per measurement, and the cpu-gated 2-worker floor on the
#: full-scale wechat world.
SHARDED_QUERIES = {True: 1_000, False: 4_000}
SHARDED_FLOOR_2W = 1.5
#: GridIndex's batched kernel may drop heavy-tail queries to the exact
#: per-query path; the ``stats()`` counters make that visible, and this
#: budget caps the fraction (measured: 0% on paper/clustered at 10k-1M,
#: 0.05% on wechat-like-1m — a regression to per-query search shows up
#: as a jump toward 1.0 long before wall-clock makes it obvious).
GRID_FALLBACK_BUDGET = 0.05
#: Batched kNN over the clustered world must beat its own scalar path
#: by this factor from 100k points up (measured 5.8x at 100k, ~6x at
#: 1M; the 10k cells sit at ~4.7x and stay under the generic
#: QUICK_BATCH_FLOOR instead).
CLUSTERED_BATCH_FLOOR = 5.0
#: Instrumentation must stay free when nobody collects *and* near-free
#: when someone does: grid ``knn_batch`` with an active obs registry may
#: run at most this fraction slower than with registration disabled
#: (min-of-reps, interleaved).  The hot path pays a handful of counter
#: increments per batch chunk, so the true cost is ~0.1%; the budget
#: leaves room for timer noise.
OBS_OVERHEAD_BUDGET = 0.02
OBS_OVERHEAD_N = {True: 100_000, False: 1_000_000}
OBS_OVERHEAD_QUERIES = {True: 4_000, False: 8_000}
OBS_OVERHEAD_REPS = 7

_REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = _REPO_ROOT / "BENCH_scaling.json"
#: Quick runs default elsewhere so a smoke run (local or the CI step,
#: which uploads this path as its artifact) never clobbers the committed
#: full-scale trajectory.
DEFAULT_QUICK_OUT = _REPO_ROOT / "BENCH_scaling_quick.json"


def _n_queries(backend: str, n: int, batch: int, quick: bool) -> int:
    budget = _QUERY_BUDGET[backend] // (4 if quick else 1)
    if backend == "brute":
        # O(n) per query: hold point-ops roughly constant across sizes —
        # and the interpreted scalar loop pays ~10x the batch kernel's
        # per-query cost, so it gets a 10x smaller budget.
        ops = 2e7 if batch == 1 else 2e8
        return max(100, min(budget, int(ops / max(n, 1))))
    if backend == "kdtree" and n > 10_000:
        return max(200, budget // 4)
    return budget


def bench_ingest(spec) -> dict:
    """Database construction down both ingest paths, same synthesis
    stream (the `build_seconds` column of the perf trajectory)."""
    timings = {}
    for label in ("row", "columnar"):
        rng, rect, xy, labels = spec.synthesis_inputs()
        gc.collect()  # keep cyclic-gc pauses out of the timed region
        t0 = time.perf_counter()
        if label == "row":
            SpatialDatabase(synthesize_tuples(rng, xy, labels, spec.attrs), rect)
        else:
            SpatialDatabase.from_columns(
                *synthesize_columns(rng, xy, labels, spec.attrs), rect
            )
        timings[label] = time.perf_counter() - t0
    return {
        "db_row_seconds": round(timings["row"], 4),
        "db_columnar_seconds": round(timings["columnar"], 4),
        "ingest_speedup": round(timings["row"] / timings["columnar"], 2),
    }


def bench_obfuscated_build(db) -> dict:
    """Obfuscated-interface build down both paths: one ``(N, 2)`` jitter
    draw + vectorized clip/clamp + array-native index (columnar) vs the
    ``{tid: Point}`` dict, ``region.clamp`` loop, and triple-list index
    it replaced (the ``obfuscated_build_seconds`` trajectory column)."""
    region = db.region
    sigma = 0.01 * max(region.width, region.height)
    model = ObfuscationModel(sigma=sigma, seed=9, clip=2.5 * sigma)

    # Columnar first, so the row path pays its own lazy-tuple
    # materialization rather than inheriting a warm cache.
    gc.collect()
    t0 = time.perf_counter()
    eff = model.effective_coords(db.coords, db.tids)
    eff[:, 0] = np.minimum(np.maximum(eff[:, 0], region.x0), region.x1)
    eff[:, 1] = np.minimum(np.maximum(eff[:, 1], region.y0), region.y1)
    idx_col = make_index_arrays(eff, db.tids, "grid")
    t_col = time.perf_counter() - t0

    gc.collect()
    t0 = time.perf_counter()
    locations = model.effective_locations(db.tuples())
    clamped = {tid: region.clamp(p) for tid, p in locations.items()}
    idx_row = make_index([(p.x, p.y, tid) for tid, p in clamped.items()], "grid")
    t_row = time.perf_counter() - t0

    probe = (region.x0 + 0.37 * region.width, region.y0 + 0.61 * region.height)
    if idx_col.knn(*probe, K) != idx_row.knn(*probe, K):
        raise AssertionError("columnar obfuscated build diverges from the row path")
    return {
        "row": round(t_row, 4),
        "columnar": round(t_col, 4),
        "speedup": round(t_row / t_col, 2),
    }


def bench_world_cache(world, build_s: float) -> dict:
    """Cold build vs store vs mmap-load hit (throwaway cache root)."""
    spec = world.spec
    with tempfile.TemporaryDirectory() as root:
        cache = WorldCache(root)
        t0 = time.perf_counter()
        cache.store(world)
        store_s = time.perf_counter() - t0
        gc.collect()
        t0 = time.perf_counter()
        loaded = cache.load(spec)
        hit_s = time.perf_counter() - t0
        assert loaded is not None and len(loaded.db) == len(world.db)
    return {
        "cold_build": round(build_s, 4),
        "store": round(store_s, 4),
        "hit": round(hit_s, 4),
        "hit_speedup": round(build_s / hit_s, 1),
    }


def bench_parallel_runs(world, quick: bool) -> dict:
    """The same batch of LR COUNT runs at each worker count."""
    base = Session(world).lr(k=5).count()
    specs = [base.seed(s).spec for s in range(PARALLEL_RUNS)]
    until = MaxSamples(PARALLEL_SAMPLES[quick])
    out: dict = {
        "runs": PARALLEL_RUNS,
        "samples_per_run": PARALLEL_SAMPLES[quick],
        "workers": {},
    }
    baseline = None
    for w in PARALLEL_WORKERS:
        gc.collect()
        t0 = time.perf_counter()
        results = run_many_parallel(specs, until, workers=w, world=world)
        wall = time.perf_counter() - t0
        queries = sum(r.queries for r in results)
        if baseline is None:
            baseline = wall
        out["workers"][str(w)] = {
            "wall_seconds": round(wall, 3),
            "aggregate_qps": round(queries / wall, 1),
            "speedup_vs_1": round(baseline / wall, 2),
        }
    return out


def bench_sharded_parallel(world, quick: bool,
                           rng: np.random.Generator) -> dict:
    """One kNN batch fanned across workers by home tile.

    Every worker count pays the same SharedWorld export, fork, and
    per-worker shell build, so ``speedup_vs_1`` is the scaling of the
    real end-to-end path (dominated by the touched-tile builds, which
    is exactly the work the sharding splits).  The tile count is forced
    to at least 4 per side so multi-worker rows have tile groups to
    split even at quick scale.
    """
    n = len(world.db)
    tiles = max(4, auto_tiles_per_side(n))
    region = world.db.region
    nq = SHARDED_QUERIES[quick]
    u = rng.random((nq, 2))
    queries = [
        (float(region.x0 + ux * region.width),
         float(region.y0 + uy * region.height))
        for ux, uy in u
    ]
    out: dict = {
        "n_queries": nq,
        "k": K,
        "tiles_per_side": tiles,
        "workers": {},
    }
    baseline = None
    for w in PARALLEL_WORKERS:
        gc.collect()
        t0 = time.perf_counter()
        _answers, stats = parallel_knn_batch(
            world, queries, K, workers=w, tiles_per_side=tiles,
            return_stats=True,
        )
        wall = time.perf_counter() - t0
        if baseline is None:
            baseline = wall
        out["workers"][str(w)] = {
            "wall_seconds": round(wall, 3),
            "qps": round(nq / wall, 1),
            "speedup_vs_1": round(baseline / wall, 2),
            "tiles_built": [s["tiles_built"] for s in stats],
            "tiles_nonempty": stats[0]["tiles_nonempty"] if stats else 0,
        }
    return out


def bench_obs_overhead(quick: bool, rng: np.random.Generator) -> dict:
    """Enabled-vs-disabled cost of the obs registry on the hottest path.

    Runs the same grid ``knn_batch`` workload with metrics collection
    active and inactive, interleaved (so thermal/cache drift hits both
    arms alike), and reports the min-of-reps ratio.  ``check_report``
    holds ``overhead_frac`` to :data:`OBS_OVERHEAD_BUDGET` — the CI
    gate that keeps instrumentation off the perf trajectory.
    """
    n = OBS_OVERHEAD_N[quick]
    spec = worlds.get("wechat-like-1m").with_size(n)
    world = spec.build()
    db = world.db
    region = db.region
    index = make_index_arrays(db.coords, db.tids, "grid")
    nq = OBS_OVERHEAD_QUERIES[quick]
    batch = 512
    u = rng.random((nq, 2))
    queries = [
        (float(region.x0 + ux * region.width),
         float(region.y0 + uy * region.height))
        for ux, uy in u
    ]

    def run_once() -> float:
        gc.collect()
        t0 = time.perf_counter()
        for i in range(0, nq, batch):
            index.knn_batch(queries[i:i + batch], K)
        return time.perf_counter() - t0

    run_once()  # warm the kernel and allocator before timing either arm
    reg = obs.MetricsRegistry()
    t_off = t_on = float("inf")
    for _ in range(OBS_OVERHEAD_REPS):
        with obs.paused():
            t_off = min(t_off, run_once())
        with obs.collecting(reg):
            t_on = min(t_on, run_once())
    return {
        "n": n,
        "n_queries": nq,
        "batch": batch,
        "reps": OBS_OVERHEAD_REPS,
        "disabled_seconds": round(t_off, 4),
        "enabled_seconds": round(t_on, 4),
        "overhead_frac": round(t_on / t_off - 1.0, 4),
    }


def bench_world(name: str, n: int, quick: bool, rng: np.random.Generator) -> dict:
    """One world at one size: build it, then sweep backends × batches."""
    spec = worlds.get(name).with_size(n)
    t0 = time.perf_counter()
    world = spec.build()
    build_s = time.perf_counter() - t0
    region = world.region
    xy = world.db.coords
    tids = world.db.tids

    row = {
        "world": name,
        "n": n,
        "n_visible": len(world.db),
        "world_build_seconds": round(build_s, 4),
        "build_seconds": bench_ingest(spec),
        "backends": {},
        "skipped": [],
    }
    for backend, max_n in BACKEND_MAX_N.items():
        if n > max_n:
            row["skipped"].append({
                "backend": backend,
                "reason": f"{backend} capped at {max_n:,} points "
                          f"(build/query cost is super-linear in wall-clock)",
            })
            continue
        # Collect before every timed region: the row-path builds above
        # (this cell's and earlier cells') leave large dead object
        # populations whose cyclic-gc pauses would otherwise land
        # inside the query timing loops.
        gc.collect()
        t0 = time.perf_counter()
        index = make_index_arrays(xy, tids, backend)
        index_s = time.perf_counter() - t0
        qps: dict[str, float] = {}
        n_queries: dict[str, int] = {}
        for batch in BATCH_SIZES:
            nq = _n_queries(backend, n, batch, quick)
            u = rng.random((nq, 2))
            queries = [
                (float(region.x0 + ux * region.width),
                 float(region.y0 + uy * region.height))
                for ux, uy in u
            ]
            gc.collect()
            t0 = time.perf_counter()
            if batch == 1:
                for x, y in queries:
                    index.knn(x, y, K)
            else:
                for i in range(0, nq, batch):
                    index.knn_batch(queries[i:i + batch], K)
            dt = time.perf_counter() - t0
            qps[str(batch)] = round(nq / dt, 1)
            n_queries[str(batch)] = nq
        entry = {
            "index_build_seconds": round(index_s, 4),
            "n_queries": n_queries,
            "qps": qps,
        }
        counters_fn = getattr(index, "counters", None)
        if counters_fn is not None:
            # Routing/fallback counters (grid: chunked vs per-query
            # fallback; sharded: settled vs escalated, tiles built) —
            # the no-longer-silent heavy-tail accounting.
            entry["stats"] = counters_fn()
        row["backends"][backend] = entry
    # Last: its row path materializes (and caches) every LbsTuple on
    # world.db, a population the query timings above must never carry.
    row["obfuscated_build_seconds"] = bench_obfuscated_build(world.db)
    # The repro.parallel columns ride after the query timings too: the
    # cache store walks every column and the fan-out forks the (by now
    # tuple-heavy) process — neither may sit inside a timed knn loop.
    row["world_cache_seconds"] = bench_world_cache(world, build_s)
    row["parallel_qps"] = bench_parallel_runs(world, quick)
    row["sharded_qps"] = bench_sharded_parallel(world, quick, rng)
    return row


def run_bench(quick: bool = False) -> dict:
    sizes = QUICK_SIZES if quick else FULL_SIZES
    rng = np.random.default_rng(20150810)  # the paper's PVLDB issue date
    results = []
    for name in worlds.names():
        for label, n in sizes.items():
            t0 = time.perf_counter()
            row = bench_world(name, n, quick, rng)
            print(f"  {name:24s} {label:>5s}  "
                  f"build {row['world_build_seconds']:7.2f}s  "
                  f"{len(row['backends'])} backends  "
                  f"({time.perf_counter() - t0:6.1f}s total)")
            results.append(row)
    overhead = bench_obs_overhead(quick, rng)
    print(f"  obs overhead: {overhead['overhead_frac']:+.2%} "
          f"(enabled {overhead['enabled_seconds']}s vs "
          f"disabled {overhead['disabled_seconds']}s, "
          f"grid knn_batch @ {overhead['n']:,} points)")
    return {
        "meta": {
            "k": K,
            "quick": quick,
            "batch_sizes": list(BATCH_SIZES),
            "sizes": sizes,
            "backend_max_n": BACKEND_MAX_N,
            "worlds": worlds.names(),
            "cpu_count": os.cpu_count(),
            "parallel_workers": list(PARALLEL_WORKERS),
            "sharded_queries": SHARDED_QUERIES[quick],
        },
        "obs_overhead": overhead,
        "results": results,
    }


def check_report(report: dict) -> None:
    """Structural floor shared by CI and the standalone run."""
    meta = report["meta"]
    world_names = set(meta["worlds"])
    assert len(world_names) >= 6, "registry must offer >= 6 worlds"
    overhead = report["obs_overhead"]
    assert overhead["overhead_frac"] <= OBS_OVERHEAD_BUDGET, (
        f"obs instrumentation costs {overhead['overhead_frac']:+.2%} on the "
        f"grid knn_batch hot path (budget {OBS_OVERHEAD_BUDGET:.0%}) — a "
        f"guard moved off the `reg is None` fast path?"
    )
    seen = {(r["world"], r["n"]) for r in report["results"]}
    for name in world_names:
        for n in meta["sizes"].values():
            assert (name, n) in seen, f"missing sweep cell {name}@{n}"
    for row in report["results"]:
        assert row["backends"], f"{row['world']}@{row['n']}: no backend ran"
        build = row["build_seconds"]
        assert build["db_columnar_seconds"] > 0 and build["db_row_seconds"] > 0
        obf = row["obfuscated_build_seconds"]
        assert obf["row"] > 0 and obf["columnar"] > 0
        if row["n"] >= 100_000:
            # At scale the columnar paths must stay clearly ahead; the
            # hard 5x CI gates live in bench_query_engine.py.
            assert build["ingest_speedup"] >= 2.0, (
                f"{row['world']}@{row['n']}: columnar ingest only "
                f"{build['ingest_speedup']}x the row path"
            )
            assert obf["speedup"] >= 2.0, (
                f"{row['world']}@{row['n']}: columnar obfuscated build only "
                f"{obf['speedup']}x the row path"
            )
        for backend, data in row["backends"].items():
            for batch, qps in data["qps"].items():
                assert qps > 0, f"{row['world']}@{row['n']}:{backend}:{batch}"
        if "grid" in row["backends"]:
            # The clustered regression budget: the batched kernel's
            # per-query fallback must stay a rounding error, or the
            # batch speedups below are quietly rotting.
            stats = row["backends"]["grid"].get("stats", {})
            total = stats.get("batch_queries", 0)
            if total:
                frac = stats["batch_fallback"] / total
                assert frac <= GRID_FALLBACK_BUDGET, (
                    f"{row['world']}@{row['n']}: grid batch kernel fell "
                    f"back to per-query search on {frac:.1%} of queries "
                    f"(budget {GRID_FALLBACK_BUDGET:.0%})"
                )
        if row["n"] == 10_000 and "grid" in row["backends"]:
            g = row["backends"]["grid"]["qps"]
            top_batch = str(max(map(int, g)))
            assert g[top_batch] >= QUICK_BATCH_FLOOR * g["1"], (
                f"{row['world']}: grid batch kernel only "
                f"{g[top_batch] / g['1']:.1f}x its scalar path "
                f"(floor {QUICK_BATCH_FLOOR}x)"
            )
        if (row["world"] == "paper/clustered" and row["n"] >= 100_000
                and "grid" in row["backends"]):
            g = row["backends"]["grid"]["qps"]
            top_batch = str(max(map(int, g)))
            assert g[top_batch] >= CLUSTERED_BATCH_FLOOR * g["1"], (
                f"paper/clustered@{row['n']}: batched kNN only "
                f"{g[top_batch] / g['1']:.1f}x the scalar path "
                f"(floor {CLUSTERED_BATCH_FLOOR}x)"
            )
        sharded = row["sharded_qps"]
        assert set(sharded["workers"]) == {str(w) for w in
                                           meta["parallel_workers"]}
        for w, entry in sharded["workers"].items():
            assert entry["qps"] > 0, (
                f"{row['world']}@{row['n']}: no sharded kNN throughput "
                f"at {w} workers"
            )
            assert entry["tiles_nonempty"] > 0
        cache = row["world_cache_seconds"]
        assert cache["hit"] > 0 and cache["store"] > 0
        if row["n"] >= 1_000_000:
            floor = CACHE_FLOOR_1M
        elif row["n"] >= 100_000:
            floor = CACHE_FLOOR_100K
        else:
            floor = None  # millisecond builds: the ratio is noise
        if floor is not None:
            assert cache["hit_speedup"] >= floor, (
                f"{row['world']}@{row['n']}: world-cache hit only "
                f"{cache['hit_speedup']}x a cold build (floor {floor}x)"
            )
        par = row["parallel_qps"]["workers"]
        assert set(par) == {str(w) for w in meta["parallel_workers"]}
        for w, entry in par.items():
            assert entry["aggregate_qps"] > 0, (
                f"{row['world']}@{row['n']}: no throughput at {w} workers"
            )
    # Fan-out scaling is only meaningful with the cores to back it: on
    # the full-scale wechat world, 4 workers must clear the floor when
    # the machine has >= 4 CPUs (recorded either way).
    cpus = meta.get("cpu_count") or 1
    if cpus >= 4:
        for row in report["results"]:
            if row["world"] == "wechat-like-1m" and row["n"] >= 1_000_000:
                got = row["parallel_qps"]["workers"]["4"]["speedup_vs_1"]
                assert got >= PARALLEL_FLOOR_4W, (
                    f"wechat-like-1m@{row['n']}: 4 workers only {got}x one "
                    f"worker on a {cpus}-CPU machine "
                    f"(floor {PARALLEL_FLOOR_4W}x)"
                )
    if cpus >= 2:
        for row in report["results"]:
            if row["world"] == "wechat-like-1m" and row["n"] >= 1_000_000:
                got = row["sharded_qps"]["workers"]["2"]["speedup_vs_1"]
                assert got >= SHARDED_FLOOR_2W, (
                    f"wechat-like-1m@{row['n']}: sharded kNN fan-out at 2 "
                    f"workers only {got}x one worker on a {cpus}-CPU "
                    f"machine (floor {SHARDED_FLOOR_2W}x)"
                )


def write_report(report: dict, out: Path) -> None:
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out} ({len(report['results'])} sweep cells)")


def test_scaling_bench_quick(tmp_path):
    """CI smoke: the quick sweep runs, covers every world, and the grid
    batch kernel clears the floor; the JSON artifact is well-formed.

    Always the quick sweep under pytest — the full 10k/100k/1M sweep is
    the standalone script's job (``python benchmarks/bench_scaling.py``)
    and would turn a minutes-scale figure-benchmark run into a long,
    memory-heavy one if it piggybacked on ``pytest benchmarks/bench_*``.
    """
    report = run_bench(quick=True)
    out = tmp_path / "BENCH_scaling.json"
    write_report(report, out)
    check_report(json.loads(out.read_text()))


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="10k-only sweep with fewer queries (CI smoke)")
    parser.add_argument("--out", type=Path, default=None,
                        help=f"output JSON path (default {DEFAULT_OUT}, or "
                             f"{DEFAULT_QUICK_OUT} with --quick)")
    parser.add_argument("--metrics-out", type=Path, default=None,
                        help="collect repro.obs metrics across the sweep and "
                             "write the registry snapshot to this JSON path")
    args = parser.parse_args()
    out = args.out if args.out is not None else (
        DEFAULT_QUICK_OUT if args.quick else DEFAULT_OUT
    )
    if args.metrics_out is not None:
        with obs.collecting() as reg:
            report = run_bench(quick=args.quick)
        args.metrics_out.write_text(
            json.dumps(reg.to_dict(), indent=1, sort_keys=True) + "\n"
        )
        print(f"wrote {args.metrics_out} (obs registry snapshot)")
    else:
        report = run_bench(quick=args.quick)
    check_report(report)
    write_report(report, out)
