"""Figure 12 benchmark — convergence traces of the three estimators."""

from _bench_utils import run_once

from repro.experiments import fig12_unbiasedness


def test_fig12(benchmark, bench_world):
    # 5000 queries: enough for LR-AGG to settle well inside the 0.35
    # band on this clustered world (rel-err <= 0.1 across seeds 1-3;
    # at 1500 queries single-seed draws still swing past 0.35).
    truth, results = run_once(
        benchmark,
        lambda: fig12_unbiasedness.traces(bench_world, max_queries=5000, seed=1),
    )
    table = fig12_unbiasedness.run(bench_world, max_queries=5000, seed=1)
    table.show()
    lr_err = abs(results["LR-LBS-AGG"].estimate - truth) / truth
    nno_err = abs(results["LR-LBS-NNO"].estimate - truth) / truth
    lnr_err = abs(results["LNR-LBS-AGG"].estimate - truth) / truth
    # Paper shape: LR-AGG settles near the truth within the budget.
    assert lr_err < 0.35
    # All three produce usable traces.
    assert results["LR-LBS-AGG"].samples > 10
    assert results["LR-LBS-NNO"].samples > 10
    assert results["LNR-LBS-AGG"].samples >= 1
    assert lnr_err < 2.0 and nno_err < 2.0
