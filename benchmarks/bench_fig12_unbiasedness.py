"""Figure 12 benchmark — convergence traces of the three estimators."""

from _bench_utils import run_once

from repro.experiments import fig12_unbiasedness


def test_fig12(benchmark, bench_world):
    truth, results = run_once(
        benchmark,
        lambda: fig12_unbiasedness.traces(bench_world, max_queries=1500, seed=1),
    )
    table = fig12_unbiasedness.run(bench_world, max_queries=1500, seed=1)
    table.show()
    lr_err = abs(results["LR-LBS-AGG"].estimate - truth) / truth
    nno_err = abs(results["LR-LBS-NNO"].estimate - truth) / truth
    lnr_err = abs(results["LNR-LBS-AGG"].estimate - truth) / truth
    # Paper shape: LR-AGG settles near the truth within the budget.
    assert lr_err < 0.35
    # All three produce usable traces.
    assert results["LR-LBS-AGG"].samples > 10
    assert results["LR-LBS-NNO"].samples > 10
    assert results["LNR-LBS-AGG"].samples >= 1
    assert lnr_err < 2.0 and nno_err < 2.0
