"""Figure 16 benchmark — SUM(enrollment) cost vs error."""

from _bench_utils import finite, run_once

from repro.core import AggregateQuery
from repro.datasets import is_category
from repro.experiments.cost_vs_error import cost_vs_error_table


def test_fig16(benchmark, bench_world):
    query = AggregateQuery.sum("enrollment", lambda a, _l: a.get("category") == "school")
    truth = bench_world.db.ground_truth_sum("enrollment", is_category("school"))
    table = run_once(
        benchmark,
        lambda: cost_vs_error_table(
            "Figure 16 (bench) — SUM(enrollment)",
            bench_world, query, truth,
            targets=(0.5, 0.3, 0.2), n_runs=3, max_queries=2500,
            lnr_max_queries=8000,
        ),
    )
    table.show()
    lr = finite(table.column("LR-LBS-AGG"))
    nno = finite(table.column("LR-LBS-NNO"))
    assert sum(lr) <= sum(nno) * 1.15
