"""Query-engine microbenchmark: batched backends vs the single-query KD-tree.

The acceptance bar for the batched engine: >= 5x kNN throughput over the
single-query KD-tree path on a 10k-point database.  Uniform points are
the headline (that is where vectorization shines); a clustered database
— the estimators' real workload shape — is reported alongside, with a
smaller but still real win (the heavy-tail queries around clusters fall
back to per-query search by design).

Runs standalone (``python benchmarks/bench_query_engine.py [--quick]``)
or under pytest (``pytest benchmarks/bench_query_engine.py [--quick]``).
The timing is self-contained — best-of-N wall clock — so no
pytest-benchmark fixture is involved.
"""

from __future__ import annotations

import gc
import time

import numpy as np

from repro.geometry import Point, Rect
from repro.index import BruteForceIndex, GridIndex, KdTree, make_index, make_index_arrays
from repro.lbs import (
    Column,
    LbsTuple,
    LrLbsInterface,
    ObfuscationModel,
    ProminenceRanking,
    SpatialDatabase,
)

DB_SIZE = 10_000
K = 5
SPEEDUP_FLOOR = 5.0
#: Ingest floor: the columnar SpatialDatabase build must beat the
#: row-path build (per-tuple LbsTuple assembly + shredding) by this
#: factor at INGEST_N tuples.  A lost columnar path drops to ~1x;
#: normal runs sit near 20-30x, so the CI gate has wide margin.
INGEST_N = 100_000
INGEST_SPEEDUP_FLOOR = 5.0
#: --quick runs far fewer queries on noisy CI runners; a real regression
#: (losing the batch kernel) drops to ~1x, so a looser gate still bites.
QUICK_SPEEDUP_FLOOR = 3.5
#: Prominence rank_batch vs the per-point full-scan fallback it replaced;
#: held in --quick too (the pruned kernel sits far above the bar).
PROMINENCE_SPEEDUP_FLOOR = 5.0
#: Prominence distance cap, as in the paper's §5.3 ("0 to tuples more
#: than 50 miles away" — a small fraction of the service region).
PROMINENCE_CAP = 8.0
#: Obfuscated interface build: one columnar jitter draw + vectorized
#: clip/clamp + array-native index vs the row path it replaced
#: (tid-sorted tuple materialization, a {tid: Point} jitter dict, a
#: per-point region.clamp loop, and a triple-list index build).  A lost
#: columnar path drops to ~1x; normal runs sit far above the gate.
OBFUSCATED_N = 100_000
OBFUSCATED_SPEEDUP_FLOOR = 5.0


def _best_of(fn, repeats):
    best = float("inf")
    result = None
    for _ in range(repeats):
        # Keep cyclic-gc pauses from earlier sections' object churn
        # (row-path builds leave 100k+ dead containers) out of the
        # timed region.
        gc.collect()
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _uniform_points(rng, n, scale=400.0):
    return [(float(x), float(y), i) for i, (x, y) in enumerate(rng.random((n, 2)) * scale)]


def _clustered_points(rng, n, scale=400.0, n_clusters=60, sigma=2.0):
    centers = rng.random((n_clusters, 2)) * scale
    xy = centers[rng.integers(0, n_clusters, n)] + rng.normal(0.0, sigma, (n, 2))
    return [(float(x), float(y), i) for i, (x, y) in enumerate(xy)]


def run_bench(quick: bool = False, k: int = K, db_size: int = DB_SIZE) -> dict:
    """Time every backend; returns {scenario: {backend: queries/sec}}."""
    n_queries = 500 if quick else 4000
    repeats = 2 if quick else 3
    rng = np.random.default_rng(20150810)  # the paper's PVLDB issue date
    queries = [(float(x), float(y)) for x, y in rng.random((n_queries, 2)) * 400.0]

    report: dict = {}
    for scenario, maker in (("uniform", _uniform_points), ("clustered", _clustered_points)):
        pts = maker(rng, db_size)
        kdtree = KdTree(pts)
        grid = GridIndex(pts)
        brute = BruteForceIndex(pts)

        t_single, ref = _best_of(lambda: [kdtree.knn(x, y, k) for x, y in queries], repeats)
        t_grid, got_grid = _best_of(lambda: grid.knn_batch(queries, k), repeats)
        t_brute, got_brute = _best_of(lambda: brute.knn_batch(queries, k), repeats)
        if got_grid != ref or got_brute != ref:
            raise AssertionError(f"{scenario}: batched answers diverge from the KD-tree")

        report[scenario] = {
            "kdtree_single": n_queries / t_single,
            "grid_batch": n_queries / t_grid,
            "brute_batch": n_queries / t_brute,
        }

    # Prominence ranking: pruned batch kernel vs the per-point fallback
    # (full-database scoring pass per query) it replaced.
    pts = _uniform_points(rng, db_size)
    tuples = [LbsTuple(i, Point(x, y), {"popularity": float(rng.random())})
              for x, y, i in pts]
    prom = ProminenceRanking(
        tuples, {t.tid: t.location for t in tuples}, "popularity",
        weight_distance=0.7, weight_static=0.3, distance_cap=PROMINENCE_CAP,
        index=GridIndex(pts),
    )
    qpoints = [Point(x, y) for x, y in queries]
    t_loop, ref_prom = _best_of(lambda: [prom.rank(p, k) for p in qpoints], repeats)
    t_batch_prom, got_prom = _best_of(lambda: prom.rank_batch(qpoints, k), repeats)
    if got_prom != ref_prom:
        raise AssertionError("prominence rank_batch diverges from the scalar kernel")
    report["prominence"] = {
        "rank_single": n_queries / t_loop,
        "rank_batch": n_queries / t_batch_prom,
    }

    # Ingest throughput: columnar from_columns vs the row path it
    # replaced (LbsTuple assembly + per-row shredding), same data.
    n = INGEST_N
    xy = rng.random((n, 2)) * 400.0
    tids = np.arange(n, dtype=np.int64)
    cat = np.array(["restaurant", "school", "bank", "cafe"], dtype=object)[
        rng.integers(0, 4, n)
    ]
    score = rng.random(n)
    score_mask = rng.random(n) < 0.7
    region = Rect(0.0, 0.0, 400.0, 400.0)

    def _row_build():
        xs = xy[:, 0].tolist()
        ys = xy[:, 1].tolist()
        cats = cat.tolist()
        scores = score.tolist()
        masks = score_mask.tolist()
        tuples = []
        for i in range(n):
            attrs = {"category": cats[i]}
            if masks[i]:
                attrs["score"] = scores[i]
            tuples.append(LbsTuple(i, Point(xs[i], ys[i]), attrs))
        return SpatialDatabase(tuples, region)

    def _columnar_build():
        return SpatialDatabase.from_columns(
            xy, tids,
            {"category": Column(cat), "score": Column(score, score_mask)},
            region,
        )

    ingest_repeats = 1 if quick else 2
    t_row, db_row = _best_of(_row_build, ingest_repeats)
    t_col, db_col = _best_of(_columnar_build, ingest_repeats)
    probe = Point(123.0, 321.0)
    if (
        db_col.tid_list() != db_row.tid_list()
        or [(d, t.tid) for d, t in db_col.knn(probe, 5)]
        != [(d, t.tid) for d, t in db_row.knn(probe, 5)]
        or db_col.ground_truth_sum("score") != db_row.ground_truth_sum("score")
    ):
        raise AssertionError("columnar ingest diverges from the row-path build")
    report["ingest"] = {
        "row_path": n / t_row,
        "columnar": n / t_col,
    }

    # Obfuscated interface build: effective positions + clamp + index,
    # columnar vs the row path.  Columnar is measured first so the row
    # path pays its own lazy-tuple materialization, not a warm cache.
    n = OBFUSCATED_N
    xy = rng.random((n, 2)) * 400.0
    tids = np.arange(n, dtype=np.int64)
    region = Rect(0.0, 0.0, 400.0, 400.0)
    db_obf = SpatialDatabase.from_columns(xy, tids, {}, region)
    model = ObfuscationModel(sigma=2.0, seed=7, clip=5.0)

    def _columnar_obf_build():
        eff = model.effective_coords(db_obf.coords, db_obf.tids)
        eff[:, 0] = np.minimum(np.maximum(eff[:, 0], region.x0), region.x1)
        eff[:, 1] = np.minimum(np.maximum(eff[:, 1], region.y0), region.y1)
        return make_index_arrays(eff, db_obf.tids, "grid")

    def _row_obf_build():
        locations = model.effective_locations(db_obf.tuples())
        clamped = {tid: region.clamp(p) for tid, p in locations.items()}
        return make_index([(p.x, p.y, tid) for tid, p in clamped.items()], "grid")

    obf_repeats = 1 if quick else 2
    t_col_obf, idx_col = _best_of(_columnar_obf_build, obf_repeats)
    t_row_obf, idx_row = _best_of(_row_obf_build, obf_repeats)
    if idx_col.knn(123.0, 321.0, 5) != idx_row.knn(123.0, 321.0, 5):
        raise AssertionError("columnar obfuscated build diverges from the row path")
    report["obfuscated_build"] = {
        "row_path": n / t_row_obf,
        "columnar": n / t_col_obf,
    }

    # End-to-end interface path on the uniform database: batch + cache.
    region = Rect(0.0, 0.0, 400.0, 400.0)
    db = SpatialDatabase(
        [LbsTuple(i, Point(x, y), {}) for x, y, i in _uniform_points(rng, db_size)],
        region,
    )
    api = LrLbsInterface(db, k=k)
    qpoints = [Point(x, y) for x, y in queries]
    t_batch, _ = _best_of(lambda: api.query_batch(qpoints), 1)
    t_replay, _ = _best_of(lambda: api.query_batch(qpoints), repeats)  # all cache hits
    report["interface"] = {
        "query_batch_cold": n_queries / t_batch,
        "query_batch_cached": n_queries / t_replay,
    }
    return report


def _print_report(report: dict) -> None:
    print(f"\nquery-engine microbenchmark — {DB_SIZE:,}-point database, k={K}")
    for scenario, rows in report.items():
        print(f"  {scenario}")
        base = rows.get("kdtree_single")
        for name, qps in rows.items():
            rel = f"  ({qps / base:.1f}x)" if base and name != "kdtree_single" else ""
            print(f"    {name:20s} {qps:12,.0f} q/s{rel}")


def test_query_engine_speedup(pytestconfig):
    quick = pytestconfig.getoption("--quick")
    report = run_bench(quick=quick)
    _print_report(report)
    floor = QUICK_SPEEDUP_FLOOR if quick else SPEEDUP_FLOOR
    speedup = report["uniform"]["grid_batch"] / report["uniform"]["kdtree_single"]
    assert speedup >= floor, (
        f"grid batch only {speedup:.1f}x over single-query KD-tree "
        f"(floor {floor}x)"
    )
    # The clustered shape must at least not regress behind the KD-tree.
    assert report["clustered"]["grid_batch"] >= report["clustered"]["kdtree_single"]
    # Prominence: the pruned batch kernel must crush the per-point
    # full-scan fallback it replaced (same floor in --quick).
    prom_speedup = report["prominence"]["rank_batch"] / report["prominence"]["rank_single"]
    assert prom_speedup >= PROMINENCE_SPEEDUP_FLOOR, (
        f"prominence rank_batch only {prom_speedup:.1f}x over the per-point "
        f"fallback (floor {PROMINENCE_SPEEDUP_FLOOR}x)"
    )
    # Cached replay must beat even the cold batch by a wide margin.
    assert (
        report["interface"]["query_batch_cached"]
        >= 2.0 * report["interface"]["query_batch_cold"]
    )
    # Ingest: the columnar build must crush the row path (same floor in
    # --quick; the measured gap sits far above it).
    ingest_speedup = report["ingest"]["columnar"] / report["ingest"]["row_path"]
    assert ingest_speedup >= INGEST_SPEEDUP_FLOOR, (
        f"columnar ingest only {ingest_speedup:.1f}x over the row path at "
        f"{INGEST_N:,} tuples (floor {INGEST_SPEEDUP_FLOOR}x)"
    )
    # Obfuscated build: the columnar jitter+clamp+index path must crush
    # the dict path it replaced (same floor in --quick).
    obf = report["obfuscated_build"]
    obf_speedup = obf["columnar"] / obf["row_path"]
    assert obf_speedup >= OBFUSCATED_SPEEDUP_FLOOR, (
        f"columnar obfuscated build only {obf_speedup:.1f}x over the row "
        f"path at {OBFUSCATED_N:,} tuples (floor {OBFUSCATED_SPEEDUP_FLOOR}x)"
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller query load")
    args = parser.parse_args()
    result = run_bench(quick=args.quick)
    _print_report(result)
    speedup = result["uniform"]["grid_batch"] / result["uniform"]["kdtree_single"]
    prom = result["prominence"]["rank_batch"] / result["prominence"]["rank_single"]
    ingest = result["ingest"]["columnar"] / result["ingest"]["row_path"]
    obf = result["obfuscated_build"]["columnar"] / result["obfuscated_build"]["row_path"]
    print(f"\nuniform grid-batch speedup: {speedup:.1f}x (floor {SPEEDUP_FLOOR}x)")
    print(f"prominence rank_batch speedup: {prom:.1f}x (floor {PROMINENCE_SPEEDUP_FLOOR}x)")
    print(f"columnar ingest speedup at {INGEST_N:,} tuples: {ingest:.1f}x "
          f"(floor {INGEST_SPEEDUP_FLOOR}x)")
    print(f"columnar obfuscated build speedup at {OBFUSCATED_N:,} tuples: "
          f"{obf:.1f}x (floor {OBFUSCATED_SPEEDUP_FLOOR}x)")
    ok = (speedup >= SPEEDUP_FLOOR and prom >= PROMINENCE_SPEEDUP_FLOOR
          and ingest >= INGEST_SPEEDUP_FLOOR and obf >= OBFUSCATED_SPEEDUP_FLOOR)
    raise SystemExit(0 if ok else 1)
