"""Setup shim for environments without PEP-660 editable-install support.

``pip install -e .`` works where pip/setuptools/wheel are current; this
file additionally enables ``python setup.py develop`` on older stacks
(e.g. offline boxes without the ``wheel`` package).
"""

from setuptools import setup

setup()
