"""Streaming statistics for the estimators.

Welford's algorithm gives numerically stable running mean/variance; the
sample variance uses Bessel's correction, which is how the paper suggests
practitioners approximate the (unknown) population variance when reporting
confidence intervals (§2.3).
"""

from __future__ import annotations

import math

__all__ = ["RunningStat", "RatioStat"]


class RunningStat:
    """Running mean / variance over a stream of floats (Welford)."""

    __slots__ = ("n", "mean", "_m2")

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self._m2 = 0.0

    def push(self, x: float) -> None:
        self.n += 1
        delta = x - self.mean
        self.mean += delta / self.n
        self._m2 += delta * (x - self.mean)

    def variance(self) -> float:
        """Bessel-corrected sample variance (0 for fewer than 2 samples)."""
        if self.n < 2:
            return 0.0
        return self._m2 / (self.n - 1)

    def std(self) -> float:
        return math.sqrt(self.variance())

    def sem(self) -> float:
        """Standard error of the mean."""
        if self.n < 1:
            return float("inf")
        return self.std() / math.sqrt(self.n)

    def merge(self, other: "RunningStat") -> "RunningStat":
        """Combined statistics of two disjoint streams (Chan's method)."""
        out = RunningStat()
        out.n = self.n + other.n
        if out.n == 0:
            return out
        delta = other.mean - self.mean
        out.mean = self.mean + delta * other.n / out.n
        out._m2 = self._m2 + other._m2 + delta * delta * self.n * other.n / out.n
        return out

    def state_dict(self) -> list:
        """JSON-serializable snapshot; floats round-trip exactly."""
        return [self.n, self.mean, self._m2]

    @classmethod
    def from_state(cls, state: list) -> "RunningStat":
        out = cls()
        out.n = int(state[0])
        out.mean = float(state[1])
        out._m2 = float(state[2])
        return out


class RatioStat:
    """Running ratio-of-means estimator for AVG = SUM / COUNT queries.

    AVG is estimated as the ratio of two unbiased estimators sharing the
    same samples (paper §1.3: "AVG queries can be computed as
    SUM/COUNT"); the ratio itself is consistent though not exactly
    unbiased — standard for ratio estimators.
    """

    __slots__ = ("numerator", "denominator")

    def __init__(self) -> None:
        self.numerator = RunningStat()
        self.denominator = RunningStat()

    def push(self, num: float, den: float) -> None:
        self.numerator.push(num)
        self.denominator.push(den)

    @property
    def n(self) -> int:
        return self.numerator.n

    def estimate(self) -> float:
        if self.denominator.mean == 0.0:
            return float("nan")
        return self.numerator.mean / self.denominator.mean

    def state_dict(self) -> list:
        return [self.numerator.state_dict(), self.denominator.state_dict()]

    @classmethod
    def from_state(cls, state: list) -> "RatioStat":
        out = cls()
        out.numerator = RunningStat.from_state(state[0])
        out.denominator = RunningStat.from_state(state[1])
        return out
