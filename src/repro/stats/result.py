"""Estimation results and convergence traces."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from .running import RunningStat

__all__ = ["TracePoint", "EstimationResult", "normal_ci"]

#: Two-sided z quantiles for the confidence levels experiments use.
_Z = {0.90: 1.6448536269514722, 0.95: 1.959963984540054, 0.99: 2.5758293035489004}


def normal_ci(mean: float, sem: float, level: float = 0.95) -> tuple[float, float]:
    """Normal-approximation confidence interval."""
    z = _Z.get(level)
    if z is None:
        raise ValueError(f"unsupported confidence level {level}; use one of {sorted(_Z)}")
    return mean - z * sem, mean + z * sem


@dataclass(frozen=True)
class TracePoint:
    """Estimator state snapshot after one sample."""

    queries: int
    samples: int
    estimate: float


@dataclass
class EstimationResult:
    """Outcome of one estimator run.

    ``trace`` records the running estimate after every completed sample —
    the raw material for every cost-vs-error figure in the paper.
    """

    estimate: float
    queries: int
    samples: int
    stat: Optional[RunningStat] = None
    trace: list[TracePoint] = field(default_factory=list)

    def relative_error(self, truth: float) -> float:
        if truth == 0.0:
            raise ValueError("relative error undefined for zero ground truth")
        return abs(self.estimate - truth) / abs(truth)

    def ci(self, level: float = 0.95) -> tuple[float, float]:
        if self.stat is None or self.stat.n < 2:
            return (-math.inf, math.inf)
        return normal_ci(self.stat.mean, self.stat.sem(), level)

    def queries_to_reach(self, truth: float, rel_err: float) -> Optional[int]:
        """Query cost after which the running estimate stays within
        ``rel_err`` of ``truth`` for the rest of this run (None if never).

        "Stays" (rather than "first touches") avoids crediting lucky
        early crossings of a noisy trajectory.
        """
        if truth == 0.0:
            raise ValueError("relative error undefined for zero ground truth")
        achieved: Optional[int] = None
        for pt in self.trace:
            err = abs(pt.estimate - truth) / abs(truth)
            if err <= rel_err:
                if achieved is None:
                    achieved = pt.queries
            else:
                achieved = None
        return achieved
