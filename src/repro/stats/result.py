"""Estimation results and convergence traces."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from ..obs.telemetry import RunTelemetry
from .running import RunningStat

__all__ = ["TracePoint", "Checkpoint", "EstimationResult", "normal_ci", "z_value"]

#: Two-sided z quantiles for the confidence levels experiments use.
_Z = {0.90: 1.6448536269514722, 0.95: 1.959963984540054, 0.99: 2.5758293035489004}


def z_value(level: float) -> float:
    """Two-sided normal quantile for a supported confidence level."""
    z = _Z.get(level)
    if z is None:
        raise ValueError(f"unsupported confidence level {level}; use one of {sorted(_Z)}")
    return z


def normal_ci(mean: float, sem: float, level: float = 0.95) -> tuple[float, float]:
    """Normal-approximation confidence interval."""
    z = z_value(level)
    return mean - z * sem, mean + z * sem


@dataclass(frozen=True)
class TracePoint:
    """Estimator state snapshot after one sample."""

    queries: int
    samples: int
    estimate: float


@dataclass(frozen=True)
class Checkpoint:
    """One step of a streaming estimation run.

    Yielded by the drivers' ``run_iter`` after every completed sample.
    ``queries`` counts interface queries since the run started; ``ci`` is
    the 95 % normal-approximation interval of the running estimate and
    ``sem`` its standard error (``inf`` below two samples), so stopping
    rules can derive intervals at other levels.  ``state``, when
    captured (``state_every``), is the full serializable estimator state
    at this point — feed it to ``load_state``/``Session.resume`` to
    continue the run bit-identically.
    """

    queries: int
    samples: int
    estimate: float
    ci: tuple[float, float]
    sem: float
    state: Optional[dict] = None
    #: The run's :class:`~repro.obs.RunTelemetry` at this step — derived
    #: accounting only, never fed back into the estimate.
    telemetry: Optional[RunTelemetry] = None

    def relative_ci_halfwidth(self) -> float:
        """Half the CI width relative to the estimate (``inf`` when
        undefined — zero estimate or too few samples)."""
        if not math.isfinite(self.sem) or self.estimate == 0.0:
            return math.inf
        return (self.ci[1] - self.ci[0]) / 2.0 / abs(self.estimate)


@dataclass
class EstimationResult:
    """Outcome of one estimator run.

    ``trace`` records the running estimate after every completed sample —
    the raw material for every cost-vs-error figure in the paper.
    """

    estimate: float
    queries: int
    samples: int
    stat: Optional[RunningStat] = None
    trace: list[TracePoint] = field(default_factory=list)
    #: Final :class:`~repro.obs.RunTelemetry` of the run (cost accounting).
    telemetry: Optional[RunTelemetry] = None

    def relative_error(self, truth: float) -> float:
        if truth == 0.0:
            raise ValueError("relative error undefined for zero ground truth")
        return abs(self.estimate - truth) / abs(truth)

    def ci(self, level: float = 0.95) -> tuple[float, float]:
        if self.stat is None or self.stat.n < 2:
            return (-math.inf, math.inf)
        return normal_ci(self.stat.mean, self.stat.sem(), level)

    def confidence_interval(self, level: float = 0.95) -> tuple[float, float]:
        """Normal-approximation confidence interval of the estimate.

        A readable alias of :meth:`ci` for the high-level API; for AVG
        queries the interval is that of the numerator (SUM) stream, the
        same convention :meth:`ci` uses.
        """
        return self.ci(level)

    def queries_to_reach(self, truth: float, rel_err: float) -> Optional[int]:
        """Query cost after which the running estimate stays within
        ``rel_err`` of ``truth`` for the rest of this run (None if never).

        "Stays" (rather than "first touches") avoids crediting lucky
        early crossings of a noisy trajectory.
        """
        if truth == 0.0:
            raise ValueError("relative error undefined for zero ground truth")
        achieved: Optional[int] = None
        for pt in self.trace:
            err = abs(pt.estimate - truth) / abs(truth)
            if err <= rel_err:
                if achieved is None:
                    achieved = pt.queries
            else:
                achieved = None
        return achieved
