"""Statistics utilities: running moments, CIs, estimation results."""

from .result import Checkpoint, EstimationResult, TracePoint, normal_ci, z_value
from .running import RatioStat, RunningStat

__all__ = [
    "RunningStat",
    "RatioStat",
    "EstimationResult",
    "TracePoint",
    "Checkpoint",
    "normal_ci",
    "z_value",
]
