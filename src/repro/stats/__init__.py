"""Statistics utilities: running moments, CIs, estimation results."""

from .result import EstimationResult, TracePoint, normal_ci
from .running import RatioStat, RunningStat

__all__ = ["RunningStat", "RatioStat", "EstimationResult", "TracePoint", "normal_ci"]
