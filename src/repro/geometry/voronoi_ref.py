"""Reference (full-knowledge) Voronoi construction.

Used as the *ground-truth oracle* in tests and in the Fig-11 experiment:
given every tuple location, the top-1 cell of a site is the bounding box
clipped by the bisector of every other site, and the top-k cell is the
``(k-1)``-level region of the bisector arrangement.

This is O(n) clips per cell — O(n^2) for the full diagram — which is fine
for the dataset sizes in the experiments; the *algorithms under test* never
call this module (they only see the kNN interface).
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

from .arrangement import LevelRegion, build_level_region
from .halfplane import bisector_halfplane
from .polygon import ConvexPolygon
from .primitives import Point, Rect

__all__ = ["true_voronoi_cell", "true_topk_cell", "full_voronoi_diagram"]


def true_voronoi_cell(
    site: Point,
    others: Sequence[Point],
    bbox: Rect,
) -> ConvexPolygon:
    """Exact top-1 Voronoi cell of ``site`` against ``others`` within
    ``bbox``."""
    poly = ConvexPolygon.from_rect(bbox)
    for i, u in enumerate(others):
        poly = poly.clip(bisector_halfplane(site, u, label=("site", i)))
        if poly.is_empty():
            break
    return poly


def true_topk_cell(
    site: Point,
    others: Sequence[Point],
    k: int,
    bbox: Rect,
) -> LevelRegion:
    """Exact top-k Voronoi cell of ``site`` (a possibly concave region)."""
    constraints = [
        bisector_halfplane(site, u, label=("site", i)) for i, u in enumerate(others)
    ]
    return build_level_region(
        constraints, level=k - 1, base=ConvexPolygon.from_rect(bbox), seed=site
    )


def full_voronoi_diagram(
    sites: Mapping[Hashable, Point],
    bbox: Rect,
) -> dict[Hashable, ConvexPolygon]:
    """Top-1 cell for every site, keyed like ``sites``.

    The cells partition ``bbox`` (up to measure-zero boundaries); tests
    assert the areas sum to the box area.
    """
    ids = list(sites)
    cells: dict[Hashable, ConvexPolygon] = {}
    for sid in ids:
        others = [sites[o] for o in ids if o != sid]
        cells[sid] = true_voronoi_cell(sites[sid], others, bbox)
    return cells
