"""Exact ``disk ⊆ union-of-disks`` test.

This powers the *lower-bound* optimization of paper §3.2.4: a sampled
point ``x`` is known to lie in the Voronoi cell of tuple ``t`` — without
spending a query — when the disk centred at ``x`` through ``t`` is covered
by the union of disks already certified empty by past queries.

The test must be **sound** (never report "covered" when a sliver is
uncovered), otherwise the estimator silently loses its unbiasedness.  The
implementation is exact up to an angular tolerance:

1. *Boundary coverage*: the boundary circle of the target must be covered
   by the union (arc-interval arithmetic, :mod:`repro.geometry.circle`).
2. *Hole exclusion*: a union of disks may have interior holes.  A hole's
   boundary consists of arcs of member circles, so it suffices to verify
   that for every member disk, the arcs of its boundary lying strictly
   inside the target are covered by the *other* member disks.  If no hole
   boundary crosses the target's interior and the target's boundary is
   covered, the target is covered.
3. *Witness point*: one interior point of the target must be covered
   (rules out the vacuous case).

Complexity is ``O(m^2 log m)`` in the number ``m`` of relevant disks; the
callers pre-filter disks by intersection with the target, keeping ``m``
small in practice.
"""

from __future__ import annotations

from typing import Sequence

from .circle import AngularIntervals, Disk, arc_inside_disk


__all__ = ["disk_covered_by_union"]

#: Angular slack (radians) below which an uncovered gap is ignored.  The
#: corresponding uncovered area is ~ r^2 * tol^3 — negligible against any
#: sampling variance, and the alternative (treating the point as unknown)
#: merely costs one extra query.
_ANGLE_TOL = 1e-9


def disk_covered_by_union(target: Disk, disks: Sequence[Disk], slack: float = 0.0) -> bool:
    """Whether ``target`` is contained in the union of ``disks``.

    ``slack`` shrinks every covering disk before testing, making a positive
    value strictly conservative (used when covering radii themselves carry
    float noise).
    """
    if target.radius <= 0.0:
        return any(d.contains_point(target.center, tol=-slack) for d in disks)

    relevant = [d for d in disks if d.intersects_disk(target) and d.radius > slack]
    if not relevant:
        return False

    # Fast path: a single disk swallows the target.
    for d in relevant:
        if d.contains_disk(target, slack=-slack):
            return True

    # 1. Target boundary must be covered.
    boundary = AngularIntervals()
    for d in relevant:
        boundary.add_interval(arc_inside_disk(target, d, shrink=slack))
    if not boundary.covers_full(tol=_ANGLE_TOL):
        return False

    # 3. A witness interior point must be covered (the centre suffices: a
    # covered boundary plus hole-free interior crossing implies full
    # coverage only if some interior point is covered at all).
    if not any(d.contains_point(target.center, tol=-slack) for d in relevant):
        return False

    # 2. No hole boundary may cross the target interior: for each member
    # circle, arcs inside the target must be covered by the other members.
    for i, d in enumerate(relevant):
        inside = arc_inside_disk(d, Disk(target.center, target.radius), shrink=0.0)
        if inside is None:
            continue
        others = AngularIntervals()
        for j, e in enumerate(relevant):
            if j == i:
                continue
            others.add_interval(arc_inside_disk(d, e, shrink=slack))
        base = _normalize_base(inside)
        gaps = others.uncovered(base)
        if sum(hi - lo for lo, hi in gaps) > _ANGLE_TOL:
            return False
    return True


def _normalize_base(interval: tuple[float, float]) -> list[tuple[float, float]]:
    """Split an arc interval into pieces inside ``[0, 2*pi]`` so it can be
    used as the base of :meth:`AngularIntervals.uncovered`."""
    tmp = AngularIntervals()
    tmp.add(interval[0], interval[1])
    return tmp.merged()
