"""Convex polygons with labeled edges and half-plane clipping.

The tentative Voronoi cell of a tuple is maintained as a
:class:`ConvexPolygon` and refined by clipping with perpendicular-bisector
half-planes (paper §3.1).  Each edge remembers the ``label`` of the
half-plane that created it, which lets the algorithms answer questions like

* "is this edge contributed by a Fast-Init fake corner?" (paper §3.2.1), and
* "which neighbouring subset does crossing this edge lead to?" (the subset
  BFS used for top-k cells, see :mod:`repro.geometry.arrangement`).

Vertices are stored counter-clockwise; ``edge_labels[i]`` tags the edge from
``vertices[i]`` to ``vertices[(i+1) % n]``.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Optional, Sequence

from .halfplane import HalfPlane
from .primitives import (
    EPS,
    Point,
    Rect,
    distance,
    interpolate,
    orientation,
    polygon_area,
    polygon_centroid,
)

__all__ = ["ConvexPolygon", "BBOX_LABEL"]

#: Label attached to edges inherited from the bounding rectangle.
BBOX_LABEL = "bbox"

#: Vertices closer than this are merged after clipping.
_MERGE_TOL = 1e-9


class ConvexPolygon:
    """An immutable convex polygon with per-edge labels."""

    __slots__ = ("vertices", "edge_labels")

    def __init__(self, vertices: Sequence[Point], edge_labels: Optional[Sequence[object]] = None):
        vs = [Point(float(p[0]), float(p[1])) for p in vertices]
        if edge_labels is None:
            edge_labels = [None] * len(vs)
        if len(edge_labels) != len(vs):
            raise ValueError("edge_labels must match vertices 1:1")
        self.vertices: tuple[Point, ...] = tuple(vs)
        self.edge_labels: tuple[object, ...] = tuple(edge_labels)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_rect(rect: Rect, label: object = BBOX_LABEL) -> "ConvexPolygon":
        """The rectangle as a CCW polygon; all edges share ``label``."""
        return ConvexPolygon(rect.corners(), [label] * 4)

    @staticmethod
    def empty() -> "ConvexPolygon":
        return ConvexPolygon([], [])

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.vertices)

    def __bool__(self) -> bool:
        return not self.is_empty()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConvexPolygon({len(self.vertices)} vertices, area={self.area():.6g})"

    def is_empty(self, min_area: float = 0.0) -> bool:
        """True when the polygon has no interior (or area below ``min_area``)."""
        if len(self.vertices) < 3:
            return True
        return self.area() <= max(min_area, 0.0)

    def area(self) -> float:
        return abs(polygon_area(self.vertices))

    def centroid(self) -> Point:
        return polygon_centroid(self.vertices)

    def perimeter(self) -> float:
        n = len(self.vertices)
        return sum(distance(self.vertices[i], self.vertices[(i + 1) % n]) for i in range(n))

    def edges(self) -> Iterator[tuple[Point, Point, object]]:
        """Yield ``(start, end, label)`` for every edge."""
        n = len(self.vertices)
        for i in range(n):
            yield self.vertices[i], self.vertices[(i + 1) % n], self.edge_labels[i]

    def bounding_rect(self) -> Rect:
        if not self.vertices:
            raise ValueError("empty polygon has no bounding rectangle")
        xs = [v.x for v in self.vertices]
        ys = [v.y for v in self.vertices]
        return Rect(min(xs), min(ys), max(xs), max(ys))

    def contains(self, p: Point, tol: float = 1e-9) -> bool:
        """Point-in-convex-polygon test (boundary counts as inside)."""
        n = len(self.vertices)
        if n < 3:
            return False
        for i in range(n):
            a = self.vertices[i]
            b = self.vertices[(i + 1) % n]
            if orientation(a, b, p) < -tol * max(1.0, distance(a, b)):
                return False
        return True

    def labels(self) -> set:
        """Set of distinct edge labels."""
        return set(self.edge_labels)

    # ------------------------------------------------------------------
    # Clipping
    # ------------------------------------------------------------------
    def clip(self, hp: HalfPlane) -> "ConvexPolygon":
        """Intersection with a half-plane (Sutherland–Hodgman, one plane).

        New edges introduced along the half-plane boundary carry
        ``hp.label``; surviving edges keep their labels.
        """
        n = len(self.vertices)
        if n == 0:
            return self
        tol = EPS * hp.scale() * _coordinate_scale(self.vertices)
        values = [hp.value(v) for v in self.vertices]
        if all(v <= tol for v in values):
            return self  # fully inside; nothing to do
        if all(v >= -tol for v in values):
            return ConvexPolygon.empty()  # fully outside

        out_vertices: list[Point] = []
        out_labels: list[object] = []
        for i in range(n):
            p, q = self.vertices[i], self.vertices[(i + 1) % n]
            vp, vq = values[i], values[(i + 1) % n]
            label = self.edge_labels[i]
            p_in = vp <= tol
            q_in = vq <= tol
            if p_in:
                out_vertices.append(p)
                if q_in:
                    out_labels.append(label)
                else:
                    out_labels.append(label)
                    x = _crossing(p, q, vp, vq)
                    out_vertices.append(x)
                    out_labels.append(hp.label)
            elif q_in:
                x = _crossing(p, q, vp, vq)
                out_vertices.append(x)
                out_labels.append(label)
        return _dedupe(out_vertices, out_labels)

    def clip_many(self, half_planes: Iterable[HalfPlane]) -> "ConvexPolygon":
        """Clip by several half-planes, short-circuiting when empty."""
        poly: ConvexPolygon = self
        for hp in half_planes:
            poly = poly.clip(hp)
            if poly.is_empty():
                return ConvexPolygon.empty()
        return poly

    def clip_rect(self, rect: Rect, label: object = BBOX_LABEL) -> "ConvexPolygon":
        """Intersection with an axis-aligned rectangle."""
        planes = [
            HalfPlane(-1.0, 0.0, -rect.x0, label),
            HalfPlane(1.0, 0.0, rect.x1, label),
            HalfPlane(0.0, -1.0, -rect.y0, label),
            HalfPlane(0.0, 1.0, rect.y1, label),
        ]
        return self.clip_many(planes)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def triangles(self) -> list[tuple[Point, Point, Point]]:
        """Fan triangulation (valid for convex polygons)."""
        vs = self.vertices
        return [(vs[0], vs[i], vs[i + 1]) for i in range(1, len(vs) - 1)]

    def sample(self, rng) -> Point:
        """Uniform random interior point.

        Picks a fan triangle proportionally to area, then samples the
        triangle by the standard square-root warp.
        """
        tris = self.triangles()
        if not tris:
            raise ValueError("cannot sample from an empty polygon")
        areas = [abs(orientation(a, b, c)) / 2.0 for a, b, c in tris]
        total = sum(areas)
        if total <= 0.0:
            raise ValueError("cannot sample from a degenerate polygon")
        u = rng.random() * total
        acc = 0.0
        chosen = tris[-1]
        for tri, w in zip(tris, areas):
            acc += w
            if u <= acc:
                chosen = tri
                break
        return sample_triangle(chosen, rng)

    def interior_point(self) -> Point:
        """A point strictly inside (the centroid for convex polygons)."""
        if self.is_empty():
            raise ValueError("empty polygon has no interior point")
        return self.centroid()


def sample_triangle(tri: tuple[Point, Point, Point], rng) -> Point:
    """Uniform point in a triangle via the sqrt warp."""
    a, b, c = tri
    r1 = math.sqrt(rng.random())
    r2 = rng.random()
    x = (1 - r1) * a.x + r1 * (1 - r2) * b.x + r1 * r2 * c.x
    y = (1 - r1) * a.y + r1 * (1 - r2) * b.y + r1 * r2 * c.y
    return Point(x, y)


def _crossing(p: Point, q: Point, vp: float, vq: float) -> Point:
    """Where segment ``pq`` crosses the clip line (``vp``/``vq`` are the
    signed slacks at the endpoints, of opposite signs)."""
    t = vp / (vp - vq)
    t = min(1.0, max(0.0, t))
    return interpolate(p, q, t)


def _coordinate_scale(vertices: Sequence[Point]) -> float:
    """Rough coordinate magnitude, to keep clipping tolerances scale-free."""
    m = 1.0
    for v in vertices:
        m = max(m, abs(v.x), abs(v.y))
    return m


def _dedupe(vertices: list[Point], labels: list[object]) -> ConvexPolygon:
    """Drop (near-)duplicate consecutive vertices produced by clipping.

    When the zero-length edge ``(v[i], v[i+1])`` collapses, ``v[i+1]`` is
    removed and ``v[i]`` inherits the *following* edge's label, preserving
    the label of every edge with positive length.
    """
    n = len(vertices)
    if n == 0:
        return ConvexPolygon.empty()
    scale = _coordinate_scale(vertices)
    tol = _MERGE_TOL * scale
    keep_v: list[Point] = []
    keep_l: list[object] = []
    for i in range(n):
        v = vertices[i]
        nxt = vertices[(i + 1) % n]
        if distance(v, nxt) <= tol:
            continue  # outgoing edge degenerate: drop this vertex
        keep_v.append(v)
        keep_l.append(labels[i])
    if len(keep_v) < 3:
        return ConvexPolygon.empty()
    return ConvexPolygon(keep_v, keep_l)
