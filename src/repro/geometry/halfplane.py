"""Half-planes and perpendicular bisectors.

A half-plane is the set ``{q : a*q.x + b*q.y <= c}``.  The estimation
algorithms build Voronoi cells exclusively by intersecting half-planes:

* LR-LBS (paper §3): the bisector of the target tuple ``t`` and any other
  known tuple ``u`` is a half-plane keeping the ``t`` side.
* LNR-LBS (paper §4): edges discovered by binary search arrive as a point
  on the edge plus the edge direction, from which
  :meth:`HalfPlane.from_point_direction` builds the constraint.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from .primitives import EPS, Point, perpendicular

__all__ = ["HalfPlane", "bisector_halfplane"]


@dataclass(frozen=True)
class HalfPlane:
    """The closed region ``a*x + b*y <= c``.

    ``label`` is an opaque tag used by callers to remember where the
    constraint came from (e.g. the tuple id whose bisector it is, or
    ``"fake:3"`` for Fast-Init corners); it does not affect geometry.
    """

    a: float
    b: float
    c: float
    label: object = None

    def value(self, p: Point) -> float:
        """Signed slack: negative inside, positive outside."""
        return self.a * p.x + self.b * p.y - self.c

    def contains(self, p: Point, tol: float = EPS) -> bool:
        return self.value(p) <= tol * self.scale()

    def scale(self) -> float:
        """Magnitude of the normal; used to make tolerances scale-free."""
        return max(math.hypot(self.a, self.b), EPS)

    def boundary_direction(self) -> Point:
        """A unit vector along the boundary line."""
        n = math.hypot(self.a, self.b)
        if n < EPS:
            raise ValueError("degenerate half-plane has no boundary")
        return Point(-self.b / n, self.a / n)

    def boundary_point(self) -> Point:
        """Some point on the boundary line."""
        n2 = self.a * self.a + self.b * self.b
        if n2 < EPS * EPS:
            raise ValueError("degenerate half-plane has no boundary")
        return Point(self.a * self.c / n2, self.b * self.c / n2)

    def flipped(self) -> "HalfPlane":
        """The complementary (open) side, as a closed half-plane."""
        return HalfPlane(-self.a, -self.b, -self.c, self.label)

    def relabel(self, label: object) -> "HalfPlane":
        return HalfPlane(self.a, self.b, self.c, label)

    def intersect_line(self, other: "HalfPlane") -> Optional[Point]:
        """Intersection point of the two boundary lines, or ``None`` if
        (nearly) parallel."""
        det = self.a * other.b - other.a * self.b
        norm = self.scale() * other.scale()
        if abs(det) < EPS * norm:
            return None
        x = (self.c * other.b - other.c * self.b) / det
        y = (self.a * other.c - other.a * self.c) / det
        return Point(x, y)

    @staticmethod
    def from_point_direction(point: Point, direction: Point, inside: Point,
                             label: object = None) -> "HalfPlane":
        """Half-plane whose boundary passes through ``point`` with the given
        ``direction``, oriented so that ``inside`` satisfies the constraint."""
        normal = perpendicular(direction)
        c = normal.x * point.x + normal.y * point.y
        hp = HalfPlane(normal.x, normal.y, c, label)
        if hp.value(inside) > 0.0:
            hp = hp.flipped()
        return hp


def bisector_halfplane(t: Point, u: Point, label: object = None) -> HalfPlane:
    """Half-plane of points at least as close to ``t`` as to ``u``.

    Derivation: ``|q-t|^2 <= |q-u|^2``  ⇔  ``2(u-t)·q <= |u|^2 - |t|^2``.
    This is the constraint used throughout §3 of the paper: clipping the
    tentative Voronoi cell of ``t`` by the bisector of every known tuple.
    """
    a = 2.0 * (u.x - t.x)
    b = 2.0 * (u.y - t.y)
    c = (u.x * u.x + u.y * u.y) - (t.x * t.x + t.y * t.y)
    return HalfPlane(a, b, c, label)
