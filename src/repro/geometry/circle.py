"""Circles, circle-circle intersections, and angular interval arithmetic.

These are the building blocks of the *known-disk* reasoning of paper
§3.2.4: every answered query certifies an empty (fully observed) disk, and
deciding whether a new disk is covered by the union of certified disks is
an exact arc-coverage computation on circle boundaries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional

from .primitives import EPS, Point, distance

__all__ = ["Disk", "TWO_PI", "AngularIntervals", "arc_inside_disk"]

TWO_PI = 2.0 * math.pi


@dataclass(frozen=True)
class Disk:
    """A closed disk ``{p : |p - center| <= radius}``."""

    center: Point
    radius: float

    def contains_point(self, p: Point, tol: float = 0.0) -> bool:
        return distance(self.center, p) <= self.radius + tol

    def contains_disk(self, other: "Disk", slack: float = 0.0) -> bool:
        """True when ``other`` (shrunk by ``slack``) lies inside ``self``."""
        return distance(self.center, other.center) + other.radius <= self.radius + slack

    def intersects_disk(self, other: "Disk") -> bool:
        return distance(self.center, other.center) <= self.radius + other.radius

    def point_at(self, theta: float) -> Point:
        return Point(
            self.center.x + self.radius * math.cos(theta),
            self.center.y + self.radius * math.sin(theta),
        )


def arc_inside_disk(circle: Disk, disk: Disk, shrink: float = 0.0) -> Optional[tuple[float, float]]:
    """The angular interval of ``circle``'s boundary lying inside ``disk``.

    Returns ``None`` when no boundary point is covered, the pair
    ``(0, 2*pi)`` when the whole boundary is covered, otherwise
    ``(lo, hi)`` (``hi`` may exceed ``2*pi``; it always holds
    ``hi - lo < 2*pi``).

    ``shrink`` reduces the covering disk's radius; a positive value makes
    the test *conservative* (may under-report coverage, never over-report),
    which is what the unbiased estimators need.
    """
    s = disk.radius - shrink
    if s <= 0.0:
        return None
    r = circle.radius
    L = distance(circle.center, disk.center)
    if L < EPS:
        # Concentric: covered fully or not at all.
        return (0.0, TWO_PI) if r <= s else None
    if L + r <= s:
        return (0.0, TWO_PI)
    if L >= r + s or r >= L + s:
        # Disjoint, or the covering disk lies strictly inside the circle.
        return None
    # |c + r e^{i theta} - d|^2 <= s^2  <=>  cos(theta - phi) >= m
    m = (r * r + L * L - s * s) / (2.0 * r * L)
    m = min(1.0, max(-1.0, m))
    alpha = math.acos(m)
    if alpha <= 0.0:
        return None
    phi = math.atan2(disk.center.y - circle.center.y, disk.center.x - circle.center.x)
    return (phi - alpha, phi + alpha)


class AngularIntervals:
    """A union of angular intervals on ``[0, 2*pi)``.

    Intervals are added in any form (negative or > 2*pi endpoints are
    wrapped).  Queries (:meth:`covers_full`, :meth:`uncovered`) operate on
    the normalized disjoint union.
    """

    __slots__ = ("_raw",)

    def __init__(self) -> None:
        self._raw: list[tuple[float, float]] = []

    def add(self, lo: float, hi: float) -> None:
        """Add the arc from ``lo`` to ``hi`` (radians, ``hi >= lo``)."""
        if hi <= lo:
            return
        if hi - lo >= TWO_PI:
            self._raw.append((0.0, TWO_PI))
            return
        lo_n = lo % TWO_PI
        hi_n = lo_n + (hi - lo)
        if hi_n <= TWO_PI:
            self._raw.append((lo_n, hi_n))
        else:
            self._raw.append((lo_n, TWO_PI))
            self._raw.append((0.0, hi_n - TWO_PI))

    def add_interval(self, interval: Optional[tuple[float, float]]) -> None:
        if interval is not None:
            self.add(interval[0], interval[1])

    def merged(self) -> list[tuple[float, float]]:
        """Disjoint sorted intervals within ``[0, 2*pi]``."""
        if not self._raw:
            return []
        items = sorted(self._raw)
        out = [items[0]]
        for lo, hi in items[1:]:
            plo, phi = out[-1]
            if lo <= phi:
                out[-1] = (plo, max(phi, hi))
            else:
                out.append((lo, hi))
        return out

    def covers_full(self, tol: float = 1e-9) -> bool:
        """Whether the union covers the whole circle up to gaps < ``tol``."""
        gaps = self.uncovered([(0.0, TWO_PI)])
        return sum(hi - lo for lo, hi in gaps) <= tol

    def uncovered(self, base: Iterable[tuple[float, float]]) -> list[tuple[float, float]]:
        """Portions of ``base`` (disjoint sorted intervals in ``[0, 2*pi]``)
        not covered by this union."""
        covered = self.merged()
        out: list[tuple[float, float]] = []
        for blo, bhi in base:
            cursor = blo
            for clo, chi in covered:
                if chi <= cursor:
                    continue
                if clo >= bhi:
                    break
                if clo > cursor:
                    out.append((cursor, min(clo, bhi)))
                cursor = max(cursor, chi)
                if cursor >= bhi:
                    break
            if cursor < bhi:
                out.append((cursor, bhi))
        return [(lo, hi) for lo, hi in out if hi - lo > 0.0]

    def total(self) -> float:
        return sum(hi - lo for lo, hi in self.merged())
