"""Top-k Voronoi cells as level sets of half-plane arrangements.

Paper §2.2 defines the *top-k Voronoi cell* ``V_k(t)`` as the set of query
locations whose top-k answer contains ``t``.  Writing one constraint per
other site ``u`` — the bisector half-plane "``t`` is at least as close as
``u``" — a location belongs to ``V_k(t)`` iff it violates at most ``k - 1``
constraints.  ``V_k(t)`` is therefore the ``(k-1)``-level of the bisector
arrangement: generally *concave* for ``k > 1`` (paper Fig. 1) but always a
union of convex pieces, one per subset ``S`` of violated constraints.

:func:`build_level_region` materializes exactly the pieces that belong to
the cell by a breadth-first search over subsets: crossing an edge
contributed by constraint ``j`` toggles ``j``'s membership in ``S``.  The
search starts from a seed point known to lie in the cell; top-k cells are
star-shaped around their site, so the BFS reaches every piece.

The same machinery serves two masters:

* **LR-LBS** (§3): constraints are exact bisectors of known tuple
  locations; the region is the tentative cell whose boundary vertices are
  tested per Theorem 1.
* **LNR-LBS** (§4.2): constraints are *estimated* bisector lines recovered
  by binary search; the level construction handles the concave top-k case
  that a naive convex intersection would get wrong.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .halfplane import HalfPlane
from .polygon import BBOX_LABEL, ConvexPolygon
from .primitives import EPS, Point

__all__ = ["LevelRegion", "build_level_region"]

#: Rounding quantum (relative to coordinate scale) for vertex dedup.
_VERTEX_GRID = 1e-7


@dataclass
class LevelRegion:
    """The set of points violating at most ``level`` of ``constraints``.

    ``pieces`` maps each violated-subset ``S`` (frozenset of constraint
    indices) to its convex piece.  Pieces have pairwise disjoint interiors
    and their union is the (connected, star-shaped) region.
    """

    constraints: tuple[HalfPlane, ...]
    level: int
    base: ConvexPolygon
    pieces: dict[frozenset, ConvexPolygon] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def area(self) -> float:
        return sum(p.area() for p in self.pieces.values())

    def is_empty(self) -> bool:
        return not self.pieces

    def num_pieces(self) -> int:
        return len(self.pieces)

    def contains(self, p: Point, tol: float = EPS) -> bool:
        """Membership by direct constraint counting (O(n))."""
        violated = 0
        for hp in self.constraints:
            if hp.value(p) > tol * hp.scale():
                violated += 1
                if violated > self.level:
                    return False
        return self.base.contains(p)

    def violated_subset(self, p: Point, tol: float = EPS) -> frozenset:
        return frozenset(
            j for j, hp in enumerate(self.constraints)
            if hp.value(p) > tol * hp.scale()
        )

    # ------------------------------------------------------------------
    def boundary_edges(self) -> list[tuple[Point, Point, object]]:
        """Outer-boundary edges as ``(start, end, label)``.

        An edge of piece ``S`` is on the outer boundary iff it comes from
        the bounding box, or from a constraint ``j not in S`` while ``S``
        is already at the maximum level (crossing it would exceed the
        budget of ``level`` violations).
        """
        out: list[tuple[Point, Point, object]] = []
        for subset, poly in self.pieces.items():
            at_top = len(subset) == self.level
            for a, b, label in poly.edges():
                if label == BBOX_LABEL or not isinstance(label, int):
                    out.append((a, b, label))
                elif label not in subset and at_top:
                    out.append((a, b, self.constraints[label].label))
        return out

    def boundary_vertices(self) -> list[Point]:
        """Deduplicated endpoints of outer-boundary edges.

        These are exactly the vertices Theorem 1 requires the algorithms
        to test with kNN queries.
        """
        scale = 1.0
        for poly in self.pieces.values():
            for v in poly.vertices:
                scale = max(scale, abs(v.x), abs(v.y))
        quantum = _VERTEX_GRID * scale
        seen: dict[tuple[int, int], Point] = {}
        for a, b, _label in self.boundary_edges():
            for v in (a, b):
                key = (round(v.x / quantum), round(v.y / quantum))
                seen.setdefault(key, v)
        return list(seen.values())

    def all_vertices(self) -> list[Point]:
        """Deduplicated vertices of every piece (boundary and interior)."""
        quantum = _VERTEX_GRID
        for poly in self.pieces.values():
            for v in poly.vertices:
                quantum = max(quantum, _VERTEX_GRID * max(abs(v.x), abs(v.y)))
        seen: dict[tuple[int, int], Point] = {}
        for poly in self.pieces.values():
            for v in poly.vertices:
                key = (round(v.x / quantum), round(v.y / quantum))
                seen.setdefault(key, v)
        return list(seen.values())

    # ------------------------------------------------------------------
    def sample(self, rng) -> Point:
        """Uniform random point in the region (piece chosen by area)."""
        items = [(s, p) for s, p in self.pieces.items() if not p.is_empty()]
        if not items:
            raise ValueError("cannot sample from an empty region")
        areas = [p.area() for _s, p in items]
        total = sum(areas)
        u = rng.random() * total
        acc = 0.0
        for (_s, poly), w in zip(items, areas):
            acc += w
            if u <= acc:
                return poly.sample(rng)
        return items[-1][1].sample(rng)

    def polygons(self) -> list[ConvexPolygon]:
        return list(self.pieces.values())


def build_level_region(
    constraints: Sequence[HalfPlane],
    level: int,
    base: ConvexPolygon,
    seed: Point,
    max_pieces: int = 100_000,
) -> LevelRegion:
    """Construct the connected ``level``-region containing ``seed``.

    Parameters
    ----------
    constraints:
        Bisector half-planes; ``hp.label`` is preserved on boundary edges.
    level:
        Maximum number of violated constraints (``h - 1`` for a top-h
        cell).
    base:
        Bounding polygon (usually the experiment's bounding box).
    seed:
        A point inside the region (the tuple location for LR, the sampled
        query point for LNR).
    """
    cons = tuple(constraints)
    region = LevelRegion(cons, level, base)
    if base.is_empty():
        return region

    if level >= len(cons):
        # Every subset allowed: the region is the whole base, one piece.
        region.pieces[frozenset(range(len(cons)))] = base
        return region

    seed_subset = region.violated_subset(seed)
    if len(seed_subset) > level:
        raise ValueError(
            f"seed violates {len(seed_subset)} constraints; level is {level}"
        )

    def piece_for(subset: frozenset) -> ConvexPolygon:
        poly = base
        for j, hp in enumerate(cons):
            plane = hp.flipped() if j in subset else hp
            poly = poly.clip(plane.relabel(j))
            if poly.is_empty():
                return ConvexPolygon.empty()
        return poly

    start = piece_for(seed_subset)
    if start.is_empty():
        start, seed_subset = _rescue_seed(region, seed, piece_for, level)
        if start.is_empty():
            return region

    region.pieces[seed_subset] = start
    queue = [seed_subset]
    while queue:
        subset = queue.pop()
        poly = region.pieces[subset]
        for label in poly.labels():
            if not isinstance(label, int):
                continue
            neighbour = subset ^ {label}
            if len(neighbour) > level or neighbour in region.pieces:
                continue
            npoly = piece_for(neighbour)
            if npoly.is_empty():
                continue
            region.pieces[neighbour] = npoly
            queue.append(neighbour)
            if len(region.pieces) > max_pieces:
                raise RuntimeError("level region exceeded max_pieces")
    return region


def _rescue_seed(region: LevelRegion, seed: Point, piece_for, level: int):
    """Seed sits on a piece boundary (degenerate clip).  Try flipping each
    near-active constraint to land in an adjacent non-empty piece."""
    near = [
        j for j, hp in enumerate(region.constraints)
        if abs(hp.value(seed)) <= 1e-6 * hp.scale()
    ]
    base_subset = region.violated_subset(seed)
    for j in near:
        candidate = base_subset ^ {j}
        if len(candidate) > level:
            continue
        poly = piece_for(candidate)
        if not poly.is_empty():
            return poly, candidate
    return ConvexPolygon.empty(), base_subset
