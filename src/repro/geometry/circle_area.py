"""Exact area of ``convex polygon ∩ disk``.

Needed for the *maximum coverage radius* interface constraint (paper
§5.3): when the LBS only answers within ``dmax`` of the query point, the
effective sampling region of a tuple is its Voronoi cell intersected with
the disk of radius ``dmax`` around the tuple — whose measure must still be
computed exactly to keep the estimator unbiased.

The algorithm is the classic Green's-theorem decomposition: walk the
polygon edges; each edge contributes either a triangle with the disk
centre (where the edge runs inside the disk) or a circular-sector term
(where it runs outside).  Everything is exact up to float rounding — no
polygonal approximation of the circle is involved.
"""

from __future__ import annotations

import math
from typing import Sequence

from .primitives import EPS, Point, cross

__all__ = ["polygon_disk_area", "segment_circle_intersections"]


def polygon_disk_area(vertices: Sequence[Point], center: Point, radius: float) -> float:
    """Area of the intersection of a CCW convex polygon and a closed disk."""
    n = len(vertices)
    if n < 3 or radius <= 0.0:
        return 0.0
    total = 0.0
    for i in range(n):
        a = vertices[i] - center
        b = vertices[(i + 1) % n] - center
        total += _edge_contribution(a, b, radius)
    return abs(total)


def segment_circle_intersections(a: Point, b: Point, radius: float) -> list[float]:
    """Parameters ``t`` in [0, 1] where segment ``a + t(b-a)`` crosses the
    circle of the given ``radius`` centred at the origin (sorted)."""
    d = b - a
    aa = d.x * d.x + d.y * d.y
    if aa < EPS * EPS:
        return []
    bb = 2.0 * (a.x * d.x + a.y * d.y)
    cc = a.x * a.x + a.y * a.y - radius * radius
    disc = bb * bb - 4.0 * aa * cc
    if disc <= 0.0:
        return []
    sq = math.sqrt(disc)
    t1 = (-bb - sq) / (2.0 * aa)
    t2 = (-bb + sq) / (2.0 * aa)
    return [t for t in (t1, t2) if 0.0 < t < 1.0]


def _edge_contribution(a: Point, b: Point, r: float) -> float:
    """Signed contribution of edge ``a -> b`` (coordinates relative to the
    disk centre) to the intersection area."""
    ra = math.hypot(a.x, a.y)
    rb = math.hypot(b.x, b.y)
    a_in = ra <= r
    b_in = rb <= r
    ts = segment_circle_intersections(a, b, r)

    if a_in and b_in:
        return cross(a, b) / 2.0
    if a_in and not b_in:
        p = _lerp(a, b, ts[0]) if ts else b
        return cross(a, p) / 2.0 + _sector(p, b, r)
    if not a_in and b_in:
        p = _lerp(a, b, ts[-1]) if ts else a
        return _sector(a, p, r) + cross(p, b) / 2.0
    # Both endpoints outside.
    if len(ts) == 2:
        p = _lerp(a, b, ts[0])
        q = _lerp(a, b, ts[1])
        return _sector(a, p, r) + cross(p, q) / 2.0 + _sector(q, b, r)
    return _sector(a, b, r)


def _sector(p: Point, q: Point, r: float) -> float:
    """Signed circular-sector area between directions ``p`` and ``q``."""
    theta = math.atan2(cross(p, q), p.x * q.x + p.y * q.y)
    return r * r * theta / 2.0


def _lerp(a: Point, b: Point, t: float) -> Point:
    return Point(a.x + t * (b.x - a.x), a.y + t * (b.y - a.y))
