"""Computational-geometry substrate for the LBS aggregate estimators.

Public surface:

* :class:`~repro.geometry.primitives.Point`,
  :class:`~repro.geometry.primitives.Rect` — basic primitives.
* :class:`~repro.geometry.halfplane.HalfPlane`,
  :func:`~repro.geometry.halfplane.bisector_halfplane` — constraints.
* :class:`~repro.geometry.polygon.ConvexPolygon` — labeled-edge convex
  polygons with half-plane clipping.
* :class:`~repro.geometry.circle.Disk`,
  :func:`~repro.geometry.coverage.disk_covered_by_union` — the exact
  known-disk coverage test behind the §3.2.4 lower bound.
* :func:`~repro.geometry.circle_area.polygon_disk_area` — exact
  polygon-disk intersection area (max-radius constraint, §5.3).
* :func:`~repro.geometry.arrangement.build_level_region` — top-k Voronoi
  cells as arrangement level sets (§2.2, §4.2).
* :mod:`~repro.geometry.voronoi_ref` — full-knowledge reference diagram
  (ground truth for tests and Fig. 11).
"""

from .arrangement import LevelRegion, build_level_region
from .circle import AngularIntervals, Disk, arc_inside_disk
from .circle_area import polygon_disk_area, segment_circle_intersections
from .coverage import disk_covered_by_union
from .halfplane import HalfPlane, bisector_halfplane
from .polygon import BBOX_LABEL, ConvexPolygon, sample_triangle
from .primitives import (
    EPS,
    Point,
    Rect,
    angle_between,
    angle_of,
    cross,
    distance,
    distance_sq,
    dot,
    interpolate,
    midpoint,
    normalize,
    orientation,
    perpendicular,
    polygon_area,
    polygon_centroid,
    rotate,
)
from .voronoi_ref import full_voronoi_diagram, true_topk_cell, true_voronoi_cell

__all__ = [
    "EPS",
    "Point",
    "Rect",
    "HalfPlane",
    "bisector_halfplane",
    "ConvexPolygon",
    "BBOX_LABEL",
    "sample_triangle",
    "Disk",
    "AngularIntervals",
    "arc_inside_disk",
    "disk_covered_by_union",
    "polygon_disk_area",
    "segment_circle_intersections",
    "LevelRegion",
    "build_level_region",
    "true_voronoi_cell",
    "true_topk_cell",
    "full_voronoi_diagram",
    "angle_between",
    "angle_of",
    "cross",
    "distance",
    "distance_sq",
    "dot",
    "interpolate",
    "midpoint",
    "normalize",
    "orientation",
    "perpendicular",
    "polygon_area",
    "polygon_centroid",
    "rotate",
]
