"""Planar geometric primitives shared by the whole library.

Everything in :mod:`repro.geometry` works on plain ``(x, y)`` float pairs
wrapped in the :class:`Point` named tuple.  Keeping the representation this
small matters: the estimation algorithms clip polygons and intersect lines
millions of times per experiment, and attribute access on a named tuple is
the cheapest structured option in CPython.

Numerical policy
----------------
All predicates accept coordinates of arbitrary magnitude; tolerances are
*absolute* and derived from :data:`EPS`.  The library works in "kilometre
scale" planes (coordinates roughly in ``[0, 1e4]``), for which ``EPS=1e-9``
comfortably separates genuine geometric coincidences from float noise.
"""

from __future__ import annotations

import math
from typing import Iterable, NamedTuple

__all__ = [
    "EPS",
    "Point",
    "Rect",
    "distance",
    "distance_sq",
    "midpoint",
    "dot",
    "cross",
    "orientation",
    "rotate",
    "normalize",
    "perpendicular",
    "interpolate",
    "angle_of",
    "angle_between",
    "polygon_area",
    "polygon_centroid",
]

#: Absolute tolerance used by geometric predicates.
EPS = 1e-9


class Point(NamedTuple):
    """A point (or free vector) in the plane."""

    x: float
    y: float

    def __add__(self, other: "Point") -> "Point":  # type: ignore[override]
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Point":  # type: ignore[override]
        return Point(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def norm(self) -> float:
        """Euclidean length of the vector from the origin."""
        return math.hypot(self.x, self.y)


class Rect(NamedTuple):
    """An axis-aligned rectangle ``[x0, x1] x [y0, y1]``.

    Used as the bounding region ``V0`` of every experiment: the plane is
    bounded so Voronoi cells have finite area (Definition 1 of the paper).
    """

    x0: float
    y0: float
    x1: float
    y1: float

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def perimeter(self) -> float:
        return 2.0 * (self.width + self.height)

    @property
    def center(self) -> Point:
        return Point((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)

    def corners(self) -> list[Point]:
        """Counter-clockwise corners starting at ``(x0, y0)``."""
        return [
            Point(self.x0, self.y0),
            Point(self.x1, self.y0),
            Point(self.x1, self.y1),
            Point(self.x0, self.y1),
        ]

    def contains(self, p: Point, tol: float = EPS) -> bool:
        return (
            self.x0 - tol <= p.x <= self.x1 + tol
            and self.y0 - tol <= p.y <= self.y1 + tol
        )

    def clamp(self, p: Point) -> Point:
        """Project ``p`` onto the rectangle."""
        return Point(
            min(max(p.x, self.x0), self.x1),
            min(max(p.y, self.y0), self.y1),
        )

    def expanded(self, margin: float) -> "Rect":
        """A copy grown by ``margin`` on every side."""
        return Rect(self.x0 - margin, self.y0 - margin, self.x1 + margin, self.y1 + margin)

    def sample(self, rng) -> Point:
        """A uniform random point (``rng`` is a numpy ``Generator``)."""
        return Point(
            self.x0 + rng.random() * self.width,
            self.y0 + rng.random() * self.height,
        )


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points."""
    return math.hypot(a.x - b.x, a.y - b.y)


def distance_sq(a: Point, b: Point) -> float:
    """Squared Euclidean distance (avoids the sqrt for comparisons)."""
    dx = a.x - b.x
    dy = a.y - b.y
    return dx * dx + dy * dy


def midpoint(a: Point, b: Point) -> Point:
    return Point((a.x + b.x) / 2.0, (a.y + b.y) / 2.0)


def dot(a: Point, b: Point) -> float:
    return a.x * b.x + a.y * b.y


def cross(a: Point, b: Point) -> float:
    """Z component of the 3-D cross product of two plane vectors."""
    return a.x * b.y - a.y * b.x


def orientation(a: Point, b: Point, c: Point) -> float:
    """Twice the signed area of triangle ``abc`` (> 0 means counter-clockwise)."""
    return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)


def rotate(v: Point, angle: float) -> Point:
    """Rotate vector ``v`` counter-clockwise by ``angle`` radians."""
    c = math.cos(angle)
    s = math.sin(angle)
    return Point(c * v.x - s * v.y, s * v.x + c * v.y)


def normalize(v: Point) -> Point:
    """Unit vector in the direction of ``v``.

    Raises :class:`ValueError` on the zero vector: callers always derive
    directions from distinct points, so a zero here is a logic error.
    """
    n = v.norm()
    if n < EPS:
        raise ValueError("cannot normalize a (near-)zero vector")
    return Point(v.x / n, v.y / n)


def perpendicular(v: Point) -> Point:
    """``v`` rotated +90 degrees."""
    return Point(-v.y, v.x)


def interpolate(a: Point, b: Point, t: float) -> Point:
    """Point ``a + t * (b - a)``; ``t`` in [0, 1] stays on the segment."""
    return Point(a.x + t * (b.x - a.x), a.y + t * (b.y - a.y))


def angle_of(v: Point) -> float:
    """Polar angle of ``v`` in ``(-pi, pi]``."""
    return math.atan2(v.y, v.x)


def angle_between(u: Point, v: Point) -> float:
    """Unsigned angle between two vectors, in ``[0, pi]``."""
    nu = u.norm()
    nv = v.norm()
    if nu < EPS or nv < EPS:
        raise ValueError("angle undefined for zero vectors")
    c = dot(u, v) / (nu * nv)
    c = min(1.0, max(-1.0, c))
    return math.acos(c)


def polygon_area(vertices: Iterable[Point]) -> float:
    """Signed area of a simple polygon (positive when counter-clockwise)."""
    vs = list(vertices)
    n = len(vs)
    if n < 3:
        return 0.0
    acc = 0.0
    for i in range(n):
        a = vs[i]
        b = vs[(i + 1) % n]
        acc += a.x * b.y - b.x * a.y
    return acc / 2.0


def polygon_centroid(vertices: Iterable[Point]) -> Point:
    """Centroid of a simple polygon; falls back to the vertex mean when the
    polygon is degenerate (zero area)."""
    vs = list(vertices)
    n = len(vs)
    if n == 0:
        raise ValueError("centroid of an empty polygon")
    area2 = 0.0
    cx = 0.0
    cy = 0.0
    for i in range(n):
        a = vs[i]
        b = vs[(i + 1) % n]
        w = a.x * b.y - b.x * a.y
        area2 += w
        cx += (a.x + b.x) * w
        cy += (a.y + b.y) * w
    if abs(area2) < EPS:
        return Point(
            sum(v.x for v in vs) / n,
            sum(v.y for v in vs) / n,
        )
    return Point(cx / (3.0 * area2), cy / (3.0 * area2))
