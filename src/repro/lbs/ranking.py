"""Ranking policies and location obfuscation for the simulated services.

The answering pipeline's *ranking* stage is pluggable: every policy
implements :class:`RankingPolicy` — top-k for one query point (``rank``)
and for a whole batch (``rank_batch``), with the guarantee that the two
kernels return bit-identical answers.

* :class:`DistanceRanking` — the default Euclidean order, a thin wrapper
  over the interface's spatial index (which already owns exact scalar
  and vectorized kNN kernels).
* :class:`ProminenceRanking` — the Google-Places "prominence" order of
  paper §5.3: a weighted mix of a distance score and a static popularity
  score.  Its batch kernel prunes candidates through the index's
  ``range_batch`` and scores the survivors in one NumPy pass (see
  :meth:`ProminenceRanking.rank_batch` for the exactness argument).

Effective locations differ from true ones when the service obfuscates
(WeChat-style, paper §6.3 "Localization Accuracy"): each tuple gets one
fixed jitter, drawn once, so repeated queries are consistent — which is
exactly what makes localization attacks *almost* work against WeChat and
why Fig. 21 shows a bounded but non-zero error floor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from ..geometry import Point
from ..index import SpatialIndex
from .tuples import LbsTuple

__all__ = [
    "ObfuscationModel",
    "RankingPolicy",
    "DistanceRanking",
    "ProminenceRanking",
]

#: One ranked answer entry: ``(distance, tid)`` — the pair the pipeline's
#: truncation and projection stages consume.
Ranked = tuple[float, int]


def _splitmix64(z: np.ndarray) -> np.ndarray:
    """One vectorized splitmix64 mixing round over uint64 arrays.

    Callers pass arrays of ndim >= 1: array uint64 arithmetic wraps
    silently, whereas NumPy warns on overflowing scalar/0-d ops.
    """
    z = z + np.uint64(0x9E3779B97F4A7C15)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


@dataclass(frozen=True)
class ObfuscationModel:
    """Fixed per-tuple Gaussian jitter of reported/ranked positions.

    ``sigma`` is the standard deviation (same units as coordinates) and
    ``clip`` an optional hard cap on the displacement norm —
    ``clip=0.0`` is honoured as *zero displacement* (every jitter scales
    to the origin), not as "unclipped".

    Jitter stability — the "drawn once, for good" invariant
    -------------------------------------------------------
    By default jitters are consumed positionally from one RNG stream
    over tid-sorted tuples.  That makes a given *database* reproducible,
    but it is a hazard for derived databases: building an interface
    directly on a ``filtered()``/``subsample()`` database assigns the
    same tuple a *different* jitter than the parent world, because the
    tuple now sits at a different stream position.  (Interface views
    made via :meth:`KnnInterface.filtered` are safe — they inherit the
    parent's realized jitters.)  ``per_tid=True`` opts into deriving
    each jitter from the tuple's tid alone (a counter-based per-tid
    substream), so the invariant holds no matter which subset of the
    world an interface is built over.  The per-tid stream is a
    *different* stream than the default — existing seeds do not
    reproduce, which is why it is opt-in.
    """

    sigma: float
    seed: int = 0
    clip: Optional[float] = None
    per_tid: bool = False

    def __post_init__(self) -> None:
        if self.sigma < 0.0:
            raise ValueError("obfuscation sigma must be non-negative")
        if self.clip is not None and self.clip < 0.0:
            raise ValueError(
                "obfuscation clip must be non-negative (0.0 means zero "
                "displacement; omit it for unclipped jitter)"
            )

    # ------------------------------------------------------------------
    def _offsets_positional(self, tids: np.ndarray) -> np.ndarray:
        """The historical stream: one (N, 2) draw over tid-sorted rows,
        scattered back to row order."""
        rng = np.random.default_rng(self.seed)
        # One (N, 2) draw.  The generator fills C-order, consuming the
        # stream exactly like the historical per-tuple size-2 draws, so
        # jitters are bit-identical to the pre-vectorization loop
        # (regression-tested against an inline reference in
        # tests/lbs/test_lbs.py).
        drawn = rng.normal(0.0, self.sigma, size=(len(tids), 2))
        if len(tids) <= 1 or bool((tids[1:] > tids[:-1]).all()):
            return drawn  # rows already in tid order (the common case)
        offsets = np.empty_like(drawn)
        offsets[np.argsort(tids)] = drawn
        return offsets

    def _offsets_per_tid(self, tids: np.ndarray) -> np.ndarray:
        """Counter-based per-tid substream: each tuple's jitter is a
        pure function of ``(seed, tid)``, independent of which database
        subset it appears in."""
        t = np.asarray(tids, dtype=np.int64).astype(np.uint64)
        z0 = _splitmix64(np.array([self.seed & 0xFFFFFFFFFFFFFFFF], dtype=np.uint64))
        h1 = _splitmix64(t ^ z0)
        h2 = _splitmix64(h1 ^ np.uint64(0xD2B74407B1CE6E93))
        # 53-bit uniforms; u1 shifted into (0, 1] so log() is finite.
        u1 = 1.0 - (h1 >> np.uint64(11)) * (2.0 ** -53)
        u2 = (h2 >> np.uint64(11)) * (2.0 ** -53)
        r = self.sigma * np.sqrt(-2.0 * np.log(u1))
        theta = 2.0 * np.pi * u2
        return np.stack([r * np.cos(theta), r * np.sin(theta)], axis=1)

    def effective_coords(self, coords: np.ndarray, tids: np.ndarray) -> np.ndarray:
        """Jittered positions for a whole coordinate array at once.

        ``coords`` is the database's ``(N, 2)`` array and ``tids`` the
        row-aligned tuple ids; the result is ``(N, 2)`` in the same row
        order.  One vectorized draw, one vectorized clip — and for the
        default (positional) stream the values are bit-identical to the
        dict-building :meth:`effective_locations` path.
        """
        coords = np.asarray(coords, dtype=np.float64)
        tids = np.asarray(tids, dtype=np.int64)
        if self.per_tid:
            offsets = self._offsets_per_tid(tids)
        else:
            offsets = self._offsets_positional(tids)
        if self.clip is not None:
            norms = np.hypot(offsets[:, 0], offsets[:, 1])
            safe = np.where(norms > 0.0, norms, 1.0)
            scale = np.where(norms > self.clip, self.clip / safe, 1.0)
            offsets = offsets * scale[:, None]
        return coords + offsets

    def effective_locations(self, tuples: Sequence[LbsTuple]) -> dict[int, Point]:
        """Dict form of :meth:`effective_coords` over materialized rows
        (kept for tests and small-scale callers; the interface build
        path is array-native)."""
        ordered = sorted(tuples, key=lambda t: t.tid)
        coords = np.array([[t.location.x, t.location.y] for t in ordered])
        coords = coords.reshape(len(ordered), 2)
        tids = np.array([t.tid for t in ordered], dtype=np.int64)
        eff = self.effective_coords(coords, tids)
        return {
            t.tid: Point(float(x), float(y))
            for t, (x, y) in zip(ordered, eff)
        }

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "sigma": self.sigma,
            "seed": self.seed,
            "clip": self.clip,
            "per_tid": self.per_tid,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ObfuscationModel":
        return cls(
            sigma=data["sigma"],
            seed=data.get("seed", 0),
            clip=data.get("clip"),
            per_tid=data.get("per_tid", False),
        )


@runtime_checkable
class RankingPolicy(Protocol):
    """The pipeline's ranking stage: top-k candidates for query points."""

    def rank(self, point: Point, k: int) -> list[Ranked]:
        """Top-k as ``(distance, tid)`` pairs in service order."""

    def rank_batch(self, points: Sequence[Point], k: int) -> list[list[Ranked]]:
        """Per-point answers, bit-identical to looping :meth:`rank`."""


class DistanceRanking:
    """Euclidean nearest-first order (the default service ranking).

    Delegates both kernels to the spatial index, which realizes the one
    exact metric of :mod:`repro.index.base` — so looped and batched
    answers are bit-identical by construction.
    """

    def __init__(self, index: SpatialIndex):
        self.index = index

    def rank(self, point: Point, k: int) -> list[Ranked]:
        return self.index.knn(point.x, point.y, k)

    def rank_batch(self, points: Sequence[Point], k: int) -> list[list[Ranked]]:
        return self.index.knn_batch([(p.x, p.y) for p in points], k)


class ProminenceRanking:
    """Rank by ``w_d * distance_score + w_s * static_score`` (paper §5.3).

    ``distance_score`` decays linearly from 1 at distance 0 to 0 at
    ``distance_cap`` (and stays 0 beyond — the paper's "0 to tuples more
    than 50 miles away").  ``static_attr`` supplies the popularity score,
    normalized to [0, 1] over ``static_range`` (by default the observed
    attribute range of the database; ``filtered()`` views pass the
    parent's range so a narrowed candidate set keeps the service's fixed
    scoring function).

    Distances use the index contract's exact metric — ``sqrt`` of
    ``dx*dx + dy*dy`` (see :mod:`repro.index.base`) — which is what makes
    the pruned batch kernel bit-identical to the full scalar scan.
    """

    def __init__(
        self,
        tuples: Sequence[LbsTuple],
        locations: dict[int, Point],
        static_attr: str,
        weight_distance: float = 0.5,
        weight_static: float = 0.5,
        distance_cap: float = 50.0,
        static_range: Optional[tuple[float, float]] = None,
        index: Optional[SpatialIndex] = None,
    ):
        tids = np.array(sorted(locations), dtype=np.int64)
        by_tid = {t.tid: t for t in tuples}
        xs = np.array([locations[tid].x for tid in tids])
        ys = np.array([locations[tid].y for tid in tids])
        raw = np.array([float(by_tid[int(tid)].get(static_attr, 0.0)) for tid in tids])
        self._init_arrays(
            tids, xs, ys, raw, static_attr,
            weight_distance, weight_static, distance_cap, static_range, index,
        )

    @classmethod
    def from_database(
        cls,
        database,
        coords: np.ndarray,
        static_attr: str,
        weight_distance: float = 0.5,
        weight_static: float = 0.5,
        distance_cap: float = 50.0,
        static_range: Optional[tuple[float, float]] = None,
        index: Optional[SpatialIndex] = None,
    ) -> "ProminenceRanking":
        """Array-native construction straight off the columnar store.

        ``coords`` is the ``(N, 2)`` *effective* coordinate array
        aligned with ``database`` rows (true positions, or the
        interface's realized jitters).  Static scores gather from the
        database's typed column in one pass — no ``LbsTuple`` rows are
        materialized — and the result is bit-identical to the
        row-materializing constructor.
        """
        tids = database.tids
        coords = np.asarray(coords, dtype=np.float64)
        n = len(tids)
        order = None
        if n > 1 and not bool((tids[1:] > tids[:-1]).all()):
            order = np.argsort(tids)
            tids = tids[order]
            coords = coords[order]
        col = database.column(static_attr)
        if col is None:
            raw = np.zeros(n, dtype=np.float64)
        else:
            values = col.values if order is None else col.values[order]
            if values.dtype == object:
                # Same conversion (and the same failure on
                # non-numeric values) as float(t.get(attr, 0.0)).
                present = (
                    None if col.present is None
                    else (col.present if order is None else col.present[order])
                )
                raw = np.array([
                    float(v) if (present is None or p) else 0.0
                    for v, p in zip(
                        values.tolist(),
                        present.tolist() if present is not None else [True] * n,
                    )
                ])
            else:
                raw = values.astype(np.float64)
                if col.present is not None:
                    present = col.present if order is None else col.present[order]
                    raw = np.where(present, raw, 0.0)
        self = cls.__new__(cls)
        self._init_arrays(
            np.ascontiguousarray(tids), coords[:, 0], coords[:, 1], raw,
            static_attr, weight_distance, weight_static, distance_cap,
            static_range, index,
        )
        return self

    def _init_arrays(
        self,
        tids: np.ndarray,
        xs: np.ndarray,
        ys: np.ndarray,
        raw: np.ndarray,
        static_attr: str,
        weight_distance: float,
        weight_static: float,
        distance_cap: float,
        static_range: Optional[tuple[float, float]],
        index: Optional[SpatialIndex],
    ) -> None:
        if weight_distance < 0.0 or weight_static < 0.0:
            raise ValueError("prominence weights must be non-negative")
        if distance_cap <= 0.0:
            raise ValueError("distance_cap must be positive")
        self.static_attr = static_attr
        self.tids = tids
        self.xs = xs
        self.ys = ys
        if static_range is None:
            lo = float(raw.min()) if len(raw) else 0.0
            hi = float(raw.max()) if len(raw) else 0.0
        else:
            lo, hi = float(static_range[0]), float(static_range[1])
        self.static_range = (lo, hi)
        spread = hi - lo
        self.static_scores = (raw - lo) / spread if spread > 0 else np.zeros_like(raw)
        self.weight_distance = weight_distance
        self.weight_static = weight_static
        self.distance_cap = distance_cap
        self._index = index
        # All tuples ordered by static-only score (the score of anything
        # beyond the cap), descending, ties by ascending tid — the batch
        # kernel's guaranteed-candidate list.
        self._static_order = np.lexsort(
            (self.tids, -(self.weight_static * self.static_scores))
        )
        # Expected in-cap candidate fraction: when the cap disk covers a
        # sizeable share of the point cloud, range pruning retrieves
        # nearly everything through per-candidate CSR plumbing and loses
        # to the pure-NumPy full scan — fall back past the crossover.
        if len(self.tids):
            span = (float(self.xs.max() - self.xs.min()),
                    float(self.ys.max() - self.ys.min()))
            bbox_area = span[0] * span[1]
            self._cap_fraction = (
                min(1.0, np.pi * distance_cap**2 / bbox_area) if bbox_area > 0 else 1.0
            )
        else:
            self._cap_fraction = 1.0

    #: Entry budget per distance-matrix chunk: chunks of the (m, n)
    #: query × tuple matrix stay ~30 MB of float64 intermediates.
    _MATRIX_CHUNK_ENTRIES = 4_000_000

    #: Cap-area fraction above which ``rank_batch`` switches from CSR
    #: candidate pruning to the chunked full distance matrix.  Measured
    #: on ``paper/places-prominence`` at n=100k (k=10, 1024 uniform
    #: queries, best-of-3; cap sized so the cap disk covers the given
    #: fraction of the bbox — 0.02 of the area is ~8% of a square
    #: region's side):
    #:
    #: ========== =========== ===========
    #: area frac   pruned q/s  matrix q/s
    #: ========== =========== ===========
    #: 0.010       1057        482
    #: 0.015       695         475
    #: 0.020       491         479
    #: 0.025       391         452
    #: 0.040       228         440
    #: 0.094       86          471
    #: 1.000       (—)         471
    #: ========== =========== ===========
    #:
    #: The matrix kernel is flat in cap size (~470-490 q/s; the scalar
    #: full-scan loop it replaced managed ~96-99); pruning decays as the
    #: cap disk grows, so the crossover sits at 0.02.
    _MATRIX_MIN_CAP_FRACTION = 0.02

    # ------------------------------------------------------------------
    def _scores(self, dist: np.ndarray, static: np.ndarray) -> np.ndarray:
        dscore = np.clip(1.0 - dist / self.distance_cap, 0.0, 1.0)
        return self.weight_distance * dscore + self.weight_static * static

    def rank(self, point: Point, k: int) -> list[Ranked]:
        """Top-k as ``(distance, tid)`` pairs ordered by descending score.

        Note the returned pairs still carry the *distance* (the interface
        decides whether to expose it); the ordering is by prominence.
        """
        dx = self.xs - point.x
        dy = self.ys - point.y
        dist = np.sqrt(dx * dx + dy * dy)
        score = self._scores(dist, self.static_scores)
        # Deterministic order: descending score, then ascending tid.
        order = np.lexsort((self.tids, -score))
        top = order[: max(k, 0)]
        return [(float(dist[i]), int(self.tids[i])) for i in top]

    def rank_batch(self, points: Sequence[Point], k: int) -> list[list[Ranked]]:
        """The vectorized kernel: prune, then score in one NumPy pass.

        Exactness: a tuple beyond ``distance_cap`` scores exactly
        ``w_s * static`` (its distance score clips to 0), so any tuple
        that is neither within the cap (``range_batch``) nor among the
        top-k of the static-only order cannot enter the top-k — each of
        those k static-order tuples already beats it (their final score
        only *gains* from ``w_d * dscore >= 0``, and on equal score the
        static order's tid tie-break is the final order's tie-break).
        Scoring the candidate union with the same elementwise IEEE
        operations as :meth:`rank` therefore reproduces the full scan
        bit for bit.
        """
        pts = [(p.x, p.y) for p in points]
        m = len(pts)
        n = int(self.tids.size)
        kk = min(max(k, 0), n)
        if not pts:
            return []
        if kk == 0:
            return [[] for _ in pts]
        if kk >= n or n <= 64:
            # Nothing worth pruning or partitioning — the per-point full
            # scan is already the whole answer.
            return [self.rank(Point(x, y), k) for x, y in pts]
        if self._index is None or self._cap_fraction >= self._MATRIX_MIN_CAP_FRACTION:
            # No index to prune with, or a cap wide enough that
            # "pruning" would gather much of the database through CSR
            # plumbing: the chunked full distance matrix is the faster
            # exact kernel there (see the measured crossover table on
            # _MATRIX_MIN_CAP_FRACTION).
            return self._rank_batch_matrix(pts, kk)

        # Candidate retrieval: everything within the cap (CSR form — no
        # per-candidate tuples), plus the guaranteed static top-k.
        cap_counts, cap_items = self._index.range_batch_ids(pts, self.distance_cap)
        cap_pos = np.searchsorted(self.tids, cap_items.astype(np.int64))
        cap_pt = np.repeat(np.arange(m), cap_counts)
        top_static = self._static_order[:kk]
        # Disjoint union: drop the (few) static-top tuples from the
        # in-cap candidates rather than dedup the concatenation — kk is
        # small, so the membership mask is one cheap broadcast.
        keep = ~(cap_pos[:, None] == top_static[None, :]).any(axis=1)
        flat = np.concatenate([cap_pos[keep], np.tile(top_static, m)])
        pt_ids = np.concatenate([cap_pt[keep], np.repeat(np.arange(m), kk)])
        counts = np.bincount(pt_ids, minlength=m)

        px = np.array([x for x, _y in pts])
        py = np.array([y for _x, y in pts])
        dx = self.xs[flat] - px[pt_ids]
        dy = self.ys[flat] - py[pt_ids]
        dist = np.sqrt(dx * dx + dy * dy)
        score = self._scores(dist, self.static_scores[flat])
        # One global ordering pass: by point, then score desc, then tid.
        order = np.lexsort((self.tids[flat], -score, pt_ids))
        offsets = np.concatenate(([0], np.cumsum(counts)))
        out = []
        for pid in range(m):
            seg = order[offsets[pid] : offsets[pid + 1]][:kk]
            out.append([(float(dist[i]), int(self.tids[flat[i]])) for i in seg])
        return out

    def _rank_batch_matrix(self, pts: list, kk: int) -> list[list[Ranked]]:
        """The gather-bound regime's kernel: a chunked full query × tuple
        distance matrix, one score partition per row.

        When the cap disk covers a sizeable share of the point cloud,
        candidate pruning retrieves nearly everything anyway — so skip
        retrieval and score *everything*, in matrix chunks of
        ``_MATRIX_CHUNK_ENTRIES``.  Each row then needs only an
        ``argpartition`` on the score (O(n) instead of the full-scan
        lexsort's O(n log n)) plus a lexsort over the tiny top pool.

        Exactness: the broadcast subtraction, ``sqrt``, ``clip``, and
        weighted sum are the same elementwise IEEE operations as
        :meth:`rank`; the pool keeps every tuple scoring >= the row's
        ``kk``-th-largest score (float comparison is exact), so the
        top-``kk`` by (score desc, tid asc) lies inside it and the pool
        lexsort reproduces the full-scan order bit for bit.
        """
        n = int(self.tids.size)
        rows = max(1, self._MATRIX_CHUNK_ENTRIES // max(n, 1))
        px = np.array([x for x, _y in pts])
        py = np.array([y for _x, y in pts])
        static = self.static_scores[None, :]
        out: list[list[Ranked]] = []
        for i in range(0, len(pts), rows):
            dx = self.xs[None, :] - px[i : i + rows, None]
            dy = self.ys[None, :] - py[i : i + rows, None]
            dist = np.sqrt(dx * dx + dy * dy)
            score = self._scores(dist, static)
            neg = -score
            kth = np.partition(neg, kk - 1, axis=1)[:, kk - 1]
            for row in range(dist.shape[0]):
                pool = np.nonzero(neg[row] <= kth[row])[0]
                order = np.lexsort((self.tids[pool], neg[row, pool]))
                top = pool[order[:kk]]
                out.append(
                    [(float(dist[row, j]), int(self.tids[j])) for j in top]
                )
        return out
