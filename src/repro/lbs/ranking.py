"""Ranking functions and location obfuscation for the simulated services.

The default service ranks by Euclidean distance on *effective* locations.
Effective locations differ from true ones when the service obfuscates
(WeChat-style, paper §6.3 "Localization Accuracy"): each tuple gets one
fixed jitter, drawn once, so repeated queries are consistent — which is
exactly what makes localization attacks *almost* work against WeChat and
why Fig. 21 shows a bounded but non-zero error floor.

:class:`ProminenceRanking` models the Google-Places "prominence" order of
§5.3: a mix of a distance score and a static popularity score.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..geometry import Point
from .tuples import LbsTuple

__all__ = ["ObfuscationModel", "ProminenceRanking"]


@dataclass(frozen=True)
class ObfuscationModel:
    """Fixed per-tuple Gaussian jitter of reported/ranked positions.

    ``sigma`` is the standard deviation (same units as coordinates) and
    ``clip`` an optional hard cap on the displacement norm.
    """

    sigma: float
    seed: int = 0
    clip: Optional[float] = None

    def effective_locations(self, tuples: Sequence[LbsTuple]) -> dict[int, Point]:
        rng = np.random.default_rng(self.seed)
        out: dict[int, Point] = {}
        for t in sorted(tuples, key=lambda t: t.tid):
            dx, dy = rng.normal(0.0, self.sigma, size=2)
            if self.clip is not None:
                norm = float(np.hypot(dx, dy))
                if norm > self.clip > 0.0:
                    dx *= self.clip / norm
                    dy *= self.clip / norm
            out[t.tid] = Point(t.location.x + float(dx), t.location.y + float(dy))
        return out


class ProminenceRanking:
    """Rank by ``w_d * distance_score + w_s * static_score`` (paper §5.3).

    ``distance_score`` decays linearly from 1 at distance 0 to 0 at
    ``distance_cap`` (and stays 0 beyond — the paper's "0 to tuples more
    than 50 miles away").  ``static_attr`` supplies the popularity score,
    normalized to [0, 1] over the database.
    """

    def __init__(
        self,
        tuples: Sequence[LbsTuple],
        locations: dict[int, Point],
        static_attr: str,
        weight_distance: float = 0.5,
        weight_static: float = 0.5,
        distance_cap: float = 50.0,
    ):
        self.tids = np.array(sorted(locations), dtype=np.int64)
        by_tid = {t.tid: t for t in tuples}
        self.xs = np.array([locations[tid].x for tid in self.tids])
        self.ys = np.array([locations[tid].y for tid in self.tids])
        raw = np.array([float(by_tid[int(tid)].get(static_attr, 0.0)) for tid in self.tids])
        spread = raw.max() - raw.min() if len(raw) else 0.0
        self.static_scores = (raw - raw.min()) / spread if spread > 0 else np.zeros_like(raw)
        self.weight_distance = weight_distance
        self.weight_static = weight_static
        self.distance_cap = distance_cap

    def rank(self, point: Point, k: int) -> list[tuple[float, int]]:
        """Top-k as ``(distance, tid)`` pairs ordered by descending score.

        Note the returned pairs still carry the *distance* (the interface
        decides whether to expose it); the ordering is by prominence.
        """
        dist = np.hypot(self.xs - point.x, self.ys - point.y)
        dscore = np.clip(1.0 - dist / self.distance_cap, 0.0, 1.0)
        score = self.weight_distance * dscore + self.weight_static * self.static_scores
        # Deterministic order: descending score, then ascending tid.
        order = np.lexsort((self.tids, -score))
        top = order[: max(k, 0)]
        return [(float(dist[i]), int(self.tids[i])) for i in top]
