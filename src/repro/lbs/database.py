"""The hidden spatial database behind a simulated LBS.

Owns the ground-truth tuples and answers *exact* aggregate queries for
experiment verification.  Estimation algorithms never touch this class
directly — they only see :mod:`repro.lbs.interface`.

Storage is columnar (struct of arrays): an ``(N, 2)`` float64 coordinate
array, an int64 tid array, and typed attribute :class:`~repro.lbs.columns.Column`
arrays with null masks.  :class:`~repro.lbs.LbsTuple` rows are lazy
*views* materialized on demand, so the scalar API (``get``, ``knn``,
iteration) is unchanged while ingest, ground truth, ``filtered()`` and
``subsample()`` run as array operations:

* :meth:`from_columns` ingests pre-columnar data (the
  :mod:`repro.worlds` synthesis pipeline) with zero per-tuple work —
  the ~10x world-build speedup of million-tuple scenarios;
* the legacy row-iterable constructor shreds tuples into columns, so
  both paths produce bit-identical databases (equivalence-tested in
  ``tests/lbs/test_columnar_db.py``);
* serializable :class:`~repro.core.aggregates.AttrEquals` conditions
  compile to boolean masks; arbitrary callables keep a row fallback.
"""

from __future__ import annotations

from collections.abc import Mapping as MappingABC
from typing import Callable, Iterable, Mapping, Optional, Sequence

import numpy as np

from ..geometry import Point, Rect
from ..index import make_index_arrays
from .columns import Column, as_column, columns_from_rows
from .tuples import LbsTuple

__all__ = ["SpatialDatabase"]

Predicate = Callable[[LbsTuple], bool]


class _CoordMapping(MappingABC):
    """A read-only ``{tid: Point}`` view over an ``(N, 2)`` array whose
    rows align with a database's rows.

    Built lazily per access, so interfaces over million-tuple databases
    never materialize a dict of Points just to look a handful up.  The
    array may be the database's own coordinate columns
    (:meth:`SpatialDatabase.lazy_locations`) or any row-aligned
    substitute — an obfuscated interface's realized effective positions
    (:meth:`SpatialDatabase.coord_mapping`).
    """

    __slots__ = ("_db", "_xy")

    def __init__(self, db: "SpatialDatabase", xy: np.ndarray):
        self._db = db
        self._xy = xy

    def __getitem__(self, tid) -> Point:
        i = self._db._pos(tid)
        return Point(float(self._xy[i, 0]), float(self._xy[i, 1]))

    def __iter__(self):
        return iter(self._db.tid_list())

    def __len__(self) -> int:
        return len(self._db)


class SpatialDatabase:
    """An immutable collection of :class:`LbsTuple` in a bounding region."""

    def __init__(self, tuples: Iterable[LbsTuple], region: Rect):
        rows = list(tuples)
        n = len(rows)
        xy = np.empty((n, 2), dtype=np.float64)
        tids = np.empty(n, dtype=np.int64)
        for i, t in enumerate(rows):
            xy[i, 0] = t.location.x
            xy[i, 1] = t.location.y
            tids[i] = t.tid
        self._init_columnar(
            xy, tids, columns_from_rows([t.attrs for t in rows]), region
        )
        # The given rows *are* the row views — identical objects, and no
        # rebuild cost on tuples()/get().
        self._rows = rows

    # ------------------------------------------------------------------
    # Columnar ingest
    # ------------------------------------------------------------------
    @classmethod
    def from_columns(
        cls,
        xy: np.ndarray,
        tids: np.ndarray,
        columns: Mapping[str, object],
        region: Rect,
    ) -> "SpatialDatabase":
        """Zero-copy columnar ingest: the fast path of world builds.

        ``xy`` is an ``(N, 2)`` coordinate array, ``tids`` the int64
        tuple ids, and ``columns`` maps attribute names to
        :class:`~repro.lbs.columns.Column` values (plain arrays,
        ``(values, present)`` pairs, and Python-value sequences are
        normalized via :func:`~repro.lbs.columns.as_column`).  Arrays
        are adopted without copying when already contiguous and typed;
        callers must not mutate them afterwards.  Produces a database
        bit-identical to constructing the equivalent ``LbsTuple`` rows.
        """
        xy = np.ascontiguousarray(xy, dtype=np.float64)
        if xy.ndim != 2 or xy.shape[1] != 2:
            raise ValueError("xy must be an (N, 2) coordinate array")
        tids = np.asarray(tids, dtype=np.int64)
        if tids.shape != (len(xy),):
            raise ValueError("tids must be one id per coordinate row")
        n = len(xy)
        db = cls.__new__(cls)
        db._init_columnar(
            xy, tids, {name: as_column(c, n) for name, c in columns.items()}, region
        )
        db._rows = None
        # Ingested arrays become the database's storage without a copy,
        # so an accidental in-place write through a kept reference — or
        # through .coords/.column() — would silently corrupt the
        # database (and, for mmapped / shared-memory worlds, every
        # other attached process).  Enforce the "callers must not
        # mutate" contract at the array level: mutation raises.
        db._freeze_arrays()
        return db

    def _freeze_arrays(self) -> None:
        """Mark the coordinate/tid/column arrays read-only in place.

        Always allowed regardless of ownership (NumPy only restricts
        re-*enabling* writes), and a no-op on arrays that are already
        read-only — e.g. the mmap-backed views of a world-cache load.
        """
        self._xy.flags.writeable = False
        self._tids.flags.writeable = False
        for col in self._columns.values():
            col.values.flags.writeable = False
            if col.present is not None:
                col.present.flags.writeable = False

    def _init_columnar(
        self,
        xy: np.ndarray,
        tids: np.ndarray,
        columns: dict[str, Column],
        region: Rect,
        validate: bool = True,
    ) -> None:
        self.region = region
        self._xy = xy
        self._tids = tids
        self._columns = columns
        self._rows: Optional[list[LbsTuple]] = None
        self._tid_pos: Optional[dict[int, int]] = None
        n = len(tids)
        # Contiguous ids (the worlds guarantee) make tid -> row position
        # pure arithmetic; anything else lazily builds a lookup dict.
        self._tid0 = int(tids[0]) if n else 0
        self._contiguous = bool(n == 0 or (np.diff(tids) == 1).all())
        if validate:
            self._validate(region)
        # The database's own index serves knn()/within_radius() only —
        # interfaces build theirs over the coordinates they rank with
        # (possibly obfuscated).  Built lazily on first query, so ingest
        # (and a world-cache load, whose arrays arrive pre-validated and
        # mmapped) never pays for an index nobody asks for.
        self._index_cache: Optional[object] = None

    def _validate(self, region: Rect) -> None:
        n = len(self._tids)
        if n == 0:
            return
        if not self._contiguous:
            uniq = np.unique(self._tids)
            if uniq.size != n:
                dup_order = np.argsort(self._tids, kind="stable")
                dups = self._tids[dup_order]
                where = np.nonzero(dups[1:] == dups[:-1])[0]
                raise ValueError(f"duplicate tuple id {int(dups[where[0]])}")
        # One bounds comparison over the whole coordinate array, negated
        # so non-finite coordinates fail exactly like region.contains.
        tol = 1e-6 * max(region.width, region.height, 1.0)
        x = self._xy[:, 0]
        y = self._xy[:, 1]
        ok = (
            (x >= region.x0 - tol) & (x <= region.x1 + tol)
            & (y >= region.y0 - tol) & (y <= region.y1 + tol)
        )
        if not ok.all():
            i = int(np.argmin(ok))
            loc = Point(float(x[i]), float(y[i]))
            raise ValueError(
                f"tuple {int(self._tids[i])} at {loc} outside region {region}"
            )

    def _sliced(self, idx: np.ndarray) -> "SpatialDatabase":
        """A derived database over the given row indices.

        Coordinates were validated when *this* database was built, so
        the slice skips re-validation and re-assembly entirely — columns
        are fancy-indexed, nothing else.
        """
        db = SpatialDatabase.__new__(SpatialDatabase)
        db._init_columnar(
            np.ascontiguousarray(self._xy[idx]),
            self._tids[idx],
            {name: col.take(idx) for name, col in self._columns.items()},
            self.region,
            validate=False,
        )
        if self._rows is not None:
            db._rows = [self._rows[i] for i in idx.tolist()]
        # Slices own fresh copies, but the read-only invariant is
        # uniform: no database's storage is mutable through accessors.
        db._freeze_arrays()
        return db

    # ------------------------------------------------------------------
    # Row positions and lazy row views
    # ------------------------------------------------------------------
    def _pos(self, tid) -> int:
        # Exactly the keys the old dict-backed store resolved: 2.0 finds
        # tuple 2 (hash/eq equivalence), but 2.7 or "2" raise KeyError
        # instead of silently truncating to the wrong row.
        try:
            t = int(tid)
        except (TypeError, ValueError):
            raise KeyError(tid) from None
        if t != tid:
            raise KeyError(tid)
        if self._contiguous:
            j = t - self._tid0
            if 0 <= j < len(self._tids):
                return j
            raise KeyError(tid)
        if self._tid_pos is None:
            self._tid_pos = {t: i for i, t in enumerate(self._tids.tolist())}
        return self._tid_pos[t]

    def _positions(self, tids: Sequence[int]) -> np.ndarray:
        if self._contiguous:
            pos = np.asarray(tids, dtype=np.int64) - self._tid0
            if pos.size and (pos.min() < 0 or pos.max() >= len(self._tids)):
                bad = tids[int(np.argmax((pos < 0) | (pos >= len(self._tids))))]
                raise KeyError(bad)
            return pos
        return np.array([self._pos(t) for t in tids], dtype=np.int64)

    def _make_row(self, i: int) -> LbsTuple:
        attrs = {}
        for name, col in self._columns.items():
            if col.present_at(i):
                attrs[name] = col.value_at(i)
        return LbsTuple(
            int(self._tids[i]),
            Point(float(self._xy[i, 0]), float(self._xy[i, 1])),
            attrs,
        )

    def _materialize(self) -> list[LbsTuple]:
        if self._rows is None:
            self._rows = [self._make_row(i) for i in range(len(self._tids))]
        return self._rows

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tids)

    def __iter__(self):
        return iter(self._materialize())

    def __contains__(self, tid) -> bool:
        try:
            self._pos(tid)
        except (KeyError, TypeError, ValueError):
            return False
        return True

    def get(self, tid: int) -> LbsTuple:
        i = self._pos(tid)
        if self._rows is not None:
            return self._rows[i]
        return self._make_row(i)

    def tuples(self) -> list[LbsTuple]:
        return list(self._materialize())

    def locations(self) -> dict[int, Point]:
        xs = self._xy[:, 0].tolist()
        ys = self._xy[:, 1].tolist()
        return {
            tid: Point(x, y) for tid, x, y in zip(self._tids.tolist(), xs, ys)
        }

    # ------------------------------------------------------------------
    # Columnar accessors (the array-native hot paths)
    # ------------------------------------------------------------------
    @property
    def coords(self) -> np.ndarray:
        """The ``(N, 2)`` float64 coordinate array (do not mutate)."""
        return self._xy

    @property
    def tids(self) -> np.ndarray:
        """The int64 tuple-id array, in row order (do not mutate)."""
        return self._tids

    def tid_list(self) -> list[int]:
        return self._tids.tolist()

    def column(self, name: str) -> Optional[Column]:
        """The named attribute column, or ``None`` when absent."""
        return self._columns.get(name)

    def column_names(self) -> list[str]:
        return list(self._columns)

    def location_of(self, tid) -> Point:
        i = self._pos(tid)
        return Point(float(self._xy[i, 0]), float(self._xy[i, 1]))

    def lazy_locations(self) -> Mapping[int, Point]:
        """A read-only ``{tid: Point}`` mapping view over the columns
        (compares equal to the :meth:`locations` dict, costs nothing to
        build)."""
        return _CoordMapping(self, self._xy)

    def coord_mapping(self, xy: np.ndarray) -> Mapping[int, Point]:
        """A read-only ``{tid: Point}`` view over ``xy``, an ``(N, 2)``
        array aligned with this database's rows — the lazy
        effective-location view of obfuscated interfaces."""
        xy = np.asarray(xy, dtype=np.float64)
        if xy.shape != (len(self._tids), 2):
            raise ValueError(
                f"coordinate array has shape {xy.shape}, expected "
                f"({len(self._tids)}, 2)"
            )
        return _CoordMapping(self, xy)

    def row_positions(self, tids: Sequence[int]) -> np.ndarray:
        """Row indices of the given tids, in order (``KeyError`` on an
        unknown id) — how derived views slice row-aligned arrays such
        as a parent interface's realized jitters."""
        return self._positions(tids)

    def gather_attrs(
        self, tids: Sequence[int], names: Optional[Sequence[str]] = None
    ) -> list[dict]:
        """Attrs dicts for many tuples, gathered column-wise.

        One fancy-index per column instead of one dict walk per row —
        the projection stage's batch kernel.  ``names`` restricts (and
        orders) the returned keys, exactly like the interface's
        ``visible_attrs``; absent attributes are simply left out.
        """
        if len(tids) == 0:
            return []
        pos = self._positions(tids)
        if names is None:
            names = self._columns.keys()
        out: list[dict] = [{} for _ in range(len(pos))]
        for name in names:
            col = self._columns.get(name)
            if col is None:
                continue
            vals = col.values[pos].tolist()
            if col.present is None:
                for d, v in zip(out, vals):
                    d[name] = v
            else:
                for d, v, p in zip(out, vals, col.present[pos].tolist()):
                    if p:
                        d[name] = v
        return out

    # ------------------------------------------------------------------
    # kNN plumbing (used by interfaces)
    # ------------------------------------------------------------------
    @property
    def _index(self):
        if self._index_cache is None:
            self._index_cache = make_index_arrays(self._xy, self._tids)
        return self._index_cache

    def knn(self, point: Point, k: int) -> list[tuple[float, LbsTuple]]:
        """The k nearest tuples as ``(distance, tuple)``, ties by id."""
        return [(d, self.get(tid)) for d, tid in self._index.knn(point.x, point.y, k)]

    def within_radius(self, point: Point, radius: float) -> list[tuple[float, LbsTuple]]:
        return [
            (d, self.get(tid))
            for d, tid in self._index.within_radius(point.x, point.y, radius)
        ]

    # ------------------------------------------------------------------
    # Ground truth (experiment verification only)
    # ------------------------------------------------------------------
    def _predicate_mask(self, predicate: Optional[Predicate]) -> Optional[np.ndarray]:
        """Compile ``predicate`` to a row mask, or ``None`` when only the
        row-by-row fallback can evaluate it.

        Serializable :class:`~repro.core.aggregates.AttrEquals`
        conditions become one vectorized equality over the column,
        honouring the row semantics exactly: a missing attribute reads
        as ``None``, so ``AttrEquals(attr, None)`` matches absent rows.
        """
        n = len(self._tids)
        if predicate is None:
            return np.ones(n, dtype=bool)
        from ..core.aggregates import AttrEquals  # runtime: avoids an import cycle

        if not isinstance(predicate, AttrEquals):
            return None
        value = predicate.value
        col = self._columns.get(predicate.attr)
        if col is None:
            return np.full(n, value is None)
        try:
            eq = np.asarray(col.values == value)
        except Exception:
            eq = None
        if eq is None or eq.dtype != bool or eq.shape != (n,):
            # Incomparable dtype/value combination: fall back to the
            # per-element Python comparison the row path would run.
            eq = np.fromiter(
                (v == value for v in col.values.tolist()), bool, n
            )
        if col.present is not None:
            eq = eq & col.present
            if value is None:
                eq = eq | ~col.present
        return eq

    def _valid_values(
        self, attr: str, mask: np.ndarray
    ) -> tuple[np.ndarray, int]:
        """``(float64 values, count)`` of rows in ``mask`` carrying a
        non-``None`` value for ``attr``, in row order."""
        col = self._columns.get(attr)
        if col is None:
            return np.empty(0, dtype=np.float64), 0
        valid = mask if col.present is None else (mask & col.present)
        if col.values.dtype == object:
            valid = valid & col.not_none_mask()
            picked = col.values[valid].tolist()
            values = np.array([float(v) for v in picked], dtype=np.float64)
        else:
            values = col.values[valid].astype(np.float64)
        return values, int(valid.sum())

    def ground_truth_count(self, predicate: Optional[Predicate] = None) -> int:
        mask = self._predicate_mask(predicate)
        if mask is None:
            return sum(1 for t in self._materialize() if predicate(t))
        return int(mask.sum())

    def ground_truth_sum(self, attr: str, predicate: Optional[Predicate] = None) -> float:
        mask = self._predicate_mask(predicate)
        if mask is None:
            total = 0.0
            for t in self._materialize():
                if not predicate(t):
                    continue
                value = t.get(attr)
                if value is not None:
                    total += float(value)
            return total
        values, _count = self._valid_values(attr, mask)
        # Sequential left-to-right addition: bit-identical to the row
        # loop (NumPy's pairwise-summation reductions are not).
        return float(sum(values.tolist()))

    def ground_truth_avg(self, attr: str, predicate: Optional[Predicate] = None) -> float:
        mask = self._predicate_mask(predicate)
        if mask is None:
            total = 0.0
            count = 0
            for t in self._materialize():
                if not predicate(t):
                    continue
                value = t.get(attr)
                if value is not None:
                    total += float(value)
                    count += 1
            if count == 0:
                raise ValueError("AVG over empty selection")
            return total / count
        values, count = self._valid_values(attr, mask)
        if count == 0:
            raise ValueError("AVG over empty selection")
        return float(sum(values.tolist())) / count

    # ------------------------------------------------------------------
    # Derived databases
    # ------------------------------------------------------------------
    def filtered(self, predicate: Predicate) -> "SpatialDatabase":
        """Sub-database of tuples satisfying ``predicate`` (same region).

        This is how pass-through selection conditions (paper §5.1) are
        simulated: the service runs the kNN over matching tuples only.
        An :class:`~repro.core.aggregates.AttrEquals` predicate selects
        by column mask; other callables evaluate row by row.  Either
        way the result reuses this database's validated coordinates —
        columns are sliced, nothing is re-checked or re-assembled.
        """
        mask = self._predicate_mask(predicate)
        if mask is None:
            mask = np.fromiter(
                (bool(predicate(t)) for t in self._materialize()),
                bool,
                len(self._tids),
            )
        return self._sliced(np.nonzero(mask)[0])

    def subsample(self, fraction: float, rng: np.random.Generator) -> "SpatialDatabase":
        """Uniformly random subset of the given ``fraction`` (Fig. 18)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        n = len(self._tids)
        take = max(1, int(round(fraction * n)))
        chosen = rng.choice(n, size=take, replace=False)
        keep = np.sort(self._tids)[chosen]
        return self._sliced(np.nonzero(np.isin(self._tids, keep))[0])
