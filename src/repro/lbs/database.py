"""The hidden spatial database behind a simulated LBS.

Owns the ground-truth tuples and answers *exact* aggregate queries for
experiment verification.  Estimation algorithms never touch this class
directly — they only see :mod:`repro.lbs.interface`.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

import numpy as np

from ..geometry import Point, Rect
from ..index import make_index
from .tuples import LbsTuple

__all__ = ["SpatialDatabase"]

Predicate = Callable[[LbsTuple], bool]


class SpatialDatabase:
    """An immutable collection of :class:`LbsTuple` in a bounding region."""

    def __init__(self, tuples: Iterable[LbsTuple], region: Rect):
        self.region = region
        self._tuples: dict[int, LbsTuple] = {}
        for t in tuples:
            if t.tid in self._tuples:
                raise ValueError(f"duplicate tuple id {t.tid}")
            if not region.contains(t.location, tol=1e-6 * max(region.width, region.height, 1.0)):
                raise ValueError(f"tuple {t.tid} at {t.location} outside region {region}")
            self._tuples[t.tid] = t
        self._index = make_index(
            [(t.location.x, t.location.y, t.tid) for t in self._tuples.values()]
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self):
        return iter(self._tuples.values())

    def __contains__(self, tid: int) -> bool:
        return tid in self._tuples

    def get(self, tid: int) -> LbsTuple:
        return self._tuples[tid]

    def tuples(self) -> list[LbsTuple]:
        return list(self._tuples.values())

    def locations(self) -> dict[int, Point]:
        return {tid: t.location for tid, t in self._tuples.items()}

    # ------------------------------------------------------------------
    # kNN plumbing (used by interfaces)
    # ------------------------------------------------------------------
    def knn(self, point: Point, k: int) -> list[tuple[float, LbsTuple]]:
        """The k nearest tuples as ``(distance, tuple)``, ties by id."""
        return [(d, self._tuples[tid]) for d, tid in self._index.knn(point.x, point.y, k)]

    def within_radius(self, point: Point, radius: float) -> list[tuple[float, LbsTuple]]:
        return [
            (d, self._tuples[tid])
            for d, tid in self._index.within_radius(point.x, point.y, radius)
        ]

    # ------------------------------------------------------------------
    # Ground truth (experiment verification only)
    # ------------------------------------------------------------------
    def ground_truth_count(self, predicate: Optional[Predicate] = None) -> int:
        if predicate is None:
            return len(self._tuples)
        return sum(1 for t in self._tuples.values() if predicate(t))

    def ground_truth_sum(self, attr: str, predicate: Optional[Predicate] = None) -> float:
        total = 0.0
        for t in self._tuples.values():
            if predicate is not None and not predicate(t):
                continue
            value = t.get(attr)
            if value is not None:
                total += float(value)
        return total

    def ground_truth_avg(self, attr: str, predicate: Optional[Predicate] = None) -> float:
        total = 0.0
        count = 0
        for t in self._tuples.values():
            if predicate is not None and not predicate(t):
                continue
            value = t.get(attr)
            if value is not None:
                total += float(value)
                count += 1
        if count == 0:
            raise ValueError("AVG over empty selection")
        return total / count

    # ------------------------------------------------------------------
    # Derived databases
    # ------------------------------------------------------------------
    def filtered(self, predicate: Predicate) -> "SpatialDatabase":
        """Sub-database of tuples satisfying ``predicate`` (same region).

        This is how pass-through selection conditions (paper §5.1) are
        simulated: the service runs the kNN over matching tuples only.
        """
        return SpatialDatabase(
            [t for t in self._tuples.values() if predicate(t)], self.region
        )

    def subsample(self, fraction: float, rng: np.random.Generator) -> "SpatialDatabase":
        """Uniformly random subset of the given ``fraction`` (Fig. 18)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        tids = sorted(self._tuples)
        take = max(1, int(round(fraction * len(tids))))
        chosen = rng.choice(len(tids), size=take, replace=False)
        keep = {tids[i] for i in chosen}
        return SpatialDatabase(
            [t for tid, t in self._tuples.items() if tid in keep], self.region
        )
