"""Tuple model for the simulated LBS databases."""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Mapping

from ..geometry import Point

__all__ = ["LbsTuple"]


@dataclass(frozen=True)
class LbsTuple:
    """A database tuple: an id, a planar location, and free-form attributes.

    POIs carry attributes like ``category``, ``brand``, ``rating``,
    ``open_sundays`` or ``enrollment``; social users carry ``gender`` and
    ``location_enabled`` — mirroring the enriched OpenStreetMap / WeChat
    datasets of the paper's §6.1.
    """

    tid: int
    location: Point
    attrs: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "location", Point(*self.location))
        object.__setattr__(self, "attrs", MappingProxyType(dict(self.attrs)))

    def __getitem__(self, key: str) -> Any:
        return self.attrs[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.attrs.get(key, default)

    def __hash__(self) -> int:
        return hash(self.tid)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LbsTuple) and other.tid == self.tid
