"""Declarative interface-capability specs.

An :class:`InterfaceSpec` pins down *everything observable* about a
simulated service — interface family (LR/LNR), top-k, coverage radius,
disclosed attributes, position obfuscation, and the ranking policy — as
one frozen, JSON-round-tripping value.  It is the missing half of the
declarative surface: an :class:`~repro.api.EstimationSpec` describes the
estimation run, an ``InterfaceSpec`` describes the service it runs
against, and together a WeChat-style obfuscated LNR scenario or a
Places-style prominence-ranked service becomes fully declarative,
checkpointable, and resumable.

``build()`` turns a spec into a live interface::

    spec = InterfaceSpec(kind="lnr", k=10,
                         obfuscation=ObfuscationModel(sigma=1.0),
                         visible_attrs=("gender",))
    api = spec.build(database)

The capability grid the spec models mirrors the paper: top-k truncation
(§2.1), ``max_radius`` (§5.3), prominence ranking (§5.3), hidden
locations and obfuscated positions (§6.3, Fig. 21), and attribute
projection (what the service's result cards actually show).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from ..index import QueryEngineConfig
from ..resilience import FaultSpec, ResilientInterface, RetryPolicy
from .budget import QueryBudget
from .database import SpatialDatabase
from .interface import KnnInterface, LnrLbsInterface, LrLbsInterface
from .ranking import ObfuscationModel

__all__ = ["RankingSpec", "InterfaceSpec"]

#: Interface families of the paper's taxonomy (§2.1).
KINDS = ("lr", "lnr")
POLICIES = ("distance", "prominence")


@dataclass(frozen=True)
class RankingSpec:
    """The service's ranking policy: pure distance, or §5.3 prominence.

    Prominence scores ``w_d * dscore + w_s * static`` where ``dscore``
    decays linearly to 0 at ``distance_cap`` and ``static`` is the
    ``static_attr`` popularity normalized over the database.

    Note: the paper's LR/LNR estimators derive selection probabilities
    from distance-Voronoi cells, so they are unbiased only against
    nearest-first services; a prominence-ranked interface answers
    correctly (and batches vectorized), but estimates over it carry the
    §5.3 ranking bias, and the observation history certifies no known
    disks from its answers.
    """

    policy: str = "distance"
    static_attr: Optional[str] = None
    weight_distance: float = 0.5
    weight_static: float = 0.5
    distance_cap: float = 50.0

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(f"ranking policy must be one of {POLICIES}, got {self.policy!r}")
        if self.policy == "prominence" and not self.static_attr:
            raise ValueError("prominence ranking requires a static_attr")
        if self.weight_distance < 0.0 or self.weight_static < 0.0:
            raise ValueError("ranking weights must be non-negative")
        if self.distance_cap <= 0.0:
            raise ValueError("distance_cap must be positive")

    @classmethod
    def distance(cls) -> "RankingSpec":
        """The default nearest-first order."""
        return cls()

    @classmethod
    def prominence(
        cls,
        static_attr: str,
        weight_distance: float = 0.5,
        weight_static: float = 0.5,
        distance_cap: float = 50.0,
    ) -> "RankingSpec":
        """Google-Places style prominence order (paper §5.3)."""
        return cls("prominence", static_attr, weight_distance, weight_static, distance_cap)

    def prominence_kwargs(self) -> Optional[dict]:
        """The ``KnnInterface(prominence=...)`` configuration, or None."""
        if self.policy != "prominence":
            return None
        return {
            "static_attr": self.static_attr,
            "weight_distance": self.weight_distance,
            "weight_static": self.weight_static,
            "distance_cap": self.distance_cap,
        }

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "static_attr": self.static_attr,
            "weight_distance": self.weight_distance,
            "weight_static": self.weight_static,
            "distance_cap": self.distance_cap,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RankingSpec":
        return cls(
            policy=data.get("policy", "distance"),
            static_attr=data.get("static_attr"),
            weight_distance=data.get("weight_distance", 0.5),
            weight_static=data.get("weight_static", 0.5),
            distance_cap=data.get("distance_cap", 50.0),
        )


@dataclass(frozen=True)
class InterfaceSpec:
    """A complete, frozen description of one simulated service interface.

    Attributes
    ----------
    kind:
        ``"lr"`` (answers carry locations/distances) or ``"lnr"``
        (rank-only answers).
    k:
        Top-k truncation of every answer.
    max_radius:
        Optional coverage radius (§5.3); tuples beyond it are never
        returned.
    visible_attrs:
        Attributes the service discloses per answer (``None`` = all).
    obfuscation:
        Optional :class:`~repro.lbs.ranking.ObfuscationModel` — fixed
        per-tuple jitter of the positions the service ranks (and, for
        LR, reports).  The build realizes it as one columnar ``(N, 2)``
        draw over the database's coordinate arrays (clip and region
        clamp vectorized); the default stream assigns jitters by *row
        position* over tid-sorted tuples, so rebuild the interface from
        the same spec on the same database to keep them — or opt into
        ``per_tid=True`` for jitters stable across filtered/subsampled
        databases.
    ranking:
        The :class:`RankingSpec` ordering policy.
    fault:
        Optional :class:`~repro.resilience.FaultSpec` — the service
        connection injects deterministic, seeded transient faults
        (timeouts, rate limits, dropped answers).  Answers are never
        altered, and with the field absent the built interface is the
        bare one, bit for bit.
    retry:
        Optional :class:`~repro.resilience.RetryPolicy` — retry faulted
        attempts with capped exponential backoff and deterministic
        jitter.  Meaningful with ``fault`` (or a wrapper-injected fault
        source); legal alone.
    """

    kind: str = "lr"
    k: int = 5
    max_radius: Optional[float] = None
    visible_attrs: Optional[tuple[str, ...]] = None
    obfuscation: Optional[ObfuscationModel] = None
    ranking: RankingSpec = field(default_factory=RankingSpec)
    fault: Optional[FaultSpec] = None
    retry: Optional[RetryPolicy] = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"interface kind must be one of {KINDS}, got {self.kind!r}")
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.max_radius is not None and self.max_radius <= 0.0:
            raise ValueError("max_radius must be positive")
        if self.visible_attrs is not None and not isinstance(self.visible_attrs, tuple):
            object.__setattr__(self, "visible_attrs", tuple(self.visible_attrs))

    @property
    def returns_location(self) -> bool:
        return self.kind == "lr"

    def replace(self, **changes) -> "InterfaceSpec":
        """A copy with the given fields changed (specs are frozen)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    def build(
        self,
        database: SpatialDatabase,
        *,
        budget: Optional[QueryBudget] = None,
        engine: Optional[QueryEngineConfig] = None,
        effective_coords=None,
        index=None,
    ) -> KnnInterface:
        """Construct the live interface this spec describes.

        ``effective_coords`` and ``index`` are sharing hooks for the
        parallel executor: pre-realized obfuscated positions (the exact
        ``(N, 2)`` array the interface would draw and clamp itself —
        e.g. exported once over shared memory instead of redrawn per
        worker) and a pre-built spatial index over the coordinates the
        interface ranks with.  Both are bit-identity-preserving; leave
        them ``None`` everywhere else.
        """
        cls = LrLbsInterface if self.kind == "lr" else LnrLbsInterface
        interface: KnnInterface = cls(
            database,
            self.k,
            budget=budget,
            max_radius=self.max_radius,
            obfuscation=self.obfuscation,
            prominence=self.ranking.prominence_kwargs(),
            visible_attrs=self.visible_attrs,
            engine=engine,
            effective_coords=effective_coords,
            index=index,
        )
        if self.fault is not None or self.retry is not None:
            return ResilientInterface(interface, fault=self.fault, retry=self.retry)
        return interface

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable form; exact inverse of :meth:`from_dict`."""
        return {
            "kind": self.kind,
            "k": self.k,
            "max_radius": self.max_radius,
            "visible_attrs": list(self.visible_attrs) if self.visible_attrs is not None else None,
            "obfuscation": self.obfuscation.to_dict() if self.obfuscation is not None else None,
            "ranking": self.ranking.to_dict(),
            "fault": self.fault.to_dict() if self.fault is not None else None,
            "retry": self.retry.to_dict() if self.retry is not None else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "InterfaceSpec":
        visible: Optional[Sequence[str]] = data.get("visible_attrs")
        obf = data.get("obfuscation")
        ranking = data.get("ranking")
        fault = data.get("fault")
        retry = data.get("retry")
        return cls(
            kind=data["kind"],
            k=data["k"],
            max_radius=data.get("max_radius"),
            visible_attrs=tuple(visible) if visible is not None else None,
            obfuscation=ObfuscationModel.from_dict(obf) if obf is not None else None,
            ranking=RankingSpec.from_dict(ranking) if ranking is not None else RankingSpec(),
            fault=FaultSpec.from_dict(fault) if fault is not None else None,
            retry=RetryPolicy.from_dict(retry) if retry is not None else None,
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "InterfaceSpec":
        return cls.from_dict(json.loads(text))
