"""The composable query-answering pipeline of a simulated service.

A kNN answer is produced in three stages, each with a scalar and a batch
kernel that return bit-identical results:

1. **Ranking** — a :class:`~repro.lbs.ranking.RankingPolicy` produces the
   top-k ``(distance, tid)`` candidates (Euclidean order or §5.3
   prominence order, over true or obfuscated positions);
2. **Radius truncation** — tuples beyond the service's ``max_radius``
   (§5.3) are cut;
3. **Projection / obfuscated reporting** — each survivor is rendered as a
   :class:`ReturnedTuple`: attributes restricted to what the service
   discloses (``visible_attrs``), locations/distances exposed only by
   location-returning services — and always the *effective* (possibly
   jittered) position, never the hidden truth.

:class:`KnnInterface` composes these into its budget/cache machinery;
capability combinations (prominence × max_radius × obfuscation ×
visible_attrs) all flow through the same three stages, so the batched
hot path never falls back to per-point Python.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..geometry import Point
from ..obs import registry as _obs
from ..obs.tracing import span as _span
from .ranking import Ranked, RankingPolicy

__all__ = [
    "ReturnedTuple",
    "QueryAnswer",
    "AttributeProjection",
    "AnswerPipeline",
    "truncate_ranked",
]


@dataclass(frozen=True)
class ReturnedTuple:
    """One entry of a kNN answer.

    ``location``/``distance`` are ``None`` for LNR services.  ``attrs``
    exposes the non-spatial attributes the service discloses (name,
    gender, rating, ...).
    """

    rank: int
    tid: int
    attrs: dict
    location: Optional[Point] = None
    distance: Optional[float] = None

    def to_state(self) -> dict:
        """JSON-serializable form (attrs must hold JSON-safe values)."""
        return {
            "rank": self.rank,
            "tid": self.tid,
            "attrs": dict(self.attrs),
            "loc": [self.location.x, self.location.y] if self.location is not None else None,
            "dist": self.distance,
        }

    @classmethod
    def from_state(cls, state: dict) -> "ReturnedTuple":
        loc = state["loc"]
        return cls(
            rank=state["rank"],
            tid=state["tid"],
            attrs=dict(state["attrs"]),
            location=Point(loc[0], loc[1]) if loc is not None else None,
            distance=state["dist"],
        )


@dataclass(frozen=True)
class QueryAnswer:
    """A ranked kNN answer for one query location."""

    query: Point
    results: tuple[ReturnedTuple, ...]

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def is_empty(self) -> bool:
        return not self.results

    def tids(self) -> list[int]:
        return [r.tid for r in self.results]

    def top(self) -> Optional[ReturnedTuple]:
        return self.results[0] if self.results else None

    def rank_of(self, tid: int) -> Optional[int]:
        """1-based rank of ``tid`` in this answer, or ``None``."""
        for r in self.results:
            if r.tid == tid:
                return r.rank
        return None

    def contains(self, tid: int) -> bool:
        return self.rank_of(tid) is not None

    def ranked_before(self, a: int, b: int) -> bool:
        """True when tuple ``a`` appears and is ranked above ``b``.

        If ``b`` is absent while ``a`` is present, ``a`` counts as ranked
        before ``b`` (``b`` must then be farther than the k-th answer).
        """
        ra = self.rank_of(a)
        rb = self.rank_of(b)
        if ra is None:
            return False
        return rb is None or ra < rb

    def to_state(self) -> dict:
        """JSON-serializable form; floats round-trip exactly."""
        return {
            "q": [self.query.x, self.query.y],
            "results": [r.to_state() for r in self.results],
        }

    @classmethod
    def from_state(cls, state: dict) -> "QueryAnswer":
        return cls(
            Point(state["q"][0], state["q"][1]),
            tuple(ReturnedTuple.from_state(r) for r in state["results"]),
        )


def truncate_ranked(ranked: Sequence[Ranked], max_radius: Optional[float]) -> Sequence[Ranked]:
    """The radius-truncation stage (§5.3): cut answers beyond the cap."""
    if max_radius is None:
        return ranked
    return [(d, tid) for d, tid in ranked if d <= max_radius]


class AttributeProjection:
    """The projection / obfuscated-reporting stage.

    Renders ranked ``(distance, tid)`` pairs as the service's public
    answer: attributes filtered to ``visible_attrs``, locations and
    distances exposed only when ``returns_location`` — and the exposed
    location is always the *effective* one (obfuscated services report
    their jittered positions, §6.3).

    Attributes gather straight from the database's typed columns
    (:meth:`SpatialDatabase.gather_attrs`): the batch kernel
    fancy-indexes each column once across the whole batch instead of
    dict-copying per answer entry, and stays bit-identical to the
    scalar stage.  When the stage is built with the row-aligned
    ``coords`` array (true or effective positions), the batch kernel
    gathers exposed locations from it the same way — one fancy-index
    across the batch instead of one mapping lookup per entry.
    """

    def __init__(
        self,
        database,
        locations: dict[int, Point],
        visible_attrs: Optional[tuple[str, ...]],
        returns_location: bool,
        coords=None,
    ):
        self.database = database
        self.locations = locations
        self.visible_attrs = visible_attrs
        self.returns_location = returns_location
        self.coords = coords

    def _render(
        self,
        point: Point,
        ranked: Sequence[Ranked],
        attrs_list: Sequence[dict],
        locs_list: Optional[Sequence[Point]] = None,
    ) -> QueryAnswer:
        if self.returns_location:
            if locs_list is None:
                locations = self.locations
                locs_list = [locations[tid] for _d, tid in ranked]
            results = tuple(
                ReturnedTuple(
                    rank=rank, tid=tid, attrs=attrs,
                    location=loc, distance=d,
                )
                for rank, ((d, tid), attrs, loc) in enumerate(
                    zip(ranked, attrs_list, locs_list), start=1
                )
            )
        else:
            results = tuple(
                ReturnedTuple(rank=rank, tid=tid, attrs=attrs)
                for rank, ((_d, tid), attrs) in enumerate(
                    zip(ranked, attrs_list), start=1
                )
            )
        return QueryAnswer(point, results)

    def result(self, rank: int, dist: float, tid: int) -> ReturnedTuple:
        attrs = self.database.gather_attrs([tid], self.visible_attrs)[0]
        if self.returns_location:
            return ReturnedTuple(
                rank=rank, tid=tid, attrs=attrs,
                location=self.locations[tid], distance=dist,
            )
        return ReturnedTuple(rank=rank, tid=tid, attrs=attrs)

    def report(self, point: Point, ranked: Sequence[Ranked]) -> QueryAnswer:
        attrs_list = self.database.gather_attrs(
            [tid for _d, tid in ranked], self.visible_attrs
        )
        return self._render(point, ranked, attrs_list)

    def report_batch(
        self, points: Sequence[Point], ranked_lists: Sequence[Sequence[Ranked]]
    ) -> list[QueryAnswer]:
        flat = [tid for ranked in ranked_lists for _d, tid in ranked]
        attrs_flat = self.database.gather_attrs(flat, self.visible_attrs)
        locs_flat: Optional[list[Point]] = None
        if self.returns_location and self.coords is not None and flat:
            pos = self.database.row_positions(flat)
            xs = self.coords[pos, 0].tolist()
            ys = self.coords[pos, 1].tolist()
            locs_flat = [Point(x, y) for x, y in zip(xs, ys)]
        out: list[QueryAnswer] = []
        lo = 0
        for point, ranked in zip(points, ranked_lists):
            hi = lo + len(ranked)
            out.append(self._render(
                point, ranked, attrs_flat[lo:hi],
                None if locs_flat is None else locs_flat[lo:hi],
            ))
            lo = hi
        return out


class AnswerPipeline:
    """Ranking → radius truncation → projection, scalar and batched.

    Pure answer computation: budget accounting and the LRU answer cache
    stay in :class:`~repro.lbs.interface.KnnInterface`, which owns one
    pipeline per interface (and one per ``filtered()`` view).
    """

    def __init__(
        self,
        ranking: RankingPolicy,
        k: int,
        max_radius: Optional[float],
        projection: AttributeProjection,
    ):
        self.ranking = ranking
        self.k = k
        self.max_radius = max_radius
        self.projection = projection

    def answer(self, point: Point) -> QueryAnswer:
        reg = _obs._active
        ranked = self.ranking.rank(point, self.k)
        truncated = truncate_ranked(ranked, self.max_radius)
        answer = self.projection.report(point, truncated)
        if reg is not None:
            reg.inc("pipeline_answers_total", 1.0, {"mode": "scalar"})
            reg.inc("pipeline_returned_tuples_total", float(len(truncated)))
            cut = len(ranked) - len(truncated)
            if cut:
                reg.inc("pipeline_truncated_tuples_total", float(cut))
        return answer

    def answer_batch(self, points: Sequence[Point]) -> list[QueryAnswer]:
        reg = _obs._active
        if reg is None:
            ranked_lists = self.ranking.rank_batch(points, self.k)
            return self.projection.report_batch(
                points, [truncate_ranked(r, self.max_radius) for r in ranked_lists]
            )
        # Instrumented path: identical stages, per-stage spans + counters.
        with _span("pipeline.rank_batch"):
            ranked_lists = self.ranking.rank_batch(points, self.k)
        truncated = [truncate_ranked(r, self.max_radius) for r in ranked_lists]
        with _span("pipeline.project_batch"):
            out = self.projection.report_batch(points, truncated)
        reg.inc("pipeline_answers_total", float(len(points)), {"mode": "batch"})
        reg.inc(
            "pipeline_returned_tuples_total",
            float(sum(len(t) for t in truncated)),
        )
        cut = sum(len(r) for r in ranked_lists) - sum(len(t) for t in truncated)
        if cut:
            reg.inc("pipeline_truncated_tuples_total", float(cut))
        return out
