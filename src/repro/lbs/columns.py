"""Typed attribute columns: the struct-of-arrays half of the data spine.

A :class:`Column` is one attribute over all rows of a
:class:`~repro.lbs.SpatialDatabase`: a length-``N`` NumPy array of
values plus an optional boolean *present* mask (``None`` means the
attribute exists on every row).  Columns are typed where the values
allow it — ``float64`` / ``int64`` / ``bool`` — and fall back to an
``object`` array for anything else (strings, ``None``, mixed types), so
a lazily rebuilt row carries exactly the Python values the row-oriented
path would have stored:

* typed slots convert through ``ndarray.item()`` / ``tolist()``, which
  yield the same ``float`` / ``int`` / ``bool`` objects the original
  attrs dict held;
* object slots store the original objects untouched.

Absent slots of typed arrays hold an arbitrary filler (zero) that is
never read — the mask gates every access.

The helpers here are the shared plumbing of the columnar ingest path:
:func:`column_from_values` infers a dtype from row values (the legacy
row-iterable constructor shreds through it), :func:`columns_from_rows`
shreds a whole attrs sequence, and :func:`concat_columns` stacks
per-block column sets (the multi-schema POI generator) into one set
with absence masks where a block lacks a column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

import numpy as np

__all__ = [
    "Column",
    "as_column",
    "column_from_values",
    "columns_from_rows",
    "concat_columns",
]


@dataclass
class Column:
    """One attribute column: values plus an optional present mask."""

    values: np.ndarray
    present: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values)
        if self.present is not None:
            self.present = np.asarray(self.present, dtype=bool)
            if self.present.shape != self.values.shape:
                raise ValueError("present mask must match values length")
            if bool(self.present.all()):
                self.present = None

    def __len__(self) -> int:
        return len(self.values)

    # ------------------------------------------------------------------
    def take(self, idx: np.ndarray) -> "Column":
        """The column restricted to the given row indices (row slicing
        for ``filtered()`` / ``subsample()`` — no re-validation)."""
        return Column(
            self.values[idx],
            None if self.present is None else self.present[idx],
        )

    def present_at(self, i: int) -> bool:
        return self.present is None or bool(self.present[i])

    def value_at(self, i: int):
        """Row ``i``'s value as a plain Python object."""
        v = self.values[i]
        return v if self.values.dtype == object else v.item()

    def to_list(self) -> list:
        """All values as Python objects (absent slots hold the filler)."""
        return self.values.tolist()

    def not_none_mask(self) -> np.ndarray:
        """Rows whose *stored* value is not ``None`` (typed arrays
        cannot hold ``None``; object arrays are scanned)."""
        if self.values.dtype != object:
            return np.ones(len(self.values), dtype=bool)
        return np.fromiter(
            (v is not None for v in self.values.tolist()), bool, len(self.values)
        )


def _as_object_array(values: Sequence) -> np.ndarray:
    arr = np.empty(len(values), dtype=object)
    arr[:] = list(values)
    return arr


def column_from_values(values: Sequence, present: Optional[np.ndarray] = None) -> Column:
    """Build a :class:`Column` from Python row values, inferring a dtype.

    ``values`` is full-length; slots where ``present`` is False are
    ignored for inference and overwritten with the dtype's filler.
    Homogeneous ``float`` / ``int`` / ``bool`` values get typed arrays
    (``bool`` is checked before ``int`` — it is a subclass); anything
    else, including ``None`` or NumPy scalars, keeps an object array so
    rebuilt rows return the original objects.
    """
    values = list(values)
    n = len(values)
    if present is not None:
        present = np.asarray(present, dtype=bool)
        live = [v for v, p in zip(values, present.tolist()) if p]
    else:
        live = values
    kinds = set(map(type, live))
    if kinds == {float}:
        dtype, filler = np.float64, 0.0
    elif kinds == {bool}:
        dtype, filler = np.bool_, False
    elif kinds == {int}:
        dtype, filler = np.int64, 0
    else:
        return Column(_as_object_array(values), present)
    if present is not None:
        values = [v if p else filler for v, p in zip(values, present.tolist())]
    try:
        arr = np.array(values, dtype=dtype)
    except OverflowError:  # ints beyond int64: keep the objects
        return Column(_as_object_array(values), present)
    return Column(arr, present)


def as_column(obj, n: int) -> Column:
    """Normalize a user-supplied column: a :class:`Column`, a NumPy
    array (all rows present), a ``(values, present)`` pair, or a plain
    sequence of Python values (dtype inferred)."""
    if isinstance(obj, Column):
        col = obj
    elif isinstance(obj, tuple) and len(obj) == 2:
        values, present = obj
        if isinstance(values, np.ndarray):
            col = Column(values, present)
        else:
            col = column_from_values(values, present)
    elif isinstance(obj, np.ndarray):
        col = Column(obj)
    else:
        col = column_from_values(obj)
    if len(col) != n:
        raise ValueError(f"column has {len(col)} rows, expected {n}")
    return col


def columns_from_rows(attrs_rows: Sequence[Mapping]) -> dict[str, Column]:
    """Shred per-row attrs mappings into columns (legacy-ingest path).

    Column order is first-seen key order, which reproduces each row's
    own key order for schema-shaped data (every row lists its keys in
    one consistent relative order).
    """
    n = len(attrs_rows)
    raw: dict[str, list] = {}
    present: dict[str, np.ndarray] = {}
    for i, attrs in enumerate(attrs_rows):
        for key, value in attrs.items():
            slot = raw.get(key)
            if slot is None:
                slot = raw[key] = [None] * n
                present[key] = np.zeros(n, dtype=bool)
            slot[i] = value
            present[key][i] = True
    return {
        key: column_from_values(values, present[key]) for key, values in raw.items()
    }


def concat_columns(blocks: Sequence[tuple[int, Mapping[str, Column]]]) -> dict[str, Column]:
    """Stack per-block column sets into one set over all rows.

    ``blocks`` is ``[(n_rows, columns), ...]``; a block missing a column
    contributes absent rows.  Mismatched dtypes across blocks degrade
    the merged column to objects (preserving each block's values).
    """
    names: list[str] = []
    for _n, cols in blocks:
        for name in cols:
            if name not in names:
                names.append(name)
    out: dict[str, Column] = {}
    for name in names:
        parts = [cols.get(name) for _n, cols in blocks]
        dtypes = {p.values.dtype for p in parts if p is not None}
        # A single shared non-object dtype concatenates as-is; anything
        # else (mixed dtypes across blocks) degrades to objects.
        shared = dtypes.pop() if len(dtypes) == 1 and object not in dtypes else None
        vals_parts, present_parts = [], []
        masked = False
        for (m, _cols), part in zip(blocks, parts):
            if part is None:
                vals_parts.append(
                    np.zeros(m, dtype=shared) if shared is not None
                    else np.empty(m, dtype=object)
                )
                present_parts.append(np.zeros(m, dtype=bool))
                masked = True
                continue
            if shared is not None or part.values.dtype == object:
                vals_parts.append(part.values)
            else:
                vals_parts.append(_as_object_array(part.values.tolist()))
            if part.present is None:
                present_parts.append(np.ones(m, dtype=bool))
            else:
                present_parts.append(part.present)
                masked = True
        out[name] = Column(
            np.concatenate(vals_parts) if vals_parts else np.empty(0, dtype=object),
            np.concatenate(present_parts) if masked else None,
        )
    return out
