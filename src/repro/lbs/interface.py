"""The restrictive public kNN interfaces of simulated LBS.

Two concrete services mirror the paper's taxonomy (§2.1):

* :class:`LrLbsInterface` — *Location-Returned* LBS (Google Maps style):
  each of the top-k answers carries its coordinates and distance.
* :class:`LnrLbsInterface` — *Location-Not-Returned* LBS (WeChat / Sina
  Weibo style): answers are a ranked list of ids plus non-spatial
  attributes; locations and distances are suppressed.

Both honour the common interface limitations: top-k truncation, a shared
:class:`~repro.lbs.budget.QueryBudget`, and an optional maximum coverage
radius ``max_radius`` (§5.3) outside which tuples are never returned.
``filtered`` produces a pass-through-condition view (§5.1) that shares the
parent's budget, exactly like appending ``name=Starbucks`` to an API call.

Each interface runs on a pluggable query engine
(:class:`~repro.index.QueryEngineConfig`): a spatial-index backend picked
by name or database size, a per-interface LRU answer cache (cache hits
cost no budget — only network calls count, §2.1), and a vectorized
``query_batch`` entry point used by the samplers and estimators' hot
loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from ..geometry import Point, distance
from ..index import QueryEngineConfig, make_index
from .budget import BudgetExhausted, QueryBudget
from .cache import QueryAnswerCache
from .database import SpatialDatabase
from .ranking import ObfuscationModel, ProminenceRanking
from .tuples import LbsTuple

__all__ = [
    "ReturnedTuple",
    "QueryAnswer",
    "KnnInterface",
    "LrLbsInterface",
    "LnrLbsInterface",
]

Predicate = Callable[[LbsTuple], bool]


@dataclass(frozen=True)
class ReturnedTuple:
    """One entry of a kNN answer.

    ``location``/``distance`` are ``None`` for LNR services.  ``attrs``
    exposes the non-spatial attributes the service discloses (name,
    gender, rating, ...).
    """

    rank: int
    tid: int
    attrs: dict
    location: Optional[Point] = None
    distance: Optional[float] = None

    def to_state(self) -> dict:
        """JSON-serializable form (attrs must hold JSON-safe values)."""
        return {
            "rank": self.rank,
            "tid": self.tid,
            "attrs": dict(self.attrs),
            "loc": [self.location.x, self.location.y] if self.location is not None else None,
            "dist": self.distance,
        }

    @classmethod
    def from_state(cls, state: dict) -> "ReturnedTuple":
        loc = state["loc"]
        return cls(
            rank=state["rank"],
            tid=state["tid"],
            attrs=dict(state["attrs"]),
            location=Point(loc[0], loc[1]) if loc is not None else None,
            distance=state["dist"],
        )


@dataclass(frozen=True)
class QueryAnswer:
    """A ranked kNN answer for one query location."""

    query: Point
    results: tuple[ReturnedTuple, ...]

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def is_empty(self) -> bool:
        return not self.results

    def tids(self) -> list[int]:
        return [r.tid for r in self.results]

    def top(self) -> Optional[ReturnedTuple]:
        return self.results[0] if self.results else None

    def rank_of(self, tid: int) -> Optional[int]:
        """1-based rank of ``tid`` in this answer, or ``None``."""
        for r in self.results:
            if r.tid == tid:
                return r.rank
        return None

    def contains(self, tid: int) -> bool:
        return self.rank_of(tid) is not None

    def ranked_before(self, a: int, b: int) -> bool:
        """True when tuple ``a`` appears and is ranked above ``b``.

        If ``b`` is absent while ``a`` is present, ``a`` counts as ranked
        before ``b`` (``b`` must then be farther than the k-th answer).
        """
        ra = self.rank_of(a)
        rb = self.rank_of(b)
        if ra is None:
            return False
        return rb is None or ra < rb

    def to_state(self) -> dict:
        """JSON-serializable form; floats round-trip exactly."""
        return {
            "q": [self.query.x, self.query.y],
            "results": [r.to_state() for r in self.results],
        }

    @classmethod
    def from_state(cls, state: dict) -> "QueryAnswer":
        return cls(
            Point(state["q"][0], state["q"][1]),
            tuple(ReturnedTuple.from_state(r) for r in state["results"]),
        )


class KnnInterface:
    """Shared implementation of both service flavours."""

    #: Whether answers expose tuple locations/distances.
    returns_location = True

    def __init__(
        self,
        database: SpatialDatabase,
        k: int,
        *,
        budget: Optional[QueryBudget] = None,
        max_radius: Optional[float] = None,
        obfuscation: Optional[ObfuscationModel] = None,
        prominence: Optional[dict] = None,
        visible_attrs: Optional[Sequence[str]] = None,
        engine: Optional[QueryEngineConfig] = None,
    ):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.database = database
        self.k = k
        self.budget = budget if budget is not None else QueryBudget(None)
        self.max_radius = max_radius
        self.obfuscation = obfuscation
        self.visible_attrs = tuple(visible_attrs) if visible_attrs is not None else None
        self.engine = engine if engine is not None else QueryEngineConfig()

        tuples = database.tuples()
        if obfuscation is not None:
            # Jitter, clamped to the service region: obfuscated positions
            # still live in the service's world.
            region = database.region
            self._locations = {
                tid: region.clamp(p)
                for tid, p in obfuscation.effective_locations(tuples).items()
            }
        else:
            self._locations = {t.tid: t.location for t in tuples}
        self._prominence: Optional[ProminenceRanking] = None
        if prominence is not None:
            self._prominence = ProminenceRanking(tuples, self._locations, **prominence)
        self._index = make_index(
            [(p.x, p.y, tid) for tid, p in self._locations.items()],
            self.engine.index_backend,
            auto_brute_max=self.engine.auto_brute_max,
        )
        region = database.region
        resolution = (
            self.engine.snap_resolution
            if self.engine.snap_resolution is not None
            else QueryAnswerCache.resolution_for(region.width, region.height)
        )
        # Per-interface by design: a filtered() view must never serve the
        # parent's (full-database) answers.
        self._cache = QueryAnswerCache(self.engine.cache_size, resolution)

    # ------------------------------------------------------------------
    @property
    def queries_used(self) -> int:
        return self.budget.used

    @property
    def region(self):
        return self.database.region

    def effective_location(self, tid: int) -> Point:
        """The position the service *ranks* with (tests/ground truth only)."""
        return self._locations[tid]

    # ------------------------------------------------------------------
    @property
    def cache_stats(self) -> dict:
        """Hit/miss counters of the per-interface answer cache."""
        return self._cache.stats()

    def query(self, point: Point) -> QueryAnswer:
        """Issue one kNN query.

        A cached answer (same snapped location seen before) is returned
        for free — only genuine service calls draw budget, the way the
        paper counts queries (§2.1: the rate limit is on network calls).
        """
        point = Point(*point)
        key = self._cache.key(point.x, point.y)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        self.budget.spend(1)
        answer = self._answer(point)
        self._cache.put(key, answer)
        return answer

    def query_batch(self, points: Iterable[Point]) -> list[QueryAnswer]:
        """Answer a batch of queries, in order, as one engine call.

        Answers are identical to looping :meth:`query` (regression-tested
        in ``tests/lbs/test_query_cache.py``): cache hits are free,
        duplicate locations within the batch are answered once, and the
        kNN search for all misses runs through the index's vectorized
        ``knn_batch``.  If the budget cannot cover every miss, the
        affordable prefix is answered (and cached — those queries *were*
        spent) before :class:`BudgetExhausted` is raised, exactly as a
        sequential loop would behave.
        """
        pts = [Point(*p) for p in points]
        if self._cache.capacity == 0:
            # Cache disabled: every point is a network call, duplicates
            # included — exactly like the loop of query() calls.
            paid = self.budget.affordable(len(pts))
            if paid:
                self.budget.spend(paid)
                answers = self._answer_batch(pts[:paid])
            else:
                answers = []
            if paid < len(pts):
                raise BudgetExhausted(self.budget.limit)
            return answers
        keys = [self._cache.key(p.x, p.y) for p in pts]
        answers: dict = {}
        missing: list[Point] = []
        missing_keys: list = []
        for p, key in zip(pts, keys):
            if key in answers:
                continue
            hit = self._cache.get(key)
            if hit is not None:
                answers[key] = hit
            else:
                answers[key] = None  # reserve slot, keep first-seen order
                missing.append(p)
                missing_keys.append(key)
        paid = self.budget.affordable(len(missing))
        if paid:
            self.budget.spend(paid)
            for p, key, answer in zip(
                missing[:paid], missing_keys[:paid], self._answer_batch(missing[:paid])
            ):
                self._cache.put(key, answer)
                answers[key] = answer
        if paid < len(missing):
            raise BudgetExhausted(self.budget.limit)
        return [answers[key] for key in keys]

    def _answer(self, point: Point) -> QueryAnswer:
        """Compute one answer (no budget, no cache — plumbing only)."""
        if self._prominence is not None:
            ranked = self._prominence.rank(point, self.k)
        else:
            ranked = self._index.knn(point.x, point.y, self.k)
        return self._build_answer(point, ranked)

    def _answer_batch(self, points: Sequence[Point]) -> list[QueryAnswer]:
        """Compute answers for many points (no budget, no cache)."""
        if self._prominence is not None:
            # Prominence re-ranking has no vectorized kernel.
            return [self._answer(p) for p in points]
        ranked_lists = self._index.knn_batch([(p.x, p.y) for p in points], self.k)
        return [
            self._build_answer(p, ranked) for p, ranked in zip(points, ranked_lists)
        ]

    def _build_answer(self, point: Point, ranked) -> QueryAnswer:
        if self.max_radius is not None:
            ranked = [(d, tid) for d, tid in ranked if d <= self.max_radius]
        results = tuple(
            self._make_result(rank, d, tid)
            for rank, (d, tid) in enumerate(ranked, start=1)
        )
        return QueryAnswer(point, results)

    def _make_result(self, rank: int, dist: float, tid: int) -> ReturnedTuple:
        t = self.database.get(tid)
        if self.visible_attrs is None:
            attrs = dict(t.attrs)
        else:
            attrs = {a: t.attrs[a] for a in self.visible_attrs if a in t.attrs}
        if self.returns_location:
            return ReturnedTuple(
                rank=rank, tid=tid, attrs=attrs,
                location=self._locations[tid], distance=dist,
            )
        return ReturnedTuple(rank=rank, tid=tid, attrs=attrs)

    # ------------------------------------------------------------------
    def engine_state(self) -> dict:
        """Serializable snapshot of the budget counter and answer cache.

        Together with an estimator's own state this is everything needed
        to resume a paused run bit-identically: restoring the cache (in
        LRU order) keeps future cache hits — and therefore the query
        accounting — exactly as they would have been uninterrupted.
        """
        return {
            "budget_used": self.budget.used,
            "cache": [a.to_state() for a in self._cache.entries()],
            "cache_hits": self._cache.hits,
            "cache_misses": self._cache.misses,
        }

    def restore_engine_state(self, state: dict) -> None:
        """Restore :meth:`engine_state` onto a freshly built interface."""
        self.budget.used = state["budget_used"]
        self._cache.clear()
        for entry in state["cache"]:
            answer = QueryAnswer.from_state(entry)
            self._cache.put(self._cache.key(answer.query.x, answer.query.y), answer)
        self._cache.hits = state.get("cache_hits", 0)
        self._cache.misses = state.get("cache_misses", 0)

    # ------------------------------------------------------------------
    def filtered(self, predicate: Predicate) -> "KnnInterface":
        """Pass-through selection-condition view (paper §5.1).

        Runs the kNN over matching tuples only, drawing from the *same*
        budget — like adding a keyword filter to the Places API call.
        The view gets its *own* answer cache (its answers come from a
        different database, so reusing the parent's would serve stale
        results) but shares the engine configuration.
        """
        view = type(self)(
            self.database.filtered(predicate),
            self.k,
            budget=self.budget,
            max_radius=self.max_radius,
            obfuscation=self.obfuscation,
            visible_attrs=self.visible_attrs,
            engine=self.engine,
        )
        return view


class LrLbsInterface(KnnInterface):
    """Location-Returned LBS (Google Maps / Bing Maps style)."""

    returns_location = True


class LnrLbsInterface(KnnInterface):
    """Location-Not-Returned LBS (WeChat / Sina Weibo style)."""

    returns_location = False
