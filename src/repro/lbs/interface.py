"""The restrictive public kNN interfaces of simulated LBS.

Two concrete services mirror the paper's taxonomy (§2.1):

* :class:`LrLbsInterface` — *Location-Returned* LBS (Google Maps style):
  each of the top-k answers carries its coordinates and distance.
* :class:`LnrLbsInterface` — *Location-Not-Returned* LBS (WeChat / Sina
  Weibo style): answers are a ranked list of ids plus non-spatial
  attributes; locations and distances are suppressed.

Both honour the common interface limitations: top-k truncation, a shared
:class:`~repro.lbs.budget.QueryBudget`, and an optional maximum coverage
radius ``max_radius`` (§5.3) outside which tuples are never returned.
``filtered`` produces a pass-through-condition view (§5.1) that shares the
parent's budget, exactly like appending ``name=Starbucks`` to an API call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..geometry import Point, distance
from ..index import KdTree
from .budget import QueryBudget
from .database import SpatialDatabase
from .ranking import ObfuscationModel, ProminenceRanking
from .tuples import LbsTuple

__all__ = ["ReturnedTuple", "QueryAnswer", "KnnInterface", "LrLbsInterface", "LnrLbsInterface"]

Predicate = Callable[[LbsTuple], bool]


@dataclass(frozen=True)
class ReturnedTuple:
    """One entry of a kNN answer.

    ``location``/``distance`` are ``None`` for LNR services.  ``attrs``
    exposes the non-spatial attributes the service discloses (name,
    gender, rating, ...).
    """

    rank: int
    tid: int
    attrs: dict
    location: Optional[Point] = None
    distance: Optional[float] = None


@dataclass(frozen=True)
class QueryAnswer:
    """A ranked kNN answer for one query location."""

    query: Point
    results: tuple[ReturnedTuple, ...]

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def is_empty(self) -> bool:
        return not self.results

    def tids(self) -> list[int]:
        return [r.tid for r in self.results]

    def top(self) -> Optional[ReturnedTuple]:
        return self.results[0] if self.results else None

    def rank_of(self, tid: int) -> Optional[int]:
        """1-based rank of ``tid`` in this answer, or ``None``."""
        for r in self.results:
            if r.tid == tid:
                return r.rank
        return None

    def contains(self, tid: int) -> bool:
        return self.rank_of(tid) is not None

    def ranked_before(self, a: int, b: int) -> bool:
        """True when tuple ``a`` appears and is ranked above ``b``.

        If ``b`` is absent while ``a`` is present, ``a`` counts as ranked
        before ``b`` (``b`` must then be farther than the k-th answer).
        """
        ra = self.rank_of(a)
        rb = self.rank_of(b)
        if ra is None:
            return False
        return rb is None or ra < rb


class KnnInterface:
    """Shared implementation of both service flavours."""

    #: Whether answers expose tuple locations/distances.
    returns_location = True

    def __init__(
        self,
        database: SpatialDatabase,
        k: int,
        *,
        budget: Optional[QueryBudget] = None,
        max_radius: Optional[float] = None,
        obfuscation: Optional[ObfuscationModel] = None,
        prominence: Optional[dict] = None,
        visible_attrs: Optional[Sequence[str]] = None,
    ):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.database = database
        self.k = k
        self.budget = budget if budget is not None else QueryBudget(None)
        self.max_radius = max_radius
        self.obfuscation = obfuscation
        self.visible_attrs = tuple(visible_attrs) if visible_attrs is not None else None

        tuples = database.tuples()
        if obfuscation is not None:
            # Jitter, clamped to the service region: obfuscated positions
            # still live in the service's world.
            region = database.region
            self._locations = {
                tid: region.clamp(p)
                for tid, p in obfuscation.effective_locations(tuples).items()
            }
        else:
            self._locations = {t.tid: t.location for t in tuples}
        self._prominence: Optional[ProminenceRanking] = None
        if prominence is not None:
            self._prominence = ProminenceRanking(tuples, self._locations, **prominence)
        self._index = KdTree(
            [(p.x, p.y, tid) for tid, p in self._locations.items()]
        )

    # ------------------------------------------------------------------
    @property
    def queries_used(self) -> int:
        return self.budget.used

    @property
    def region(self):
        return self.database.region

    def effective_location(self, tid: int) -> Point:
        """The position the service *ranks* with (tests/ground truth only)."""
        return self._locations[tid]

    # ------------------------------------------------------------------
    def query(self, point: Point) -> QueryAnswer:
        """Issue one kNN query; draws one unit of budget."""
        self.budget.spend(1)
        point = Point(*point)
        if self._prominence is not None:
            ranked = self._prominence.rank(point, self.k)
        else:
            ranked = self._index.knn(point.x, point.y, self.k)
        if self.max_radius is not None:
            ranked = [(d, tid) for d, tid in ranked if d <= self.max_radius]
        results = tuple(
            self._make_result(rank, d, tid)
            for rank, (d, tid) in enumerate(ranked, start=1)
        )
        return QueryAnswer(point, results)

    def _make_result(self, rank: int, dist: float, tid: int) -> ReturnedTuple:
        t = self.database.get(tid)
        if self.visible_attrs is None:
            attrs = dict(t.attrs)
        else:
            attrs = {a: t.attrs[a] for a in self.visible_attrs if a in t.attrs}
        if self.returns_location:
            return ReturnedTuple(
                rank=rank, tid=tid, attrs=attrs,
                location=self._locations[tid], distance=dist,
            )
        return ReturnedTuple(rank=rank, tid=tid, attrs=attrs)

    # ------------------------------------------------------------------
    def filtered(self, predicate: Predicate) -> "KnnInterface":
        """Pass-through selection-condition view (paper §5.1).

        Runs the kNN over matching tuples only, drawing from the *same*
        budget — like adding a keyword filter to the Places API call.
        """
        view = type(self)(
            self.database.filtered(predicate),
            self.k,
            budget=self.budget,
            max_radius=self.max_radius,
            obfuscation=self.obfuscation,
            visible_attrs=self.visible_attrs,
        )
        return view


class LrLbsInterface(KnnInterface):
    """Location-Returned LBS (Google Maps / Bing Maps style)."""

    returns_location = True


class LnrLbsInterface(KnnInterface):
    """Location-Not-Returned LBS (WeChat / Sina Weibo style)."""

    returns_location = False
