"""The restrictive public kNN interfaces of simulated LBS.

Two concrete services mirror the paper's taxonomy (§2.1):

* :class:`LrLbsInterface` — *Location-Returned* LBS (Google Maps style):
  each of the top-k answers carries its coordinates and distance.
* :class:`LnrLbsInterface` — *Location-Not-Returned* LBS (WeChat / Sina
  Weibo style): answers are a ranked list of ids plus non-spatial
  attributes; locations and distances are suppressed.

Both honour the common interface limitations: top-k truncation, a shared
:class:`~repro.lbs.budget.QueryBudget`, and an optional maximum coverage
radius ``max_radius`` (§5.3) outside which tuples are never returned.
``filtered`` produces a pass-through-condition view (§5.1) that shares the
parent's budget, exactly like appending ``name=Starbucks`` to an API call.

Answers are computed by a composable
:class:`~repro.lbs.pipeline.AnswerPipeline` — ranking policy
(:class:`~repro.lbs.ranking.DistanceRanking` or
:class:`~repro.lbs.ranking.ProminenceRanking`), radius truncation,
attribute projection — every stage with matching scalar and batch
kernels, so batched answers are bit-identical to looped ones for every
capability combination.  This class keeps what the pipeline does not:
the pluggable query engine (:class:`~repro.index.QueryEngineConfig` —
spatial-index backend, per-interface LRU answer cache where hits cost no
budget, §2.1) and the budget bookkeeping around ``query``/``query_batch``.

The declarative description of an interface — all capabilities as one
frozen JSON value — is :class:`~repro.lbs.spec.InterfaceSpec`.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

import numpy as np

from ..geometry import Point
from ..index import QueryEngineConfig, make_index_arrays
from ..obs import registry as _obs
from .budget import BudgetExhausted, QueryBudget
from .cache import QueryAnswerCache
from .database import SpatialDatabase
from .pipeline import AnswerPipeline, AttributeProjection, QueryAnswer, ReturnedTuple
from .ranking import DistanceRanking, ObfuscationModel, ProminenceRanking
from .tuples import LbsTuple

__all__ = [
    "ReturnedTuple",
    "QueryAnswer",
    "KnnInterface",
    "LrLbsInterface",
    "LnrLbsInterface",
]

Predicate = Callable[[LbsTuple], bool]


class KnnInterface:
    """Shared implementation of both service flavours."""

    #: Whether answers expose tuple locations/distances.
    returns_location = True

    def __init__(
        self,
        database: SpatialDatabase,
        k: int,
        *,
        budget: Optional[QueryBudget] = None,
        max_radius: Optional[float] = None,
        obfuscation: Optional[ObfuscationModel] = None,
        prominence: Optional[dict] = None,
        visible_attrs: Optional[Sequence[str]] = None,
        engine: Optional[QueryEngineConfig] = None,
        effective_coords: Optional[np.ndarray] = None,
        effective_locations: Optional[dict] = None,
        index: Optional[object] = None,
    ):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.database = database
        self.k = k
        # Reused label dict for the registry hot path (one per interface,
        # never mutated).
        self._obs_labels = {"kind": "lr" if self.returns_location else "lnr"}
        self.budget = budget if budget is not None else QueryBudget(None)
        self.max_radius = max_radius
        self.obfuscation = obfuscation
        self.visible_attrs = tuple(visible_attrs) if visible_attrs is not None else None
        self.engine = engine if engine is not None else QueryEngineConfig()

        if effective_coords is not None:
            # Pre-realized positions as a row-aligned (N, 2) array (a
            # filtered() view inheriting its parent's jitters — the
            # service drew each tuple's jitter once; a narrowed
            # candidate set must not re-roll it).
            eff = np.ascontiguousarray(effective_coords, dtype=np.float64)
            if eff.shape != (len(database), 2):
                raise ValueError(
                    f"effective_coords has shape {eff.shape}, expected "
                    f"({len(database)}, 2)"
                )
            self._eff_xy: Optional[np.ndarray] = eff
        elif effective_locations is not None:
            # Legacy dict form of the same passthrough.
            eff = np.empty((len(database), 2), dtype=np.float64)
            for i, tid in enumerate(database.tid_list()):
                p = effective_locations[tid]
                eff[i, 0] = p.x
                eff[i, 1] = p.y
            self._eff_xy = eff
        elif obfuscation is not None:
            # One (N, 2) jitter draw over the coordinate columns,
            # clamped to the service region in one vectorized pass:
            # obfuscated positions still live in the service's world.
            region = database.region
            eff = obfuscation.effective_coords(database.coords, database.tids)
            eff[:, 0] = np.minimum(np.maximum(eff[:, 0], region.x0), region.x1)
            eff[:, 1] = np.minimum(np.maximum(eff[:, 1], region.y0), region.y1)
            self._eff_xy = eff
        else:
            # True positions: the database's own coordinate columns.
            self._eff_xy = None
        # Either way, the tid -> Point mapping is a lazy view over the
        # coordinate array — no dict of Points is materialized.
        if self._eff_xy is None:
            self._locations = database.lazy_locations()
            self._locations_identity = True
            coords = database.coords
        else:
            self._locations = database.coord_mapping(self._eff_xy)
            self._locations_identity = False
            coords = self._eff_xy
        if index is not None:
            # Injected pre-built index (the parallel executor builds one
            # per worker and shares it across runs over the same
            # coordinates).  The caller guarantees it was built over
            # exactly ``coords``/``tids`` with this engine's backend —
            # answers are then bit-identical to building it here.
            self._index = index
        else:
            self._index = make_index_arrays(
                coords,
                database.tids,
                self.engine.index_backend,
                auto_brute_max=self.engine.auto_brute_max,
                auto_sharded_min=self.engine.auto_sharded_min,
            )
        self._prominence_config = dict(prominence) if prominence is not None else None
        if self._prominence_config is not None:
            ranking = ProminenceRanking.from_database(
                database, coords,
                index=self._index, **self._prominence_config,
            )
        else:
            ranking = DistanceRanking(self._index)
        self.pipeline = AnswerPipeline(
            ranking,
            k,
            max_radius,
            AttributeProjection(
                database, self._locations, self.visible_attrs,
                self.returns_location, coords=coords,
            ),
        )
        region = database.region
        resolution = (
            self.engine.snap_resolution
            if self.engine.snap_resolution is not None
            else QueryAnswerCache.resolution_for(region.width, region.height)
        )
        # Per-interface by design: a filtered() view must never serve the
        # parent's (full-database) answers.
        self._cache = QueryAnswerCache(self.engine.cache_size, resolution)

    # ------------------------------------------------------------------
    @property
    def queries_used(self) -> int:
        return self.budget.used

    @property
    def region(self):
        return self.database.region

    @property
    def ranking(self):
        """The interface's ranking policy (the pipeline's first stage)."""
        return self.pipeline.ranking

    @property
    def nearest_first(self) -> bool:
        """Whether answers are ranked purely by distance.

        The paper's estimators and the history's known-disk
        certification (§3.2.4) rely on this: a prominence-ranked answer
        says nothing about which tuples are *near* the query point.
        """
        return self._prominence_config is None

    def effective_location(self, tid: int) -> Point:
        """The position the service *ranks* with (tests/ground truth only)."""
        return self._locations[tid]

    # ------------------------------------------------------------------
    @property
    def cache_stats(self) -> dict:
        """Hit/miss counters of the per-interface answer cache."""
        return self._cache.counters()

    def query(self, point: Point) -> QueryAnswer:
        """Issue one kNN query.

        A cached answer (same snapped location seen before) is returned
        for free — only genuine service calls draw budget, the way the
        paper counts queries (§2.1: the rate limit is on network calls).
        """
        point = Point(*point)
        key = self._cache.key(point.x, point.y)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        self.budget.spend(1)
        reg = _obs._active
        if reg is not None:
            # Counted exactly at the spend site: spend() raises *before*
            # incrementing on exhaustion, so this counter mirrors
            # budget.used — the acceptance invariant merged snapshots
            # rely on.
            reg.inc("interface_queries_total", 1.0, self._obs_labels)
            reg.inc("interface_answers_total", 1.0, self._obs_labels)
        answer = self._answer(point)
        self._cache.put(key, answer)
        return answer

    def cached_answer(self, point: Point) -> Optional[QueryAnswer]:
        """The cached answer :meth:`query` would return for free, or None.

        A pure probe: no budget, no hit/miss counters, no LRU refresh —
        callers that need to know whether a query would be a genuine
        service call (e.g. the resilience wrapper, which only faults
        network calls) can ask without disturbing anything.
        """
        point = Point(*point)
        return self._cache.peek(self._cache.key(point.x, point.y))

    def query_batch(self, points: Iterable[Point]) -> list[QueryAnswer]:
        """Answer a batch of queries, in order, as one engine call.

        Answers are identical to looping :meth:`query` (regression-tested
        in ``tests/lbs/test_query_cache.py``): cache hits are free,
        duplicate locations within the batch are answered once, and the
        ranking for all misses runs through the pipeline's vectorized
        batch kernels.  If the budget cannot cover every miss, the
        affordable prefix is answered (and cached — those queries *were*
        spent) before :class:`BudgetExhausted` is raised, exactly as a
        sequential loop would behave.
        """
        pts = [Point(*p) for p in points]
        if self._cache.capacity == 0:
            # Cache disabled: every point is a network call, duplicates
            # included — exactly like the loop of query() calls.
            paid = self.budget.affordable(len(pts))
            if paid:
                self.budget.spend(paid)
                reg = _obs._active
                if reg is not None:
                    reg.inc("interface_queries_total", float(paid), self._obs_labels)
                    reg.inc("interface_answers_total", float(paid), self._obs_labels)
                answers = self._answer_batch(pts[:paid])
            else:
                answers = []
            if paid < len(pts):
                raise BudgetExhausted(self.budget.limit)
            return answers
        keys = [self._cache.key(p.x, p.y) for p in pts]
        answers: dict = {}
        missing: list[Point] = []
        missing_keys: list = []
        for p, key in zip(pts, keys):
            if key in answers:
                continue
            hit = self._cache.get(key)
            if hit is not None:
                answers[key] = hit
            else:
                answers[key] = None  # reserve slot, keep first-seen order
                missing.append(p)
                missing_keys.append(key)
        paid = self.budget.affordable(len(missing))
        if paid:
            self.budget.spend(paid)
            reg = _obs._active
            if reg is not None:
                reg.inc("interface_queries_total", float(paid), self._obs_labels)
                reg.inc("interface_answers_total", float(paid), self._obs_labels)
            for p, key, answer in zip(
                missing[:paid], missing_keys[:paid], self._answer_batch(missing[:paid])
            ):
                self._cache.put(key, answer)
                answers[key] = answer
        if paid < len(missing):
            raise BudgetExhausted(self.budget.limit)
        return [answers[key] for key in keys]

    def affordable_prefix(self, points: Iterable[Point]) -> int:
        """How many leading ``points`` :meth:`query_batch` can answer in
        full with the remaining budget.

        Counts genuine misses only (cache hits and within-batch
        duplicates of a hit are free; with the cache disabled every
        point is a network call), without touching the budget, the
        cache order, or its statistics — so callers can pay for exactly
        the affordable prefix and preserve sequential-loop semantics
        even when a batch would overrun the budget.
        """
        pts = [Point(*p) for p in points]
        remaining = self.budget.remaining
        if remaining is None:
            return len(pts)
        n = 0
        misses = 0
        seen: set = set()
        for p in pts:
            if self._cache.capacity == 0:
                cost = 1
            else:
                key = self._cache.key(p.x, p.y)
                cost = 0 if key in seen or self._cache.peek(key) is not None else 1
                seen.add(key)
            if misses + cost > remaining:
                break
            misses += cost
            n += 1
        return n

    def _answer(self, point: Point) -> QueryAnswer:
        """Compute one answer (no budget, no cache — plumbing only)."""
        return self.pipeline.answer(point)

    def _answer_batch(self, points: Sequence[Point]) -> list[QueryAnswer]:
        """Compute answers for many points (no budget, no cache)."""
        return self.pipeline.answer_batch(points)

    # ------------------------------------------------------------------
    def engine_state(self) -> dict:
        """Serializable snapshot of the budget counter and answer cache.

        Together with an estimator's own state this is everything needed
        to resume a paused run bit-identically: restoring the cache (in
        LRU order) keeps future cache hits — and therefore the query
        accounting — exactly as they would have been uninterrupted.
        """
        return {
            "budget_used": self.budget.used,
            "cache": [a.to_state() for a in self._cache.entries()],
            "cache_hits": self._cache.hits,
            "cache_misses": self._cache.misses,
        }

    def restore_engine_state(self, state: dict) -> None:
        """Restore :meth:`engine_state` onto a freshly built interface.

        A snapshot missing the required keys (one written by an
        incompatible release) is rejected loudly, like the driver's
        state-v2 ``load_state``, instead of dying on a bare ``KeyError``
        halfway through the restore.
        """
        missing = [key for key in ("budget_used", "cache") if key not in state]
        if missing:
            raise ValueError(
                "engine state is missing "
                + ", ".join(repr(k) for k in missing)
                + "; this snapshot was written by an incompatible release "
                "(engine state requires budget_used and cache) — rerun "
                "from the spec instead"
            )
        self.budget.used = state["budget_used"]
        self._cache.clear()
        for entry in state["cache"]:
            answer = QueryAnswer.from_state(entry)
            self._cache.put(self._cache.key(answer.query.x, answer.query.y), answer)
        self._cache.hits = state.get("cache_hits", 0)
        self._cache.misses = state.get("cache_misses", 0)

    # ------------------------------------------------------------------
    def filtered(self, predicate: Predicate) -> "KnnInterface":
        """Pass-through selection-condition view (paper §5.1).

        Runs the kNN over matching tuples only, drawing from the *same*
        budget — like adding a keyword filter to the Places API call.
        The view gets its *own* answer cache (its answers come from a
        different database, so reusing the parent's would serve stale
        results) but shares the engine configuration and every service
        capability: max_radius, obfuscation, visible attributes, and the
        ranking policy — a prominence-ranked service keeps its scoring
        function (including the popularity normalization observed on the
        *full* database), and an obfuscating one keeps the *realized*
        per-tuple jitters (each was drawn once, for good) when a filter
        narrows the candidate set.
        """
        prominence = None
        if self._prominence_config is not None:
            prominence = dict(self._prominence_config)
            prominence["static_range"] = self.pipeline.ranking.static_range
        sub = self.database.filtered(predicate)
        # True (unjittered) positions need no passthrough: the view
        # reads them from its own columns.  Realized jitters do — as a
        # row slice of the parent's effective-coordinate array, no dict
        # is ever built.
        eff = None
        if self._eff_xy is not None:
            eff = np.ascontiguousarray(
                self._eff_xy[self.database.row_positions(sub.tids)]
            )
        view = type(self)(
            sub,
            self.k,
            budget=self.budget,
            max_radius=self.max_radius,
            obfuscation=self.obfuscation,
            prominence=prominence,
            visible_attrs=self.visible_attrs,
            engine=self.engine,
            effective_coords=eff,
        )
        return view


class LrLbsInterface(KnnInterface):
    """Location-Returned LBS (Google Maps / Bing Maps style)."""

    returns_location = True


class LnrLbsInterface(KnnInterface):
    """Location-Not-Returned LBS (WeChat / Sina Weibo style)."""

    returns_location = False
