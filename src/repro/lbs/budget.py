"""Query-budget accounting.

Every LBS imposes a rate limit (paper §2.1: 10 000/day for Google Maps,
150/hour for Sina Weibo), which makes query count *the* performance
metric.  :class:`QueryBudget` is shared by all interfaces over the same
service so pass-through filtered views draw from the same allowance.
"""

from __future__ import annotations

__all__ = ["QueryBudget", "BudgetExhausted"]


class BudgetExhausted(RuntimeError):
    """Raised when an estimator tries to query past its allowance."""

    def __init__(self, limit: int):
        super().__init__(f"query budget of {limit} exhausted")
        self.limit = limit


class QueryBudget:
    """A mutable counter with an optional hard limit."""

    __slots__ = ("limit", "used")

    def __init__(self, limit: int | None = None):
        if limit is not None and limit < 0:
            raise ValueError("budget limit must be non-negative")
        self.limit = limit
        self.used = 0

    def spend(self, amount: int = 1) -> None:
        if self.limit is not None and self.used + amount > self.limit:
            raise BudgetExhausted(self.limit)
        self.used += amount

    @property
    def remaining(self) -> int | None:
        if self.limit is None:
            return None
        return self.limit - self.used

    def affordable(self, amount: int) -> int:
        """How many of ``amount`` queries can be paid for right now.

        Batched interfaces use this to issue the affordable prefix of a
        batch before raising :class:`BudgetExhausted` — cache hits are
        free, so only genuine (miss) queries are counted.
        """
        if self.limit is None:
            return amount
        return max(0, min(amount, self.limit - self.used))

    def exhausted(self) -> bool:
        return self.limit is not None and self.used >= self.limit

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        limit = "inf" if self.limit is None else self.limit
        return f"QueryBudget(used={self.used}, limit={limit})"
