"""Simulated location based services: hidden databases behind kNN APIs."""

from ..index import QueryEngineConfig
from .budget import BudgetExhausted, QueryBudget
from .cache import QueryAnswerCache
from .database import SpatialDatabase
from .interface import (
    KnnInterface,
    LnrLbsInterface,
    LrLbsInterface,
    QueryAnswer,
    ReturnedTuple,
)
from .pipeline import AnswerPipeline, AttributeProjection
from .ranking import DistanceRanking, ObfuscationModel, ProminenceRanking, RankingPolicy
from .spec import InterfaceSpec, RankingSpec
from .tuples import LbsTuple

__all__ = [
    "LbsTuple",
    "SpatialDatabase",
    "QueryBudget",
    "BudgetExhausted",
    "QueryAnswerCache",
    "QueryEngineConfig",
    "KnnInterface",
    "LrLbsInterface",
    "LnrLbsInterface",
    "QueryAnswer",
    "ReturnedTuple",
    "AnswerPipeline",
    "AttributeProjection",
    "RankingPolicy",
    "DistanceRanking",
    "ObfuscationModel",
    "ProminenceRanking",
    "InterfaceSpec",
    "RankingSpec",
]
