"""Simulated location based services: hidden databases behind kNN APIs."""

from ..index import QueryEngineConfig
from .budget import BudgetExhausted, QueryBudget
from .cache import QueryAnswerCache
from .columns import Column, column_from_values, columns_from_rows, concat_columns
from .database import SpatialDatabase
from .interface import (
    KnnInterface,
    LnrLbsInterface,
    LrLbsInterface,
    QueryAnswer,
    ReturnedTuple,
)
from .pipeline import AnswerPipeline, AttributeProjection
from .ranking import DistanceRanking, ObfuscationModel, ProminenceRanking, RankingPolicy
from .spec import InterfaceSpec, RankingSpec
from .tuples import LbsTuple

__all__ = [
    "LbsTuple",
    "SpatialDatabase",
    "Column",
    "column_from_values",
    "columns_from_rows",
    "concat_columns",
    "QueryBudget",
    "BudgetExhausted",
    "QueryAnswerCache",
    "QueryEngineConfig",
    "KnnInterface",
    "LrLbsInterface",
    "LnrLbsInterface",
    "QueryAnswer",
    "ReturnedTuple",
    "AnswerPipeline",
    "AttributeProjection",
    "RankingPolicy",
    "DistanceRanking",
    "ObfuscationModel",
    "ProminenceRanking",
    "InterfaceSpec",
    "RankingSpec",
]
