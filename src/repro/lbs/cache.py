"""Per-interface LRU cache of kNN answers, keyed on snapped locations.

A static LBS always returns the same answer at the same point, and the
estimators revisit locations constantly — Theorem-1 vertex tests, probe
replays, localization refinements.  Real clients cache such answers, and
the paper counts only *network* queries against the budget (§2.1), so a
cache hit legitimately costs nothing.

Keys snap query coordinates to a fixed grid pitch.  The default pitch is
EPS-scale relative to the service region: far finer than any meaningful
location difference, so two distinct random queries never collide, but
coarse enough that float noise on a revisited location still hits.  Each
interface owns its own cache — a ``filtered()`` view answers from a
different database, so sharing the parent's entries would serve stale
results (see ``tests/lbs/test_query_cache.py``).
"""

from __future__ import annotations

import warnings
from collections import OrderedDict

from ..obs import registry as _obs

__all__ = ["QueryAnswerCache"]

#: Snap pitch as a fraction of the region's longer side.
_DEFAULT_RELATIVE_PITCH = 1e-9

Key = tuple[int, int]


class QueryAnswerCache:
    """Bounded LRU map from snapped query locations to answers."""

    __slots__ = ("capacity", "resolution", "hits", "misses", "_entries")

    def __init__(self, capacity: int, resolution: float):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if resolution <= 0.0:
            raise ValueError("resolution must be positive")
        self.capacity = capacity
        self.resolution = resolution
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[Key, object] = OrderedDict()

    @staticmethod
    def resolution_for(width: float, height: float) -> float:
        """The default snap pitch for a service region of this size."""
        return _DEFAULT_RELATIVE_PITCH * max(width, height, 1.0)

    def __len__(self) -> int:
        return len(self._entries)

    def key(self, x: float, y: float) -> Key:
        return (round(x / self.resolution), round(y / self.resolution))

    def get(self, key: Key):
        """The cached answer, refreshed as most-recently-used, or None."""
        if self.capacity == 0:
            return None
        answer = self._entries.get(key)
        reg = _obs._active
        if answer is None:
            self.misses += 1
            if reg is not None:
                reg.inc("interface_cache_misses_total")
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        if reg is not None:
            reg.inc("interface_cache_hits_total")
        return answer

    def peek(self, key: Key):
        """Like :meth:`get` but without touching LRU order or counters."""
        if self.capacity == 0:
            return None
        return self._entries.get(key)

    def put(self, key: Key, answer) -> None:
        if self.capacity == 0:
            return
        self._entries[key] = answer
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def entries(self) -> list:
        """Cached answers in LRU order (oldest first) — replaying them
        through :meth:`put` reproduces this cache's content *and*
        eviction order, which checkpoint restore relies on."""
        return list(self._entries.values())

    def counters(self) -> dict:
        """Instance-lifetime hit/miss counters (and size/capacity).

        The same counts stream to the process-wide registry as
        ``interface_cache_hits_total`` / ``interface_cache_misses_total``
        when :mod:`repro.obs` is enabled.
        """
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
        }

    def stats(self) -> dict:
        """Deprecated alias of :meth:`counters`; removed next release."""
        warnings.warn(
            "QueryAnswerCache.stats() is deprecated; use counters() "
            "(same dict) or the repro.obs registry",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.counters()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QueryAnswerCache(size={len(self._entries)}, capacity={self.capacity}, "
            f"hits={self.hits}, misses={self.misses})"
        )
