"""A NumPy uniform-grid spatial index built for batched queries.

Points are bucketed into a ``G × G`` grid over their bounding box and
stored sorted by row-major cell id, so the points of any run of cells in
one grid row form a *contiguous slice* of the coordinate arrays.  A kNN
query then gathers candidates one row-slice at a time — a handful of
NumPy operations per query instead of thousands of interpreted-Python
node visits.  The batch entry points vectorize every phase across the
whole batch: block growth, candidate gathering (one ragged CSR pass),
k-th-distance selection (one padded partition), and final ordering (one
lexsort).

Exactness: all backends share the index contract's metric — squared
distance ``dx*dx + dy*dy`` for ordering, ``sqrt`` of it for the returned
value (see :mod:`repro.index.base`).  Those are elementwise IEEE-754
operations, bit-identical between NumPy arrays and Python scalars, so
batch answers match the brute-force oracle exactly, ties included.  The
only tolerances in this file guard the *grid geometry* (which cells can
be pruned), never the ordering itself.
"""

from __future__ import annotations

import math
import warnings
from typing import Hashable, Sequence

import numpy as np

from ..obs import registry as _obs

__all__ = ["GridIndex"]

#: Relative slack when comparing distances against cell-boundary
#: clearances (cell edges are themselves rounded); pruning-only.
_SLACK = 1e-9

# Shared label dicts for the registry hot path (never mutated).
_GRID = {"backend": "grid"}
_GRID_SCALAR = {"backend": "grid", "mode": "scalar"}
_GRID_BATCH = {"backend": "grid", "mode": "batch"}


def _sq(v):
    "Exact IEEE square, kept as multiplication (identical bits to dx * dx)."
    return v * v


class GridIndex:
    """Uniform-grid index over static 2-D points with deterministic ties."""

    #: Queries per vectorized chunk (bounds scratch-matrix memory).
    _CHUNK = 1024

    def __init__(
        self,
        points: Sequence[tuple[float, float, Hashable]],
        target_per_cell: float = 0.5,
    ):
        pts = [(float(x), float(y), item) for x, y, item in points]
        try:
            # Pre-sort by item id: storage rank then doubles as the
            # tie-break key, so one lexsort settles distance ties by id.
            pts.sort(key=lambda p: p[2])
        except TypeError:
            pass  # unorderable ids: fall back to insertion order
        self._build(
            np.array([p[0] for p in pts], dtype=np.float64),
            np.array([p[1] for p in pts], dtype=np.float64),
            [item for _x, _y, item in pts],
            target_per_cell,
        )

    @classmethod
    def from_arrays(
        cls,
        xy: np.ndarray,
        items: Sequence[Hashable],
        target_per_cell: float = 0.5,
    ) -> "GridIndex":
        """Array-native construction: no ``(x, y, item)`` triples built.

        ``items`` is sorted with one NumPy argsort (stable, so equal to
        the list sort of the triple-list path) and the coordinate
        columns are gathered by that order — the whole ingest stays
        vectorized, which is what the columnar
        :class:`~repro.lbs.SpatialDatabase` feeds at the 1M scale.
        """
        items_arr = np.asarray(items)
        try:
            order = np.argsort(items_arr, kind="stable")
        except TypeError:
            order = np.arange(len(items_arr))  # unorderable ids
        self = cls.__new__(cls)
        self._build(
            np.ascontiguousarray(xy[order, 0], dtype=np.float64),
            np.ascontiguousarray(xy[order, 1], dtype=np.float64),
            items_arr[order].tolist(),
            target_per_cell,
        )
        return self

    def _build(
        self, xs: np.ndarray, ys: np.ndarray, items: list, target_per_cell: float
    ) -> None:
        """Shared grid construction over id-sorted coordinate arrays."""
        self._items = items
        n = len(items)
        self._size = n
        # Counter lifecycle: counters live for the *instance* and survive
        # internal rebuilds — only a fresh instance or an explicit
        # reset_stats() zeroes them (they used to reset silently here).
        if getattr(self, "_stats", None) is None:
            self._stats = {
                "batch_queries": 0,
                "batch_chunked": 0,
                "batch_fallback": 0,
            }
        # Object array mirror of the id-sorted items, for vectorized
        # fancy-indexed emission in the batch kernels.
        self._items_arr = np.empty(n, dtype=object)
        self._items_arr[:] = self._items
        if n == 0:
            return
        # A deliberately fine grid: sparse cells cost only prefix-sum
        # memory, while dense clusters keep per-cell occupancy — and with
        # it the candidate blowup around clusters — low.
        g = max(1, int(math.sqrt(n / max(target_per_cell, 0.05))))
        self._g = g
        self._x0 = float(xs.min())
        self._y0 = float(ys.min())
        width = float(xs.max()) - self._x0
        height = float(ys.max()) - self._y0
        # Degenerate-extent guard: a subnormal-width bounding box makes
        # width/g underflow toward 0, and dividing query offsets by it
        # overflows to inf.  Such a box is a line of (near-)coincident
        # points; cell size 1.0 degrades the grid to rows/columns while
        # staying exactly correct (blocks still grow to cover everything).
        cw = width / g
        ch = height / g
        self._cw = cw if cw > 1e-100 else 1.0
        self._ch = ch if ch > 1e-100 else 1.0
        cx = np.clip((xs - self._x0) / self._cw, 0.0, g - 1.0).astype(np.intp)
        cy = np.clip((ys - self._y0) / self._ch, 0.0, g - 1.0).astype(np.intp)
        cell_ids = cy * g + cx
        order = np.argsort(cell_ids, kind="stable")
        self._xs = xs[order]
        self._ys = ys[order]
        #: storage position -> id rank (= index into the id-sorted lists)
        self._rank = order.astype(np.intp)
        self._starts = np.searchsorted(cell_ids[order], np.arange(g * g + 1))
        # 2-D prefix sums of per-cell counts: any block count in O(1).
        per_cell = np.diff(self._starts).reshape(g, g)
        prefix = np.zeros((g + 1, g + 1), dtype=np.intp)
        np.cumsum(np.cumsum(per_cell, axis=0), axis=1, out=prefix[1:, 1:])
        self._prefix = prefix

    def __len__(self) -> int:
        return self._size

    def counters(self) -> dict:
        """Batch-kernel path counters (a copy).

        ``batch_chunked`` counts queries answered by the vectorized
        padded-partition kernel, ``batch_fallback`` those that exceeded
        the candidate cap and took the single-query search instead — the
        heavy-tail path the clustered-world regression budget watches
        (``benchmarks/bench_scaling.py``).  They sum to
        ``batch_queries``.

        Lifecycle: counters accumulate for the life of the instance —
        internal rebuilds never zero them; only :meth:`reset_stats`
        does.  The same counts stream to the process-wide registry
        (``index_batch_*_total{backend="grid"}``) when :mod:`repro.obs`
        is enabled.
        """
        return dict(self._stats)

    def reset_stats(self) -> None:
        """Explicitly zero the batch-path counters (nothing else does)."""
        for key in self._stats:
            self._stats[key] = 0

    def stats(self) -> dict:
        """Deprecated alias of :meth:`counters`; removed next release."""
        warnings.warn(
            "GridIndex.stats() is deprecated; use counters() (same dict) "
            "or the repro.obs registry",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.counters()

    def _cell_x(self, v: float) -> int:
        """Clamp-then-truncate a float cell coordinate (clamping first
        keeps huge/inf quotients from overflowing the int conversion)."""
        g1 = self._g - 1
        q = (v - self._x0) / self._cw
        if q <= 0.0:
            return 0
        if q >= g1:
            return g1
        return int(q)

    def _cell_y(self, v: float) -> int:
        g1 = self._g - 1
        q = (v - self._y0) / self._ch
        if q <= 0.0:
            return 0
        if q >= g1:
            return g1
        return int(q)

    # ------------------------------------------------------------------
    # Single-point queries
    # ------------------------------------------------------------------
    def knn(self, x: float, y: float, k: int) -> list[tuple[float, Hashable]]:
        if self._size == 0 or k <= 0:
            return []
        reg = _obs._active
        if reg is not None:
            reg.inc("index_queries_total", 1.0, _GRID_SCALAR)
        x = float(x)
        y = float(y)
        kk = min(k, self._size)
        g = self._g
        cx = self._cell_x(x)
        cy = self._cell_y(y)
        # Grow the block geometrically (prefix-sum counts are O(1)) until
        # it holds kk points; a bigger block only tightens the k-th bound.
        prefix = self._prefix
        r = 0
        while True:
            c0 = max(cx - r, 0)
            c1 = min(cx + r, g - 1)
            r0 = max(cy - r, 0)
            r1 = min(cy + r, g - 1)
            cnt = prefix[r1 + 1, c1 + 1] - prefix[r0, c1 + 1] - prefix[r1 + 1, c0] + prefix[r0, c0]
            if cnt >= kk:
                break
            r = 2 * r + 1
        cand = self._block_slice(c0, c1, r0, r1)
        dx = self._xs[cand] - x
        dy = self._ys[cand] - y
        d2 = dx * dx + dy * dy
        kth2 = np.partition(d2, kk - 1)[kk - 1]
        # The true k-th distance is at most sqrt(kth2); regather over the
        # cells covering that disk if the block doesn't already.
        reach = math.sqrt(kth2) * (1.0 + _SLACK)
        dc0 = self._cell_x(x - reach)
        dc1 = self._cell_x(x + reach)
        dr0 = self._cell_y(y - reach)
        dr1 = self._cell_y(y + reach)
        if not (c0 <= dc0 and dc1 <= c1 and r0 <= dr0 and dr1 <= r1):
            cand = self._block_slice(
                min(dc0, c0), max(dc1, c1), min(dr0, r0), max(dr1, r1)
            )
            dx = self._xs[cand] - x
            dy = self._ys[cand] - y
            d2 = dx * dx + dy * dy
            kth2 = np.partition(d2, kk - 1)[kk - 1]
        pool = cand[d2 <= kth2]
        ranked = sorted(
            (_sq(self._xs[j] - x) + _sq(self._ys[j] - y), int(self._rank[j]))
            for j in pool
        )[:kk]
        return [(math.sqrt(dd), self._items[rk]) for dd, rk in ranked]

    def within_radius(self, x: float, y: float, radius: float) -> list[tuple[float, Hashable]]:
        if self._size == 0 or radius < 0.0:
            return []
        x = float(x)
        y = float(y)
        reach = radius * (1.0 + _SLACK)
        c0 = self._cell_x(x - reach)
        c1 = self._cell_x(x + reach)
        r0 = self._cell_y(y - reach)
        r1 = self._cell_y(y + reach)
        cand = self._block_slice(c0, c1, r0, r1)
        if cand.size == 0:
            return []
        dx = self._xs[cand] - x
        dy = self._ys[cand] - y
        d2 = dx * dx + dy * dy
        pool = cand[np.sqrt(d2) <= radius]
        out = sorted(
            (_sq(self._xs[j] - x) + _sq(self._ys[j] - y), int(self._rank[j]))
            for j in pool
        )
        return [(math.sqrt(dd), self._items[rk]) for dd, rk in out]

    # ------------------------------------------------------------------
    # Batched queries — vectorized across the whole batch
    # ------------------------------------------------------------------
    def knn_batch(
        self, points: Sequence[tuple[float, float]], k: int
    ) -> list[list[tuple[float, Hashable]]]:
        """Per-point kNN answers, identical to looped :meth:`knn`."""
        pts = [(float(px), float(py)) for px, py in points]
        if self._size == 0 or k <= 0:
            return [[] for _ in pts]
        kk = min(k, self._size)
        out: list[list[tuple[float, Hashable]]] = []
        for i in range(0, len(pts), self._CHUNK):
            out.extend(self._knn_chunk(pts[i : i + self._CHUNK], kk))
        return out

    def _knn_chunk(self, pts: list, kk: int) -> list[list[tuple[float, Hashable]]]:
        m = len(pts)
        g = self._g
        qx = np.array([p[0] for p in pts], dtype=np.float64)
        qy = np.array([p[1] for p in pts], dtype=np.float64)
        qcx = np.clip((qx - self._x0) / self._cw, 0.0, g - 1.0).astype(np.intp)
        qcy = np.clip((qy - self._y0) / self._ch, 0.0, g - 1.0).astype(np.intp)

        # Phase 1: per query, the smallest block radius holding >= kk
        # points — geometric growth to bracket it (prefix-sum counts are
        # O(1)), then a vectorized bisection down to the minimum.  The
        # minimum matters: an oversized block beside a dense cluster
        # drags the whole cluster into the candidate set.
        r_need = np.zeros(m, dtype=np.intp)
        alive = np.arange(m)
        t = 0
        while alive.size:
            counts = self._block_counts(
                np.clip(qcx[alive] - t, 0, g - 1), np.clip(qcx[alive] + t, 0, g - 1),
                np.clip(qcy[alive] - t, 0, g - 1), np.clip(qcy[alive] + t, 0, g - 1),
            )
            done = counts >= kk
            r_need[alive[done]] = t
            alive = alive[~done]
            t = 2 * t + 1
        lo = np.maximum((r_need - 1) // 2, 0)
        hi = r_need
        while True:
            open_rows = np.nonzero(hi - lo > 1)[0]
            if not open_rows.size:
                break
            mid = (lo[open_rows] + hi[open_rows]) // 2
            counts = self._block_counts(
                np.clip(qcx[open_rows] - mid, 0, g - 1),
                np.clip(qcx[open_rows] + mid, 0, g - 1),
                np.clip(qcy[open_rows] - mid, 0, g - 1),
                np.clip(qcy[open_rows] + mid, 0, g - 1),
            )
            ok = counts >= kk
            hi[open_rows[ok]] = mid[ok]
            lo[open_rows[~ok]] = mid[~ok]
        r_need = hi

        # Heavy-tail split: a query in empty space beside a dense cluster
        # can still drag in hundreds of candidates, and one such query
        # sets the padded-matrix width for the whole chunk.  The cap
        # bounds that width (chunk scratch stays ~8 MB); the rare query
        # beyond it takes the single-query search instead (no padding).
        cap = max(16 * kk, 1024)
        c0 = np.clip(qcx - r_need, 0, g - 1)
        c1 = np.clip(qcx + r_need, 0, g - 1)
        r0 = np.clip(qcy - r_need, 0, g - 1)
        r1 = np.clip(qcy + r_need, 0, g - 1)
        light = self._block_counts(c0, c1, r0, r1) <= cap
        idx = np.nonzero(light)[0]
        out: list = [None] * m

        if idx.size:
            # Phase 2: the k-th distance *within the count block* bounds
            # the true k-th from above (the block's points are a subset).
            cand, qid = self._gather(c0[idx], c1[idx], r0[idx], r1[idx])
            lqx = qx[idx]
            lqy = qy[idx]
            dx = self._xs[cand] - lqx[qid]
            dy = self._ys[cand] - lqy[qid]
            d2 = dx * dx + dy * dy
            reach = np.sqrt(self._group_kth(d2, qid, idx.size, kk)) * (1.0 + _SLACK)

            # Phase 3: regather over the cells covering each bound disk —
            # a near-minimal candidate set (re-checking the cap).
            fc0 = np.clip((lqx - reach - self._x0) / self._cw, 0.0, g - 1.0).astype(np.intp)
            fc1 = np.clip((lqx + reach - self._x0) / self._cw, 0.0, g - 1.0).astype(np.intp)
            fr0 = np.clip((lqy - reach - self._y0) / self._ch, 0.0, g - 1.0).astype(np.intp)
            fr1 = np.clip((lqy + reach - self._y0) / self._ch, 0.0, g - 1.0).astype(np.intp)
            still = self._block_counts(fc0, fc1, fr0, fr1) <= cap
            idx = idx[still]

        if idx.size:
            sub = np.nonzero(still)[0]
            cand, qid = self._gather(fc0[sub], fc1[sub], fr0[sub], fr1[sub])
            lqx = qx[idx]
            lqy = qy[idx]
            dx = self._xs[cand] - lqx[qid]
            dy = self._ys[cand] - lqy[qid]
            d2 = dx * dx + dy * dy

            # Phase 4: every group holds >= kk candidates including the
            # true top-k.  Pad the ragged groups into a rectangle, pick
            # each row's kk smallest with one argpartition, and order
            # them with one small argsort.  Squared distances are exact,
            # so a tie is exact float equality; rows where a tie touches
            # the answer fall back to an explicit (distance, id) re-rank.
            mm = idx.size
            counts = np.bincount(qid, minlength=mm)
            pos = np.arange(d2.size) - np.repeat(np.cumsum(counts) - counts, counts)
            pad_d2 = np.full((mm, int(counts.max())), np.inf)
            pad_d2[qid, pos] = d2
            pad_rk = np.zeros(pad_d2.shape, dtype=np.intp)
            pad_rk[qid, pos] = self._rank[cand]
            rows = np.arange(mm)[:, None]
            part = np.argpartition(pad_d2, kk - 1, axis=1)[:, :kk]
            sub_d2 = pad_d2[rows, part]
            order = np.argsort(sub_d2, axis=1)
            top = part[rows, order]
            top_d2 = sub_d2[rows, order]
            # Risky rows: a tie inside the top-k (ordering among the tied
            # entries is positional, not by id) or at the k-th distance
            # (argpartition may have kept the wrong tied candidate).
            kth2 = top_d2[:, -1]
            risky = (np.count_nonzero(pad_d2 == kth2[:, None], axis=1)
                     != np.count_nonzero(top_d2 == kth2[:, None], axis=1))
            if kk > 1:
                risky |= (top_d2[:, 1:] == top_d2[:, :-1]).any(axis=1)
            ed = np.sqrt(top_d2).tolist()
            eit = self._items_arr[pad_rk[rows, top]].tolist()
            items = self._items
            for row, qi in enumerate(idx.tolist()):
                if risky[row]:
                    pool = np.nonzero(pad_d2[row] <= kth2[row])[0]
                    ranked = sorted(
                        (pad_d2[row, c], int(pad_rk[row, c])) for c in pool
                    )[:kk]
                    out[qi] = [(math.sqrt(dd), items[rk]) for dd, rk in ranked]
                else:
                    out[qi] = list(zip(ed[row], eit[row]))

        fallback = 0
        for qi, answer in enumerate(out):
            if answer is None:
                fallback += 1
                x, y = pts[qi]
                out[qi] = self.knn(x, y, kk)
        self._stats["batch_queries"] += m
        self._stats["batch_chunked"] += m - fallback
        self._stats["batch_fallback"] += fallback
        # Once per ~1024-query chunk: the registry mirror of the counters
        # above (kernel-level counts; batch fallbacks also appear as
        # scalar index_queries_total increments from the knn() calls).
        reg = _obs._active
        if reg is not None:
            reg.inc("index_queries_total", float(m), _GRID_BATCH)
            reg.inc("index_batch_queries_total", float(m), _GRID)
            reg.inc("index_batch_chunked_total", float(m - fallback), _GRID)
            reg.inc("index_batch_fallback_total", float(fallback), _GRID)
        return out

    def range_batch(
        self, points: Sequence[tuple[float, float]], radius: float
    ) -> list[list[tuple[float, Hashable]]]:
        """Per-point radius answers, identical to looped :meth:`within_radius`."""
        pts = [(float(px), float(py)) for px, py in points]
        if self._size == 0 or radius < 0.0:
            return [[] for _ in pts]
        out: list[list[tuple[float, Hashable]]] = []
        for i in range(0, len(pts), self._CHUNK):
            out.extend(self._range_chunk(pts[i : i + self._CHUNK], radius))
        return out

    def range_batch_ids(
        self, points: Sequence[tuple[float, float]], radius: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """CSR form of :meth:`range_batch`: ``(counts, items)``.

        ``items`` concatenates every point's in-radius item ids in the
        same per-point order as :meth:`range_batch`; ``counts[i]`` is
        point *i*'s segment length.  No ``(distance, item)`` tuples are
        materialized — this is the candidate-retrieval feed of
        vectorized ranking kernels (e.g. prominence), which recompute
        whatever scores they need in bulk.
        """
        pts = [(float(px), float(py)) for px, py in points]
        if not pts or self._size == 0 or radius < 0.0:
            return np.zeros(len(pts), dtype=np.int64), np.empty(0, dtype=object)
        counts_parts, item_parts = [], []
        for i in range(0, len(pts), self._CHUNK):
            pq, prk, _d = self._range_chunk_raw(pts[i : i + self._CHUNK], radius)
            counts_parts.append(np.bincount(pq, minlength=len(pts[i : i + self._CHUNK])))
            item_parts.append(self._items_arr[prk])
        return (
            np.concatenate(counts_parts).astype(np.int64),
            np.concatenate(item_parts) if item_parts else np.empty(0, dtype=object),
        )

    def _range_chunk_raw(self, pts: list, radius: float):
        """Shared range kernel: per-point-grouped ``(qid, storage-rank,
        distance)`` arrays in final answer order."""
        g = self._g
        qx = np.array([p[0] for p in pts], dtype=np.float64)
        qy = np.array([p[1] for p in pts], dtype=np.float64)
        reach = radius * (1.0 + _SLACK)
        fc0 = np.clip((qx - reach - self._x0) / self._cw, 0.0, g - 1.0).astype(np.intp)
        fc1 = np.clip((qx + reach - self._x0) / self._cw, 0.0, g - 1.0).astype(np.intp)
        fr0 = np.clip((qy - reach - self._y0) / self._ch, 0.0, g - 1.0).astype(np.intp)
        fr1 = np.clip((qy + reach - self._y0) / self._ch, 0.0, g - 1.0).astype(np.intp)
        cand, qid = self._gather(fc0, fc1, fr0, fr1)
        dx = self._xs[cand] - qx[qid]
        dy = self._ys[cand] - qy[qid]
        d2 = dx * dx + dy * dy
        d = np.sqrt(d2)
        keep = d <= radius
        pq = qid[keep]
        pd2 = d2[keep]
        prk = self._rank[cand[keep]]
        order = np.lexsort((prk, pd2, pq))
        return pq[order], prk[order], d[keep][order]

    def _range_chunk(self, pts: list, radius: float) -> list[list[tuple[float, Hashable]]]:
        m = len(pts)
        pq, prk, d = self._range_chunk_raw(pts, radius)
        ed = d.tolist()
        eit = [self._items[r] for r in prk.tolist()]
        ends = np.cumsum(np.bincount(pq, minlength=m)).tolist()
        out = []
        lo = 0
        for hi in ends:
            out.append(list(zip(ed[lo:hi], eit[lo:hi])))
            lo = hi
        return out

    # ------------------------------------------------------------------
    # Cell-block helpers
    # ------------------------------------------------------------------
    def _block_slice(self, c0: int, c1: int, r0: int, r1: int) -> np.ndarray:
        """Storage indices of all points in the cell block — one
        contiguous slice per grid row."""
        g = self._g
        starts = self._starts
        parts = []
        for row in range(r0, r1 + 1):
            lo = starts[row * g + c0]
            hi = starts[row * g + c1 + 1]
            if hi > lo:
                parts.append(np.arange(lo, hi))
        if not parts:
            return np.empty(0, dtype=np.intp)
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    # ------------------------------------------------------------------
    # Ragged helpers shared by the batch kernels
    # ------------------------------------------------------------------
    def _row_slices(self, c0, c1, r0, r1):
        """Flattened CSR (lo, hi) bounds for every grid row of every
        query's cell block, plus the owning query of each row."""
        nrows = r1 - r0 + 1
        qid = np.repeat(np.arange(c0.size), nrows)
        row_start = np.cumsum(nrows) - nrows
        rows = np.arange(int(nrows.sum())) - np.repeat(row_start, nrows) + r0[qid]
        lo = self._starts[rows * self._g + c0[qid]]
        hi = self._starts[rows * self._g + c1[qid] + 1]
        return qid, lo, hi

    def _block_counts(self, c0, c1, r0, r1) -> np.ndarray:
        p = self._prefix
        return (
            p[r1 + 1, c1 + 1] - p[r0, c1 + 1] - p[r1 + 1, c0] + p[r0, c0]
        )

    def _gather(self, c0, c1, r0, r1) -> tuple[np.ndarray, np.ndarray]:
        """Storage indices of all points in every query's block, grouped
        by query, as flat ``(candidates, owning-query)`` arrays."""
        qid, lo, hi = self._row_slices(c0, c1, r0, r1)
        lens = hi - lo
        total = int(lens.sum())
        ends = np.cumsum(lens)
        cand = np.arange(total) - np.repeat(ends - lens, lens) + np.repeat(lo, lens)
        return cand, np.repeat(qid, lens)

    def _group_kth(self, d: np.ndarray, qid: np.ndarray, m: int, kk: int) -> np.ndarray:
        """Per-group ``kk``-th smallest of ``d`` (groups = values of
        ``qid``, each holding at least ``kk`` entries), via one padded
        partition."""
        counts = np.bincount(qid, minlength=m)
        pos = np.arange(d.size) - np.repeat(np.cumsum(counts) - counts, counts)
        padded = np.full((m, int(counts.max())), np.inf)
        padded[qid, pos] = d
        return np.partition(padded, kk - 1, axis=1)[:, kk - 1]
