"""The :class:`SpatialIndex` protocol and the query-engine configuration.

Every spatial index in :mod:`repro.index` answers the same four
questions — single-point kNN, single-point radius search, and their
batched counterparts — under one shared contract:

* distances are Euclidean with one exact realization: candidates are
  *ordered* by the squared distance ``dx*dx + dy*dy`` and the returned
  value is ``sqrt`` of it.  Multiplication, addition, and square root
  are IEEE-754-exact / correctly rounded, identical between NumPy
  arrays and Python scalars — which is what makes every backend, looped
  or batched, bit-identical.  (Do **not** substitute ``math.hypot``: it
  can differ from ``sqrt(dx*dx + dy*dy)`` in the last ulp.)
* answers are sorted by ``(distance, item)`` — ties in distance are
  broken by item id, making the simulated service deterministic (the
  paper's "general position" assumption made real);
* ``within_radius``/``range_batch`` are inclusive (``sqrt(d2) <= radius``).

Backends are interchangeable: :class:`~repro.index.kdtree.KdTree`
(pure-Python best-first search, great single-query latency on small
databases), :class:`~repro.index.grid.GridIndex` (NumPy uniform grid,
built for vectorized batches), and
:class:`~repro.index.brute.BruteForceIndex` (the O(n) oracle, whose
batched form is a fully vectorized distance matrix).  The equivalence
test suite (`tests/index/test_index_equivalence.py`) holds all three to
the contract on randomized inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from ..obs.tracing import span as _span

__all__ = [
    "SpatialIndex",
    "QueryEngineConfig",
    "make_index",
    "make_index_arrays",
    "csr_from_range_lists",
]

#: One kNN / radius answer: ``(distance, item)``.
Neighbor = tuple[float, Hashable]


@runtime_checkable
class SpatialIndex(Protocol):
    """What the LBS simulator requires of a spatial index backend."""

    def __len__(self) -> int:
        """Number of indexed points."""

    def knn(self, x: float, y: float, k: int) -> list[Neighbor]:
        """The ``k`` nearest items as ``(distance, item)``, sorted by
        ``(distance, item)``."""

    def within_radius(self, x: float, y: float, radius: float) -> list[Neighbor]:
        """All items with ``distance <= radius``, sorted by
        ``(distance, item)``."""

    def knn_batch(
        self, points: Sequence[tuple[float, float]], k: int
    ) -> list[list[Neighbor]]:
        """Per-point kNN answers, identical to ``[knn(x, y, k) ...]``."""

    def range_batch(
        self, points: Sequence[tuple[float, float]], radius: float
    ) -> list[list[Neighbor]]:
        """Per-point radius answers, identical to looped ``within_radius``."""

    def range_batch_ids(self, points: Sequence[tuple[float, float]], radius: float):
        """CSR form of ``range_batch``: ``(counts, items)`` NumPy arrays —
        per-point in-radius item ids concatenated in answer order, with
        no ``(distance, item)`` tuples materialized.  The candidate feed
        for vectorized ranking kernels that re-score in bulk."""


@dataclass(frozen=True)
class QueryEngineConfig:
    """Knobs of the batched query engine behind a simulated LBS interface.

    Attributes
    ----------
    index_backend:
        ``"auto"`` | ``"kdtree"`` | ``"grid"`` | ``"brute"`` |
        ``"sharded"``.  Auto picks by database size: brute-force
        vectorized scans win on tiny databases (the candidate-gathering
        overhead of smarter indexes dominates) and the uniform grid wins
        above that; the tile-sharded two-level grid is an opt-in for
        build-dominated and multi-process workloads (see
        ``auto_sharded_min``).
    auto_brute_max:
        Largest database size for which ``"auto"`` picks brute force.
        The default is the crossover measured on the ``repro.worlds``
        registry scenarios (points and queries drawn from the
        ``wechat-like-1m`` Zipf-hotspot model; uniform queries agree):
        single-query kNN throughput is brute 212k/122k/58k q/s vs grid
        ~33-40k q/s at n=16/32/64, ties at n≈96 (38.3k vs 38.0k), and
        grid wins from n=128 up (35.6k vs 27.2k, widening with n).  The
        batched kernel prefers the grid at *every* size (~1.8x even at
        n=16), but at sub-crossover sizes both clear 150k q/s, so the
        scalar path — where the gap reaches 6x — decides the default.
    auto_sharded_min:
        Smallest database size for which ``"auto"`` picks the
        tile-sharded grid over the monolithic one; ``None`` (the
        default) means auto never picks it.  Measured on the
        ``repro.worlds`` registry (batch-512 kNN, k=5, uniform queries,
        best-of-5 interleaved rounds on this container):

        ========= ============ ========== ============= ===========
        n          world        grid q/s   sharded q/s   tiles/side
        ========= ============ ========== ============= ===========
        1M        wechat-like   ~124k      ~103k         2
        1M        clustered     ~132k      ~117k         2
        4M        clustered     ~133k      ~99k          8
        ========= ============ ========== ============= ===========

        The monolithic grid wins raw batch throughput at every size
        measured — the sharded index pays per-query tile routing, a
        boundary-settlement test, and cross-tile escalations on top of
        the same cell kernel.  What it buys instead is *lazy* structure:
        the shell build (binning points into tiles, no per-tile grids)
        is ~2.7x cheaper than a full grid build at 4M (1.3s vs 3.5s),
        and each tile's grid is built only when a query touches it — so
        a worker that handles a spatially clustered slice of a fan-out
        builds a fraction of the index, and short query runs on huge
        databases never pay for the cold regions.  Set a finite
        threshold only for such build-dominated workloads; throughput-
        bound single-process runs should keep the grid.
    cache_size:
        Capacity of the per-interface LRU query-answer cache (number of
        distinct snapped query locations).  ``0`` disables caching.
    snap_resolution:
        Cache keys are query coordinates snapped to this grid pitch.
        ``None`` derives an EPS-scale pitch from the service region —
        fine enough that distinct random queries never collide, coarse
        enough that float noise on a revisited location still hits.
    """

    index_backend: str = "auto"
    auto_brute_max: int = 96
    cache_size: int = 65536
    snap_resolution: Optional[float] = None
    auto_sharded_min: Optional[int] = None

    def __post_init__(self) -> None:
        if self.index_backend != "auto" and self.index_backend not in _backends():
            raise ValueError(
                f"unknown index backend {self.index_backend!r}; "
                f"expected one of {('auto', *_backends())}"
            )
        if self.cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        if self.snap_resolution is not None and self.snap_resolution <= 0.0:
            raise ValueError("snap_resolution must be positive")


def csr_from_range_lists(lists: Sequence[Sequence[Neighbor]]) -> tuple:
    """``(counts, items)`` CSR form of a ``range_batch`` result.

    The shared adapter behind ``range_batch_ids`` on backends without a
    native CSR kernel (KdTree, BruteForceIndex); GridIndex owns a
    vectorized implementation that never builds the tuple lists.
    """
    counts = np.array([len(lst) for lst in lists], dtype=np.int64)
    items = np.empty(int(counts.sum()), dtype=object)
    items[:] = [item for lst in lists for _d, item in lst]
    return counts, items


def _backends() -> dict:
    """The backend registry — the single source of truth shared by
    config validation and :func:`make_index` dispatch.  Imported lazily:
    the backend modules are siblings, and this module is imported first
    by the package __init__."""
    from .brute import BruteForceIndex
    from .grid import GridIndex
    from .kdtree import KdTree
    from .sharded import ShardedGridIndex

    return {
        "kdtree": KdTree,
        "grid": GridIndex,
        "brute": BruteForceIndex,
        "sharded": ShardedGridIndex,
    }


def _resolve_backend(
    backend: str, n: int, auto_brute_max: int,
    auto_sharded_min: Optional[int] = None,
) -> type:
    """The one backend-selection rule shared by both constructors:
    ``"auto"`` picks brute force up to ``auto_brute_max`` points, the
    tile-sharded grid from ``auto_sharded_min`` points up (when that
    threshold is set), and the monolithic uniform grid in between."""
    registry = _backends()
    if backend == "auto":
        if n <= auto_brute_max:
            backend = "brute"
        elif auto_sharded_min is not None and n >= auto_sharded_min:
            backend = "sharded"
        else:
            backend = "grid"
    try:
        return registry[backend]
    except KeyError:
        raise ValueError(
            f"unknown index backend {backend!r}; expected one of "
            f"{('auto', *registry)}"
        ) from None


def make_index(
    points: Sequence[tuple[float, float, Hashable]],
    backend: str = "auto",
    *,
    auto_brute_max: int = 96,
    auto_sharded_min: Optional[int] = None,
) -> SpatialIndex:
    """Build a spatial index over ``points``.

    ``backend`` is ``"kdtree"``, ``"grid"``, ``"brute"``, ``"sharded"``,
    or ``"auto"`` (brute force up to ``auto_brute_max`` points, the
    tile-sharded grid from ``auto_sharded_min`` points when that
    threshold is set, the uniform grid otherwise — crossovers measured
    on the worlds registry scenarios; see :class:`QueryEngineConfig`).
    All backends return identical answers; only throughput differs.
    """
    pts = points if isinstance(points, list) else list(points)
    cls = _resolve_backend(backend, len(pts), auto_brute_max, auto_sharded_min)
    with _span("index_build", backend=cls.__name__):
        return cls(pts)


def make_index_arrays(
    xy: np.ndarray,
    items: Sequence[Hashable],
    backend: str = "auto",
    *,
    auto_brute_max: int = 96,
    auto_sharded_min: Optional[int] = None,
) -> SpatialIndex:
    """Build a spatial index straight from coordinate arrays.

    The array-native sibling of :func:`make_index`: ``xy`` is an
    ``(N, 2)`` float64 array and ``items`` the per-row ids (an int64
    array or any sequence).  Backends with a vectorized ingest
    (:class:`~repro.index.grid.GridIndex`,
    :class:`~repro.index.brute.BruteForceIndex`) consume the arrays
    without materializing the ``[(x, y, item), ...]`` triple list; the
    rest fall back to it.  Answers are bit-identical to the triple-list
    construction either way.
    """
    xy = np.ascontiguousarray(xy, dtype=np.float64)
    if xy.ndim != 2 or xy.shape[1] != 2:
        raise ValueError("xy must be an (N, 2) coordinate array")
    cls = _resolve_backend(backend, len(xy), auto_brute_max, auto_sharded_min)
    with _span("index_build", backend=cls.__name__):
        from_arrays = getattr(cls, "from_arrays", None)
        if from_arrays is not None:
            return from_arrays(xy, items)
        items_list = items.tolist() if isinstance(items, np.ndarray) else list(items)
        return cls(list(zip(xy[:, 0].tolist(), xy[:, 1].tolist(), items_list)))
