"""Brute-force reference index (test oracle for the smarter backends).

Single-point queries are deliberately plain Python — they *define* the
contract the other backends must match: order by exact squared distance
``dx*dx + dy*dy`` with ties broken by item id, return ``sqrt`` of it.
Both operations are IEEE-754-exact / correctly rounded, so NumPy
reproduces them bit for bit — which is what the batched entry points do:
one vectorized distance matrix per chunk of queries, dramatically faster
than per-query loops on the databases the benchmarks use.
"""

from __future__ import annotations

import math
from typing import Hashable, Sequence

import numpy as np

from ..obs import registry as _obs

__all__ = ["BruteForceIndex"]

# Shared label dicts for the registry hot path (never mutated).
_BRUTE_SCALAR = {"backend": "brute", "mode": "scalar"}
_BRUTE_BATCH = {"backend": "brute", "mode": "batch"}

#: Cap on (queries x points) entries materialized per distance matrix.
_CHUNK_ENTRIES = 4_000_000


class BruteForceIndex:
    """O(n) scans with the same tie-breaking contract as the tree/grid."""

    def __init__(self, points: Sequence[tuple[float, float, Hashable]]):
        self._points = [(float(x), float(y), item) for x, y, item in points]
        self._xs = np.array([p[0] for p in self._points], dtype=np.float64)
        self._ys = np.array([p[1] for p in self._points], dtype=np.float64)
        self._items = [p[2] for p in self._points]
        # Items are comparable (the contract requires it for distance
        # ties), but lexsort needs a numeric key: rank them up front.
        try:
            self._id_rank = np.argsort(
                np.argsort(np.array(self._items, dtype=object), kind="stable")
            )
        except TypeError:
            self._id_rank = np.arange(len(self._points))

    @classmethod
    def from_arrays(
        cls, xy: np.ndarray, items: Sequence[Hashable]
    ) -> "BruteForceIndex":
        """Array-native construction (same answers as the triple list)."""
        self = cls.__new__(cls)
        self._xs = np.ascontiguousarray(xy[:, 0], dtype=np.float64)
        self._ys = np.ascontiguousarray(xy[:, 1], dtype=np.float64)
        items_arr = np.asarray(items)
        self._items = items_arr.tolist()
        self._points = list(zip(self._xs.tolist(), self._ys.tolist(), self._items))
        try:
            self._id_rank = np.argsort(np.argsort(items_arr, kind="stable"))
        except TypeError:
            self._id_rank = np.arange(len(self._items))
        return self

    def __len__(self) -> int:
        return len(self._points)

    # ------------------------------------------------------------------
    # Single-point queries (the executable specification)
    # ------------------------------------------------------------------
    def knn(self, x: float, y: float, k: int) -> list[tuple[float, Hashable]]:
        reg = _obs._active
        if reg is not None:
            reg.inc("index_queries_total", 1.0, _BRUTE_SCALAR)
        ranked = sorted(
            ((px - x) * (px - x) + (py - y) * (py - y), item)
            for px, py, item in self._points
        )
        return [(math.sqrt(d2), item) for d2, item in ranked[: max(k, 0)]]

    def within_radius(self, x: float, y: float, radius: float) -> list[tuple[float, Hashable]]:
        ranked = sorted(
            ((px - x) * (px - x) + (py - y) * (py - y), item)
            for px, py, item in self._points
        )
        out = []
        for d2, item in ranked:
            d = math.sqrt(d2)
            if d <= radius:
                out.append((d, item))
        return out

    # ------------------------------------------------------------------
    # Batched queries (vectorized)
    # ------------------------------------------------------------------
    def _chunks(self, points: Sequence[tuple[float, float]]):
        n = max(len(self._points), 1)
        step = max(1, _CHUNK_ENTRIES // n)
        pts = [(float(px), float(py)) for px, py in points]
        for i in range(0, len(pts), step):
            chunk = pts[i : i + step]
            qx = np.array([p[0] for p in chunk], dtype=np.float64)
            qy = np.array([p[1] for p in chunk], dtype=np.float64)
            dx = self._xs[None, :] - qx[:, None]
            dy = self._ys[None, :] - qy[:, None]
            yield dx * dx + dy * dy

    def knn_batch(
        self, points: Sequence[tuple[float, float]], k: int
    ) -> list[list[tuple[float, Hashable]]]:
        n = len(self._points)
        if n == 0 or k <= 0:
            return [[] for _ in points]
        reg = _obs._active
        if reg is not None:
            reg.inc("index_queries_total", float(len(points)), _BRUTE_BATCH)
        kk = min(k, n)
        id_rank = self._id_rank
        results: list[list[tuple[float, Hashable]]] = []
        for d2mat in self._chunks(points):
            kth2 = np.partition(d2mat, kk - 1, axis=1)[:, kk - 1]
            for row in range(d2mat.shape[0]):
                d2 = d2mat[row]
                pool = np.nonzero(d2 <= kth2[row])[0]
                order = np.lexsort((id_rank[pool], d2[pool]))[:kk]
                sel = pool[order]
                ed = np.sqrt(d2[sel]).tolist()
                results.append(
                    [(d, self._items[j]) for d, j in zip(ed, sel.tolist())]
                )
        return results

    def range_batch(
        self, points: Sequence[tuple[float, float]], radius: float
    ) -> list[list[tuple[float, Hashable]]]:
        if len(self._points) == 0 or radius < 0.0:
            return [[] for _ in points]
        results: list[list[tuple[float, Hashable]]] = []
        for d2mat in self._chunks(points):
            dmat = np.sqrt(d2mat)
            for row in range(d2mat.shape[0]):
                pool = np.nonzero(dmat[row] <= radius)[0]
                seg = sorted(
                    (d2mat[row, j], self._items[j], dmat[row, j]) for j in pool
                )
                results.append([(d, item) for _d2, item, d in seg])
        return results

    def range_batch_ids(
        self, points: Sequence[tuple[float, float]], radius: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """CSR ``(counts, items)`` form of :meth:`range_batch` — per-point
        in-radius item ids concatenated, no distance tuples built."""
        from .base import csr_from_range_lists

        return csr_from_range_lists(self.range_batch(points, radius))
