"""Brute-force reference index (test oracle for :class:`KdTree`)."""

from __future__ import annotations

import math
from typing import Hashable, Sequence

__all__ = ["BruteForceIndex"]


class BruteForceIndex:
    """O(n) scans with the same tie-breaking contract as :class:`KdTree`."""

    def __init__(self, points: Sequence[tuple[float, float, Hashable]]):
        self._points = [(float(x), float(y), item) for x, y, item in points]

    def __len__(self) -> int:
        return len(self._points)

    def knn(self, x: float, y: float, k: int) -> list[tuple[float, Hashable]]:
        ranked = sorted(
            (math.hypot(px - x, py - y), item) for px, py, item in self._points
        )
        return ranked[:k]

    def within_radius(self, x: float, y: float, radius: float) -> list[tuple[float, Hashable]]:
        ranked = sorted(
            (math.hypot(px - x, py - y), item) for px, py, item in self._points
        )
        return [(d, item) for d, item in ranked if d <= radius]
