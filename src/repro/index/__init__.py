"""Spatial index substrate (static KD-tree plus a brute-force oracle)."""

from .brute import BruteForceIndex
from .kdtree import KdTree

__all__ = ["KdTree", "BruteForceIndex"]
