"""Spatial index substrate: pluggable backends behind one protocol.

Four interchangeable backends implement :class:`SpatialIndex`:

* :class:`KdTree` — pure-Python best-first search; good single-query
  latency, no vectorized batch kernel;
* :class:`GridIndex` — NumPy uniform grid; the batched workhorse;
* :class:`ShardedGridIndex` — a two-level grid of lazy ``GridIndex``
  tiles; the large-world backend (per-tile grids adapt to local
  density, and tiles shard across processes);
* :class:`BruteForceIndex` — the O(n) oracle; its batch path is a fully
  vectorized distance matrix, unbeatable on tiny databases.

:func:`make_index` picks a backend by name or, with ``"auto"``, by
database size.
"""

from .base import QueryEngineConfig, SpatialIndex, make_index, make_index_arrays
from .brute import BruteForceIndex
from .grid import GridIndex
from .kdtree import KdTree
from .sharded import ShardedGridIndex

__all__ = [
    "SpatialIndex",
    "QueryEngineConfig",
    "KdTree",
    "GridIndex",
    "ShardedGridIndex",
    "BruteForceIndex",
    "make_index",
    "make_index_arrays",
]
