"""A tile-sharded spatial index: a grid of independent ``GridIndex`` tiles.

The point cloud is partitioned into a ``T × T`` grid of *tiles* over its
bounding box, and each non-empty tile owns a private
:class:`~repro.index.grid.GridIndex` over just its points — a *two-level*
grid.  The outer level routes queries; the inner level answers them.
Two properties fall out of the split:

* **Locality.**  A tile's inner grid adapts to *its own* bounding box.
  On clustered worlds a tile that holds one tight cluster gets cells
  sized to the cluster's extent, not the whole region's — candidate
  sets around dense clusters shrink by orders of magnitude, which is
  exactly the heavy-tail case where the monolithic grid's batch kernel
  falls back to per-query search (see ``GridIndex.counters()``).
* **Independence.**  Tiles are built lazily, one frozen ``GridIndex``
  per tile over a row-slice of the columnar store.  A process that only
  ever queries a corner of the world only pays for that corner's tiles —
  the property ``repro.parallel.shardedknn`` exploits to fan per-tile
  kNN out across workers over one shared-memory world.

Routing: a kNN query lands in its *home tile* (the tile whose cell
contains it).  The home tile's own top-k gives an upper bound on the
true k-th distance; when that bound is smaller than the distance to the
nearest tile boundary, no other tile can contribute and the home
answer is final (the **settled** fast path — the overwhelming majority
of queries, since tiles are hundreds of inner cells wide).  Otherwise
the query *escalates*: every tile overlapping the bound disk reports
its in-disk points and the coordinator merges them.

Exactness: per-tile answers are merged on freshly computed **squared**
distances with global id-rank tie-breaks — never on the returned
``sqrt`` values, where two distinct squared distances can collapse onto
one rounded square root and scramble cross-tile ties.  Tile items are
the global id ranks (ascending within each tile), so tile-internal tie
order *is* global tie order and every answer is bit-identical to
:class:`~repro.index.brute.BruteForceIndex` — the equivalence suite
holds this backend to the same contract as the other three.
"""

from __future__ import annotations

import math
import warnings
from typing import Hashable, Sequence

import numpy as np

from ..obs import registry as _obs
from .grid import GridIndex, _SLACK

__all__ = ["ShardedGridIndex", "auto_tiles_per_side", "route_home_tiles"]

# Shared label dicts for the registry hot path (never mutated).
_SHARDED = {"backend": "sharded"}
_SHARDED_SCALAR = {"backend": "sharded", "mode": "scalar"}
_SHARDED_BATCH = {"backend": "sharded", "mode": "batch"}

#: Auto tile-count target: points per tile.  Big enough that the
#: settled fast path dominates (escalations scale with tile perimeter
#: over tile area), small enough that a tile is a cache-friendly build.
_TARGET_PER_TILE = 65536

#: Cap on tiles per side (the outer routing grid stays O(T^2) metadata).
_MAX_TILES_PER_SIDE = 32


def auto_tiles_per_side(n: int) -> int:
    """The default tile-grid side for an ``n``-point world — the rule
    :class:`ShardedGridIndex` applies when ``tiles_per_side`` is None."""
    if n <= 0:
        return 1
    return max(1, min(_MAX_TILES_PER_SIDE, round(math.sqrt(n / _TARGET_PER_TILE))))


def route_home_tiles(
    data_xy: np.ndarray,
    query_xy: np.ndarray,
    tiles_per_side: int | None = None,
) -> tuple[np.ndarray, int]:
    """Home-tile ids for ``query_xy`` under the tile geometry a
    :class:`ShardedGridIndex` would derive from ``data_xy``.

    Returns ``(tile_ids, tiles_per_side)``.  The coordinator of a
    parallel fan-out uses this to group queries by home tile *without*
    building an index — the same bbox, clamp, and truncation as
    ``ShardedGridIndex._build``, so the groups line up with the tiles
    workers will actually touch.
    """
    data_xy = np.asarray(data_xy, dtype=np.float64)
    query_xy = np.asarray(query_xy, dtype=np.float64)
    t = (auto_tiles_per_side(len(data_xy))
         if tiles_per_side is None else int(tiles_per_side))
    if t < 1:
        raise ValueError("tiles_per_side must be >= 1")
    if len(data_xy) == 0 or t == 1:
        return np.zeros(len(query_xy), dtype=np.intp), t
    x0 = float(data_xy[:, 0].min())
    y0 = float(data_xy[:, 1].min())
    tw = (float(data_xy[:, 0].max()) - x0) / t
    th = (float(data_xy[:, 1].max()) - y0) / t
    tw = tw if tw > 1e-100 else 1.0
    th = th if th > 1e-100 else 1.0
    qx = np.clip((query_xy[:, 0] - x0) / tw, 0.0, t - 1.0).astype(np.intp)
    qy = np.clip((query_xy[:, 1] - y0) / th, 0.0, t - 1.0).astype(np.intp)
    return qy * t + qx, t


def _group_kth(d: np.ndarray, qid: np.ndarray, m: int, kk: int) -> np.ndarray:
    """Per-group ``kk``-th smallest of ``d`` (groups = values of ``qid``,
    each holding at least ``kk`` entries) via one padded partition —
    the same kernel as ``GridIndex._group_kth``."""
    counts = np.bincount(qid, minlength=m)
    pos = np.arange(d.size) - np.repeat(np.cumsum(counts) - counts, counts)
    padded = np.full((m, int(counts.max())), np.inf)
    padded[qid, pos] = d
    return np.partition(padded, kk - 1, axis=1)[:, kk - 1]


class ShardedGridIndex:
    """Two-level grid: ``T × T`` routing tiles, each a lazy ``GridIndex``."""

    def __init__(
        self,
        points: Sequence[tuple[float, float, Hashable]],
        tiles_per_side: int | None = None,
        target_per_cell: float = 0.5,
        prefer_delegate: bool = False,
    ):
        pts = [(float(x), float(y), item) for x, y, item in points]
        try:
            pts.sort(key=lambda p: p[2])
        except TypeError:
            pass  # unorderable ids: fall back to insertion order
        self._build(
            np.array([p[0] for p in pts], dtype=np.float64),
            np.array([p[1] for p in pts], dtype=np.float64),
            [item for _x, _y, item in pts],
            tiles_per_side,
            target_per_cell,
            prefer_delegate,
        )

    @classmethod
    def from_arrays(
        cls,
        xy: np.ndarray,
        items: Sequence[Hashable],
        tiles_per_side: int | None = None,
        target_per_cell: float = 0.5,
        prefer_delegate: bool = False,
    ) -> "ShardedGridIndex":
        """Array-native construction over the columnar store's rows.

        Same ingest discipline as ``GridIndex.from_arrays``: one stable
        argsort by item id, coordinates gathered by that order.  Works
        directly over frozen (``writeable=False``) shared-memory views —
        the gather copies, the source is never written.
        """
        items_arr = np.asarray(items)
        try:
            order = np.argsort(items_arr, kind="stable")
        except TypeError:
            order = np.arange(len(items_arr))  # unorderable ids
        self = cls.__new__(cls)
        self._build(
            np.ascontiguousarray(xy[order, 0], dtype=np.float64),
            np.ascontiguousarray(xy[order, 1], dtype=np.float64),
            items_arr[order].tolist(),
            tiles_per_side,
            target_per_cell,
            prefer_delegate,
        )
        return self

    def _build(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        items: list,
        tiles_per_side: int | None,
        target_per_cell: float,
        prefer_delegate: bool = False,
    ) -> None:
        """Tile binning over id-sorted coordinate arrays (tiles stay lazy)."""
        # prefer_delegate keeps every batch on the per-tile delegate
        # path (never the flat plane, which materializes *all* tiles) —
        # the mode a fan-out worker runs in, trading some batch
        # throughput for building only the tiles its queries touch.
        self._prefer_delegate = bool(prefer_delegate)
        self._items = items
        n = len(items)
        self._size = n
        self._items_arr = np.empty(n, dtype=object)
        self._items_arr[:] = items
        self._target_per_cell = target_per_cell
        # Counter lifecycle: instance-lifetime, like GridIndex — internal
        # rebuilds preserve them; only reset_stats() zeroes.
        if getattr(self, "_stats", None) is None:
            self._stats = {
                "batch_queries": 0,
                "batch_settled": 0,
                "batch_escalated": 0,
                "batch_scalar": 0,
            }
        if tiles_per_side is None:
            tiles_per_side = auto_tiles_per_side(n)
        if tiles_per_side < 1:
            raise ValueError("tiles_per_side must be >= 1")
        t = int(tiles_per_side)
        self._t = t
        self._tiles: list = [None] * (t * t)
        self._tiles_built = 0
        self._plane = None
        if n == 0:
            return
        # Coordinates in id-rank order: position == global tie-break rank.
        self._xs = xs
        self._ys = ys
        self._x0 = float(xs.min())
        self._y0 = float(ys.min())
        width = float(xs.max()) - self._x0
        height = float(ys.max()) - self._y0
        # Same degenerate-extent guard as the inner grid: a subnormal
        # tile width would overflow query binning to inf.
        tw = width / t
        th = height / t
        self._tw = tw if tw > 1e-100 else 1.0
        self._th = th if th > 1e-100 else 1.0
        tx = np.clip((xs - self._x0) / self._tw, 0.0, t - 1.0).astype(np.intp)
        ty = np.clip((ys - self._y0) / self._th, 0.0, t - 1.0).astype(np.intp)
        tile_ids = ty * t + tx
        # Stable sort by tile: within a tile the id ranks stay ascending,
        # so each tile's local tie order equals the global tie order.
        order = np.argsort(tile_ids, kind="stable")
        self._order = order.astype(np.intp)
        self._starts = np.searchsorted(tile_ids[order], np.arange(t * t + 1))
        per_tile = np.diff(self._starts).reshape(t, t)
        prefix = np.zeros((t + 1, t + 1), dtype=np.intp)
        np.cumsum(np.cumsum(per_tile, axis=0), axis=1, out=prefix[1:, 1:])
        self._prefix = prefix

    def __len__(self) -> int:
        return self._size

    @property
    def tiles_per_side(self) -> int:
        return self._t

    def counters(self) -> dict:
        """Routing counters plus tile-construction progress.

        ``batch_settled`` counts batch queries answered entirely by
        their home tile, ``batch_escalated`` those that needed the
        bounded cross-tile merge, ``batch_scalar`` those whose home tile
        was too small for ``k`` (full scalar routing).  ``tiles_built``
        over ``tiles_nonempty`` shows how much of the world this index
        actually materialized — the laziness the parallel fan-out banks
        on.  Inner-grid counters (see ``GridIndex.counters()``) are
        summed over the built tiles.

        Lifecycle: counters accumulate for the life of the instance —
        internal rebuilds never zero them; only :meth:`reset_stats`
        does.  The same counts stream to the process-wide registry
        (``index_batch_*_total{backend="sharded"}``,
        ``index_tiles_built_total``; inner tiles report under
        ``backend="grid"`` — they *are* grid kernels) when
        :mod:`repro.obs` is enabled.
        """
        out = dict(self._stats)
        out["tiles_per_side"] = self._t
        out["tiles_built"] = self._tiles_built
        out["tiles_nonempty"] = (
            int((np.diff(self._starts) > 0).sum()) if self._size else 0
        )
        inner = {"batch_queries": 0, "batch_chunked": 0, "batch_fallback": 0}
        for tile in self._tiles:
            if tile is not None:
                for key, val in tile.counters().items():
                    inner[key] += val
        out["inner"] = inner
        return out

    def reset_stats(self) -> None:
        """Explicitly zero the routing counters and every built tile's
        inner-grid counters (nothing else does)."""
        for key in self._stats:
            self._stats[key] = 0
        for tile in self._tiles:
            if tile is not None:
                tile.reset_stats()

    def stats(self) -> dict:
        """Deprecated alias of :meth:`counters`; removed next release."""
        warnings.warn(
            "ShardedGridIndex.stats() is deprecated; use counters() "
            "(same dict) or the repro.obs registry",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.counters()

    # ------------------------------------------------------------------
    # Tile plumbing
    # ------------------------------------------------------------------
    def _tile(self, t: int) -> GridIndex:
        """The tile's inner grid, built on first touch."""
        tile = self._tiles[t]
        if tile is None:
            lo = self._starts[t]
            hi = self._starts[t + 1]
            ranks = self._order[lo:hi]
            xy = np.column_stack((self._xs[ranks], self._ys[ranks]))
            # Items are the global id ranks — already ascending, so the
            # inner argsort is the identity and local ties == global ties.
            tile = GridIndex.from_arrays(xy, ranks, self._target_per_cell)
            self._tiles[t] = tile
            self._tiles_built += 1
            reg = _obs._active
            if reg is not None:
                reg.inc("index_tiles_built_total", 1.0, _SHARDED)
        return tile

    def _get_plane(self) -> tuple:
        """The flat batch plane: every non-empty tile's inner grid,
        concatenated with per-tile offsets so one vectorized pass can
        serve queries whose home tiles differ.

        Arrays indexed by tile id: inner grid shape ``tg``, origin
        ``tx0/ty0``, cell size ``tcw/tch``, and offsets into the
        concatenations — ``tso`` (cell starts), ``tpo`` (flattened 2-D
        prefix sums), ``tbo`` (storage rows).  Concatenations:
        ``starts``/``prefix`` per tile, plus tile-storage-ordered
        coordinates ``cxs``/``cys`` and the *global* id rank ``crank``
        of every storage row.  Building it materializes every non-empty
        tile once (scattered batches touch them all anyway).
        """
        plane = self._plane
        if plane is None:
            t2 = self._t * self._t
            tg = np.ones(t2, dtype=np.intp)
            tx0 = np.zeros(t2, dtype=np.float64)
            ty0 = np.zeros(t2, dtype=np.float64)
            tcw = np.ones(t2, dtype=np.float64)
            tch = np.ones(t2, dtype=np.float64)
            tso = np.zeros(t2, dtype=np.intp)
            tpo = np.zeros(t2, dtype=np.intp)
            tbo = self._starts[:-1].astype(np.intp)
            starts_parts: list[np.ndarray] = []
            prefix_parts: list[np.ndarray] = []
            cxs = np.empty(self._size, dtype=np.float64)
            cys = np.empty(self._size, dtype=np.float64)
            crank = np.empty(self._size, dtype=np.intp)
            so = po = 0
            for t in range(t2):
                tso[t] = so
                tpo[t] = po
                lo = self._starts[t]
                hi = self._starts[t + 1]
                if hi <= lo:  # empty tile: 1x1 placeholder, never routed to
                    starts_parts.append(np.zeros(2, dtype=np.intp))
                    prefix_parts.append(np.zeros(4, dtype=np.intp))
                    so += 2
                    po += 4
                    continue
                tile = self._tile(t)
                g = tile._g
                tg[t] = g
                tx0[t] = tile._x0
                ty0[t] = tile._y0
                tcw[t] = tile._cw
                tch[t] = tile._ch
                starts_parts.append(np.asarray(tile._starts, dtype=np.intp))
                prefix_parts.append(tile._prefix.ravel())
                so += g * g + 1
                po += (g + 1) * (g + 1)
                cxs[lo:hi] = tile._xs
                cys[lo:hi] = tile._ys
                # Storage row -> global id rank (tile items *are* ranks).
                crank[lo:hi] = self._order[lo:hi][tile._rank]
            plane = self._plane = (
                tg, tx0, ty0, tcw, tch, tso, tpo, tbo,
                np.concatenate(starts_parts),
                np.concatenate(prefix_parts),
                cxs, cys, crank,
            )
        return plane

    def _tile_x(self, v: float) -> int:
        t1 = self._t - 1
        q = (v - self._x0) / self._tw
        if q <= 0.0:
            return 0
        if q >= t1:
            return t1
        return int(q)

    def _tile_y(self, v: float) -> int:
        t1 = self._t - 1
        q = (v - self._y0) / self._th
        if q <= 0.0:
            return 0
        if q >= t1:
            return t1
        return int(q)

    def _tile_walls(self, tx: int, ty: int) -> tuple[float, float, float, float]:
        """The tile's interior walls (``-inf``/``inf`` on outer borders:
        clipping assigns everything beyond the bbox to border tiles, so
        an edge tile has no neighbours past its outer side)."""
        t = self._t
        left = self._x0 + tx * self._tw if tx > 0 else -math.inf
        right = self._x0 + (tx + 1) * self._tw if tx < t - 1 else math.inf
        bottom = self._y0 + ty * self._th if ty > 0 else -math.inf
        top = self._y0 + (ty + 1) * self._th if ty < t - 1 else math.inf
        return left, right, bottom, top

    def _block_tiles(self, c0: int, c1: int, r0: int, r1: int):
        """Non-empty tile ids of a tile block."""
        t = self._t
        starts = self._starts
        out = []
        for row in range(r0, r1 + 1):
            base = row * t
            for col in range(c0, c1 + 1):
                tid = base + col
                if starts[tid + 1] > starts[tid]:
                    out.append(tid)
        return out

    def _block_count(self, c0: int, c1: int, r0: int, r1: int) -> int:
        p = self._prefix
        return int(p[r1 + 1, c1 + 1] - p[r0, c1 + 1] - p[r1 + 1, c0] + p[r0, c0])

    # ------------------------------------------------------------------
    # Single-point queries
    # ------------------------------------------------------------------
    def knn(self, x: float, y: float, k: int) -> list[tuple[float, Hashable]]:
        if self._size == 0 or k <= 0:
            return []
        reg = _obs._active
        if reg is not None:
            reg.inc("index_queries_total", 1.0, _SHARDED_SCALAR)
        x = float(x)
        y = float(y)
        kk = min(k, self._size)
        tx = self._tile_x(x)
        ty = self._tile_y(y)
        home = ty * self._t + tx
        if self._starts[home + 1] - self._starts[home] >= kk:
            ans = self._tile(home).knn(x, y, kk)
            reach = ans[-1][0] * (1.0 + _SLACK)
            left, right, bottom, top = self._tile_walls(tx, ty)
            if reach < min(x - left, right - x, y - bottom, top - y):
                items = self._items
                return [(d, items[rk]) for d, rk in ans]
            return self._knn_with_bound(x, y, kk, reach)
        # Home tile too small for k: grow the tile block until it holds
        # kk points (geometric growth over O(1) prefix counts), bound the
        # k-th distance by merging the block tiles' own top-k lists.
        t = self._t
        r = 0
        while True:
            c0 = max(tx - r, 0)
            c1 = min(tx + r, t - 1)
            r0 = max(ty - r, 0)
            r1 = min(ty + r, t - 1)
            if self._block_count(c0, c1, r0, r1) >= kk:
                break
            r = 2 * r + 1
        bound = []
        for tid in self._block_tiles(c0, c1, r0, r1):
            bound.extend(self._tile(tid).knn(x, y, kk))
        # sqrt is monotone in d2, so the kk-th smallest returned distance
        # is a valid upper bound on the true k-th distance even when
        # distinct d2 values collide after rounding.
        bound.sort()
        reach = bound[kk - 1][0] * (1.0 + _SLACK)
        return self._knn_with_bound(x, y, kk, reach)

    def _knn_with_bound(
        self, x: float, y: float, kk: int, reach: float
    ) -> list[tuple[float, Hashable]]:
        """Finish a kNN whose k-th distance is bounded by ``reach``: one
        cross-tile gather over the bound disk, merged on exact squared
        distance with id-rank ties."""
        c0 = self._tile_x(x - reach)
        c1 = self._tile_x(x + reach)
        r0 = self._tile_y(y - reach)
        r1 = self._tile_y(y + reach)
        ranks: list[int] = []
        for tid in self._block_tiles(c0, c1, r0, r1):
            ranks.extend(
                rk for _d, rk in self._tile(tid).within_radius(x, y, reach)
            )
        arr = np.asarray(ranks, dtype=np.intp)
        dx = self._xs[arr] - x
        dy = self._ys[arr] - y
        d2 = dx * dx + dy * dy
        ranked = sorted(zip(d2.tolist(), arr.tolist()))[:kk]
        items = self._items
        return [(math.sqrt(dd), items[rk]) for dd, rk in ranked]

    def within_radius(
        self, x: float, y: float, radius: float
    ) -> list[tuple[float, Hashable]]:
        if self._size == 0 or radius < 0.0:
            return []
        x = float(x)
        y = float(y)
        reach = radius * (1.0 + _SLACK)
        c0 = self._tile_x(x - reach)
        c1 = self._tile_x(x + reach)
        r0 = self._tile_y(y - reach)
        r1 = self._tile_y(y + reach)
        ranks: list[int] = []
        for tid in self._block_tiles(c0, c1, r0, r1):
            # Membership is the tile's call (same sqrt(d2) <= radius as
            # every backend); only the cross-tile order is recomputed.
            ranks.extend(
                rk for _d, rk in self._tile(tid).within_radius(x, y, radius)
            )
        if not ranks:
            return []
        arr = np.asarray(ranks, dtype=np.intp)
        dx = self._xs[arr] - x
        dy = self._ys[arr] - y
        d2 = dx * dx + dy * dy
        merged = sorted(zip(d2.tolist(), arr.tolist()))
        items = self._items
        return [(math.sqrt(dd), items[rk]) for dd, rk in merged]

    # ------------------------------------------------------------------
    # Batched queries
    # ------------------------------------------------------------------

    #: Queries per vectorized chunk of the flat kernel (same scratch
    #: bound as the inner grid's).
    _CHUNK = 1024
    #: Minimum mean queries-per-home-tile for the *delegated* batch path
    #: (each group runs its tile's own batch kernel).  Below it, the
    #: per-group fixed overhead of the grid kernel dominates and the
    #: flat cross-tile kernel — one vectorized pass over all tiles at
    #: once — takes over.  Tile-concentrated batches (the parallel
    #: per-tile fan-out routes workers whole tiles) stay on delegation,
    #: which builds only the touched tiles.
    _DELEGATE_MIN_GROUP = 256

    def knn_batch(
        self, points: Sequence[tuple[float, float]], k: int
    ) -> list[list[tuple[float, Hashable]]]:
        """Per-point kNN, identical to looped :meth:`knn`.

        Queries are routed to their home tiles; each home-tile answer
        settles unless its k-th distance crosses a tile wall, in which
        case the query escalates to the bounded cross-tile merge.  Two
        vectorized paths compute the home answers: tile-concentrated
        batches delegate to each home tile's own batch kernel (lazy —
        only touched tiles are built), scattered batches run the *flat*
        kernel, one pass over the concatenated tile grids.
        """
        pts = [(float(px), float(py)) for px, py in points]
        m = len(pts)
        if self._size == 0 or k <= 0:
            return [[] for _ in pts]
        if m == 0:
            return []
        kk = min(k, self._size)
        t = self._t
        self._stats["batch_queries"] += m
        if t == 1:
            self._stats["batch_settled"] += m
            reg = _obs._active
            if reg is not None:
                reg.inc("index_queries_total", float(m), _SHARDED_BATCH)
                reg.inc("index_batch_queries_total", float(m), _SHARDED)
                reg.inc("index_batch_settled_total", float(m), _SHARDED)
            items = self._items
            tile = self._tile(0)
            return [
                [(d, items[rk]) for d, rk in ans]
                for ans in tile.knn_batch(pts, kk)
            ]
        qx = np.array([p[0] for p in pts], dtype=np.float64)
        qy = np.array([p[1] for p in pts], dtype=np.float64)
        qtx = np.clip((qx - self._x0) / self._tw, 0.0, t - 1.0).astype(np.intp)
        qty = np.clip((qy - self._y0) / self._th, 0.0, t - 1.0).astype(np.intp)
        qt = qty * t + qtx
        out: list = [None] * m
        pending: list[tuple[int, float]] = []
        scalar: list[int] = []
        homes = int(np.unique(qt).size)
        if self._prefer_delegate or m >= homes * self._DELEGATE_MIN_GROUP:
            self._knn_batch_delegate(pts, qt, kk, out, pending, scalar)
        else:
            pop = self._starts[qt + 1] - self._starts[qt]
            small = pop < kk
            scalar.extend(np.nonzero(small)[0].tolist())
            route = np.nonzero(~small)[0]
            for i in range(0, route.size, self._CHUNK):
                sub = route[i : i + self._CHUNK]
                self._knn_plane_chunk(
                    qx[sub], qy[sub], qt[sub], sub.tolist(), kk, out, pending, scalar
                )
        self._stats["batch_settled"] += m - len(pending) - len(scalar)
        self._stats["batch_escalated"] += len(pending)
        self._stats["batch_scalar"] += len(scalar)
        # Once per batch: the registry mirror of the routing counters
        # (kernel-level counts; scalar-routed queries also hit the
        # scalar index_queries_total from knn()).
        reg = _obs._active
        if reg is not None:
            reg.inc("index_queries_total", float(m), _SHARDED_BATCH)
            reg.inc("index_batch_queries_total", float(m), _SHARDED)
            reg.inc(
                "index_batch_settled_total",
                float(m - len(pending) - len(scalar)), _SHARDED,
            )
            reg.inc("index_batch_escalated_total", float(len(pending)), _SHARDED)
            reg.inc("index_batch_scalar_total", float(len(scalar)), _SHARDED)
        for i, reach in pending:
            px, py = pts[i]
            out[i] = self._knn_with_bound(px, py, kk, reach)
        for i in scalar:
            px, py = pts[i]
            out[i] = self.knn(px, py, kk)
        return out

    def _knn_batch_delegate(self, pts, qt, kk, out, pending, scalar) -> None:
        """Home answers via each home tile's own batch kernel (groups
        are big, so the per-group kernel overhead amortizes; only the
        touched tiles get built)."""
        t = self._t
        items = self._items
        starts = self._starts
        order = np.argsort(qt, kind="stable")
        cuts = np.nonzero(np.diff(qt[order]))[0] + 1
        for group in np.split(order, cuts):
            home = int(qt[group[0]])
            if starts[home + 1] - starts[home] < kk:
                scalar.extend(group.tolist())
                continue
            tile = self._tile(home)
            left, right, bottom, top = self._tile_walls(home % t, home // t)
            idx = group.tolist()
            answers = tile.knn_batch([pts[i] for i in idx], kk)
            for i, ans in zip(idx, answers):
                px, py = pts[i]
                reach = ans[-1][0] * (1.0 + _SLACK)
                if reach < min(px - left, right - px, py - bottom, top - py):
                    out[i] = [(d, items[rk]) for d, rk in ans]
                else:
                    pending.append((i, reach))

    def _knn_plane_chunk(self, qx, qy, qt, idx, kk, out, pending, scalar) -> None:
        """The flat cross-tile batch kernel: the inner grid's four
        phases (ring growth, bound, regather, padded partition), run in
        one vectorized pass over queries whose home tiles differ — every
        per-tile constant (grid side, origin, cell size, array offsets)
        becomes a per-query gather from the batch plane.

        ``idx`` maps chunk rows to caller query positions.  Home-tile
        answers that clear the tile walls land in ``out``; the rest
        join ``pending`` with their within-tile k-th bound; cap-heavy
        rows join ``scalar``.  Every query with home-tile population
        >= ``kk`` is accounted to exactly one of the three.
        """
        (tg, tx0, ty0, tcw, tch, tso, tpo, tbo,
         starts, prefix, cxs, cys, crank) = self._get_plane()
        m = qx.size
        g = tg[qt]
        x0 = tx0[qt]
        y0 = ty0[qt]
        cw = tcw[qt]
        ch = tch[qt]
        so = tso[qt]
        po = tpo[qt]
        bo = tbo[qt]
        gm1 = (g - 1).astype(np.float64)
        qcx = np.clip((qx - x0) / cw, 0.0, gm1).astype(np.intp)
        qcy = np.clip((qy - y0) / ch, 0.0, gm1).astype(np.intp)

        def counts(sub, c0, c1, r0, r1):
            gp1 = g[sub] + 1
            base = po[sub]
            return (
                prefix[base + (r1 + 1) * gp1 + (c1 + 1)]
                - prefix[base + r0 * gp1 + (c1 + 1)]
                - prefix[base + (r1 + 1) * gp1 + c0]
                + prefix[base + r0 * gp1 + c0]
            )

        def gather(sub, c0s, c1s, r0s, r1s):
            nrows = r1s - r0s + 1
            qid = np.repeat(np.arange(sub.size), nrows)
            row_start = np.cumsum(nrows) - nrows
            rows = np.arange(int(nrows.sum())) - np.repeat(row_start, nrows) + r0s[qid]
            gg = g[sub][qid]
            base = so[sub][qid]
            off = bo[sub][qid]
            lo = starts[base + rows * gg + c0s[qid]] + off
            hi = starts[base + rows * gg + c1s[qid] + 1] + off
            lens = hi - lo
            total = int(lens.sum())
            ends = np.cumsum(lens)
            cand = np.arange(total) - np.repeat(ends - lens, lens) + np.repeat(lo, lens)
            return cand, np.repeat(qid, lens)

        # Phase 1: smallest block radius holding >= kk points, per query
        # (geometric growth, then bisection) — within the home tile only.
        r_need = np.zeros(m, dtype=np.intp)
        alive = np.arange(m)
        t = 0
        while alive.size:
            ga = g[alive]
            cnt = counts(
                alive,
                np.clip(qcx[alive] - t, 0, ga - 1), np.clip(qcx[alive] + t, 0, ga - 1),
                np.clip(qcy[alive] - t, 0, ga - 1), np.clip(qcy[alive] + t, 0, ga - 1),
            )
            done = cnt >= kk
            r_need[alive[done]] = t
            alive = alive[~done]
            t = 2 * t + 1
        lo_r = np.maximum((r_need - 1) // 2, 0)
        hi_r = r_need
        while True:
            open_rows = np.nonzero(hi_r - lo_r > 1)[0]
            if not open_rows.size:
                break
            mid = (lo_r[open_rows] + hi_r[open_rows]) // 2
            go = g[open_rows]
            cnt = counts(
                open_rows,
                np.clip(qcx[open_rows] - mid, 0, go - 1),
                np.clip(qcx[open_rows] + mid, 0, go - 1),
                np.clip(qcy[open_rows] - mid, 0, go - 1),
                np.clip(qcy[open_rows] + mid, 0, go - 1),
            )
            ok = cnt >= kk
            hi_r[open_rows[ok]] = mid[ok]
            lo_r[open_rows[~ok]] = mid[~ok]
        r_need = hi_r

        # Same heavy-tail cap as the inner grid: over-cap rows take the
        # scalar search (routed by the caller), everyone else rides the
        # padded matrix.
        cap = max(16 * kk, 1024)
        c0 = np.clip(qcx - r_need, 0, g - 1)
        c1 = np.clip(qcx + r_need, 0, g - 1)
        r0 = np.clip(qcy - r_need, 0, g - 1)
        r1 = np.clip(qcy + r_need, 0, g - 1)
        light = counts(np.arange(m), c0, c1, r0, r1) <= cap
        lidx = np.nonzero(light)[0]
        handled = np.zeros(m, dtype=bool)

        lidx2 = lidx[:0]
        if lidx.size:
            # Phase 2: the k-th distance within the count block bounds
            # the true within-tile k-th from above.
            cand, qid = gather(lidx, c0[lidx], c1[lidx], r0[lidx], r1[lidx])
            lqx = qx[lidx]
            lqy = qy[lidx]
            dx = cxs[cand] - lqx[qid]
            dy = cys[cand] - lqy[qid]
            d2 = dx * dx + dy * dy
            reach = np.sqrt(_group_kth(d2, qid, lidx.size, kk)) * (1.0 + _SLACK)
            # Phase 3: regather over the cells covering each bound disk.
            glf = (g[lidx] - 1).astype(np.float64)
            fc0 = np.clip((lqx - reach - x0[lidx]) / cw[lidx], 0.0, glf).astype(np.intp)
            fc1 = np.clip((lqx + reach - x0[lidx]) / cw[lidx], 0.0, glf).astype(np.intp)
            fr0 = np.clip((lqy - reach - y0[lidx]) / ch[lidx], 0.0, glf).astype(np.intp)
            fr1 = np.clip((lqy + reach - y0[lidx]) / ch[lidx], 0.0, glf).astype(np.intp)
            still = counts(lidx, fc0, fc1, fr0, fr1) <= cap
            lidx2 = lidx[still]

        if lidx2.size:
            sub = np.nonzero(still)[0]
            cand, qid = gather(lidx2, fc0[sub], fc1[sub], fr0[sub], fr1[sub])
            lqx = qx[lidx2]
            lqy = qy[lidx2]
            dx = cxs[cand] - lqx[qid]
            dy = cys[cand] - lqy[qid]
            d2 = dx * dx + dy * dy

            # Phase 4: padded partition + tie-aware ordering, exactly
            # the inner grid's, with ranks already global.
            mm = lidx2.size
            cnt_q = np.bincount(qid, minlength=mm)
            pos = np.arange(d2.size) - np.repeat(np.cumsum(cnt_q) - cnt_q, cnt_q)
            pad_d2 = np.full((mm, int(cnt_q.max())), np.inf)
            pad_d2[qid, pos] = d2
            pad_rk = np.zeros(pad_d2.shape, dtype=np.intp)
            pad_rk[qid, pos] = crank[cand]
            rows_ix = np.arange(mm)[:, None]
            part = np.argpartition(pad_d2, kk - 1, axis=1)[:, :kk]
            sub_d2 = pad_d2[rows_ix, part]
            order = np.argsort(sub_d2, axis=1)
            top = part[rows_ix, order]
            top_d2 = sub_d2[rows_ix, order]
            kth2 = top_d2[:, -1]
            risky = (np.count_nonzero(pad_d2 == kth2[:, None], axis=1)
                     != np.count_nonzero(top_d2 == kth2[:, None], axis=1))
            if kk > 1:
                risky |= (top_d2[:, 1:] == top_d2[:, :-1]).any(axis=1)

            # Settled test: the within-tile k-th bound against the
            # distance to the nearest interior tile wall.
            tt = self._t
            tiles = qt[lidx2]
            ttx = tiles % tt
            tty = tiles // tt
            left = np.where(ttx > 0, self._x0 + ttx * self._tw, -np.inf)
            right = np.where(ttx < tt - 1, self._x0 + (ttx + 1) * self._tw, np.inf)
            bottom = np.where(tty > 0, self._y0 + tty * self._th, -np.inf)
            topw = np.where(tty < tt - 1, self._y0 + (tty + 1) * self._th, np.inf)
            reach_k = np.sqrt(kth2) * (1.0 + _SLACK)
            clearance = np.minimum(
                np.minimum(lqx - left, right - lqx),
                np.minimum(lqy - bottom, topw - lqy),
            )
            settled = reach_k < clearance

            ed = np.sqrt(top_d2).tolist()
            eit = self._items_arr[pad_rk[rows_ix, top]].tolist()
            items = self._items
            for row in range(mm):
                qi = idx[lidx2[row]]
                if not settled[row]:
                    pending.append((qi, float(reach_k[row])))
                elif risky[row]:
                    pool = np.nonzero(pad_d2[row] <= kth2[row])[0]
                    ranked = sorted(
                        (pad_d2[row, c], int(pad_rk[row, c])) for c in pool
                    )[:kk]
                    out[qi] = [(math.sqrt(dd), items[rk]) for dd, rk in ranked]
                else:
                    out[qi] = list(zip(ed[row], eit[row]))
            handled[lidx2] = True

        for row in np.nonzero(~handled)[0].tolist():
            scalar.append(idx[row])

    def _range_flat(self, pts: list, radius: float):
        """Shared range kernel: per-point-grouped ``(qid, id-rank, d2)``
        arrays in final answer order — the cross-tile analogue of
        ``GridIndex._range_chunk_raw``, with ranks already global."""
        m = len(pts)
        qx = np.array([p[0] for p in pts], dtype=np.float64)
        qy = np.array([p[1] for p in pts], dtype=np.float64)
        t = self._t
        reach = radius * (1.0 + _SLACK)
        c0 = np.clip((qx - reach - self._x0) / self._tw, 0.0, t - 1.0).astype(np.intp)
        c1 = np.clip((qx + reach - self._x0) / self._tw, 0.0, t - 1.0).astype(np.intp)
        r0 = np.clip((qy - reach - self._y0) / self._th, 0.0, t - 1.0).astype(np.intp)
        r1 = np.clip((qy + reach - self._y0) / self._th, 0.0, t - 1.0).astype(np.intp)
        starts = self._starts
        tile_qids: dict[int, list[int]] = {}
        for qi in range(m):
            for row in range(int(r0[qi]), int(r1[qi]) + 1):
                base = row * t
                for col in range(int(c0[qi]), int(c1[qi]) + 1):
                    tid = base + col
                    if starts[tid + 1] > starts[tid]:
                        tile_qids.setdefault(tid, []).append(qi)
        qid_parts: list[np.ndarray] = []
        rank_parts: list[np.ndarray] = []
        for tid, qids in tile_qids.items():
            tile = self._tile(tid)
            counts, tile_items = tile.range_batch_ids(
                [pts[i] for i in qids], radius
            )
            if tile_items.size:
                # Tile items are global id ranks (an object array of
                # Python ints from the inner grid's emission path).
                rank_parts.append(tile_items.astype(np.intp))
                qid_parts.append(
                    np.repeat(np.asarray(qids, dtype=np.intp), counts)
                )
        if not rank_parts:
            empty = np.empty(0, dtype=np.intp)
            return empty, empty, np.empty(0, dtype=np.float64)
        pq = np.concatenate(qid_parts)
        prk = np.concatenate(rank_parts)
        dx = self._xs[prk] - qx[pq]
        dy = self._ys[prk] - qy[pq]
        d2 = dx * dx + dy * dy
        order = np.lexsort((prk, d2, pq))
        return pq[order], prk[order], d2[order]

    def range_batch(
        self, points: Sequence[tuple[float, float]], radius: float
    ) -> list[list[tuple[float, Hashable]]]:
        """Per-point radius answers, identical to looped :meth:`within_radius`."""
        pts = [(float(px), float(py)) for px, py in points]
        if self._size == 0 or radius < 0.0:
            return [[] for _ in pts]
        pq, prk, d2 = self._range_flat(pts, radius)
        ed = np.sqrt(d2).tolist()
        items = self._items
        eit = [items[r] for r in prk.tolist()]
        ends = np.cumsum(np.bincount(pq, minlength=len(pts))).tolist()
        out = []
        lo = 0
        for hi in ends:
            out.append(list(zip(ed[lo:hi], eit[lo:hi])))
            lo = hi
        return out

    def range_batch_ids(
        self, points: Sequence[tuple[float, float]], radius: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """CSR ``(counts, items)`` form of :meth:`range_batch` — the
        vectorized candidate feed, same contract as the inner grid's."""
        pts = [(float(px), float(py)) for px, py in points]
        if not pts or self._size == 0 or radius < 0.0:
            return np.zeros(len(pts), dtype=np.int64), np.empty(0, dtype=object)
        pq, prk, _d2 = self._range_flat(pts, radius)
        counts = np.bincount(pq, minlength=len(pts)).astype(np.int64)
        items = np.empty(prk.size, dtype=object)
        items[:] = [self._items[r] for r in prk.tolist()]
        return counts, items
