"""A static 2-D KD-tree.

The LBS simulator answers millions of kNN queries per experiment, so the
index matters.  This is a classic median-split KD-tree over static points,
built once per database, with iterative best-first kNN search and a
radius query.  Ties in distance are broken by item id so the simulated
service is deterministic — the "general position" assumption of the paper
made real.

Like every :class:`~repro.index.base.SpatialIndex` backend, ordering uses
the exact squared distance ``dx*dx + dy*dy`` and answers carry its
``sqrt`` — IEEE-exact operations, bit-identical to the brute-force
oracle and the grid.  The batch entry points just loop: the tree has no
vectorized kernel, which is exactly what the query-engine benchmark uses
as its single-query baseline.

The tree stores ``(x, y, item)`` triples; ``item`` is any hashable id.
"""

from __future__ import annotations

import heapq
import math
from typing import Hashable, Sequence

import numpy as np

from ..obs import registry as _obs

__all__ = ["KdTree"]

# Shared label dict for the registry hot path (never mutated).
_KDTREE_SCALAR = {"backend": "kdtree", "mode": "scalar"}


class _Node:
    __slots__ = ("x", "y", "item", "axis", "left", "right", "min_x", "min_y", "max_x", "max_y")

    def __init__(self, x: float, y: float, item: Hashable, axis: int):
        self.x = x
        self.y = y
        self.item = item
        self.axis = axis
        self.left: _Node | None = None
        self.right: _Node | None = None
        # Bounding box of the subtree, filled in after construction.
        self.min_x = x
        self.min_y = y
        self.max_x = x
        self.max_y = y


class KdTree:
    """Static KD-tree over 2-D points with deterministic tie-breaking."""

    def __init__(self, points: Sequence[tuple[float, float, Hashable]]):
        items = [(float(x), float(y), item) for x, y, item in points]
        self._size = len(items)
        self.root = self._build(items, 0) if items else None

    @classmethod
    def from_arrays(cls, xy: np.ndarray, items: Sequence[Hashable]) -> "KdTree":
        """Array ingest; the tree itself stays node-based, so this just
        adapts (the KD-tree is never auto-picked for large databases)."""
        items_list = items.tolist() if isinstance(items, np.ndarray) else list(items)
        return cls(list(zip(xy[:, 0].tolist(), xy[:, 1].tolist(), items_list)))

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self, items: list[tuple[float, float, Hashable]], axis: int) -> _Node:
        items.sort(key=lambda p: p[axis])
        mid = len(items) // 2
        x, y, item = items[mid]
        node = _Node(x, y, item, axis)
        next_axis = 1 - axis
        if items[:mid]:
            node.left = self._build(items[:mid], next_axis)
        if items[mid + 1:]:
            node.right = self._build(items[mid + 1:], next_axis)
        for child in (node.left, node.right):
            if child is not None:
                node.min_x = min(node.min_x, child.min_x)
                node.min_y = min(node.min_y, child.min_y)
                node.max_x = max(node.max_x, child.max_x)
                node.max_y = max(node.max_y, child.max_y)
        return node

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def knn(self, x: float, y: float, k: int) -> list[tuple[float, Hashable]]:
        """The ``k`` nearest items, as ``(distance, item)`` sorted by
        ``(distance, item)``.

        Best-first traversal with a max-heap of current candidates; a
        subtree is pruned when its bounding box is farther than the
        current k-th candidate.
        """
        if self.root is None or k <= 0:
            return []
        reg = _obs._active
        if reg is not None:
            # knn_batch loops this method, so scalar counts cover both
            # entry points for the tree (no separate batch kernel).
            reg.inc("index_queries_total", 1.0, _KDTREE_SCALAR)
        # Max-heap via negated keys: worst current candidate on top.
        best: list[tuple[float, object, Hashable]] = []  # (-dist2, neg_item_key, item)
        stack = [self.root]
        while stack:
            node = stack.pop()
            # Prune with relative slack so boundary ties are never lost.
            if len(best) == k and self._box_distance_sq(node, x, y) > -best[0][0] * (1.0 + 1e-9) + 1e-300:
                continue
            ddx = node.x - x
            ddy = node.y - y
            d = ddx * ddx + ddy * ddy
            entry = (-d, _NegKey(node.item), node.item)
            if len(best) < k:
                heapq.heappush(best, entry)
            elif entry > best[0]:
                heapq.heapreplace(best, entry)
            # Visit the near side last (popped first).
            if node.axis == 0:
                near, far = (node.left, node.right) if x < node.x else (node.right, node.left)
            else:
                near, far = (node.left, node.right) if y < node.y else (node.right, node.left)
            if far is not None:
                stack.append(far)
            if near is not None:
                stack.append(near)
        result = [(-nd, item) for nd, _nk, item in best]
        result.sort(key=lambda pair: (pair[0], pair[1]))
        return [(math.sqrt(d2), item) for d2, item in result]

    def within_radius(self, x: float, y: float, radius: float) -> list[tuple[float, Hashable]]:
        """All items within ``radius`` (inclusive), sorted by (distance, item)."""
        if self.root is None or radius < 0.0:
            return []
        r2 = radius * radius * (1.0 + 1e-9) + 1e-300
        out: list[tuple[float, float, Hashable]] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if self._box_distance_sq(node, x, y) > r2:
                continue
            ddx = node.x - x
            ddy = node.y - y
            d2 = ddx * ddx + ddy * ddy
            d = math.sqrt(d2)
            if d <= radius:
                out.append((d2, d, node.item))
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)
        out.sort(key=lambda trip: (trip[0], trip[2]))
        return [(d, item) for _d2, d, item in out]

    # ------------------------------------------------------------------
    # Batched queries — the KD-tree has no vectorized kernel, so these
    # simply satisfy the SpatialIndex protocol by looping; prefer
    # GridIndex / BruteForceIndex when batch throughput matters.
    # ------------------------------------------------------------------
    def knn_batch(
        self, points: Sequence[tuple[float, float]], k: int
    ) -> list[list[tuple[float, Hashable]]]:
        return [self.knn(x, y, k) for x, y in points]

    def range_batch(
        self, points: Sequence[tuple[float, float]], radius: float
    ) -> list[list[tuple[float, Hashable]]]:
        return [self.within_radius(x, y, radius) for x, y in points]

    def range_batch_ids(
        self, points: Sequence[tuple[float, float]], radius: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """CSR ``(counts, items)`` form of :meth:`range_batch` (adapter
        over the looped kernel; GridIndex owns the vectorized one)."""
        from .base import csr_from_range_lists

        return csr_from_range_lists(self.range_batch(points, radius))

    @staticmethod
    def _box_distance_sq(node: _Node, x: float, y: float) -> float:
        dx = 0.0
        if x < node.min_x:
            dx = node.min_x - x
        elif x > node.max_x:
            dx = x - node.max_x
        dy = 0.0
        if y < node.min_y:
            dy = node.min_y - y
        elif y > node.max_y:
            dy = y - node.max_y
        return dx * dx + dy * dy


class _NegKey:
    """Wrapper inverting comparison order of item ids.

    The candidate heap keeps the *worst* entry on top.  With distances
    negated, larger tuples are better; for equal distances the smaller
    item id must win the tie, hence ids compare inverted.
    """

    __slots__ = ("key",)

    def __init__(self, key):
        self.key = key

    def __lt__(self, other: "_NegKey") -> bool:
        return other.key < self.key

    def __gt__(self, other: "_NegKey") -> bool:
        return other.key > self.key

    def __eq__(self, other) -> bool:
        return isinstance(other, _NegKey) and other.key == self.key
