"""Census-weighted query sampling (paper §5.2).

Queries are drawn with probability proportional to a population raster, so
urban tuples — whose Voronoi cells are tiny — are sampled far more often,
flattening the ``1/p(t)`` spread and shrinking estimator variance.

The price is that the tuple-selection probability becomes the *density
integral* over the Voronoi cell rather than a plain area:

    p(t) = Σ_cells  f_cell * area(V(t) ∩ cell)

computed here exactly by clipping the cell polygon against every raster
cell it overlaps.  Unbiasedness is preserved for any raster (even a wrong
one) because the same density is used for sampling and weighting.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..datasets.census import PopulationGrid
from ..geometry import ConvexPolygon, Disk, Point, polygon_disk_area
from .base import PointSampler, RestrictedSampler

__all__ = ["GridWeightedSampler"]


class GridWeightedSampler(PointSampler):
    """Sampler driven by a :class:`~repro.datasets.census.PopulationGrid`."""

    def __init__(self, grid: PopulationGrid):
        super().__init__(grid.region)
        self.grid = grid

    def sample(self, rng: np.random.Generator) -> Point:
        return self.grid.sample_point(rng)

    def sample_batch(self, rng: np.random.Generator, n: int) -> list[Point]:
        # Replays the single-draw stream exactly (see sample_points), so
        # batched census-weighted runs reproduce sequential ones.
        return self.grid.sample_points(rng, n)

    def density(self, p: Point) -> float:
        if not self.region.contains(p):
            return 0.0
        return self.grid.density(p)

    # ------------------------------------------------------------------
    def _overlapping_cells(self, poly: ConvexPolygon):
        """Indices of raster cells whose rectangle meets the polygon bbox."""
        bb = poly.bounding_rect()
        g = self.grid
        i0 = max(0, int((bb.x0 - g.region.x0) / g.cell_w))
        i1 = min(g.nx - 1, int((bb.x1 - g.region.x0) / g.cell_w))
        j0 = max(0, int((bb.y0 - g.region.y0) / g.cell_h))
        j1 = min(g.ny - 1, int((bb.y1 - g.region.y0) / g.cell_h))
        for i in range(i0, i1 + 1):
            for j in range(j0, j1 + 1):
                yield i, j

    def measure_polygon(self, poly: ConvexPolygon, disk: Optional[Disk] = None) -> float:
        if poly.is_empty():
            return 0.0
        total = 0.0
        for i, j in self._overlapping_cells(poly):
            w = self.grid.weights[i, j]
            if w <= 0.0:
                continue
            piece = poly.clip_rect(self.grid.cell_rect(i, j))
            if piece.is_empty():
                continue
            if disk is None:
                area = piece.area()
            else:
                area = polygon_disk_area(piece.vertices, disk.center, disk.radius)
            total += area * w
        return total / (self.grid.total * self.grid.cell_area())

    def restricted(
        self, polys: Sequence[ConvexPolygon], disk: Optional[Disk] = None
    ) -> RestrictedSampler:
        # Piece weights = density * area, *without* the disk (rejection in
        # RestrictedSampler accounts for it; see base.py).
        pieces: list[tuple[ConvexPolygon, float]] = []
        for poly in polys:
            if poly.is_empty():
                continue
            for i, j in self._overlapping_cells(poly):
                w = self.grid.weights[i, j]
                if w <= 0.0:
                    continue
                piece = poly.clip_rect(self.grid.cell_rect(i, j))
                if piece.is_empty():
                    continue
                pieces.append((piece, w * piece.area()))
        return RestrictedSampler(pieces, disk)
