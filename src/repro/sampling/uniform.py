"""Uniform query-point sampling (the paper's default strategy)."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..geometry import ConvexPolygon, Disk, Point, polygon_disk_area
from .base import PointSampler, RestrictedSampler

__all__ = ["UniformSampler"]


class UniformSampler(PointSampler):
    """``f(q) = 1 / |V0|`` over the bounding region.

    The measure of a Voronoi cell is then simply ``area / |V0|`` — the
    familiar form of the paper's Eq. 1.
    """

    def sample(self, rng: np.random.Generator) -> Point:
        return self.region.sample(rng)

    def sample_batch(self, rng: np.random.Generator, n: int) -> list[Point]:
        # One (n, 2) draw; C-order matches n sequential x,y draws, so the
        # batch consumes the generator stream exactly like a loop would.
        u = rng.random((n, 2))
        r = self.region
        w = r.width
        h = r.height
        return [Point(r.x0 + ux * w, r.y0 + uy * h) for ux, uy in u]

    def density(self, p: Point) -> float:
        return 1.0 / self.region.area if self.region.contains(p) else 0.0

    def measure_polygon(self, poly: ConvexPolygon, disk: Optional[Disk] = None) -> float:
        # Polygons may extend beyond the region (cells of tuples outside a
        # sub-region base); the density is zero there, so clip first.
        poly = poly.clip_rect(self.region)
        if poly.is_empty():
            return 0.0
        if disk is None:
            area = poly.area()
        else:
            area = polygon_disk_area(poly.vertices, disk.center, disk.radius)
        return area / self.region.area

    def restricted(
        self, polys: Sequence[ConvexPolygon], disk: Optional[Disk] = None
    ) -> RestrictedSampler:
        # Weights deliberately ignore the disk: the RestrictedSampler
        # handles it by rejection, which keeps the conditioned density
        # proportional to f on every piece ∩ disk (see base.py).
        clipped = (p.clip_rect(self.region) for p in polys)
        pieces = [(p, p.area()) for p in clipped if not p.is_empty()]
        return RestrictedSampler(pieces, disk)
