"""Query-point samplers: uniform and census-weighted (paper §5.2)."""

from .base import PointSampler, RestrictedSampler
from .uniform import UniformSampler
from .weighted import GridWeightedSampler

__all__ = ["PointSampler", "RestrictedSampler", "UniformSampler", "GridWeightedSampler"]
