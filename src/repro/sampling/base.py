"""Query-point sampling abstractions.

An estimator draws query locations from a density ``f`` over the bounding
region.  Unbiasedness (paper Eq. 1) holds for *any* ``f`` that is positive
everywhere — what changes is the variance (§5.2).  The estimator therefore
needs, for any tuple it samples, the ``f``-measure of that tuple's
(top-h) Voronoi cell:

    p(t) = ∫_{V_h(t)} f(q) dq

:class:`PointSampler` packages the three required capabilities: drawing
points, measuring polygon unions exactly, and re-sampling restricted to a
polygon union (used by the Monte-Carlo bound finish of §3.2.4, which must
sample from ``f`` *conditioned on* the upper-bound region).
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

import numpy as np

from ..geometry import ConvexPolygon, Disk, Point, Rect

__all__ = ["PointSampler", "RestrictedSampler"]


class PointSampler(abc.ABC):
    """Samples query locations from a fixed density over ``region``."""

    def __init__(self, region: Rect):
        self.region = region

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> Point:
        """Draw one location from the density."""

    def sample_batch(self, rng: np.random.Generator, n: int) -> list[Point]:
        """Draw ``n`` locations at once (feeds the estimators' batched
        query prefetch).  Implementations MUST consume the generator
        stream exactly like ``n`` single :meth:`sample` draws — the
        batched estimators' bit-identity guarantee (a sample-bound
        batched run reproduces the sequential run) rests on it.  The
        fallback loops :meth:`sample`; overrides may vectorize only
        when the vectorized layout provably replays the same stream
        (see :class:`~repro.sampling.uniform.UniformSampler`)."""
        return [self.sample(rng) for _ in range(n)]

    @abc.abstractmethod
    def density(self, p: Point) -> float:
        """The density ``f(p)`` (integrates to 1 over the region)."""

    @abc.abstractmethod
    def measure_polygon(self, poly: ConvexPolygon, disk: Optional[Disk] = None) -> float:
        """``∫_poly f`` — exactly; optionally intersected with ``disk``
        (the §5.3 max-radius constraint)."""

    def measure_region(
        self, polys: Sequence[ConvexPolygon], disk: Optional[Disk] = None
    ) -> float:
        """Measure of a union of interior-disjoint convex pieces."""
        return sum(self.measure_polygon(p, disk) for p in polys)

    @abc.abstractmethod
    def restricted(
        self, polys: Sequence[ConvexPolygon], disk: Optional[Disk] = None
    ) -> "RestrictedSampler":
        """A sampler for ``f`` conditioned on the union of ``polys``
        (optionally further intersected with ``disk``)."""


class RestrictedSampler:
    """Draws from a density restricted to a union of weighted convex pieces.

    ``pieces`` are ``(polygon, weight)`` with weights proportional to the
    conditioned probability of each piece; sampling picks a piece by
    weight, then a uniform point inside (the density is constant within
    each piece by construction), rejecting outside ``disk`` when given.
    """

    def __init__(self, pieces: Sequence[tuple[ConvexPolygon, float]], disk: Optional[Disk] = None):
        self.pieces = [(p, w) for p, w in pieces if w > 0.0 and not p.is_empty()]
        self.disk = disk
        self.total = sum(w for _p, w in self.pieces)
        if self.total <= 0.0:
            raise ValueError("restricted sampler over a zero-measure region")
        self._cum = np.cumsum([w for _p, w in self.pieces])

    def sample(self, rng: np.random.Generator, max_tries: int = 10_000) -> Point:
        for _ in range(max_tries):
            u = rng.random() * self.total
            idx = int(np.searchsorted(self._cum, u, side="right"))
            idx = min(idx, len(self.pieces) - 1)
            p = self.pieces[idx][0].sample(rng)
            if self.disk is None or self.disk.contains_point(p):
                return p
        raise RuntimeError("rejection sampling failed; disk-region overlap too thin")
