"""repro.resilience — deterministic faults, retries, and recovery.

The robustness layer: a seeded, JSON-round-tripping fault model for the
simulated LBS connection (:class:`FaultSpec`), capped-exponential-backoff
retries with deterministic jitter (:class:`RetryPolicy`), and the
:class:`ResilientInterface` wrapper that threads both through any
:class:`~repro.lbs.KnnInterface` without touching a single estimation
RNG.  Crash-recovering parallel execution builds on the same pieces in
:mod:`repro.parallel`.
"""

from .faults import (
    FAULT_KINDS,
    AnswerDropped,
    FaultSpec,
    FaultState,
    RetriesExhausted,
    ServiceRateLimited,
    ServiceTimeout,
    TransientServiceError,
    fault_error,
)
from .retry import RetryPolicy
from .wrapper import ResilientInterface

__all__ = [
    "FAULT_KINDS",
    "AnswerDropped",
    "FaultSpec",
    "FaultState",
    "RetriesExhausted",
    "RetryPolicy",
    "ResilientInterface",
    "ServiceRateLimited",
    "ServiceTimeout",
    "TransientServiceError",
    "fault_error",
]
