"""Retry with capped exponential backoff and deterministic jitter.

A :class:`RetryPolicy` is the client half of the fault story: how many
times a query is attempted, how long the waits between attempts grow,
and whether faulted attempts draw query budget.  Like everything else in
the spec surface it is frozen, JSON-round-tripping, and deterministic —
the backoff jitter comes from its own counter-based substream, so a
retried run waits (and accounts) exactly the same seconds every time it
is replayed.

By default backoff is *simulated*: delays are computed, recorded in the
``retry_backoff_seconds`` histogram, and accumulated in the engine
state, but nothing sleeps — estimation work is CPU-bound and the paper's
rate limits are modeled by the :class:`~repro.lbs.QueryBudget`, not by
wall-clock.  Set ``sleep=True`` to physically wait (e.g. when pacing a
live service).

Budget semantics for retried queries
------------------------------------
``charge_faults`` decides whether a faulted attempt consumes budget:

* ``False`` (default) — only *answered* queries draw budget, the way
  the paper counts query cost (§2.1); a run that retries through its
  faults spends exactly what the fault-free run spends, keeping the
  two bit-identical in query accounting too.
* ``True`` — the service's rate limiter counts failed calls as well
  (many real ones do); every faulted attempt spends 1, and
  :class:`~repro.lbs.BudgetExhausted` can fire mid-retry.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace

from .faults import _uniform

__all__ = ["RetryPolicy"]

#: Salt separating the jitter substream from the fault substream when a
#: caller reuses one seed for both specs.
_JITTER_SALT = 0xB0FFC0FFEE


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    Attributes
    ----------
    max_attempts:
        Total attempts per query (first try included).  When every
        attempt faults, :class:`~repro.resilience.RetriesExhausted`
        is raised.
    base_delay / multiplier / max_delay:
        Backoff ``min(max_delay, base_delay * multiplier**(n-1))``
        seconds before retry ``n``.
    jitter:
        Fractional spread: each delay is scaled by a deterministic
        factor in ``[1 - jitter, 1 + jitter]`` drawn from the policy's
        own counter-based substream (decorrelates retry storms without
        touching any estimation RNG).
    seed:
        Seeds the jitter substream.
    charge_faults:
        Budget semantics for retried queries (see module docstring).
    sleep:
        Physically ``time.sleep`` each backoff.  Off by default —
        delays are still computed, recorded, and serialized.
    """

    max_attempts: int = 4
    base_delay: float = 0.1
    multiplier: float = 2.0
    max_delay: float = 10.0
    jitter: float = 0.1
    seed: int = 0
    charge_faults: bool = False
    sleep: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0.0 or self.max_delay < 0.0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1 (backoff cannot shrink)")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay(self, retry_number: int, counter: int) -> float:
        """Seconds to back off before retry ``retry_number`` (1-based).

        ``counter`` indexes the jitter substream — the connection's
        lifetime retry count, so replaying a run replays its delays.
        """
        if retry_number < 1:
            raise ValueError("retry_number is 1-based")
        d = self.base_delay * (self.multiplier ** (retry_number - 1))
        d = min(d, self.max_delay)
        if self.jitter > 0.0:
            u = _uniform(self.seed ^ _JITTER_SALT, counter)
            d *= 1.0 + self.jitter * (2.0 * u - 1.0)
        return d

    def replace(self, **changes) -> "RetryPolicy":
        """A copy with the given fields changed (policies are frozen)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "max_attempts": self.max_attempts,
            "base_delay": self.base_delay,
            "multiplier": self.multiplier,
            "max_delay": self.max_delay,
            "jitter": self.jitter,
            "seed": self.seed,
            "charge_faults": self.charge_faults,
            "sleep": self.sleep,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RetryPolicy":
        return cls(
            max_attempts=data.get("max_attempts", 4),
            base_delay=data.get("base_delay", 0.1),
            multiplier=data.get("multiplier", 2.0),
            max_delay=data.get("max_delay", 10.0),
            jitter=data.get("jitter", 0.1),
            seed=data.get("seed", 0),
            charge_faults=data.get("charge_faults", False),
            sleep=data.get("sleep", False),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RetryPolicy":
        return cls.from_dict(json.loads(text))
