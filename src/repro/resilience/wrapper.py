"""The resilient interface wrapper: faults in, retries around.

:class:`ResilientInterface` wraps any
:class:`~repro.lbs.KnnInterface`-shaped object and threads a
:class:`~repro.resilience.FaultSpec` (deterministic injected faults) and
a :class:`~repro.resilience.RetryPolicy` (capped exponential backoff)
through both the scalar and batch query paths.  Everything else — budget,
caches, ranking, engine state, ``filtered()`` views — delegates to the
wrapped interface, so drivers, histories, and sessions run against it
unchanged.

Invariants the wrapper maintains:

* **Answers are never altered.**  A fault delays or denies an attempt;
  the answer that eventually comes back is exactly the wrapped
  interface's.  A run that retries through all its faults is therefore
  bit-identical (estimate, trace, and — with the default
  ``charge_faults=False`` — query accounting) to the fault-free run.
* **Cache hits are never faulted.**  A hit is not a network call
  (§2.1: the rate limit is on network calls), so the fault stream only
  ticks on genuine service attempts — which also keeps the stream
  position independent of *when* repeats happen.
* **Batches behave like loops.**  With faults configured, a batch is
  answered point by point so every attempt meets the same fault stream
  a sequential loop would (the wrapped interface's loop-vs-batch answer
  identity is regression-tested); with ``fault=None`` the wrapper
  passes batches straight through to the vectorized kernels.
* **Pause/resume replays the stream.**  The attempt counter and tallies
  serialize under the engine state's ``"resilience"`` key (driver state
  v4); a resumed run faults at exactly the attempts the uninterrupted
  run would.
"""

from __future__ import annotations

import time
from typing import Iterable, Optional

from ..geometry import Point
from ..obs import registry as _obs
from .faults import FaultSpec, FaultState, RetriesExhausted, fault_error
from .retry import RetryPolicy

__all__ = ["ResilientInterface"]


class ResilientInterface:
    """A :class:`~repro.lbs.KnnInterface` behind a lossy connection.

    ``fault=None`` with a retry policy is legal (an always-clean
    connection never retries, but the policy still serializes and
    resumes); ``retry=None`` with faults means the first fault of a
    query propagates as its :class:`TransientServiceError` — no second
    attempt.
    """

    def __init__(
        self,
        inner,
        *,
        fault: Optional[FaultSpec] = None,
        retry: Optional[RetryPolicy] = None,
        state: Optional[FaultState] = None,
    ):
        self.inner = inner
        self.fault = fault
        self.retry = retry
        self.state = state if state is not None else FaultState()
        self._obs_labels = {"kind": "lr" if inner.returns_location else "lnr"}

    # -- delegation ----------------------------------------------------
    def __getattr__(self, name):
        # Everything not overridden reads through to the wrapped
        # interface (budget, k, region, cache_stats, nearest_first, ...).
        if name == "inner":
            raise AttributeError(name)
        return getattr(self.inner, name)

    # -- the fault gate ------------------------------------------------
    def _gate(self) -> None:
        """Run one query's attempts through the fault stream.

        Returns when an attempt comes up clean (the caller then issues
        the real query); raises the transient error (no retry policy),
        :class:`RetriesExhausted` (every allowed attempt faulted), or
        :class:`~repro.lbs.BudgetExhausted` (``charge_faults`` and the
        budget ran dry mid-retry).
        """
        fault, retry, st = self.fault, self.retry, self.state
        attempts = 0
        while True:
            kind = st.next_fault(fault)
            attempts += 1
            if kind is None:
                return
            reg = _obs._active
            if reg is not None:
                reg.inc("faults_injected_total", 1.0, {"kind": kind})
            if retry is None:
                raise fault_error(kind, attempts)
            if retry.charge_faults:
                # The service's rate limiter counts the failed call.
                # Spend first (it raises BudgetExhausted *before*
                # incrementing), then mirror the spend into the counter
                # exactly like the wrapped interface's own spend site.
                self.inner.budget.spend(1)
                if reg is not None:
                    reg.inc("interface_queries_total", 1.0, self._obs_labels)
            if attempts >= retry.max_attempts:
                raise RetriesExhausted(kind, attempts)
            delay = retry.delay(attempts, st.retries)
            st.retries += 1
            st.backoff_seconds += delay
            if reg is not None:
                reg.inc("retries_total")
                reg.observe("retry_backoff_seconds", delay)
            if retry.sleep:
                time.sleep(delay)

    # -- query paths ---------------------------------------------------
    def query(self, point):
        """One kNN query through the lossy connection.

        Cache hits bypass the fault gate entirely (no network call);
        genuine calls pass the gate first, then the wrapped interface
        answers exactly as it would unwrapped.
        """
        if self.fault is None:
            return self.inner.query(point)
        point = Point(*point)
        if self.inner.cached_answer(point) is None:
            self._gate()
        return self.inner.query(point)

    def query_batch(self, points: Iterable[Point]) -> list:
        """A batch of queries, each attempt metered by the fault stream.

        With faults configured the batch degrades to a per-point loop —
        deliberately: each genuine call must consume exactly one fault
        draw in order, the way a sequential client would experience the
        connection.  Answer values are unchanged either way (the wrapped
        interface's loop and batch kernels are bit-identical), and
        budget-exhaustion behaves like the sequential loop the batch
        contract is defined against.
        """
        if self.fault is None:
            return self.inner.query_batch(points)
        return [self.query(p) for p in points]

    def affordable_prefix(self, points: Iterable[Point]) -> int:
        # Fault-unaware by design: with charge_faults=True a faulted
        # attempt can consume budget the prefix computation did not
        # reserve, in which case query/query_batch raise BudgetExhausted
        # exactly as a sequential loop hitting the limit would.
        return self.inner.affordable_prefix(points)

    # -- views ---------------------------------------------------------
    def filtered(self, predicate) -> "ResilientInterface":
        """A pass-through-condition view on the *same* lossy connection.

        Like the shared :class:`~repro.lbs.QueryBudget`, the fault
        stream is shared: a filtered call to the same service rides the
        same network and the same rate limiter.
        """
        return ResilientInterface(
            self.inner.filtered(predicate),
            fault=self.fault,
            retry=self.retry,
            state=self.state,
        )

    # -- state ---------------------------------------------------------
    def engine_state(self) -> dict:
        state = self.inner.engine_state()
        state["resilience"] = self.state.to_dict()
        return state

    def restore_engine_state(self, state: dict) -> None:
        if "resilience" not in state:
            raise ValueError(
                "engine state has no 'resilience' section but the spec "
                "configures fault injection or retries; this snapshot was "
                "written by an incompatible release — rerun from the spec "
                "instead"
            )
        self.inner.restore_engine_state(
            {k: v for k, v in state.items() if k != "resilience"}
        )
        self.state.restore(state["resilience"])

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResilientInterface({self.inner!r}, fault={self.fault!r}, "
            f"retry={self.retry!r}, attempts={self.state.attempts})"
        )
