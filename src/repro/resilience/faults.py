"""Deterministic fault injection for simulated LBS interfaces.

The paper's estimators ran against *live* services (WeChat, Sina Weibo,
Google Maps) that time out, rate-limit, and drop queries.  Our simulated
interfaces never fail — which means nothing downstream (retry loops,
budget semantics under throttling, parallel-pool recovery) can be
exercised, let alone tested deterministically.  :class:`FaultSpec`
closes that gap: a frozen, JSON-round-tripping description of a lossy
service connection whose faults are drawn from a dedicated counter-based
RNG substream, so

* the *same spec + same query sequence* always faults at the same
  attempts (a faulty run is exactly reproducible, pause/resume
  included — the attempt counter serializes with the engine state);
* the fault stream is completely separate from every estimation RNG —
  answers, sample points, and oracle draws are untouched, so a run that
  retries through its faults produces an estimate **bit-identical** to
  the fault-free run of the same spec;
* with no :class:`FaultSpec` configured nothing is wrapped and nothing
  changes, bit for bit.

Fault kinds mirror what real LBS front doors do (§2.1's rate limits):

* ``"timeout"`` — the call never completes (:class:`ServiceTimeout`);
* ``"rate_limit"`` — the service throttles the caller
  (:class:`ServiceRateLimited`);
* ``"drop"`` — the call goes through but the answer is lost in transit
  (:class:`AnswerDropped`).

All three are :class:`TransientServiceError` subclasses — a
:class:`~repro.resilience.RetryPolicy` treats them uniformly; only the
metric label (``faults_injected_total{kind}``) and the exception type
differ.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Optional

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultState",
    "TransientServiceError",
    "ServiceTimeout",
    "ServiceRateLimited",
    "AnswerDropped",
    "RetriesExhausted",
    "fault_error",
]

#: Injectable fault kinds, in cumulative-probability order.
FAULT_KINDS = ("timeout", "rate_limit", "drop")

_M64 = (1 << 64) - 1


def _mix64(z: int) -> int:
    """One splitmix64 mixing round over plain Python ints (no NumPy —
    this module sits below the lbs import graph)."""
    z = (z + 0x9E3779B97F4A7C15) & _M64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _M64
    return z ^ (z >> 31)


def _uniform(seed: int, counter: int) -> float:
    """Deterministic uniform in [0, 1) for one (seed, counter) cell."""
    h = _mix64(_mix64(seed & _M64) ^ (counter & _M64))
    return (h >> 11) * (2.0 ** -53)


# ----------------------------------------------------------------------
# Exceptions
# ----------------------------------------------------------------------
class TransientServiceError(RuntimeError):
    """A fault the service may not repeat — retrying can succeed."""

    kind = "transient"


class ServiceTimeout(TransientServiceError):
    """The simulated service call timed out."""

    kind = "timeout"


class ServiceRateLimited(TransientServiceError):
    """The simulated service throttled the caller."""

    kind = "rate_limit"


class AnswerDropped(TransientServiceError):
    """The simulated answer was lost in transit."""

    kind = "drop"


_ERRORS = {
    "timeout": ServiceTimeout,
    "rate_limit": ServiceRateLimited,
    "drop": AnswerDropped,
}


def fault_error(kind: str, attempt: int) -> TransientServiceError:
    """The exception instance for one injected fault."""
    return _ERRORS[kind](f"injected {kind} fault (attempt {attempt})")


class RetriesExhausted(RuntimeError):
    """Every attempt a :class:`~repro.resilience.RetryPolicy` allows
    faulted; the query was given up on."""

    def __init__(self, kind: str, attempts: int):
        super().__init__(
            f"query gave up after {attempts} attempts (last fault: {kind})"
        )
        self.kind = kind
        self.attempts = attempts


# ----------------------------------------------------------------------
# The spec
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultSpec:
    """A frozen, seeded description of a lossy service connection.

    Attributes
    ----------
    timeout_rate / rate_limit_rate / drop_rate:
        Per-attempt probabilities of each fault kind (their sum must be
        < 1, or no query could ever succeed).
    seed:
        Seeds the dedicated fault substream.  Faults are drawn
        counter-based — attempt ``i`` of the connection's lifetime hashes
        ``(seed, i)`` — so the stream is independent of every estimation
        RNG and reproducible across pause/resume (the counter is part of
        the engine state).
    max_faults:
        Optional cap on the total number of faults injected; afterwards
        the connection behaves perfectly (the stream still ticks, so
        enabling the cap never shifts later draws).  Handy for tests
        that must terminate.
    """

    timeout_rate: float = 0.0
    rate_limit_rate: float = 0.0
    drop_rate: float = 0.0
    seed: int = 0
    max_faults: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("timeout_rate", "rate_limit_rate", "drop_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.total_rate >= 1.0 and self.max_faults is None:
            raise ValueError(
                "fault rates sum to >= 1: every attempt would fault and no "
                "query could ever succeed; lower the rates or set max_faults"
            )
        if self.max_faults is not None and self.max_faults < 0:
            raise ValueError("max_faults must be non-negative")

    @property
    def total_rate(self) -> float:
        return self.timeout_rate + self.rate_limit_rate + self.drop_rate

    def draw(self, attempt: int) -> Optional[str]:
        """The fault kind injected at stream position ``attempt``, or
        ``None`` for a clean slot.  Pure: same (spec, attempt) → same
        answer, always."""
        u = _uniform(self.seed, attempt)
        edge = self.timeout_rate
        if u < edge:
            return "timeout"
        edge += self.rate_limit_rate
        if u < edge:
            return "rate_limit"
        edge += self.drop_rate
        if u < edge:
            return "drop"
        return None

    def replace(self, **changes) -> "FaultSpec":
        """A copy with the given fields changed (specs are frozen)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "timeout_rate": self.timeout_rate,
            "rate_limit_rate": self.rate_limit_rate,
            "drop_rate": self.drop_rate,
            "seed": self.seed,
            "max_faults": self.max_faults,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        return cls(
            timeout_rate=data.get("timeout_rate", 0.0),
            rate_limit_rate=data.get("rate_limit_rate", 0.0),
            drop_rate=data.get("drop_rate", 0.0),
            seed=data.get("seed", 0),
            max_faults=data.get("max_faults"),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultSpec":
        return cls.from_dict(json.loads(text))


# ----------------------------------------------------------------------
# The mutable half
# ----------------------------------------------------------------------
class FaultState:
    """Position and tallies of one connection's fault stream.

    Shared across :meth:`~repro.resilience.ResilientInterface.filtered`
    views exactly like :class:`~repro.lbs.QueryBudget` — a narrowed view
    of the same service rides the same flaky connection.  Serializes
    into the engine state so a resumed run replays the stream from the
    exact attempt it paused at.
    """

    __slots__ = ("attempts", "injected", "retries", "backoff_seconds")

    def __init__(self) -> None:
        self.attempts = 0
        self.injected = {kind: 0 for kind in FAULT_KINDS}
        self.retries = 0
        self.backoff_seconds = 0.0

    @property
    def faults_injected(self) -> int:
        return sum(self.injected.values())

    def next_fault(self, spec: FaultSpec) -> Optional[str]:
        """Advance the stream one attempt; the injected kind or ``None``."""
        i = self.attempts
        self.attempts += 1
        kind = spec.draw(i)
        if kind is None:
            return None
        if spec.max_faults is not None and self.faults_injected >= spec.max_faults:
            return None
        self.injected[kind] += 1
        return kind

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "attempts": self.attempts,
            "injected": dict(self.injected),
            "retries": self.retries,
            "backoff_seconds": self.backoff_seconds,
        }

    def restore(self, state: dict) -> None:
        missing = [k for k in ("attempts", "injected") if k not in state]
        if missing:
            raise ValueError(
                "resilience state is missing "
                + ", ".join(repr(k) for k in missing)
                + "; this snapshot was written by an incompatible release — "
                "rerun from the spec instead"
            )
        self.attempts = int(state["attempts"])
        self.injected = {kind: 0 for kind in FAULT_KINDS}
        for kind, count in state["injected"].items():
            self.injected[kind] = int(count)
        self.retries = int(state.get("retries", 0))
        self.backoff_seconds = float(state.get("backoff_seconds", 0.0))
