"""repro.obs — unified metrics, tracing & run telemetry.

The estimation stack's observability layer, in three pieces:

* :class:`MetricsRegistry` — process-wide counters / gauges /
  histograms with bounded label sets, Prometheus text exposition
  (:meth:`~MetricsRegistry.render_prometheus`) and JSON snapshots
  (:meth:`~MetricsRegistry.to_dict`) that merge associatively across
  processes;
* :func:`span` — lightweight tracing spans feeding the
  ``span_seconds`` histogram and a bounded trace buffer;
* :class:`RunTelemetry` — per-run cost accounting attached to
  :class:`~repro.stats.result.Checkpoint` /
  :class:`~repro.stats.result.EstimationResult` and persisted through
  pause/resume state.

Instrumentation is **off by default** and measured-zero-cost while off:
every call site guards on :func:`active` returning ``None``.  Turn it
on process-wide with :func:`enable`, or scoped with
:func:`collecting`::

    from repro import obs

    with obs.collecting() as reg:
        result = session.count().run(MaxQueries(2000))
    print(reg.render_prometheus())

Parallel fan-outs (``run_many_parallel``, ``parallel_knn_batch``, the
experiment harness's fork waves) propagate automatically: when the
parent has a registry active, each worker run collects into a fresh
registry whose snapshot rides the existing result queue and merges
parent-side — one fan-out reads as one coherent metric stream, with a
failed worker's partial counts labelled ``outcome="failed"``.
"""

from .registry import (
    COUNTER,
    DEFAULT_BUCKETS,
    GAUGE,
    HISTOGRAM,
    OVERFLOW_LABEL_VALUE,
    SNAPSHOT_FORMAT,
    MetricsRegistry,
    active,
    collecting,
    disable,
    enable,
    enabled,
    inc,
    observe,
    paused,
    set_gauge,
)
from .telemetry import RunTelemetry
from .tracing import Span, span

__all__ = [
    "COUNTER",
    "GAUGE",
    "HISTOGRAM",
    "DEFAULT_BUCKETS",
    "OVERFLOW_LABEL_VALUE",
    "SNAPSHOT_FORMAT",
    "MetricsRegistry",
    "RunTelemetry",
    "Span",
    "span",
    "active",
    "enabled",
    "enable",
    "disable",
    "collecting",
    "paused",
    "inc",
    "set_gauge",
    "observe",
]
