"""Lightweight tracing spans on top of the metrics registry.

A span measures one timed block::

    with obs.span("index_build", backend="grid"):
        index = GridIndex.from_arrays(...)

When no registry is active, :func:`span` returns a shared no-op context
manager — no clock is read and nothing is allocated, so disabled spans
cost one function call.  When active, the span's duration lands in the
``span_seconds`` histogram (labelled ``span=<name>`` plus any keyword
labels) and a record is appended to the registry's bounded span trace
(``registry.spans``), which rides along in ``to_dict()`` snapshots.
"""

from __future__ import annotations

import time

from . import registry as _registry

__all__ = ["span", "Span"]


class _NullSpan:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class Span:
    __slots__ = ("_registry", "name", "labels", "_t0", "_wall")

    def __init__(self, registry, name: str, labels: dict) -> None:
        self._registry = registry
        self.name = name
        self.labels = labels

    def __enter__(self):
        self._wall = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        seconds = time.perf_counter() - self._t0
        labels = {"span": self.name}
        labels.update(self.labels)
        self._registry.observe("span_seconds", seconds, labels)
        self._registry.add_span(
            {
                "name": self.name,
                "labels": dict(self.labels),
                "start": self._wall,
                "seconds": seconds,
            }
        )
        return False


def span(name: str, **labels: str):
    """A context manager timing one block; no-op when obs is disabled."""
    reg = _registry._active
    if reg is None:
        return _NULL_SPAN
    return Span(reg, name, labels)
