"""Process-wide metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` holds every metric series for a process (or
for one worker run, when collecting per-run).  Series are keyed by
metric name plus a small sorted label tuple; the number of distinct
label sets per metric is bounded (``label_limit``) so a buggy call site
cannot grow memory without bound — overflow series collapse onto a
single ``__other__`` sentinel label set.

The module also owns the process-wide *active registry* slot.  All
instrumentation in the library is guarded by::

    reg = obs.active()
    if reg is not None:
        reg.inc("interface_queries_total", 1.0, {"kind": "lr"})

so the disabled default costs one function call and one ``None`` check
per guarded block (measured ≤2% on the grid ``knn_batch`` benchmark —
enforced in CI by ``benchmarks/bench_scaling.py``).  Instrumentation
observes and never branches: every estimate is bit-identical whether a
registry is active or not.

Snapshots (:meth:`MetricsRegistry.to_dict`) are plain JSON documents and
merge associatively (:meth:`MetricsRegistry.merge`): counters and
histograms add, gauges keep the last write.  Worker processes collect
into fresh registries and ship one snapshot each back over the result
queue; the parent merges them, so a fan-out run reads as one coherent
metric stream.
"""

from __future__ import annotations

import re
from collections import deque
from contextlib import contextmanager
from typing import Dict, Iterator, Mapping, Optional, Tuple

__all__ = [
    "COUNTER",
    "GAUGE",
    "HISTOGRAM",
    "DEFAULT_BUCKETS",
    "OVERFLOW_LABEL_VALUE",
    "SNAPSHOT_FORMAT",
    "MetricsRegistry",
    "active",
    "enabled",
    "enable",
    "disable",
    "collecting",
    "paused",
    "inc",
    "set_gauge",
    "observe",
]

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

#: Default histogram bucket upper bounds, in seconds (spans are the main
#: histogram consumer).  A final implicit +Inf bucket is always present.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Label value that absorbs series beyond a metric's ``label_limit``.
OVERFLOW_LABEL_VALUE = "__other__"

#: Version tag on every snapshot dict; bumped when the shape changes.
SNAPSHOT_FORMAT = 1

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[Mapping[str, str]]) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Histogram:
    """One histogram series: cumulative bucket counts + sum + count."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        i = 0
        bounds = self.bounds
        while i < len(bounds) and value > bounds[i]:
            i += 1
        self.counts[i] += 1
        self.sum += value
        self.count += 1

    def add(self, counts, total: float, count: int) -> None:
        if len(counts) != len(self.counts):
            raise ValueError(
                f"histogram bucket mismatch: {len(counts)} buckets vs {len(self.counts)}"
            )
        for i, c in enumerate(counts):
            self.counts[i] += int(c)
        self.sum += float(total)
        self.count += int(count)


class _Metric:
    __slots__ = ("name", "type", "series", "buckets", "overflowed")

    def __init__(self, name: str, mtype: str, buckets: Tuple[float, ...] = DEFAULT_BUCKETS):
        self.name = name
        self.type = mtype
        self.buckets = buckets
        self.series: Dict[LabelKey, object] = {}
        self.overflowed = False


class MetricsRegistry:
    """Typed metric store with bounded per-metric label cardinality.

    Metric names must match the Prometheus grammar
    (``[a-zA-Z_:][a-zA-Z0-9_:]*``); a name keeps the type it was first
    used with, and using it as a different type raises ``ValueError``.
    """

    __slots__ = ("_metrics", "label_limit", "spans", "span_limit")

    def __init__(self, label_limit: int = 64, span_limit: int = 256) -> None:
        if label_limit < 1:
            raise ValueError("label_limit must be >= 1")
        self._metrics: Dict[str, _Metric] = {}
        self.label_limit = label_limit
        self.span_limit = span_limit
        #: Bounded trace of completed spans, oldest dropped first.
        self.spans: deque = deque(maxlen=span_limit)

    # -- write paths ---------------------------------------------------

    def _metric(self, name: str, mtype: str, buckets: Tuple[float, ...]) -> _Metric:
        metric = self._metrics.get(name)
        if metric is None:
            if not _NAME_RE.match(name):
                raise ValueError(f"invalid metric name {name!r}")
            metric = _Metric(name, mtype, buckets)
            self._metrics[name] = metric
        elif metric.type != mtype:
            raise ValueError(
                f"metric {name!r} is a {metric.type}, not a {mtype}"
            )
        return metric

    def _series_key(self, metric: _Metric, labels: Optional[Mapping[str, str]]) -> LabelKey:
        key = _label_key(labels)
        if key in metric.series or len(metric.series) < self.label_limit:
            return key
        # Cardinality bound hit: collapse onto the sentinel label set.
        metric.overflowed = True
        return tuple((k, OVERFLOW_LABEL_VALUE) for k, _ in key)

    def inc(self, name: str, value: float = 1.0,
            labels: Optional[Mapping[str, str]] = None) -> None:
        """Add ``value`` (must be >= 0) to a counter series."""
        if value < 0:
            raise ValueError(f"counter {name!r} cannot decrease (value={value})")
        metric = self._metric(name, COUNTER, DEFAULT_BUCKETS)
        key = self._series_key(metric, labels)
        metric.series[key] = metric.series.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float,
                  labels: Optional[Mapping[str, str]] = None) -> None:
        """Set a gauge series to ``value`` (last write wins)."""
        metric = self._metric(name, GAUGE, DEFAULT_BUCKETS)
        metric.series[self._series_key(metric, labels)] = float(value)

    def observe(self, name: str, value: float,
                labels: Optional[Mapping[str, str]] = None,
                buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        """Record one observation into a histogram series."""
        metric = self._metric(name, HISTOGRAM, buckets)
        key = self._series_key(metric, labels)
        hist = metric.series.get(key)
        if hist is None:
            hist = metric.series[key] = _Histogram(metric.buckets)
        hist.observe(float(value))

    def add_span(self, record: dict) -> None:
        self.spans.append(record)

    # -- read paths ----------------------------------------------------

    def get(self, name: str, labels: Optional[Mapping[str, str]] = None) -> Optional[float]:
        """Value of one counter/gauge series, or ``None`` if absent."""
        metric = self._metrics.get(name)
        if metric is None or metric.type == HISTOGRAM:
            return None
        value = metric.series.get(_label_key(labels))
        return None if value is None else float(value)

    def total(self, name: str) -> float:
        """Sum of a counter (or gauge) across every label set; 0.0 if absent."""
        metric = self._metrics.get(name)
        if metric is None:
            return 0.0
        if metric.type == HISTOGRAM:
            return float(sum(h.count for h in metric.series.values()))
        return float(sum(metric.series.values()))

    def series(self, name: str) -> Dict[LabelKey, float]:
        """All counter/gauge series of one metric as ``{label_key: value}``."""
        metric = self._metrics.get(name)
        if metric is None or metric.type == HISTOGRAM:
            return {}
        return {k: float(v) for k, v in metric.series.items()}

    def names(self) -> Iterator[str]:
        return iter(sorted(self._metrics))

    # -- snapshot / merge ----------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe snapshot of every series (and the span trace)."""
        metrics = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            series = []
            for key in sorted(metric.series):
                entry: dict = {"labels": {k: v for k, v in key}}
                value = metric.series[key]
                if metric.type == HISTOGRAM:
                    entry["counts"] = list(value.counts)
                    entry["sum"] = value.sum
                    entry["count"] = value.count
                else:
                    entry["value"] = value
                series.append(entry)
            out = {"type": metric.type, "series": series}
            if metric.type == HISTOGRAM:
                out["buckets"] = list(metric.buckets)
            if metric.overflowed:
                out["overflowed"] = True
            metrics[name] = out
        return {
            "format": SNAPSHOT_FORMAT,
            "metrics": metrics,
            "spans": list(self.spans),
        }

    @classmethod
    def from_dict(cls, snapshot: dict, *, label_limit: int = 64) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_dict` output."""
        reg = cls(label_limit=label_limit)
        reg.merge(snapshot)
        return reg

    def merge(self, snapshot, extra_labels: Optional[Mapping[str, str]] = None) -> None:
        """Fold another registry (or its ``to_dict()``) into this one.

        Counters and histograms add; gauges keep the incoming value
        (last write wins).  ``extra_labels`` are stamped onto every
        incoming series — the parallel executor uses this to label a
        failed worker's partial counts with ``outcome="failed"`` so they
        never mix with completed-run totals.
        """
        if isinstance(snapshot, MetricsRegistry):
            snapshot = snapshot.to_dict()
        fmt = snapshot.get("format")
        if fmt != SNAPSHOT_FORMAT:
            raise ValueError(
                f"cannot merge a format-{fmt} metrics snapshot with this release "
                f"(snapshot format v{SNAPSHOT_FORMAT})"
            )
        for name, payload in snapshot.get("metrics", {}).items():
            mtype = payload["type"]
            buckets = tuple(payload.get("buckets", DEFAULT_BUCKETS))
            for entry in payload["series"]:
                labels = dict(entry.get("labels", {}))
                if extra_labels:
                    labels.update(extra_labels)
                if mtype == COUNTER:
                    self.inc(name, float(entry["value"]), labels)
                elif mtype == GAUGE:
                    self.set_gauge(name, float(entry["value"]), labels)
                elif mtype == HISTOGRAM:
                    metric = self._metric(name, HISTOGRAM, buckets)
                    key = self._series_key(metric, labels)
                    hist = metric.series.get(key)
                    if hist is None:
                        hist = metric.series[key] = _Histogram(metric.buckets)
                    hist.add(entry["counts"], entry["sum"], entry["count"])
                else:
                    raise ValueError(f"unknown metric type {mtype!r} for {name!r}")
        for record in snapshot.get("spans", ()):
            if extra_labels:
                record = dict(record)
                merged = dict(record.get("labels", {}))
                merged.update(extra_labels)
                record["labels"] = merged
            self.spans.append(record)

    # -- exposition ----------------------------------------------------

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            lines.append(f"# TYPE {name} {metric.type}")
            for key in sorted(metric.series):
                value = metric.series[key]
                if metric.type == HISTOGRAM:
                    cumulative = 0
                    for bound, count in zip(
                        list(metric.buckets) + ["+Inf"], value.counts
                    ):
                        cumulative += count
                        le = bound if bound == "+Inf" else _format_value(bound)
                        lines.append(
                            f"{name}_bucket{_render_labels(key, extra=('le', str(le)))} "
                            f"{cumulative}"
                        )
                    lines.append(f"{name}_sum{_render_labels(key)} {_format_value(value.sum)}")
                    lines.append(f"{name}_count{_render_labels(key)} {value.count}")
                else:
                    lines.append(f"{name}{_render_labels(key)} {_format_value(value)}")
        return "\n".join(lines) + ("\n" if lines else "")


def _format_value(value: float) -> str:
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(key: LabelKey, extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = list(key)
    if extra is not None:
        pairs = sorted(pairs + [extra])
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in pairs)
    return "{" + inner + "}"


# -- process-wide active registry --------------------------------------
#
# ``None`` means instrumentation is disabled (the default).  Hot paths
# read the slot once per guarded block; the convenience helpers below
# exist for cold paths where an extra call is immaterial.

_active: Optional[MetricsRegistry] = None


def active() -> Optional[MetricsRegistry]:
    """The registry instrumentation writes to, or ``None`` when disabled."""
    return _active


def enabled() -> bool:
    return _active is not None


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Install ``registry`` (or a fresh one) as the active registry."""
    global _active
    _active = registry if registry is not None else MetricsRegistry()
    return _active


def disable() -> Optional[MetricsRegistry]:
    """Remove the active registry; returns the one that was installed."""
    global _active
    reg, _active = _active, None
    return reg


@contextmanager
def collecting(registry: Optional[MetricsRegistry] = None):
    """Temporarily install a registry (fresh by default), restoring on exit.

    Worker processes wrap each run in ``collecting()`` so every run
    snapshots from a zeroed registry — the parent merges snapshots, and
    nothing is ever counted twice.
    """
    global _active
    prev = _active
    reg = registry if registry is not None else MetricsRegistry()
    _active = reg
    try:
        yield reg
    finally:
        _active = prev


@contextmanager
def paused():
    """Temporarily disable instrumentation, restoring on exit."""
    global _active
    prev = _active
    _active = None
    try:
        yield
    finally:
        _active = prev


def inc(name: str, value: float = 1.0, **labels: str) -> None:
    """Increment a counter on the active registry; no-op when disabled."""
    reg = _active
    if reg is not None:
        reg.inc(name, value, labels or None)


def set_gauge(name: str, value: float, **labels: str) -> None:
    """Set a gauge on the active registry; no-op when disabled."""
    reg = _active
    if reg is not None:
        reg.set_gauge(name, value, labels or None)


def observe(name: str, value: float, **labels: str) -> None:
    """Record a histogram observation; no-op when disabled."""
    reg = _active
    if reg is not None:
        reg.observe(name, value, labels or None)
