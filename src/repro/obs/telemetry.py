"""Per-run telemetry attached to checkpoints, results, and saved state.

:class:`RunTelemetry` is the run-scoped companion to the process-wide
:class:`~repro.obs.registry.MetricsRegistry`: a small frozen record of
where one estimation run stands — samples drawn, queries spent, answer
cache traffic, CI width — that rides on every
:class:`~repro.stats.result.Checkpoint` and
:class:`~repro.stats.result.EstimationResult` and JSON-round-trips
through the pause/resume state (driver state format v3).

It is derived from the estimator, never fed back into it: deleting the
telemetry from a state dict changes nothing about the resumed estimates
except that loading refuses (missing telemetry means the snapshot
predates v3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

__all__ = ["RunTelemetry"]

_FIELDS = ("samples", "queries", "checkpoints", "cache_hits", "cache_misses")


@dataclass(frozen=True)
class RunTelemetry:
    """Snapshot of one run's cost accounting at a point in time.

    ``ci_rel_halfwidth`` is the relative CI half-width at the snapshot,
    or ``None`` while it is undefined (too few samples, zero estimate,
    or non-finite sem).
    """

    samples: int = 0
    queries: int = 0
    checkpoints: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    ci_rel_halfwidth: Optional[float] = None

    def to_dict(self) -> dict:
        rel = self.ci_rel_halfwidth
        if rel is not None and not math.isfinite(rel):
            rel = None
        return {
            "samples": int(self.samples),
            "queries": int(self.queries),
            "checkpoints": int(self.checkpoints),
            "cache_hits": int(self.cache_hits),
            "cache_misses": int(self.cache_misses),
            "ci_rel_halfwidth": rel,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunTelemetry":
        if not isinstance(payload, dict):
            raise ValueError(f"run telemetry must be a dict, got {type(payload).__name__}")
        missing = [k for k in _FIELDS if k not in payload]
        if missing:
            raise ValueError(f"run telemetry snapshot is missing keys: {missing}")
        rel = payload.get("ci_rel_halfwidth")
        return cls(
            samples=int(payload["samples"]),
            queries=int(payload["queries"]),
            checkpoints=int(payload["checkpoints"]),
            cache_hits=int(payload["cache_hits"]),
            cache_misses=int(payload["cache_misses"]),
            ci_rel_halfwidth=None if rel is None else float(rel),
        )
