"""Declarative experiment regions.

A :class:`RegionSpec` is the serializable form of the bounding region
``V0`` every world is generated in (and every estimator samples over).
It is the single source of truth for the library's named default
regions — ``repro.datasets.regions`` derives its ``*_BOX`` constants
from here, and the dataset generators fall back to
:func:`default_region` when no region is passed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..geometry import Rect

__all__ = ["RegionSpec", "default_region", "resolve_region", "NAMED_REGIONS"]

#: The canonical named regions (kilometre-scale planes, see DESIGN.md §3):
#: ``small`` is the standard offline-experiment box, ``us``/``china``
#: approximate the paper's continental extents, ``austin`` the Fig-17
#: metro window, ``unit`` the unit-test box.
NAMED_REGIONS: dict[str, tuple[float, float, float, float]] = {
    "small": (0.0, 0.0, 400.0, 300.0),
    "us": (0.0, 0.0, 4500.0, 2800.0),
    "austin": (2200.0, 600.0, 2360.0, 760.0),
    "china": (0.0, 0.0, 5000.0, 3500.0),
    "unit": (0.0, 0.0, 100.0, 100.0),
}


@dataclass(frozen=True)
class RegionSpec:
    """A frozen, JSON-round-tripping bounding region.

    ``name`` is a purely descriptive tag (kept through serialization so
    registry scenarios stay self-describing); the coordinates alone
    define the geometry.
    """

    x0: float = 0.0
    y0: float = 0.0
    x1: float = 400.0
    y1: float = 300.0
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if not (self.x1 > self.x0 and self.y1 > self.y0):
            raise ValueError(f"degenerate region [{self.x0},{self.x1}]x[{self.y0},{self.y1}]")

    # ------------------------------------------------------------------
    @classmethod
    def named(cls, name: str) -> "RegionSpec":
        """One of the canonical regions (``small``/``us``/``austin``/...)."""
        try:
            coords = NAMED_REGIONS[name]
        except KeyError:
            raise ValueError(
                f"unknown region {name!r}; expected one of {tuple(NAMED_REGIONS)}"
            ) from None
        return cls(*coords, name=name)

    @classmethod
    def from_rect(cls, rect: Rect, name: Optional[str] = None) -> "RegionSpec":
        return cls(rect.x0, rect.y0, rect.x1, rect.y1, name=name)

    # ------------------------------------------------------------------
    @property
    def rect(self) -> Rect:
        return Rect(self.x0, self.y0, self.x1, self.y1)

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        return self.width * self.height

    def replace(self, **changes) -> "RegionSpec":
        return replace(self, **changes)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {"x0": self.x0, "y0": self.y0, "x1": self.x1, "y1": self.y1,
                "name": self.name}

    @classmethod
    def from_dict(cls, data: dict) -> "RegionSpec":
        return cls(
            x0=data["x0"], y0=data["y0"], x1=data["x1"], y1=data["y1"],
            name=data.get("name"),
        )


def default_region() -> Rect:
    """The region dataset generators use when none is given."""
    return RegionSpec.named("small").rect


def resolve_region(region) -> Rect:
    """Coerce a ``Rect`` / :class:`RegionSpec` / ``None`` region
    parameter to a concrete ``Rect`` (``None`` → :func:`default_region`).
    The one coercion shared by every dataset-generator entry point."""
    if region is None:
        return default_region()
    if isinstance(region, RegionSpec):
        return region.rect
    return region
