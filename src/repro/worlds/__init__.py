"""repro.worlds — declarative world and workload generation.

The world is a first-class, frozen, JSON-round-tripping spec, exactly
like :class:`~repro.api.EstimationSpec` (the run) and
:class:`~repro.lbs.InterfaceSpec` (the service):

* :class:`RegionSpec` — the bounding region, with the library's named
  defaults (``small``/``us``/``china``/...);
* :class:`SpatialModel` — where entities live: :class:`UniformField`,
  :class:`GaussianClusters`, :class:`ZipfHotspots`, :class:`RingRoad`,
  :class:`MixtureField`, all with fully vectorized NumPy samplers;
* :class:`AttrSchema` — what entities carry: categorical / numeric /
  boolean columns with per-cluster conditional skews, heavy-tailed
  popularity models, and a visibility rate;
* :class:`WorldSpec` — the whole world; ``build(seed)`` produces a
  bit-identical :class:`~repro.lbs.SpatialDatabase` (+ census raster)
  every time;
* :mod:`~repro.worlds.registry` — named scenarios
  (``"paper/clustered"``, ``"wechat-like-1m"``, ...)::

      from repro import worlds

      world = worlds.build("paper/clustered")            # live world
      spec = worlds.get("wechat-like-1m").with_size(5000)  # rescale
      Session(spec).lnr(k=10).count().run(MaxQueries(4000))

An :class:`~repro.api.EstimationSpec` embeds a ``WorldSpec``, so a full
scenario — world + interface + estimation — travels as ONE serializable
document and ``Session.from_spec(json)`` reproduces the original run
bit-identically.
"""

from .attrs import (
    AttrField,
    AttrSchema,
    Bernoulli,
    Categorical,
    Constant,
    Indicator,
    Numeric,
    Tag,
    attr_field_from_dict,
    synthesize_columns,
    synthesize_tuples,
)
from .region import NAMED_REGIONS, RegionSpec, default_region, resolve_region
from .registry import build, get, names, poi_fields, register, specs, user_fields
from .spatial import (
    GaussianClusters,
    MixtureField,
    RingRoad,
    SpatialModel,
    UniformField,
    ZipfHotspots,
    spatial_model_from_dict,
)
from .spec import CensusSpec, World, WorldSpec

__all__ = [
    "RegionSpec",
    "NAMED_REGIONS",
    "default_region",
    "resolve_region",
    "SpatialModel",
    "UniformField",
    "GaussianClusters",
    "ZipfHotspots",
    "RingRoad",
    "MixtureField",
    "spatial_model_from_dict",
    "AttrField",
    "AttrSchema",
    "Constant",
    "Categorical",
    "Numeric",
    "Bernoulli",
    "Indicator",
    "Tag",
    "attr_field_from_dict",
    "synthesize_columns",
    "synthesize_tuples",
    "CensusSpec",
    "WorldSpec",
    "World",
    "register",
    "get",
    "names",
    "specs",
    "build",
    "poi_fields",
    "user_fields",
]
