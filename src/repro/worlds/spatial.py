"""Pluggable spatial population models with vectorized NumPy samplers.

Every model answers two questions for a bounding region:

* :meth:`~SpatialModel.sample` — draw ``n`` points in one vectorized
  pass, returning ``(xy, labels)`` where ``labels[i]`` identifies the
  mixture component (cluster, ring, road...) that produced point ``i``
  (``-1`` = diffuse background).  Labels feed the per-cluster attribute
  skews of :mod:`repro.worlds.attrs`.
* :meth:`~SpatialModel.density_grid` — rasterize the (un-normalized)
  density at cell centres, the substrate of the world's census raster
  (§5.2 external knowledge).

Models are frozen dataclasses serializing through a ``kind``-tagged
registry, so a :class:`~repro.worlds.spec.WorldSpec` embedding one
round-trips through JSON.  All geometry is *fractional* (relative to
the region's width/height, sigmas relative to the shorter side), so one
model transfers between regions unchanged.

Sampling determinism: every sampler consumes the generator stream as a
fixed function of ``(model, n, region)`` — same spec + same seed is
bit-identical, which :mod:`tests/worlds` enforces for every registered
scenario.  Out-of-region draws are rejection-resampled in vectorized
rounds (and clamped after a pathological number of rounds, e.g. a
cluster centred far outside the region).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from ..geometry import Rect

__all__ = [
    "SpatialModel",
    "UniformField",
    "GaussianClusters",
    "ZipfHotspots",
    "RingRoad",
    "MixtureField",
    "spatial_model_from_dict",
]

#: Rejection-resampling rounds before clamping the stragglers.
_MAX_RESAMPLE_ROUNDS = 64

_KINDS: dict[str, type] = {}


def _register(cls):
    _KINDS[cls.kind] = cls
    return cls


def spatial_model_from_dict(data: dict) -> "SpatialModel":
    """Inverse of ``model.to_dict()`` for every registered model kind."""
    kind = data.get("kind")
    try:
        cls = _KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown spatial model kind {kind!r}; expected one of {tuple(_KINDS)}"
        ) from None
    return cls.from_dict(data)


def _cell_centers(region: Rect, nx: int, ny: int) -> tuple[np.ndarray, np.ndarray]:
    """``(cx, cy)`` meshgrids of cell centres, each shaped ``(nx, ny)``."""
    cx = region.x0 + (np.arange(nx) + 0.5) * (region.width / nx)
    cy = region.y0 + (np.arange(ny) + 0.5) * (region.height / ny)
    return np.meshgrid(cx, cy, indexing="ij")


class SpatialModel:
    """Base class: shared resampling helper + serde entry points."""

    kind: ClassVar[str] = "abstract"

    def sample(self, rng: np.random.Generator, n: int,
               region: Rect) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    def density_grid(self, region: Rect, nx: int, ny: int) -> np.ndarray:
        raise NotImplementedError

    def to_dict(self) -> dict:
        raise NotImplementedError

    @classmethod
    def from_dict(cls, data: dict) -> "SpatialModel":
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _resample_into(self, rng: np.random.Generator, xy: np.ndarray,
                       region: Rect, redraw) -> np.ndarray:
        """Re-draw out-of-region rows via ``redraw(rng, bad_idx)`` until
        all points are inside (clamping after `_MAX_RESAMPLE_ROUNDS`)."""
        for _round in range(_MAX_RESAMPLE_ROUNDS):
            bad = np.flatnonzero(
                (xy[:, 0] < region.x0) | (xy[:, 0] > region.x1)
                | (xy[:, 1] < region.y0) | (xy[:, 1] > region.y1)
            )
            if bad.size == 0:
                return xy
            xy[bad] = redraw(rng, bad)
        np.clip(xy[:, 0], region.x0, region.x1, out=xy[:, 0])
        np.clip(xy[:, 1], region.y0, region.y1, out=xy[:, 1])
        return xy


@_register
@dataclass(frozen=True)
class UniformField(SpatialModel):
    """Points uniform over the whole region; no clusters, no labels."""

    kind: ClassVar[str] = "uniform"

    def sample(self, rng, n, region):
        u = rng.random((n, 2))
        xy = np.empty((n, 2))
        xy[:, 0] = region.x0 + u[:, 0] * region.width
        xy[:, 1] = region.y0 + u[:, 1] * region.height
        return xy, np.full(n, -1, dtype=np.int64)

    def density_grid(self, region, nx, ny):
        return np.ones((nx, ny))

    def to_dict(self):
        return {"kind": self.kind}

    @classmethod
    def from_dict(cls, data):
        return cls()


@_register
@dataclass(frozen=True)
class GaussianClusters(SpatialModel):
    """An explicit Gaussian-mixture of clusters over a diffuse background.

    ``centers`` are fractional ``(fx, fy)`` positions, ``sigmas``
    fractional of the shorter region side, ``weights`` relative cluster
    masses; ``background`` is the fraction of total mass spread
    uniformly (the rural floor of the paper's city phenomenology).
    """

    kind: ClassVar[str] = "gaussian"

    centers: tuple[tuple[float, float], ...] = ((0.5, 0.5),)
    sigmas: tuple[float, ...] = (0.05,)
    weights: tuple[float, ...] = (1.0,)
    background: float = 0.15

    def __post_init__(self) -> None:
        object.__setattr__(self, "centers", tuple(tuple(c) for c in self.centers))
        object.__setattr__(self, "sigmas", tuple(self.sigmas))
        object.__setattr__(self, "weights", tuple(self.weights))
        k = len(self.centers)
        if k == 0:
            raise ValueError("need at least one cluster (use UniformField otherwise)")
        if len(self.sigmas) != k or len(self.weights) != k:
            raise ValueError("centers, sigmas, and weights must have equal length")
        if any(s <= 0 for s in self.sigmas):
            raise ValueError("sigmas must be positive")
        if any(w <= 0 for w in self.weights):
            raise ValueError("weights must be positive")
        if not 0.0 <= self.background < 1.0:
            raise ValueError("background must be in [0, 1)")

    # ------------------------------------------------------------------
    def _abs_params(self, region: Rect):
        cx = region.x0 + np.array([c[0] for c in self.centers]) * region.width
        cy = region.y0 + np.array([c[1] for c in self.centers]) * region.height
        sig = np.array(self.sigmas) * min(region.width, region.height)
        w = np.array(self.weights, dtype=float)
        return cx, cy, sig, w / w.sum()

    def sample(self, rng, n, region):
        cx, cy, sig, probs = self._abs_params(region)
        k = len(probs)
        # Component -1 = background; clusters share (1 - background).
        full = np.concatenate(([self.background], probs * (1.0 - self.background)))
        comp = rng.choice(k + 1, size=n, p=full) - 1

        def draw(rng, idx):
            c = comp[idx]
            out = np.empty((idx.size, 2))
            bg = c < 0
            if bg.any():
                u = rng.random((int(bg.sum()), 2))
                out[bg, 0] = region.x0 + u[:, 0] * region.width
                out[bg, 1] = region.y0 + u[:, 1] * region.height
            cl = ~bg
            if cl.any():
                z = rng.normal(size=(int(cl.sum()), 2))
                cc = c[cl]
                out[cl, 0] = cx[cc] + z[:, 0] * sig[cc]
                out[cl, 1] = cy[cc] + z[:, 1] * sig[cc]
            return out

        xy = draw(rng, np.arange(n))
        xy = self._resample_into(rng, xy, region, draw)
        return xy, comp.astype(np.int64)

    def density_grid(self, region, nx, ny):
        cx, cy, sig, probs = self._abs_params(region)
        gx, gy = _cell_centers(region, nx, ny)
        dens = np.full((nx, ny), self.background / region.area)
        urban = 1.0 - self.background
        for i in range(len(probs)):
            s2 = sig[i] * sig[i]
            d2 = (gx - cx[i]) ** 2 + (gy - cy[i]) ** 2
            dens += urban * probs[i] * np.exp(-d2 / (2.0 * s2)) / (2.0 * np.pi * s2)
        return dens

    def to_dict(self):
        return {
            "kind": self.kind,
            "centers": [list(c) for c in self.centers],
            "sigmas": list(self.sigmas),
            "weights": list(self.weights),
            "background": self.background,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            centers=tuple(tuple(c) for c in data["centers"]),
            sigmas=tuple(data["sigmas"]),
            weights=tuple(data["weights"]),
            background=data.get("background", 0.15),
        )


@_register
@dataclass(frozen=True)
class ZipfHotspots(SpatialModel):
    """Zipf-weighted hotspots: the declarative form of the city mixture.

    ``n_hotspots`` centres are placed uniformly by a deterministic
    ``layout_seed`` stream; hotspot ``rank`` carries weight
    ``rank ** -zipf_exponent`` and radius
    ``sigma_fraction * weight ** sigma_growth`` (radii grow sub-linearly
    with mass, like real metro areas — the paper's Fig-11 skew).  The
    layout is a pure function of the spec, so two builds of the same
    spec share the exact same hotspot geometry.
    """

    kind: ClassVar[str] = "zipf"

    n_hotspots: int = 40
    zipf_exponent: float = 1.0
    sigma_fraction: float = 0.012
    sigma_growth: float = 0.4
    background: float = 0.15
    layout_seed: int = 0

    def __post_init__(self) -> None:
        if self.n_hotspots < 1:
            raise ValueError("n_hotspots must be >= 1")
        if self.sigma_fraction <= 0.0:
            raise ValueError("sigma_fraction must be positive")
        if not 0.0 <= self.background < 1.0:
            raise ValueError("background must be in [0, 1)")

    def materialize(self) -> GaussianClusters:
        """The explicit cluster list this spec denotes (deterministic).

        The layout law mirrors ``CityModel.generate``
        (``repro.datasets.cities``): weight = rank**-zipf, radius =
        sigma_fraction * weight**growth * U(0.7, 1.3).  The two are kept
        as separate implementations on purpose — they consume their RNG
        streams differently, and unifying them would re-roll every
        seed-pinned dataset realization — so a change to the law here
        must be mirrored there.
        """
        rng = np.random.default_rng([0x5EED, self.layout_seed])
        centers = rng.random((self.n_hotspots, 2))
        ranks = np.arange(1, self.n_hotspots + 1, dtype=float)
        weights = ranks ** (-self.zipf_exponent)
        sigmas = (
            self.sigma_fraction
            * weights ** self.sigma_growth
            * rng.uniform(0.7, 1.3, self.n_hotspots)
        )
        return GaussianClusters(
            centers=tuple(map(tuple, centers)),
            sigmas=tuple(sigmas),
            weights=tuple(weights),
            background=self.background,
        )

    def sample(self, rng, n, region):
        return self.materialize().sample(rng, n, region)

    def density_grid(self, region, nx, ny):
        return self.materialize().density_grid(region, nx, ny)

    def to_dict(self):
        return {
            "kind": self.kind,
            "n_hotspots": self.n_hotspots,
            "zipf_exponent": self.zipf_exponent,
            "sigma_fraction": self.sigma_fraction,
            "sigma_growth": self.sigma_growth,
            "background": self.background,
            "layout_seed": self.layout_seed,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            n_hotspots=data["n_hotspots"],
            zipf_exponent=data.get("zipf_exponent", 1.0),
            sigma_fraction=data.get("sigma_fraction", 0.012),
            sigma_growth=data.get("sigma_growth", 0.4),
            background=data.get("background", 0.15),
            layout_seed=data.get("layout_seed", 0),
        )


@_register
@dataclass(frozen=True)
class RingRoad(SpatialModel):
    """Populations concentrated along a transport skeleton.

    ``rings`` are ``(fcx, fcy, fradius)`` ring roads (radius fractional
    of the shorter side), ``roads`` are ``(fx0, fy0, fx1, fy1)``
    segments; points sit on the skeleton with a Gaussian cross-section
    of ``width_fraction``.  Component mass is proportional to skeleton
    length, so linear density is uniform along the network.  Labels
    number rings first, then roads.
    """

    kind: ClassVar[str] = "ringroad"

    rings: tuple[tuple[float, float, float], ...] = ((0.5, 0.5, 0.3),)
    roads: tuple[tuple[float, float, float, float], ...] = ()
    width_fraction: float = 0.01
    background: float = 0.1

    def __post_init__(self) -> None:
        object.__setattr__(self, "rings", tuple(tuple(r) for r in self.rings))
        object.__setattr__(self, "roads", tuple(tuple(r) for r in self.roads))
        if not self.rings and not self.roads:
            raise ValueError("need at least one ring or road")
        if any(r[2] <= 0 for r in self.rings):
            raise ValueError("ring radii must be positive")
        if any(r[0] == r[2] and r[1] == r[3] for r in self.roads):
            raise ValueError("roads must have positive length")
        if self.width_fraction <= 0.0:
            raise ValueError("width_fraction must be positive")
        if not 0.0 <= self.background < 1.0:
            raise ValueError("background must be in [0, 1)")

    # ------------------------------------------------------------------
    def _skeleton(self, region: Rect):
        """Absolute geometry + per-component length weights."""
        span = min(region.width, region.height)
        rings = [
            (region.x0 + fx * region.width, region.y0 + fy * region.height, fr * span)
            for fx, fy, fr in self.rings
        ]
        roads = [
            (region.x0 + fx0 * region.width, region.y0 + fy0 * region.height,
             region.x0 + fx1 * region.width, region.y0 + fy1 * region.height)
            for fx0, fy0, fx1, fy1 in self.roads
        ]
        lengths = [2.0 * np.pi * r for _x, _y, r in rings]
        lengths += [float(np.hypot(x1 - x0, y1 - y0)) for x0, y0, x1, y1 in roads]
        probs = np.array(lengths) / sum(lengths)
        return rings, roads, probs, self.width_fraction * span

    def sample(self, rng, n, region):
        rings, roads, probs, width = self._skeleton(region)
        k = len(probs)
        full = np.concatenate(([self.background], probs * (1.0 - self.background)))
        comp = rng.choice(k + 1, size=n, p=full) - 1

        def draw(rng, idx):
            c = comp[idx]
            out = np.empty((idx.size, 2))
            bg = c < 0
            if bg.any():
                u = rng.random((int(bg.sum()), 2))
                out[bg, 0] = region.x0 + u[:, 0] * region.width
                out[bg, 1] = region.y0 + u[:, 1] * region.height
            # One (t, offset) pair per non-background point, drawn in one
            # pass and interpreted per component.
            on = ~bg
            if on.any():
                m = int(on.sum())
                t = rng.random(m)
                off = rng.normal(0.0, width, m)
                cc = c[on]
                ox = np.empty(m)
                oy = np.empty(m)
                for j in range(k):
                    sel = cc == j
                    if not sel.any():
                        continue
                    if j < len(rings):
                        cx, cy, r = rings[j]
                        theta = t[sel] * 2.0 * np.pi
                        rad = r + off[sel]
                        ox[sel] = cx + rad * np.cos(theta)
                        oy[sel] = cy + rad * np.sin(theta)
                    else:
                        x0, y0, x1, y1 = roads[j - len(rings)]
                        dx, dy = x1 - x0, y1 - y0
                        norm = float(np.hypot(dx, dy))
                        ox[sel] = x0 + t[sel] * dx - off[sel] * dy / norm
                        oy[sel] = y0 + t[sel] * dy + off[sel] * dx / norm
                out[on, 0] = ox
                out[on, 1] = oy
            return out

        xy = draw(rng, np.arange(n))
        xy = self._resample_into(rng, xy, region, draw)
        return xy, comp.astype(np.int64)

    def density_grid(self, region, nx, ny):
        rings, roads, probs, width = self._skeleton(region)
        gx, gy = _cell_centers(region, nx, ny)
        # Everything in per-cell MASS units (each term sums to its
        # component's share), so background and skeleton combine on the
        # same scale and the grid totals 1.
        dens = np.full((nx, ny), self.background / (nx * ny))
        scale = 1.0 - self.background
        for j, (cx, cy, r) in enumerate(rings):
            d = np.abs(np.hypot(gx - cx, gy - cy) - r)
            line = np.exp(-(d * d) / (2.0 * width * width))
            dens += scale * probs[j] * line / max(line.sum(), 1e-300)
        for j, (x0, y0, x1, y1) in enumerate(roads):
            dx, dy = x1 - x0, y1 - y0
            L2 = dx * dx + dy * dy
            t = np.clip(((gx - x0) * dx + (gy - y0) * dy) / L2, 0.0, 1.0)
            d = np.hypot(gx - (x0 + t * dx), gy - (y0 + t * dy))
            line = np.exp(-(d * d) / (2.0 * width * width))
            dens += scale * probs[len(rings) + j] * line / max(line.sum(), 1e-300)
        return dens

    def to_dict(self):
        return {
            "kind": self.kind,
            "rings": [list(r) for r in self.rings],
            "roads": [list(r) for r in self.roads],
            "width_fraction": self.width_fraction,
            "background": self.background,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            rings=tuple(tuple(r) for r in data.get("rings", ())),
            roads=tuple(tuple(r) for r in data.get("roads", ())),
            width_fraction=data.get("width_fraction", 0.01),
            background=data.get("background", 0.1),
        )


@_register
@dataclass(frozen=True)
class MixtureField(SpatialModel):
    """A weighted mixture of sub-models (e.g. metro clusters + uniform
    rural floor + a highway corridor).  Labels are the component index
    in ``components`` order (sub-model cluster structure is flattened),
    except that rows a sub-model itself labels as diffuse background
    (``-1`` — a UniformField component, or a cluster model's rural
    floor) stay ``-1``, preserving the "background is unskewed"
    contract through the mixture."""

    kind: ClassVar[str] = "mixture"

    components: tuple[tuple[float, SpatialModel], ...] = field(
        default_factory=lambda: ((1.0, UniformField()),)
    )

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "components", tuple((float(w), m) for w, m in self.components)
        )
        if not self.components:
            raise ValueError("mixture needs at least one component")
        if any(w <= 0 for w, _m in self.components):
            raise ValueError("component weights must be positive")

    def sample(self, rng, n, region):
        w = np.array([wi for wi, _m in self.components])
        comp = rng.choice(len(w), size=n, p=w / w.sum())
        xy = np.empty((n, 2))
        labels = np.empty(n, dtype=np.int64)
        # Fixed component order keeps the stream deterministic.
        for i, (_w, model) in enumerate(self.components):
            idx = np.flatnonzero(comp == i)
            if idx.size:
                xy[idx], sub = model.sample(rng, idx.size, region)
                labels[idx] = np.where(sub < 0, -1, i)
        return xy, labels

    def density_grid(self, region, nx, ny):
        w = np.array([wi for wi, _m in self.components])
        w = w / w.sum()
        dens = np.zeros((nx, ny))
        for wi, model in zip(w, (m for _w, m in self.components)):
            g = model.density_grid(region, nx, ny)
            dens += wi * g / g.sum()
        return dens

    def to_dict(self):
        return {
            "kind": self.kind,
            "components": [[w, m.to_dict()] for w, m in self.components],
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            components=tuple(
                (w, spatial_model_from_dict(m)) for w, m in data["components"]
            )
        )
