"""World specs: the declarative, frozen description of a whole world.

A :class:`WorldSpec` is to the *data* what
:class:`~repro.api.EstimationSpec` is to the run and
:class:`~repro.lbs.InterfaceSpec` to the service: one frozen,
JSON-round-tripping value pinning down everything about the hidden
population — bounding region, spatial model, attribute schema, size,
census rasterization, and the generation seed.  ``build()`` is
deterministic: the same spec produces a bit-identical
:class:`~repro.lbs.SpatialDatabase` (ids, locations, attributes) every
time, on any machine — which is what lets an `EstimationSpec` embed a
world and an entire experiment travel as one serializable document.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from ..geometry import Rect
from .attrs import AttrSchema, synthesize_columns
from .region import RegionSpec
from .spatial import SpatialModel, UniformField, spatial_model_from_dict

__all__ = ["CensusSpec", "WorldSpec", "World", "WORLD_CACHE_FORMAT"]

#: Stream-key prefix separating world generation from estimator RNG use.
_WORLD_STREAM = 0x57D5

#: Format version salted into :meth:`WorldSpec.content_hash`.  Bump it
#: whenever the build pipeline changes in a way that alters built worlds
#: (new RNG consumption order, changed synthesis kernels, new cache
#: entry layout) — every persisted world-cache entry is invalidated at
#: once, instead of silently serving stale databases.
WORLD_CACHE_FORMAT = 1


@dataclass(frozen=True)
class CensusSpec:
    """External-knowledge raster of a world (§5.2).

    The census grid is rasterized from the spatial model's density at
    ``nx x ny`` cell centres; ``noise > 0`` multiplies each cell by
    ``LogNormal(0, noise)`` — deliberately *inaccurate* external
    knowledge (the estimators must stay unbiased regardless)."""

    nx: int = 24
    ny: int = 18
    noise: float = 0.0

    def __post_init__(self) -> None:
        if self.nx < 1 or self.ny < 1:
            raise ValueError("census grid must be at least 1x1")
        if self.noise < 0.0:
            raise ValueError("noise must be non-negative")

    def to_dict(self) -> dict:
        return {"nx": self.nx, "ny": self.ny, "noise": self.noise}

    @classmethod
    def from_dict(cls, data: dict) -> "CensusSpec":
        return cls(nx=data.get("nx", 24), ny=data.get("ny", 18),
                   noise=data.get("noise", 0.0))


@dataclass(frozen=True)
class WorldSpec:
    """A complete, frozen description of one synthetic world.

    Attributes
    ----------
    name:
        Registry tag (descriptive; survives serialization).
    region:
        The bounding :class:`~repro.worlds.RegionSpec`.
    n:
        Number of *generated* entities (the built database holds the
        visible subset per the schema's ``visible_rate``).
    spatial:
        The :class:`~repro.worlds.SpatialModel` placing entities.
    attrs:
        The :class:`~repro.worlds.AttrSchema` of every tuple.
    census:
        Optional :class:`CensusSpec`; ``None`` builds no raster (the
        world then supports uniform sampling only).
    seed:
        Default generation seed of :meth:`build` — part of the spec, so
        a serialized world reproduces exactly.
    """

    name: Optional[str] = None
    region: RegionSpec = field(default_factory=RegionSpec)
    n: int = 1000
    spatial: SpatialModel = field(default_factory=UniformField)
    attrs: AttrSchema = field(default_factory=AttrSchema)
    census: Optional[CensusSpec] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("n must be >= 1")

    # ------------------------------------------------------------------
    def replace(self, **changes) -> "WorldSpec":
        """A copy with the given fields changed (specs are frozen)."""
        return replace(self, **changes)

    def with_size(self, n: int) -> "WorldSpec":
        """The same world at a different population size (the scaling
        axis of ``benchmarks/bench_scaling.py``)."""
        return self.replace(n=n)

    # ------------------------------------------------------------------
    def synthesis_inputs(
        self, seed: Optional[int] = None
    ) -> tuple[np.random.Generator, Rect, np.ndarray, np.ndarray]:
        """``(rng, rect, xy, labels)`` — the sampled locations and the
        generator stream positioned for attribute synthesis.

        The build preamble as a public hook: :meth:`build` consumes it,
        and so do the ingest benchmarks and the row/columnar
        equivalence suite, which replay the *same* stream down the two
        assembly paths — one derivation, no copies to drift.
        """
        if seed is None:
            seed = self.seed
        rng = np.random.default_rng([_WORLD_STREAM, seed])
        rect = self.region.rect
        xy, labels = self.spatial.sample(rng, self.n, rect)
        return rng, rect, xy, labels

    def build(self, seed: Optional[int] = None) -> "World":
        """Generate the world; bit-identical for equal ``(spec, seed)``.

        One generator stream, consumed in a fixed order (locations →
        attribute columns → visibility → census noise), drives the whole
        build; ``seed`` overrides the spec's own."""
        # Imported lazily: datasets wraps worlds (not the other way
        # round) — a top-level import here would be circular.
        from ..datasets.census import PopulationGrid

        if seed is None:
            seed = self.seed
        rng, rect, xy, labels = self.synthesis_inputs(seed)
        # Columnar all the way down: synthesis emits arrays and the
        # database ingests them without building a single row object
        # (bit-identical to the row path; see tests/lbs/test_columnar_db.py).
        xyv, tids, columns = synthesize_columns(rng, xy, labels, self.attrs)
        # SpatialDatabase imported via lbs at call time keeps the import
        # graph one-directional too.
        from ..lbs.database import SpatialDatabase

        db = SpatialDatabase.from_columns(xyv, tids, columns, rect)
        census = None
        if self.census is not None:
            census = PopulationGrid.from_spatial_model(
                self.spatial, rect, self.census.nx, self.census.ny,
                noise=self.census.noise, rng=rng,
            )
        return World(spec=self.replace(seed=seed), db=db, census=census)

    # ------------------------------------------------------------------
    def content_hash(self) -> str:
        """Content address of the world this spec builds (hex sha256).

        Hashes the canonical serialized form — :meth:`to_json` sorts
        keys, so two specs describing the same world hash identically no
        matter what dict order they were loaded from — salted with
        :data:`WORLD_CACHE_FORMAT`, so a pipeline change that alters
        built worlds retires every existing cache entry.  Equal hashes
        mean bit-identical :meth:`build` output; this is the key of the
        persistent built-world cache
        (:class:`repro.parallel.WorldCache`).
        """
        payload = f"repro.worlds/{WORLD_CACHE_FORMAT}\n{self.to_json()}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def to_dict(self) -> dict:
        """JSON-serializable form; exact inverse of :meth:`from_dict`."""
        return {
            "name": self.name,
            "region": self.region.to_dict(),
            "n": self.n,
            "spatial": self.spatial.to_dict(),
            "attrs": self.attrs.to_dict(),
            "census": self.census.to_dict() if self.census is not None else None,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorldSpec":
        census = data.get("census")
        return cls(
            name=data.get("name"),
            region=RegionSpec.from_dict(data["region"]),
            n=data["n"],
            spatial=spatial_model_from_dict(data["spatial"]),
            attrs=AttrSchema.from_dict(data.get("attrs", {})),
            census=CensusSpec.from_dict(census) if census is not None else None,
            seed=data.get("seed", 0),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "WorldSpec":
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class World:
    """A built world: the spec that made it plus its live artifacts.

    Satisfies the session API's world contract (``.db`` + ``.census``),
    so ``Session(world_spec.build())`` — or ``Session(world_spec)``
    directly — runs estimations over it."""

    spec: WorldSpec
    db: object  # SpatialDatabase (typed loosely to keep imports one-way)
    census: Optional[object] = None  # PopulationGrid

    @property
    def region(self) -> Rect:
        return self.spec.region.rect

    @property
    def name(self) -> Optional[str]:
        return self.spec.name

    def __len__(self) -> int:
        return len(self.db)
