"""Declarative attribute schemas with vectorized columnar synthesis.

An :class:`AttrSchema` describes the non-spatial half of a world: the
columns every tuple carries (categorical mixes, clipped/log-normal
numerics, heavy-tailed popularity scores, boolean flags, numeric
mirrors) plus the *visibility rate* — the fraction of generated
entities actually exposed through the service's kNN interface (the
paper's Table-1 caveat: WeChat COUNTs measure location-enabled users,
not registered accounts).

Columns draw in declared order, each in one vectorized NumPy pass over
all ``n`` rows, so synthesis is deterministic (a fixed function of the
generator stream) and fast enough for million-tuple worlds.

Per-cluster conditional skew: categorical and numeric fields accept a
``cluster_skew`` knob that tilts the distribution per spatial-model
component label (see :mod:`repro.worlds.spatial`), deterministically —
downtown clusters get a different category mix than the rural floor,
which is exactly the population-structure axis aggregate-location
studies show estimator behaviour hinges on.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import ClassVar, Optional

import numpy as np

from ..geometry import Point
from ..lbs.tuples import LbsTuple

__all__ = [
    "AttrField",
    "Constant",
    "Categorical",
    "Numeric",
    "Bernoulli",
    "Indicator",
    "Tag",
    "AttrSchema",
    "attr_field_from_dict",
    "synthesize_tuples",
]

#: Distributions :class:`Numeric` can draw from — ``(a, b)`` meaning:
#: normal(mean=a, sigma=b), lognormal(mu=a, sigma=b), uniform(a, b),
#: pareto(shape=a, scale=b) (heavy-tailed popularity/prominence),
#: exponential(scale=a, unused b).
NUMERIC_DISTS = ("normal", "lognormal", "uniform", "pareto", "exponential")

#: Sentinel marking "this row does not carry this column".
_MISSING = object()

_FIELD_KINDS: dict[str, type] = {}


def _register(cls):
    _FIELD_KINDS[cls.kind] = cls
    return cls


def attr_field_from_dict(data: dict) -> "AttrField":
    kind = data.get("kind")
    try:
        cls = _FIELD_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown attr field kind {kind!r}; expected one of {tuple(_FIELD_KINDS)}"
        ) from None
    return cls.from_dict(data)


def _cluster_tilt(labels: np.ndarray, j: int) -> np.ndarray:
    """Deterministic per-(cluster, value) tilt in ``[-1, 1]``.

    A fixed quasi-random phase (golden-angle multiples) — not an RNG
    draw — so the *same* cluster always skews the *same* way for a given
    column, independent of sampling order or world size.  The diffuse
    background (label ``-1``) is tilt-neutral: only *clusters* skew, so
    an unclustered population keeps its declared distribution exactly.
    """
    lab = labels.astype(float)
    return np.where(
        lab < 0.0, 0.0, np.sin((lab + 2.0) * (j + 1.0) * 2.3999632297286533)
    )


class AttrField:
    """One column of a schema.

    ``when = (attr, value)`` makes the column conditional: it is only
    attached to rows whose previously generated ``attr`` equals
    ``value`` (schools carry ``enrollment``, restaurants ``rating``).
    The draw itself always covers all ``n`` rows, keeping the generator
    stream a fixed function of the schema.
    """

    kind: ClassVar[str] = "abstract"
    name: str
    when: Optional[tuple[str, str]]

    def sample(self, rng: np.random.Generator, n: int, labels: np.ndarray) -> list:
        raise NotImplementedError

    def _base_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "when": list(self.when) if self.when is not None else None,
        }

    @staticmethod
    def _when_from(data: dict) -> Optional[tuple[str, str]]:
        w = data.get("when")
        return tuple(w) if w is not None else None


@_register
@dataclass(frozen=True)
class Constant(AttrField):
    """The same value on every row (category tags etc.)."""

    kind: ClassVar[str] = "constant"

    name: str
    value: object = None
    when: Optional[tuple[str, str]] = None

    def sample(self, rng, n, labels):
        return [self.value] * n

    def to_dict(self):
        return {**self._base_dict(), "value": self.value}

    @classmethod
    def from_dict(cls, data):
        return cls(name=data["name"], value=data.get("value"),
                   when=cls._when_from(data))


@_register
@dataclass(frozen=True)
class Categorical(AttrField):
    """A categorical mix, optionally tilted per spatial cluster.

    ``cluster_skew`` in ``[0, 1)`` reweights ``probs`` per component
    label by a deterministic tilt, so different clusters carry visibly
    different mixes.  Background rows (label ``-1``) always keep the
    declared ``probs``; the *global* marginal therefore matches
    ``probs`` exactly on unclustered populations and drifts from it only
    to the extent that unevenly-sized clusters tilt in the same
    direction (Zipf worlds do — the realized ground truth is whatever
    the built database holds, not the declared mix).
    """

    kind: ClassVar[str] = "categorical"

    name: str
    values: tuple[str, ...] = ()
    probs: Optional[tuple[float, ...]] = None
    cluster_skew: float = 0.0
    when: Optional[tuple[str, str]] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))
        if self.probs is not None:
            object.__setattr__(self, "probs", tuple(self.probs))
        if not self.values:
            raise ValueError("categorical field needs values")
        if self.probs is not None and len(self.probs) != len(self.values):
            raise ValueError("probs must match values")
        if not 0.0 <= self.cluster_skew < 1.0:
            raise ValueError("cluster_skew must be in [0, 1)")

    def sample(self, rng, n, labels):
        k = len(self.values)
        base = (np.full(k, 1.0 / k) if self.probs is None
                else np.array(self.probs, dtype=float))
        base = base / base.sum()
        u = rng.random(n)
        if self.cluster_skew == 0.0:
            idx = np.searchsorted(np.cumsum(base), u, side="right")
        else:
            tilts = np.stack([_cluster_tilt(np.asarray(labels), j) for j in range(k)],
                             axis=1)
            probs = base * (1.0 + self.cluster_skew * tilts)
            np.clip(probs, 1e-12, None, out=probs)
            probs /= probs.sum(axis=1, keepdims=True)
            cdf = np.cumsum(probs, axis=1)
            # Per-row inverse-CDF against the row's own tilted mix.
            idx = (u[:, None] > cdf).sum(axis=1)
        idx = np.minimum(idx, k - 1)
        vals = np.array(self.values, dtype=object)
        return vals[idx].tolist()

    def to_dict(self):
        return {
            **self._base_dict(),
            "values": list(self.values),
            "probs": list(self.probs) if self.probs is not None else None,
            "cluster_skew": self.cluster_skew,
        }

    @classmethod
    def from_dict(cls, data):
        probs = data.get("probs")
        return cls(
            name=data["name"],
            values=tuple(data["values"]),
            probs=tuple(probs) if probs is not None else None,
            cluster_skew=data.get("cluster_skew", 0.0),
            when=cls._when_from(data),
        )


@_register
@dataclass(frozen=True)
class Numeric(AttrField):
    """A numeric column: ``offset + draw(dist, a, b)``, optionally
    clipped to ``[low, high]``, rounded to ``decimals``, cast to int
    with ``integer=True``.  ``cluster_skew`` scales the raw draw
    *multiplicatively* per cluster — ``draw * (1 + skew * tilt)``,
    applied before offset/clip — so positive-valued columns (lognormal
    review counts, Pareto popularity) run hotter in some clusters and
    cooler in others; on a zero-mean column it leaves the mean at zero
    but still scales the per-cluster spread."""

    kind: ClassVar[str] = "numeric"

    name: str
    dist: str = "normal"
    a: float = 0.0
    b: float = 1.0
    offset: float = 0.0
    low: Optional[float] = None
    high: Optional[float] = None
    decimals: Optional[int] = None
    integer: bool = False
    cluster_skew: float = 0.0
    when: Optional[tuple[str, str]] = None

    def __post_init__(self) -> None:
        if self.dist not in NUMERIC_DISTS:
            raise ValueError(
                f"numeric dist must be one of {NUMERIC_DISTS}, got {self.dist!r}"
            )
        if not 0.0 <= self.cluster_skew < 1.0:
            raise ValueError("cluster_skew must be in [0, 1)")

    def sample(self, rng, n, labels):
        if self.dist == "normal":
            x = rng.normal(self.a, self.b, n)
        elif self.dist == "lognormal":
            x = rng.lognormal(self.a, self.b, n)
        elif self.dist == "uniform":
            x = rng.uniform(self.a, self.b, n)
        elif self.dist == "pareto":
            x = (1.0 + rng.pareto(self.a, n)) * self.b
        else:  # exponential
            x = rng.exponential(self.a, n)
        if self.cluster_skew:
            # Phase index derived from the column name (stable CRC, not
            # Python's randomized hash), so two skewed numeric columns
            # in one schema tilt independently rather than in lockstep.
            phase = zlib.crc32(self.name.encode()) % 97
            x = x * (1.0 + self.cluster_skew * _cluster_tilt(np.asarray(labels), phase))
        x = x + self.offset
        if self.low is not None or self.high is not None:
            x = np.clip(x, self.low, self.high)
        if self.integer:
            return np.floor(x).astype(np.int64).tolist()
        if self.decimals is not None:
            x = np.round(x, self.decimals)
        return x.tolist()

    def to_dict(self):
        return {
            **self._base_dict(),
            "dist": self.dist, "a": self.a, "b": self.b, "offset": self.offset,
            "low": self.low, "high": self.high, "decimals": self.decimals,
            "integer": self.integer, "cluster_skew": self.cluster_skew,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            name=data["name"], dist=data.get("dist", "normal"),
            a=data.get("a", 0.0), b=data.get("b", 1.0),
            offset=data.get("offset", 0.0),
            low=data.get("low"), high=data.get("high"),
            decimals=data.get("decimals"), integer=data.get("integer", False),
            cluster_skew=data.get("cluster_skew", 0.0),
            when=cls._when_from(data),
        )


@_register
@dataclass(frozen=True)
class Bernoulli(AttrField):
    """A boolean flag with success probability ``rate``."""

    kind: ClassVar[str] = "bernoulli"

    name: str
    rate: float = 0.5
    when: Optional[tuple[str, str]] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")

    def sample(self, rng, n, labels):
        return (rng.random(n) < self.rate).tolist()

    def to_dict(self):
        return {**self._base_dict(), "rate": self.rate}

    @classmethod
    def from_dict(cls, data):
        return cls(name=data["name"], rate=data.get("rate", 0.5),
                   when=cls._when_from(data))


@_register
@dataclass(frozen=True)
class Indicator(AttrField):
    """Numeric mirror of a categorical: 1 where ``source == value`` —
    so a gender ratio is just ``AVG(is_male)``.  Draws nothing."""

    kind: ClassVar[str] = "indicator"

    name: str
    source: str = ""
    value: str = ""
    when: Optional[tuple[str, str]] = None

    def __post_init__(self) -> None:
        if not self.source:
            raise ValueError("indicator needs a source attribute")

    def sample(self, rng, n, labels):  # resolved against columns later
        raise RuntimeError("Indicator columns are derived, not sampled")

    def to_dict(self):
        return {**self._base_dict(), "source": self.source, "value": self.value}

    @classmethod
    def from_dict(cls, data):
        return cls(name=data["name"], source=data["source"],
                   value=data.get("value", ""), when=cls._when_from(data))


@_register
@dataclass(frozen=True)
class Tag(AttrField):
    """A per-tuple identifier string ``f"{prefix}{tid}"`` (user handles).
    Derived from the assigned tuple id; draws nothing."""

    kind: ClassVar[str] = "tag"

    name: str
    prefix: str = ""
    when: Optional[tuple[str, str]] = None

    def sample(self, rng, n, labels):  # resolved at tuple assembly
        raise RuntimeError("Tag columns are derived, not sampled")

    def to_dict(self):
        return {**self._base_dict(), "prefix": self.prefix}

    @classmethod
    def from_dict(cls, data):
        return cls(name=data["name"], prefix=data.get("prefix", ""),
                   when=cls._when_from(data))


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AttrSchema:
    """The columns of a world plus its visibility model.

    ``visible_rate < 1`` drops that fraction of generated entities from
    the built database — they exist in the modelled population but are
    invisible to the kNN interface (location-disabled users; ``0`` is a
    legal degenerate world where nobody is visible).  Tuple ids stay
    contiguous over the *visible* entities.
    """

    fields: tuple[AttrField, ...] = ()
    visible_rate: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "fields", tuple(self.fields))
        if not 0.0 <= self.visible_rate <= 1.0:
            raise ValueError("visible_rate must be in [0, 1]")
        seen = set()
        for f in self.fields:
            if f.name in seen:
                raise ValueError(f"duplicate attr column {f.name!r}")
            seen.add(f.name)

    # ------------------------------------------------------------------
    def sample_columns(
        self, rng: np.random.Generator, n: int, labels: np.ndarray
    ) -> tuple[dict[str, list], np.ndarray]:
        """``(columns, visible_mask)`` for ``n`` rows.

        Columns are full-length lists; conditional (``when``) rows that
        don't match hold the ``_MISSING`` sentinel and are dropped at
        tuple assembly.  Derived columns (:class:`Indicator`,
        :class:`Tag`) resolve against already-generated columns / tuple
        ids and consume no randomness.
        """
        columns: dict[str, list] = {}
        for f in self.fields:
            if isinstance(f, Indicator):
                src = columns.get(f.source)
                if src is None:
                    raise ValueError(
                        f"indicator {f.name!r} references unknown column {f.source!r}"
                    )
                vals = [
                    (_MISSING if v is _MISSING else int(v == f.value)) for v in src
                ]
            elif isinstance(f, Tag):
                vals = [f.prefix] * n  # completed with the tid at assembly
            else:
                vals = f.sample(rng, n, labels)
            if f.when is not None:
                attr, expected = f.when
                cond = columns.get(attr)
                if cond is None:
                    raise ValueError(
                        f"column {f.name!r} is conditional on unknown column {attr!r}"
                    )
                vals = [
                    v if (c is not _MISSING and c == expected) else _MISSING
                    for v, c in zip(vals, cond)
                ]
            columns[f.name] = vals
        if self.visible_rate < 1.0:
            visible = rng.random(n) < self.visible_rate
        else:
            visible = np.ones(n, dtype=bool)
        return columns, visible

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "fields": [f.to_dict() for f in self.fields],
            "visible_rate": self.visible_rate,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AttrSchema":
        return cls(
            fields=tuple(attr_field_from_dict(f) for f in data.get("fields", ())),
            visible_rate=data.get("visible_rate", 1.0),
        )


def synthesize_tuples(
    rng: np.random.Generator,
    xy: np.ndarray,
    labels: np.ndarray,
    schema: AttrSchema,
    tid_start: int = 0,
) -> list[LbsTuple]:
    """Assemble :class:`~repro.lbs.LbsTuple` rows from sampled locations.

    The shared assembly path of :meth:`WorldSpec.build` and the legacy
    dataset generators: columns draw vectorized, invisible rows are
    dropped, and tuple ids run contiguously from ``tid_start`` over the
    visible rows.
    """
    n = len(xy)
    columns, visible = schema.sample_columns(rng, n, np.asarray(labels))
    names = list(columns)
    tag_fields = {f.name: f.prefix for f in schema.fields if isinstance(f, Tag)}
    tuples: list[LbsTuple] = []
    tid = tid_start
    for i in range(n):
        if not visible[i]:
            continue
        attrs = {}
        for name in names:
            v = columns[name][i]
            if v is _MISSING:
                continue
            attrs[name] = f"{tag_fields[name]}{tid}" if name in tag_fields else v
        tuples.append(LbsTuple(tid, Point(float(xy[i, 0]), float(xy[i, 1])), attrs))
        tid += 1
    return tuples
