"""Declarative attribute schemas with vectorized columnar synthesis.

An :class:`AttrSchema` describes the non-spatial half of a world: the
columns every tuple carries (categorical mixes, clipped/log-normal
numerics, heavy-tailed popularity scores, boolean flags, numeric
mirrors) plus the *visibility rate* — the fraction of generated
entities actually exposed through the service's kNN interface (the
paper's Table-1 caveat: WeChat COUNTs measure location-enabled users,
not registered accounts).

Columns draw in declared order, each in one vectorized NumPy pass over
all ``n`` rows, so synthesis is deterministic (a fixed function of the
generator stream) and fast enough for million-tuple worlds.

Per-cluster conditional skew: categorical and numeric fields accept a
``cluster_skew`` knob that tilts the distribution per spatial-model
component label (see :mod:`repro.worlds.spatial`), deterministically —
downtown clusters get a different category mix than the rural floor,
which is exactly the population-structure axis aggregate-location
studies show estimator behaviour hinges on.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import ClassVar, Optional

import numpy as np

from ..geometry import Point
from ..lbs.columns import Column
from ..lbs.tuples import LbsTuple

__all__ = [
    "AttrField",
    "Constant",
    "Categorical",
    "Numeric",
    "Bernoulli",
    "Indicator",
    "Tag",
    "AttrSchema",
    "attr_field_from_dict",
    "synthesize_columns",
    "synthesize_tuples",
]

#: Distributions :class:`Numeric` can draw from — ``(a, b)`` meaning:
#: normal(mean=a, sigma=b), lognormal(mu=a, sigma=b), uniform(a, b),
#: pareto(shape=a, scale=b) (heavy-tailed popularity/prominence),
#: exponential(scale=a, unused b).
NUMERIC_DISTS = ("normal", "lognormal", "uniform", "pareto", "exponential")

#: Sentinel marking "this row does not carry this column".
_MISSING = object()

_FIELD_KINDS: dict[str, type] = {}


def _register(cls):
    _FIELD_KINDS[cls.kind] = cls
    return cls


def attr_field_from_dict(data: dict) -> "AttrField":
    kind = data.get("kind")
    try:
        cls = _FIELD_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown attr field kind {kind!r}; expected one of {tuple(_FIELD_KINDS)}"
        ) from None
    return cls.from_dict(data)


def _cluster_tilt(labels: np.ndarray, j: int) -> np.ndarray:
    """Deterministic per-(cluster, value) tilt in ``[-1, 1]``.

    A fixed quasi-random phase (golden-angle multiples) — not an RNG
    draw — so the *same* cluster always skews the *same* way for a given
    column, independent of sampling order or world size.  The diffuse
    background (label ``-1``) is tilt-neutral: only *clusters* skew, so
    an unclustered population keeps its declared distribution exactly.
    """
    lab = labels.astype(float)
    return np.where(
        lab < 0.0, 0.0, np.sin((lab + 2.0) * (j + 1.0) * 2.3999632297286533)
    )


class AttrField:
    """One column of a schema.

    ``when = (attr, value)`` makes the column conditional: it is only
    attached to rows whose previously generated ``attr`` equals
    ``value`` (schools carry ``enrollment``, restaurants ``rating``).
    The draw itself always covers all ``n`` rows, keeping the generator
    stream a fixed function of the schema.
    """

    kind: ClassVar[str] = "abstract"
    name: str
    when: Optional[tuple[str, str]]

    def sample(self, rng: np.random.Generator, n: int, labels: np.ndarray) -> list:
        """The column's values as a Python list (legacy row surface)."""
        return self.sample_array(rng, n, labels).tolist()

    def sample_array(
        self, rng: np.random.Generator, n: int, labels: np.ndarray
    ) -> np.ndarray:
        """The column's values as a typed NumPy array — the columnar
        kernel behind :meth:`sample`; both consume the generator stream
        identically."""
        raise NotImplementedError

    def _base_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "when": list(self.when) if self.when is not None else None,
        }

    @staticmethod
    def _when_from(data: dict) -> Optional[tuple[str, str]]:
        w = data.get("when")
        return tuple(w) if w is not None else None


@_register
@dataclass(frozen=True)
class Constant(AttrField):
    """The same value on every row (category tags etc.)."""

    kind: ClassVar[str] = "constant"

    name: str
    value: object = None
    when: Optional[tuple[str, str]] = None

    def sample_array(self, rng, n, labels):
        arr = np.empty(n, dtype=object)
        arr.fill(self.value)
        return arr

    def to_dict(self):
        return {**self._base_dict(), "value": self.value}

    @classmethod
    def from_dict(cls, data):
        return cls(name=data["name"], value=data.get("value"),
                   when=cls._when_from(data))


@_register
@dataclass(frozen=True)
class Categorical(AttrField):
    """A categorical mix, optionally tilted per spatial cluster.

    ``cluster_skew`` in ``[0, 1)`` reweights ``probs`` per component
    label by a deterministic tilt, so different clusters carry visibly
    different mixes.  Background rows (label ``-1``) always keep the
    declared ``probs``; the *global* marginal therefore matches
    ``probs`` exactly on unclustered populations and drifts from it only
    to the extent that unevenly-sized clusters tilt in the same
    direction (Zipf worlds do — the realized ground truth is whatever
    the built database holds, not the declared mix).
    """

    kind: ClassVar[str] = "categorical"

    name: str
    values: tuple[str, ...] = ()
    probs: Optional[tuple[float, ...]] = None
    cluster_skew: float = 0.0
    when: Optional[tuple[str, str]] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))
        if self.probs is not None:
            object.__setattr__(self, "probs", tuple(self.probs))
        if not self.values:
            raise ValueError("categorical field needs values")
        if self.probs is not None and len(self.probs) != len(self.values):
            raise ValueError("probs must match values")
        if not 0.0 <= self.cluster_skew < 1.0:
            raise ValueError("cluster_skew must be in [0, 1)")

    def sample_array(self, rng, n, labels):
        k = len(self.values)
        base = (np.full(k, 1.0 / k) if self.probs is None
                else np.array(self.probs, dtype=float))
        base = base / base.sum()
        u = rng.random(n)
        if self.cluster_skew == 0.0:
            idx = np.searchsorted(np.cumsum(base), u, side="right")
        else:
            tilts = np.stack([_cluster_tilt(np.asarray(labels), j) for j in range(k)],
                             axis=1)
            probs = base * (1.0 + self.cluster_skew * tilts)
            np.clip(probs, 1e-12, None, out=probs)
            probs /= probs.sum(axis=1, keepdims=True)
            cdf = np.cumsum(probs, axis=1)
            # Per-row inverse-CDF against the row's own tilted mix.
            idx = (u[:, None] > cdf).sum(axis=1)
        idx = np.minimum(idx, k - 1)
        vals = np.array(self.values, dtype=object)
        return vals[idx]

    def to_dict(self):
        return {
            **self._base_dict(),
            "values": list(self.values),
            "probs": list(self.probs) if self.probs is not None else None,
            "cluster_skew": self.cluster_skew,
        }

    @classmethod
    def from_dict(cls, data):
        probs = data.get("probs")
        return cls(
            name=data["name"],
            values=tuple(data["values"]),
            probs=tuple(probs) if probs is not None else None,
            cluster_skew=data.get("cluster_skew", 0.0),
            when=cls._when_from(data),
        )


@_register
@dataclass(frozen=True)
class Numeric(AttrField):
    """A numeric column: ``offset + draw(dist, a, b)``, optionally
    clipped to ``[low, high]``, rounded to ``decimals``, cast to int
    with ``integer=True``.  ``cluster_skew`` scales the raw draw
    *multiplicatively* per cluster — ``draw * (1 + skew * tilt)``,
    applied before offset/clip — so positive-valued columns (lognormal
    review counts, Pareto popularity) run hotter in some clusters and
    cooler in others; on a zero-mean column it leaves the mean at zero
    but still scales the per-cluster spread."""

    kind: ClassVar[str] = "numeric"

    name: str
    dist: str = "normal"
    a: float = 0.0
    b: float = 1.0
    offset: float = 0.0
    low: Optional[float] = None
    high: Optional[float] = None
    decimals: Optional[int] = None
    integer: bool = False
    cluster_skew: float = 0.0
    when: Optional[tuple[str, str]] = None

    def __post_init__(self) -> None:
        if self.dist not in NUMERIC_DISTS:
            raise ValueError(
                f"numeric dist must be one of {NUMERIC_DISTS}, got {self.dist!r}"
            )
        if not 0.0 <= self.cluster_skew < 1.0:
            raise ValueError("cluster_skew must be in [0, 1)")

    def sample_array(self, rng, n, labels):
        if self.dist == "normal":
            x = rng.normal(self.a, self.b, n)
        elif self.dist == "lognormal":
            x = rng.lognormal(self.a, self.b, n)
        elif self.dist == "uniform":
            x = rng.uniform(self.a, self.b, n)
        elif self.dist == "pareto":
            x = (1.0 + rng.pareto(self.a, n)) * self.b
        else:  # exponential
            x = rng.exponential(self.a, n)
        if self.cluster_skew:
            # Phase index derived from the column name (stable CRC, not
            # Python's randomized hash), so two skewed numeric columns
            # in one schema tilt independently rather than in lockstep.
            phase = zlib.crc32(self.name.encode()) % 97
            x = x * (1.0 + self.cluster_skew * _cluster_tilt(np.asarray(labels), phase))
        x = x + self.offset
        if self.low is not None or self.high is not None:
            x = np.clip(x, self.low, self.high)
        if self.integer:
            return np.floor(x).astype(np.int64)
        if self.decimals is not None:
            x = np.round(x, self.decimals)
        return x

    def to_dict(self):
        return {
            **self._base_dict(),
            "dist": self.dist, "a": self.a, "b": self.b, "offset": self.offset,
            "low": self.low, "high": self.high, "decimals": self.decimals,
            "integer": self.integer, "cluster_skew": self.cluster_skew,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            name=data["name"], dist=data.get("dist", "normal"),
            a=data.get("a", 0.0), b=data.get("b", 1.0),
            offset=data.get("offset", 0.0),
            low=data.get("low"), high=data.get("high"),
            decimals=data.get("decimals"), integer=data.get("integer", False),
            cluster_skew=data.get("cluster_skew", 0.0),
            when=cls._when_from(data),
        )


@_register
@dataclass(frozen=True)
class Bernoulli(AttrField):
    """A boolean flag with success probability ``rate``."""

    kind: ClassVar[str] = "bernoulli"

    name: str
    rate: float = 0.5
    when: Optional[tuple[str, str]] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")

    def sample_array(self, rng, n, labels):
        return rng.random(n) < self.rate

    def to_dict(self):
        return {**self._base_dict(), "rate": self.rate}

    @classmethod
    def from_dict(cls, data):
        return cls(name=data["name"], rate=data.get("rate", 0.5),
                   when=cls._when_from(data))


@_register
@dataclass(frozen=True)
class Indicator(AttrField):
    """Numeric mirror of a categorical: 1 where ``source == value`` —
    so a gender ratio is just ``AVG(is_male)``.  Draws nothing."""

    kind: ClassVar[str] = "indicator"

    name: str
    source: str = ""
    value: str = ""
    when: Optional[tuple[str, str]] = None

    def __post_init__(self) -> None:
        if not self.source:
            raise ValueError("indicator needs a source attribute")

    def sample(self, rng, n, labels):  # resolved against columns later
        raise RuntimeError("Indicator columns are derived, not sampled")

    def to_dict(self):
        return {**self._base_dict(), "source": self.source, "value": self.value}

    @classmethod
    def from_dict(cls, data):
        return cls(name=data["name"], source=data["source"],
                   value=data.get("value", ""), when=cls._when_from(data))


@_register
@dataclass(frozen=True)
class Tag(AttrField):
    """A per-tuple identifier string ``f"{prefix}{tid}"`` (user handles).
    Derived from the assigned tuple id; draws nothing."""

    kind: ClassVar[str] = "tag"

    name: str
    prefix: str = ""
    when: Optional[tuple[str, str]] = None

    def sample(self, rng, n, labels):  # resolved at tuple assembly
        raise RuntimeError("Tag columns are derived, not sampled")

    def to_dict(self):
        return {**self._base_dict(), "prefix": self.prefix}

    @classmethod
    def from_dict(cls, data):
        return cls(name=data["name"], prefix=data.get("prefix", ""),
                   when=cls._when_from(data))


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AttrSchema:
    """The columns of a world plus its visibility model.

    ``visible_rate < 1`` drops that fraction of generated entities from
    the built database — they exist in the modelled population but are
    invisible to the kNN interface (location-disabled users; ``0`` is a
    legal degenerate world where nobody is visible).  Tuple ids stay
    contiguous over the *visible* entities.
    """

    fields: tuple[AttrField, ...] = ()
    visible_rate: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "fields", tuple(self.fields))
        if not 0.0 <= self.visible_rate <= 1.0:
            raise ValueError("visible_rate must be in [0, 1]")
        seen = set()
        for f in self.fields:
            if f.name in seen:
                raise ValueError(f"duplicate attr column {f.name!r}")
            seen.add(f.name)

    # ------------------------------------------------------------------
    def sample_column_arrays(
        self, rng: np.random.Generator, n: int, labels: np.ndarray
    ) -> tuple[dict[str, Column], np.ndarray]:
        """``(columns, visible_mask)`` for ``n`` rows, fully columnar.

        Each column is a typed :class:`~repro.lbs.columns.Column` whose
        null mask marks conditional (``when``) rows that don't match.
        Derived columns (:class:`Indicator`, :class:`Tag`) resolve
        against already-generated columns / tuple ids and consume no
        randomness, so the generator stream is identical to the legacy
        list-valued :meth:`sample_columns`.
        """
        labels = np.asarray(labels)
        columns: dict[str, Column] = {}
        for f in self.fields:
            present: Optional[np.ndarray] = None
            if isinstance(f, Indicator):
                src = columns.get(f.source)
                if src is None:
                    raise ValueError(
                        f"indicator {f.name!r} references unknown column {f.source!r}"
                    )
                vals = np.asarray(src.values == f.value).astype(np.int64)
                present = src.present
            elif isinstance(f, Tag):
                vals = np.empty(n, dtype=object)
                vals.fill(f.prefix)  # completed with the tid at assembly
            else:
                vals = f.sample_array(rng, n, labels)
            if f.when is not None:
                attr, expected = f.when
                cond = columns.get(attr)
                if cond is None:
                    raise ValueError(
                        f"column {f.name!r} is conditional on unknown column {attr!r}"
                    )
                match = np.asarray(cond.values == expected)
                if match.dtype != bool or match.shape != (n,):
                    match = np.fromiter(
                        (v == expected for v in cond.values.tolist()), bool, n
                    )
                if cond.present is not None:
                    match = match & cond.present
                present = match if present is None else (present & match)
            columns[f.name] = Column(vals, present)
        if self.visible_rate < 1.0:
            visible = rng.random(n) < self.visible_rate
        else:
            visible = np.ones(n, dtype=bool)
        return columns, visible

    def sample_columns(
        self, rng: np.random.Generator, n: int, labels: np.ndarray
    ) -> tuple[dict[str, list], np.ndarray]:
        """``(columns, visible_mask)`` for ``n`` rows (legacy surface).

        Columns are full-length Python lists; conditional (``when``)
        rows that don't match hold the ``_MISSING`` sentinel.  A thin
        view over :meth:`sample_column_arrays`.
        """
        arrays, visible = self.sample_column_arrays(rng, n, labels)
        columns: dict[str, list] = {}
        for name, col in arrays.items():
            vals = col.to_list()
            if col.present is not None:
                vals = [
                    v if p else _MISSING
                    for v, p in zip(vals, col.present.tolist())
                ]
            columns[name] = vals
        return columns, visible

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "fields": [f.to_dict() for f in self.fields],
            "visible_rate": self.visible_rate,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AttrSchema":
        return cls(
            fields=tuple(attr_field_from_dict(f) for f in data.get("fields", ())),
            visible_rate=data.get("visible_rate", 1.0),
        )


def synthesize_columns(
    rng: np.random.Generator,
    xy: np.ndarray,
    labels: np.ndarray,
    schema: AttrSchema,
    tid_start: int = 0,
) -> tuple[np.ndarray, np.ndarray, dict[str, Column]]:
    """Columnar world synthesis: ``(xy, tids, columns)`` of the visible rows.

    The zero-copy feed of :meth:`SpatialDatabase.from_columns`: columns
    draw vectorized, invisible rows are sliced away, tuple ids run
    contiguously from ``tid_start`` over the visible rows, and
    :class:`Tag` columns complete to ``f"{prefix}{tid}"`` in one
    vectorized string pass.  No per-tuple objects are built — the
    ~10x ingest win of million-tuple worlds.  The generator stream is
    identical to :func:`synthesize_tuples`, which assembles the same
    columns into rows.
    """
    n = len(xy)
    columns, visible = schema.sample_column_arrays(rng, n, np.asarray(labels))
    idx = np.nonzero(np.asarray(visible))[0]
    xyv = np.ascontiguousarray(np.asarray(xy, dtype=np.float64)[idx])
    tids = tid_start + np.arange(idx.size, dtype=np.int64)
    tag_fields = {f.name: f.prefix for f in schema.fields if isinstance(f, Tag)}
    out: dict[str, Column] = {}
    for name, col in columns.items():
        taken = col.take(idx)
        if name in tag_fields:
            tagged = np.empty(idx.size, dtype=object)
            tagged[:] = np.char.add(tag_fields[name], tids.astype("U")).tolist()
            taken = Column(tagged, taken.present)
        out[name] = taken
    return xyv, tids, out


def synthesize_tuples(
    rng: np.random.Generator,
    xy: np.ndarray,
    labels: np.ndarray,
    schema: AttrSchema,
    tid_start: int = 0,
) -> list[LbsTuple]:
    """Assemble :class:`~repro.lbs.LbsTuple` rows from sampled locations.

    The row-oriented sibling of :func:`synthesize_columns` (same
    generator stream, same values): columns draw vectorized and are
    then materialized into per-tuple attrs dicts.  Kept for the legacy
    dataset surface and the row/columnar equivalence suites; large
    world builds go through the columnar path.
    """
    xyv, tids, columns = synthesize_columns(rng, xy, labels, schema, tid_start)
    names = list(columns)
    tuples: list[LbsTuple] = []
    for j in range(len(tids)):
        attrs = {}
        for name in names:
            col = columns[name]
            if col.present_at(j):
                attrs[name] = col.value_at(j)
        tuples.append(
            LbsTuple(int(tids[j]), Point(float(xyv[j, 0]), float(xyv[j, 1])), attrs)
        )
    return tuples
