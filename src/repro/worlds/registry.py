"""Named world scenarios — the library's workload gallery.

Every entry is a complete :class:`~repro.worlds.WorldSpec`; nothing
here is code, only declarative values, so any scenario serializes into
an :class:`~repro.api.EstimationSpec` and rebuilds bit-identically
anywhere.  ``build("paper/clustered")`` gives a live world;
``get(name).with_size(1_000_000)`` is the scaling axis the
``bench_scaling`` trajectory sweeps.

The gallery spans the population-structure axes estimator behaviour
hinges on: spatial skew (uniform → Zipf hotspots → road networks),
attribute skew (per-cluster category mixes, heavy-tailed popularity),
and visibility (location-enabled rates below 1).
"""

from __future__ import annotations

from typing import Optional

from .attrs import (
    AttrSchema,
    Bernoulli,
    Categorical,
    Indicator,
    Numeric,
    Tag,
)
from .region import RegionSpec
from .spatial import (
    GaussianClusters,
    MixtureField,
    RingRoad,
    UniformField,
    ZipfHotspots,
)
from .spec import CensusSpec, WorldSpec

__all__ = ["register", "get", "names", "specs", "build",
           "poi_fields", "user_fields"]

#: Restaurant brand mix shared with :mod:`repro.datasets.pois`.
BRANDS = ("starbucks", "mozart", "bluebottle", "independent")
BRAND_PROBS = (0.08, 0.05, 0.03, 0.84)


def poi_fields(cluster_skew: float = 0.0) -> tuple:
    """The OSM-like POI columns (paper §6.1): a category mix with
    Maps-style restaurant attributes and Census-style enrollment."""
    return (
        Categorical("category", ("restaurant", "school", "bank", "cafe"),
                    (0.5, 0.25, 0.125, 0.125), cluster_skew=cluster_skew),
        Numeric("rating", "normal", 3.8, 0.7, low=1.0, high=5.0, decimals=1,
                when=("category", "restaurant")),
        Bernoulli("open_sundays", 0.6, when=("category", "restaurant")),
        Categorical("brand", BRANDS, BRAND_PROBS, when=("category", "restaurant")),
        Numeric("review_count", "lognormal", 3.0, 1.0, offset=1.0, integer=True,
                when=("category", "restaurant")),
        Numeric("enrollment", "lognormal", 6.2, 0.7, offset=20.0, integer=True,
                when=("category", "school")),
    )


def user_fields(male_fraction: float) -> tuple:
    """Social-network profile columns (WeChat / Weibo style, §6.3)."""
    return (
        Categorical("gender", ("m", "f"), (male_fraction, 1.0 - male_fraction)),
        Indicator("is_male", source="gender", value="m"),
        Tag("name", prefix="user"),
    )


_REGISTRY: dict[str, WorldSpec] = {}


def register(spec: WorldSpec, *, replace: bool = False) -> WorldSpec:
    """Add a named spec to the registry (``spec.name`` is the key)."""
    if not spec.name:
        raise ValueError("registry specs need a name")
    if spec.name in _REGISTRY and not replace:
        raise ValueError(f"world {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get(name: str) -> WorldSpec:
    """The registered spec (frozen; ``.replace()``/``.with_size()`` to vary)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown world {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def names() -> list[str]:
    return sorted(_REGISTRY)


def specs() -> list[WorldSpec]:
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def build(name: str, *, seed: Optional[int] = None, n: Optional[int] = None):
    """Build a registered world, optionally rescaled / reseeded."""
    spec = get(name)
    if n is not None:
        spec = spec.with_size(n)
    return spec.build(seed=seed)


# ----------------------------------------------------------------------
# The gallery.
# ----------------------------------------------------------------------

#: The paper's uniform synthetic baseline: no spatial structure at all —
#: every Voronoi cell is about the same size, the easy case.
register(WorldSpec(
    name="paper/uniform-10k",
    region=RegionSpec.named("small"),
    n=10_000,
    spatial=UniformField(),
    attrs=AttrSchema(fields=poi_fields()),
    census=CensusSpec(nx=24, ny=18, noise=0.0),
))

#: The paper's real workload shape: Zipf-weighted metro areas over a
#: rural floor (Fig-11 skew — top-1 cells spanning orders of magnitude).
register(WorldSpec(
    name="paper/clustered",
    region=RegionSpec.named("small"),
    n=10_000,
    spatial=ZipfHotspots(n_hotspots=40, sigma_fraction=0.015, background=0.2),
    attrs=AttrSchema(fields=poi_fields()),
    census=CensusSpec(nx=24, ny=18, noise=0.1),
))

#: Places-style prominence workload: hotspot POIs carrying a heavy-tailed
#: popularity score for §5.3 prominence-ranked interfaces.
register(WorldSpec(
    name="paper/places-prominence",
    region=RegionSpec.named("small"),
    n=10_000,
    spatial=ZipfHotspots(n_hotspots=25, sigma_fraction=0.02, background=0.15),
    attrs=AttrSchema(fields=poi_fields() + (
        Numeric("popularity", "pareto", 1.5, 1.0, decimals=3),
    )),
    census=CensusSpec(nx=24, ny=18, noise=0.1),
))

#: WeChat-scale social world: a million users over China-scale Zipf
#: metros, 67.1% male (the paper's Table-1 estimate), 10% of accounts
#: location-disabled and therefore invisible to the nearby-people API.
register(WorldSpec(
    name="wechat-like-1m",
    region=RegionSpec.named("china"),
    n=1_000_000,
    spatial=ZipfHotspots(n_hotspots=60, sigma_fraction=0.008, background=0.1,
                         layout_seed=1),
    attrs=AttrSchema(fields=user_fields(0.671), visible_rate=0.9),
    census=CensusSpec(nx=32, ny=22, noise=0.1),
))

#: Weibo-style counterpart: balanced genders, lower visibility.
register(WorldSpec(
    name="weibo-like-100k",
    region=RegionSpec.named("china"),
    n=100_000,
    spatial=ZipfHotspots(n_hotspots=80, sigma_fraction=0.01, background=0.15,
                         layout_seed=2),
    attrs=AttrSchema(fields=user_fields(0.504), visible_rate=0.8),
    census=CensusSpec(nx=32, ny=22, noise=0.1),
))

#: A ring city with two arterial roads — population on a transport
#: skeleton, the degenerate-Voronoi stress shape no Gaussian mixture
#: produces.
register(WorldSpec(
    name="ring-city",
    region=RegionSpec.named("small"),
    n=10_000,
    spatial=RingRoad(
        rings=((0.5, 0.5, 0.3),),
        roads=((0.05, 0.05, 0.95, 0.95), (0.05, 0.95, 0.95, 0.05)),
        width_fraction=0.012,
        background=0.1,
    ),
    attrs=AttrSchema(fields=poi_fields()),
    census=CensusSpec(nx=24, ny=18, noise=0.0),
))

#: Three explicit metros over a uniform rural floor, with per-cluster
#: category skew: downtown mixes differ visibly from the countryside.
register(WorldSpec(
    name="mixture-metro-rural",
    region=RegionSpec.named("small"),
    n=10_000,
    spatial=MixtureField(components=(
        (0.65, GaussianClusters(
            centers=((0.2, 0.3), (0.55, 0.7), (0.85, 0.25)),
            sigmas=(0.03, 0.05, 0.02),
            weights=(3.0, 2.0, 1.0),
            background=0.0,
        )),
        (0.35, UniformField()),
    )),
    attrs=AttrSchema(fields=poi_fields(cluster_skew=0.35)),
    census=CensusSpec(nx=24, ny=18, noise=0.05),
))
