"""Persistent on-disk cache of built worlds, keyed by content hash.

Building a million-tuple world from its :class:`~repro.worlds.WorldSpec`
costs seconds of synthesis; loading one back from this cache costs a
handful of ``np.load(mmap_mode="r")`` calls.  Entries are keyed by
:meth:`WorldSpec.content_hash` — a sha256 over the spec's canonical
sorted-key JSON, salted with
:data:`~repro.worlds.spec.WORLD_CACHE_FORMAT` — so equal hashes mean
bit-identical built worlds, and a format bump retires every stale entry
at once.

Entry layout (one directory per hash)::

    <root>/<sha256>/
        meta.json            format, spec, column manifest
        xy.npy               (N, 2) float64 coordinates
        tids.npy             (N,) int64 tuple ids
        col000.npy           per-column values (mmappable encodings)
        col000.present.npy   per-column null mask, when any
        census.npy           census raster weights, when any

Writes are atomic: the entry is assembled in a hidden sibling directory
and published with one ``os.replace``; a reader can never observe a
half-written entry, and concurrent writers race benignly (the loser
discards its copy).  Loaded coordinate/tid/typed-column arrays are
read-only mmap views — :meth:`SpatialDatabase.from_columns` adopts them
zero-copy and freezes them like any other ingest — so a cache hit pays
no deserialization proportional to the world size.
"""

from __future__ import annotations

import json
import os
import shutil
import warnings
from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..lbs.columns import Column
from ..lbs.database import SpatialDatabase
from ..obs import registry as _obs
from ..obs.tracing import span as _span
from ..worlds.spec import WORLD_CACHE_FORMAT, World, WorldSpec
from ._codec import OBJECT, encode_column_values

__all__ = ["WorldCache", "WorldCacheError"]

_META = "meta.json"


class WorldCacheError(RuntimeError):
    """A cache entry exists but cannot be loaded (corrupt or foreign)."""


class WorldCache:
    """A directory of built worlds, addressed by spec content hash.

    ``load_or_build`` is the whole workflow::

        cache = WorldCache("~/.cache/repro-worlds")
        world = cache.load_or_build(spec)     # builds + stores on miss

    ``hits``/``misses`` count this instance's outcomes (the perf
    benchmarks read them); an unreadable entry is evicted and rebuilt
    rather than trusted.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def entry_path(self, spec: WorldSpec) -> Path:
        """Where the given spec's built world lives (existing or not)."""
        return self.root / spec.content_hash()

    def has(self, spec: WorldSpec) -> bool:
        return (self.entry_path(spec) / _META).is_file()

    # ------------------------------------------------------------------
    def store(self, world: World) -> Path:
        """Persist a built world; returns its entry path.

        A no-op when the entry already exists (same hash ⇒ same bits).
        The entry is staged in a hidden temp directory and published
        atomically; losing a publish race to another process is treated
        as success.
        """
        spec = getattr(world, "spec", None)
        if not isinstance(spec, WorldSpec):
            raise TypeError(
                "only worlds built from a WorldSpec can be cached "
                "(the spec is the cache key); got a world without one"
            )
        final = self.entry_path(spec)
        if (final / _META).is_file():
            return final
        tmp = self.root / f".tmp-{spec.content_hash()}-{os.getpid()}"
        if tmp.exists():
            shutil.rmtree(tmp)
        tmp.mkdir(parents=True)
        try:
            self._write_entry(tmp, world, spec)
            try:
                os.replace(tmp, final)
            except OSError:
                # Another process published the same entry first (the
                # target is a non-empty directory).  Same hash, same
                # bits: their copy serves.
                if not (final / _META).is_file():
                    raise
                shutil.rmtree(tmp, ignore_errors=True)
        except BaseException:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        return final

    def _write_entry(self, path: Path, world: World, spec: WorldSpec) -> None:
        db: SpatialDatabase = world.db
        np.save(path / "xy.npy", db.coords)
        np.save(path / "tids.npy", db.tids)
        manifest = []
        for i, name in enumerate(db.column_names()):
            col = db.column(name)
            encoding, values = encode_column_values(col)
            np.save(path / f"col{i:03d}.npy", values,
                    allow_pickle=encoding == OBJECT)
            if col.present is not None:
                np.save(path / f"col{i:03d}.present.npy", col.present)
            manifest.append({
                "name": name,
                "encoding": encoding,
                "present": col.present is not None,
            })
        has_census = world.census is not None
        if has_census:
            np.save(path / "census.npy", world.census.weights)
        meta = {
            "format": WORLD_CACHE_FORMAT,
            "world": spec.to_dict(),
            "columns": manifest,
            "census": has_census,
            "n": len(db),
        }
        # meta.json last within the staging dir, then the atomic publish:
        # an entry directory with a meta file is complete by construction.
        with open(path / _META, "w", encoding="utf-8") as f:
            json.dump(meta, f, indent=1, sort_keys=True)

    # ------------------------------------------------------------------
    def load(self, spec: WorldSpec) -> Optional[World]:
        """The cached world for ``spec``, or ``None`` on a miss.

        Raises :class:`WorldCacheError` when an entry is present but
        unreadable or inconsistent (wrong format, hash mismatch,
        missing arrays) — callers decide whether to evict.
        """
        path = self.entry_path(spec)
        if not (path / _META).is_file():
            return None
        try:
            return self._read_entry(path, spec)
        except WorldCacheError:
            raise
        except Exception as exc:
            raise WorldCacheError(f"cannot load cache entry {path}: {exc}") from exc

    def _read_entry(self, path: Path, spec: WorldSpec) -> World:
        with open(path / _META, encoding="utf-8") as f:
            meta = json.load(f)
        if meta.get("format") != WORLD_CACHE_FORMAT:
            raise WorldCacheError(
                f"cache entry {path} has format {meta.get('format')!r}, "
                f"this release writes {WORLD_CACHE_FORMAT}"
            )
        stored = WorldSpec.from_dict(meta["world"])
        if stored.content_hash() != path.name:
            raise WorldCacheError(
                f"cache entry {path} describes a different world than its "
                "hash claims — evict and rebuild"
            )
        xy = np.load(path / "xy.npy", mmap_mode="r")
        tids = np.load(path / "tids.npy", mmap_mode="r")
        columns: dict[str, Column] = {}
        for i, entry in enumerate(meta["columns"]):
            if entry["encoding"] == OBJECT:
                values = np.load(path / f"col{i:03d}.npy", allow_pickle=True)
            else:
                values = np.load(path / f"col{i:03d}.npy", mmap_mode="r")
            present = None
            if entry["present"]:
                present = np.load(path / f"col{i:03d}.present.npy", mmap_mode="r")
            columns[entry["name"]] = Column(values, present)
        db = SpatialDatabase.from_columns(xy, tids, columns, stored.region.rect)
        census = None
        if meta.get("census"):
            # PopulationGrid re-derives everything from (region, weights),
            # exactly as the spec build does internally — same sampler
            # behaviour, bit for bit.  Imported lazily to keep the
            # datasets-wraps-worlds import graph one-directional.
            from ..datasets.census import PopulationGrid

            census = PopulationGrid(
                stored.region.rect, np.load(path / "census.npy", mmap_mode="r")
            )
        return World(spec=stored, db=db, census=census)

    # ------------------------------------------------------------------
    def load_or_build(
        self, spec: WorldSpec, seed: Optional[int] = None
    ) -> World:
        """The world this spec builds: cached when possible, else built
        and stored.

        ``seed`` overrides the spec's own, exactly like
        :meth:`WorldSpec.build` — the override becomes part of the
        cache key (it changes the built world).  An unreadable entry is
        evicted and rebuilt.
        """
        if seed is not None:
            spec = spec.replace(seed=seed)
        try:
            with _span("world_cache_load"):
                world = self.load(spec)
        except WorldCacheError:
            self.evict(spec)
            world = None
        reg = _obs._active
        if world is not None:
            self.hits += 1
            if reg is not None:
                reg.inc("world_cache_hits_total")
            return world
        self.misses += 1
        if reg is not None:
            reg.inc("world_cache_misses_total")
        with _span("world_build"):
            world = spec.build()
        self.store(world)
        return world

    # ------------------------------------------------------------------
    def evict(self, spec: WorldSpec) -> bool:
        """Remove the entry for ``spec``; ``True`` if one existed."""
        path = self.entry_path(spec)
        if not path.exists():
            return False
        shutil.rmtree(path, ignore_errors=True)
        return True

    def prune_staging(self) -> int:
        """Delete leftover ``.tmp-*`` staging directories of crashed
        writers; returns how many were removed.  Never touches published
        entries or another live writer's fresh staging area (same-pid
        directories are left alone)."""
        removed = 0
        for entry in self.root.glob(".tmp-*"):
            if entry.name.endswith(f"-{os.getpid()}"):
                continue
            shutil.rmtree(entry, ignore_errors=True)
            removed += 1
        return removed

    def counters(self) -> dict:
        """Hit/miss counters plus how many entries are on disk.

        Counters are per-instance and live for the instance's lifetime.
        When an :mod:`repro.obs` registry is active, the same outcomes
        also stream into ``world_cache_hits_total`` /
        ``world_cache_misses_total``.
        """
        entries = sum(1 for p in self.root.iterdir()
                      if p.is_dir() and not p.name.startswith("."))
        return {"hits": self.hits, "misses": self.misses, "entries": entries}

    def stats(self) -> dict:
        """Deprecated alias of :meth:`counters`."""
        warnings.warn(
            "WorldCache.stats() is deprecated; use counters() "
            "(and the repro.obs registry for cross-process aggregation)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.counters()
