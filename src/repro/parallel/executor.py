"""Process-pool execution of estimation runs over one shared world.

:func:`run_many_parallel` takes fully declarative runs — specs that all
embed the *same* :class:`~repro.worlds.WorldSpec`, paired with stopping
rules — builds (or cache-loads) the world once, exports it over shared
memory, and fans the runs across a pool of worker processes.  Results
are **bit-identical** to driving the same specs sequentially through
:func:`repro.api.run_many`: runs are independent (each owns its seed,
RNG stream, budget, and answer cache), so distributing them changes
nothing about what any single run computes.

What is shared, and why it is safe:

* the database columns — read-only shared-memory views (a worker
  physically cannot mutate them);
* realized obfuscation jitters — the parent pre-draws each distinct
  :class:`~repro.lbs.ObfuscationModel`'s ``(N, 2)`` effective-coordinate
  array with the exact interface-construction arithmetic (draw + region
  clamp) and exports it, so workers skip the draw *and* all runs agree
  on the service's positions exactly as rebuilt interfaces do;
* per-worker spatial indexes — each worker builds the index for a given
  (coordinates, backend) combination once and reuses it across the runs
  it executes; index construction is deterministic, so a shared index
  answers bit-identically to a per-run one.

Workers stream a :class:`RunProgress` event per checkpoint over the
result queue, and optionally persist each run's
:meth:`~repro.api.SessionRun.to_state` JSON (atomic replace) every
``state_every`` samples — a run interrupted mid-stream resumes from its
checkpoint file via :meth:`repro.api.Session.resume` like any
sequential run.  A run that raises is reported with its spec and full
traceback and the pool *keeps going*; after every run is accounted for,
:class:`ParallelRunError` carries the failures plus all completed
results (and completed runs' checkpoint files stay on disk).
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing as mp
import os
import queue as queue_mod
import traceback
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Union

import numpy as np

from ..api.session import Session, SessionRun
from ..api.spec import EstimationSpec
from ..core import QueryEngineConfig, StoppingRule
from ..index import make_index_arrays
from ..obs import registry as _obs
from ..stats import EstimationResult
from ..worlds.spec import World, WorldSpec
from .sharedmem import SharedWorld, cleanup_stale_segments
from .worldcache import WorldCache

__all__ = ["run_many_parallel", "ParallelRunError", "RunProgress"]


@dataclass(frozen=True)
class RunProgress:
    """One worker-side checkpoint, streamed to the coordinating process."""

    run_index: int
    samples: int
    queries: int
    estimate: float


class ParallelRunError(RuntimeError):
    """One or more parallel runs failed (the rest completed normally).

    ``failures`` lists ``(run_index, spec_json, traceback_text)`` per
    failed run; ``results`` is the full result list with ``None`` at
    the failed slots, so completed work is never thrown away.
    """

    def __init__(self, failures: list, results: list):
        self.failures = failures
        self.results = results
        lines = [f"{len(failures)} of {len(results)} parallel runs failed:"]
        for run_index, spec_json, tb in failures:
            last = tb.strip().splitlines()[-1] if tb.strip() else "unknown error"
            lines.append(f"  run {run_index}: {last}")
            lines.append(f"    spec: {spec_json}")
        lines.append("full tracebacks are in .failures; completed results in .results")
        super().__init__("\n".join(lines))


# ----------------------------------------------------------------------
# Parent-side helpers
# ----------------------------------------------------------------------
def _effective_coords_key(obfuscation) -> str:
    """Stable name for one obfuscation model's realized jitter array."""
    text = json.dumps(obfuscation.to_dict(), sort_keys=True)
    return "eff-" + hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def _realize_effective_coords(db, obfuscation) -> np.ndarray:
    """Exactly the draw-and-clamp an interface performs at construction
    (see ``KnnInterface.__init__``) — bit-identity depends on it."""
    region = db.region
    eff = obfuscation.effective_coords(db.coords, db.tids)
    eff[:, 0] = np.minimum(np.maximum(eff[:, 0], region.x0), region.x1)
    eff[:, 1] = np.minimum(np.maximum(eff[:, 1], region.y0), region.y1)
    return eff


def _default_context() -> mp.context.BaseContext:
    # fork shares the parent's loaded modules for free; spawn is the
    # portable fallback (everything shipped to workers pickles).
    method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    return mp.get_context(method)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _write_json_atomic(path: str, payload: dict) -> None:
    tmp = f"{path}.tmp-{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as f:
        json.dump(payload, f)
    os.replace(tmp, path)


def _execute_run(world, db, shared, indexes, run_index, spec_json, until,
                 eff_key, results_q, checkpoint_dir, state_every):
    spec = EstimationSpec.from_json(spec_json)
    eff = shared.extra(eff_key) if eff_key is not None else None
    engine = spec.engine if spec.engine is not None else QueryEngineConfig()
    index_key = (eff_key, engine.index_backend, engine.auto_brute_max,
                 engine.auto_sharded_min)
    index = indexes.get(index_key)
    if index is None:
        coords = eff if eff is not None else db.coords
        index = indexes[index_key] = make_index_arrays(
            coords, db.tids, engine.index_backend,
            auto_brute_max=engine.auto_brute_max,
            auto_sharded_min=engine.auto_sharded_min,
        )
    driver = Session(world, spec).build(effective_coords=eff, index=index)
    run = SessionRun(spec, driver, until, batch_size=spec.batch_size,
                     state_every=None, queries_start=0)
    state_path = None
    if checkpoint_dir is not None:
        state_path = os.path.join(checkpoint_dir, f"run-{run_index:03d}.state.json")
    for cp in run:
        results_q.put(("progress", run_index, cp.samples, cp.queries, cp.estimate))
        if state_path is not None and state_every is not None \
                and cp.samples % state_every == 0:
            # Between checkpoint yields the iterator is at rest, so
            # to_state() is a valid pause snapshot — the rolling
            # checkpoint a killed run resumes from.
            _write_json_atomic(state_path, run.to_state())
    if state_path is not None:
        _write_json_atomic(state_path, run.to_state())
    return run.result()


def _worker_main(descriptor, tasks, results_q, checkpoint_dir, state_every,
                 collect):
    shared = SharedWorld.attach(descriptor)
    try:
        world = shared.world()  # one attach + database per worker
        db = world.db
        indexes: dict = {}
        while True:
            task = tasks.get()
            if task is None:
                break
            run_index, spec_json, until, eff_key = task
            # One fresh registry per run (when the parent had one active
            # at fan-out time), snapshotted onto the result message so
            # the coordinator can merge per-run metrics exactly once —
            # including the partial counts of a run that raised.
            reg = _obs.MetricsRegistry() if collect else None
            try:
                if reg is not None:
                    with _obs.collecting(reg):
                        result = _execute_run(
                            world, db, shared, indexes, run_index, spec_json,
                            until, eff_key, results_q, checkpoint_dir,
                            state_every,
                        )
                else:
                    result = _execute_run(
                        world, db, shared, indexes, run_index, spec_json,
                        until, eff_key, results_q, checkpoint_dir, state_every,
                    )
                snap = reg.to_dict() if reg is not None else None
                results_q.put(("done", run_index, result, snap))
            except Exception:
                snap = reg.to_dict() if reg is not None else None
                results_q.put(("error", run_index, spec_json,
                               traceback.format_exc(), snap))
    finally:
        shared.close()


# ----------------------------------------------------------------------
# The coordinator
# ----------------------------------------------------------------------
def run_many_parallel(
    specs: Sequence[EstimationSpec],
    untils: Union[StoppingRule, Sequence[StoppingRule]],
    *,
    workers: int = 2,
    world: Optional[World] = None,
    cache: Optional[WorldCache] = None,
    checkpoint_dir: Optional[str] = None,
    state_every: Optional[int] = None,
    on_progress: Optional[Callable[[RunProgress], None]] = None,
    mp_context=None,
) -> list[EstimationResult]:
    """Run every spec to its stopping rule across a process pool.

    Parameters
    ----------
    specs:
        Fully declarative runs — each must embed the *same*
        :class:`~repro.worlds.WorldSpec` (compared by content hash) and
        carry a serializable aggregate condition.
    untils:
        One stopping rule per spec, or a single rule applied to all.
    workers:
        Pool size (>= 1; ``1`` is the sequential baseline on the same
        machinery).
    world:
        The pre-built world to share, when the caller already has it;
        its spec's content hash must match the specs'.  Default: load
        through ``cache`` when given, else build from the spec.
    cache:
        A :class:`WorldCache` to load/store the built world through.
    checkpoint_dir / state_every:
        When set, workers persist each run's pause snapshot to
        ``<dir>/run-<i>.state.json`` (atomic replace) every
        ``state_every`` samples and at completion —
        :meth:`repro.api.Session.resume` picks any of them up.
    on_progress:
        Callback invoked in *this* process with a :class:`RunProgress`
        per completed sample of any run.

    Returns the results in spec order — bit-identical to running each
    spec sequentially.  Raises :class:`ParallelRunError` when any run
    failed (completed results and checkpoint files are preserved), or
    ``RuntimeError`` when a worker process dies outright.
    """
    specs = list(specs)
    if not specs:
        return []
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if isinstance(untils, StoppingRule):
        untils = [untils] * len(specs)
    else:
        untils = list(untils)
        if len(untils) != len(specs):
            raise ValueError(
                f"{len(specs)} specs but {len(untils)} stopping rules"
            )
    world_hash = specs[0].world_content_hash()
    if world_hash is None:
        raise ValueError(
            "parallel runs must embed a WorldSpec in every spec (build "
            "sessions from a WorldSpec or registry name so the world is "
            "declarative); spec 0 has none"
        )
    for i, spec in enumerate(specs):
        if spec.world_content_hash() != world_hash:
            raise ValueError(
                f"all parallel runs must share one world: spec {i} embeds a "
                "different WorldSpec than spec 0"
            )
    # Serializing up front also rejects ad-hoc callable conditions loudly
    # here, not in a worker traceback.
    spec_jsons = [spec.to_json() for spec in specs]

    wspec = specs[0].world
    if world is None:
        world = cache.load_or_build(wspec) if cache is not None else wspec.build()
    else:
        supplied = getattr(world, "spec", None)
        if not isinstance(supplied, WorldSpec) or supplied.content_hash() != world_hash:
            raise ValueError(
                "the supplied world does not match the WorldSpec embedded in "
                "the specs (content hashes differ); pass the world built "
                "from that spec, or let run_many_parallel build it"
            )
    db = world.db

    # One realized jitter array per distinct obfuscation model.
    eff_arrays: dict[str, np.ndarray] = {}
    eff_keys: list[Optional[str]] = []
    for spec in specs:
        obf = spec.interface_spec().obfuscation
        if obf is None:
            eff_keys.append(None)
            continue
        key = _effective_coords_key(obf)
        if key not in eff_arrays:
            eff_arrays[key] = _realize_effective_coords(db, obf)
        eff_keys.append(key)

    if checkpoint_dir is not None:
        checkpoint_dir = os.fspath(checkpoint_dir)
        os.makedirs(checkpoint_dir, exist_ok=True)

    ctx = mp_context if mp_context is not None else _default_context()
    cleanup_stale_segments()
    # Captured before forking: when a registry is active here, every
    # worker collects into a fresh one per run and the snapshots merge
    # back into this registry as runs settle.
    parent_reg = _obs._active
    collect = parent_reg is not None
    shared = SharedWorld.export(world, extras=eff_arrays)
    procs: list = []
    try:
        tasks = ctx.Queue()
        results_q = ctx.Queue()
        for i, (spec_json, until) in enumerate(zip(spec_jsons, untils)):
            tasks.put((i, spec_json, until, eff_keys[i]))
        for _ in range(workers):
            tasks.put(None)
        descriptor = shared.descriptor()
        for _ in range(workers):
            p = ctx.Process(
                target=_worker_main,
                args=(descriptor, tasks, results_q, checkpoint_dir,
                      state_every, collect),
                daemon=True,
            )
            p.start()
            procs.append(p)

        results: list[Optional[EstimationResult]] = [None] * len(specs)
        failures: list = []
        accounted = 0
        while accounted < len(specs):
            try:
                msg = results_q.get(timeout=0.25)
            except queue_mod.Empty:
                if all(not p.is_alive() for p in procs):
                    # Drain anything the feeder threads flushed late.
                    while True:
                        try:
                            msg = results_q.get_nowait()
                        except queue_mod.Empty:
                            break
                        accounted += _absorb(msg, results, failures,
                                             on_progress, parent_reg)
                    if accounted >= len(specs):
                        break
                    reported = {i for i, _s, _t in failures}
                    missing = [i for i in range(len(specs))
                               if results[i] is None and i not in reported]
                    codes = sorted({p.exitcode for p in procs})
                    for i in missing:
                        failures.append((
                            i, spec_jsons[i],
                            f"worker process died before reporting "
                            f"(pool exit codes: {codes})",
                        ))
                    raise ParallelRunError(failures, results)
                continue
            accounted += _absorb(msg, results, failures, on_progress,
                                 parent_reg)
        for p in procs:
            p.join(timeout=10.0)
    finally:
        for p in procs:
            if p.is_alive():
                p.terminate()
                p.join(timeout=5.0)
        shared.destroy()
    if failures:
        raise ParallelRunError(failures, results)
    return results


def _absorb(msg, results, failures, on_progress, parent_reg=None) -> int:
    """Apply one queue message; returns 1 when it settles a run.

    Each run's metrics snapshot (collected in the worker, riding the
    settlement message) is merged into ``parent_reg`` here and nowhere
    else — once per run, so counters never double-count.  A failed run's
    partial counts are kept but stamped ``outcome="failed"``.
    """
    kind = msg[0]
    if kind == "progress":
        if on_progress is not None:
            _kind, run_index, samples, queries, estimate = msg
            on_progress(RunProgress(run_index, samples, queries, estimate))
        return 0
    if kind == "done":
        _kind, run_index, result, snap = msg
        results[run_index] = result
        if parent_reg is not None:
            if snap is not None:
                parent_reg.merge(snap)
            parent_reg.inc("parallel_runs_total", 1.0, {"outcome": "ok"})
        return 1
    if kind == "error":
        _kind, run_index, spec_json, tb, snap = msg
        failures.append((run_index, spec_json, tb))
        if parent_reg is not None:
            if snap is not None:
                parent_reg.merge(snap, extra_labels={"outcome": "failed"})
            parent_reg.inc("parallel_runs_total", 1.0, {"outcome": "error"})
        return 1
    raise RuntimeError(f"unexpected worker message {msg!r}")
