"""Process-pool execution of estimation runs over one shared world.

:func:`run_many_parallel` takes fully declarative runs — specs that all
embed the *same* :class:`~repro.worlds.WorldSpec`, paired with stopping
rules — builds (or cache-loads) the world once, exports it over shared
memory, and fans the runs across a pool of worker processes.  Results
are **bit-identical** to driving the same specs sequentially through
:func:`repro.api.run_many`: runs are independent (each owns its seed,
RNG stream, budget, and answer cache), so distributing them changes
nothing about what any single run computes.

What is shared, and why it is safe:

* the database columns — read-only shared-memory views (a worker
  physically cannot mutate them);
* realized obfuscation jitters — the parent pre-draws each distinct
  :class:`~repro.lbs.ObfuscationModel`'s ``(N, 2)`` effective-coordinate
  array with the exact interface-construction arithmetic (draw + region
  clamp) and exports it, so workers skip the draw *and* all runs agree
  on the service's positions exactly as rebuilt interfaces do;
* per-worker spatial indexes — each worker builds the index for a given
  (coordinates, backend) combination once and reuses it across the runs
  it executes; index construction is deterministic, so a shared index
  answers bit-identically to a per-run one.

Workers stream a :class:`RunProgress` event per checkpoint over the
result queue, and optionally persist each run's
:meth:`~repro.api.SessionRun.to_state` JSON (atomic replace) every
``state_every`` samples — a run interrupted mid-stream resumes from its
checkpoint file via :meth:`repro.api.Session.resume` like any
sequential run.

Failure handling (``retries`` / ``run_deadline``):

* A run that *raises* inside a worker is reported with its spec and
  full traceback and the pool keeps going — the exception is
  deterministic (it would raise identically on a retry), so the run
  settles as a failure immediately.
* A worker that *dies* (crash, OOM kill, ``os._exit``) or *hangs*
  (no checkpoint for ``run_deadline`` seconds — the heartbeat watchdog
  on the progress stream) takes only its in-flight run with it: the
  run is re-enqueued up to ``retries`` times, resuming from its latest
  per-run checkpoint file when one exists (bit-identical to never
  crashing — resume is), and a replacement worker is spawned while the
  respawn budget (``workers * (retries + 1)`` process starts) lasts,
  degrading gracefully to a smaller pool afterwards.
* Only after every run is accounted for is :class:`ParallelRunError`
  raised, carrying the failures plus all completed results (completed
  runs' checkpoint files stay on disk for manual
  :meth:`~repro.api.Session.resume`).
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing as mp
import os
import queue as queue_mod
import time
import traceback
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Union

import numpy as np

from ..api.session import Session, SessionRun
from ..api.spec import EstimationSpec
from ..core import QueryEngineConfig, StoppingRule
from ..index import make_index_arrays
from ..obs import registry as _obs
from ..stats import EstimationResult
from ..worlds.spec import World, WorldSpec
from .sharedmem import SharedWorld, cleanup_stale_segments
from .worldcache import WorldCache

__all__ = ["run_many_parallel", "ParallelRunError", "RunProgress"]

#: Test seam: when set (in the parent, before fan-out — fork propagates
#: it), called in the worker as ``hook(run_index, samples, attempt)``
#: before each checkpoint is reported.  Tests use it to crash
#: (``os._exit``) or wedge (``time.sleep``) a worker at an exact sample.
_test_checkpoint_hook: Optional[Callable[[int, int, int], None]] = None


@dataclass(frozen=True)
class RunProgress:
    """One worker-side checkpoint, streamed to the coordinating process."""

    run_index: int
    samples: int
    queries: int
    estimate: float


class ParallelRunError(RuntimeError):
    """One or more parallel runs failed (the rest completed normally).

    ``failures`` lists ``(run_index, spec_json, traceback_text)`` per
    failed run; ``results`` is the full result list with ``None`` at
    the failed slots, so completed work is never thrown away.
    """

    def __init__(self, failures: list, results: list):
        self.failures = failures
        self.results = results
        lines = [f"{len(failures)} of {len(results)} parallel runs failed:"]
        for run_index, spec_json, tb in failures:
            last = tb.strip().splitlines()[-1] if tb.strip() else "unknown error"
            lines.append(f"  run {run_index}: {last}")
            lines.append(f"    spec: {spec_json}")
        lines.append("full tracebacks are in .failures; completed results in .results")
        super().__init__("\n".join(lines))


# ----------------------------------------------------------------------
# Parent-side helpers
# ----------------------------------------------------------------------
def _effective_coords_key(obfuscation) -> str:
    """Stable name for one obfuscation model's realized jitter array."""
    text = json.dumps(obfuscation.to_dict(), sort_keys=True)
    return "eff-" + hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def _realize_effective_coords(db, obfuscation) -> np.ndarray:
    """Exactly the draw-and-clamp an interface performs at construction
    (see ``KnnInterface.__init__``) — bit-identity depends on it."""
    region = db.region
    eff = obfuscation.effective_coords(db.coords, db.tids)
    eff[:, 0] = np.minimum(np.maximum(eff[:, 0], region.x0), region.x1)
    eff[:, 1] = np.minimum(np.maximum(eff[:, 1], region.y0), region.y1)
    return eff


def _default_context() -> mp.context.BaseContext:
    # fork shares the parent's loaded modules for free; spawn is the
    # portable fallback (everything shipped to workers pickles).
    method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    return mp.get_context(method)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _write_json_atomic(path: str, payload: dict) -> None:
    tmp = f"{path}.tmp-{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as f:
        json.dump(payload, f)
    os.replace(tmp, path)


def _load_resume_state(state_path: Optional[str], attempt: int) -> Optional[dict]:
    """The checkpoint a retried run resumes from, or None to start fresh.

    Only retry attempts resume; a torn or unreadable file (the crash may
    have raced the atomic replace's temp file, never the published one,
    but be defensive) falls back to a fresh start — correct either way,
    since resume is bit-identical to never pausing.
    """
    if attempt == 0 or state_path is None or not os.path.exists(state_path):
        return None
    try:
        with open(state_path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError):
        return None


def _execute_run(world, db, shared, indexes, run_index, spec_json, until,
                 eff_key, results_q, checkpoint_dir, state_every, attempt):
    spec = EstimationSpec.from_json(spec_json)
    eff = shared.extra(eff_key) if eff_key is not None else None
    engine = spec.engine if spec.engine is not None else QueryEngineConfig()
    index_key = (eff_key, engine.index_backend, engine.auto_brute_max,
                 engine.auto_sharded_min)
    index = indexes.get(index_key)
    if index is None:
        coords = eff if eff is not None else db.coords
        index = indexes[index_key] = make_index_arrays(
            coords, db.tids, engine.index_backend,
            auto_brute_max=engine.auto_brute_max,
            auto_sharded_min=engine.auto_sharded_min,
        )
    state_path = None
    if checkpoint_dir is not None:
        state_path = os.path.join(checkpoint_dir, f"run-{run_index:03d}.state.json")
    driver = Session(world, spec).build(effective_coords=eff, index=index)
    queries_start = 0
    state = _load_resume_state(state_path, attempt)
    if state is not None:
        # Session.resume's exact recipe, on a driver built with the
        # shared-memory hooks: restore the learned half onto the
        # configured half and keep counting from the original origin.
        driver.load_state(state["driver"])
        queries_start = state["driver"].get("queries_start") or 0
    run = SessionRun(spec, driver, until, batch_size=spec.batch_size,
                     state_every=None, queries_start=queries_start)
    for cp in run:
        hook = _test_checkpoint_hook
        if hook is not None:
            hook(run_index, cp.samples, attempt)
        results_q.put(("progress", run_index, cp.samples, cp.queries, cp.estimate))
        if state_path is not None and state_every is not None \
                and cp.samples % state_every == 0:
            # Between checkpoint yields the iterator is at rest, so
            # to_state() is a valid pause snapshot — the rolling
            # checkpoint a killed run resumes from.
            _write_json_atomic(state_path, run.to_state())
    if state_path is not None:
        _write_json_atomic(state_path, run.to_state())
    return run.result()


def _worker_main(descriptor, task_q, results_q, checkpoint_dir, state_every,
                 collect):
    shared = SharedWorld.attach(descriptor)
    try:
        world = shared.world()  # one attach + database per worker
        db = world.db
        indexes: dict = {}
        while True:
            task = task_q.get()
            if task is None:
                break
            run_index, spec_json, until, eff_key, attempt = task
            # One fresh registry per run (when the parent had one active
            # at fan-out time), snapshotted onto the result message so
            # the coordinator can merge per-run metrics exactly once —
            # including the partial counts of a run that raised.
            reg = _obs.MetricsRegistry() if collect else None
            try:
                if reg is not None:
                    with _obs.collecting(reg):
                        result = _execute_run(
                            world, db, shared, indexes, run_index, spec_json,
                            until, eff_key, results_q, checkpoint_dir,
                            state_every, attempt,
                        )
                else:
                    result = _execute_run(
                        world, db, shared, indexes, run_index, spec_json,
                        until, eff_key, results_q, checkpoint_dir,
                        state_every, attempt,
                    )
                snap = reg.to_dict() if reg is not None else None
                results_q.put(("done", run_index, attempt, result, snap))
            except Exception:
                snap = reg.to_dict() if reg is not None else None
                results_q.put(("error", run_index, attempt, spec_json,
                               traceback.format_exc(), snap))
    finally:
        shared.close()


# ----------------------------------------------------------------------
# The coordinator
# ----------------------------------------------------------------------
class _Worker:
    """Parent-side handle of one pool process.

    Each worker owns a private task queue, so the coordinator always
    knows exactly which run a dead worker was holding — there is no
    window where a task has been taken off a shared queue but not yet
    announced.
    """

    __slots__ = ("proc", "task_q", "run_index", "attempt", "last_activity")

    def __init__(self, proc, task_q):
        self.proc = proc
        self.task_q = task_q
        self.run_index: Optional[int] = None  # None = idle
        self.attempt = 0
        self.last_activity = time.monotonic()


def _reap(procs: Sequence) -> None:
    """Deterministic shutdown: join, then escalate terminate → kill.

    Every process is left *reaped* (joined) — no zombies survive a hang,
    and no timeout path silently leaves a live child behind.
    """
    for p in procs:
        if p.is_alive():
            p.join(timeout=5.0)
    for p in procs:
        if p.is_alive():
            p.terminate()
    for p in procs:
        if p.is_alive():
            p.join(timeout=2.0)
    for p in procs:
        if p.is_alive():
            p.kill()
            p.join()
    for p in procs:
        # Already-exited processes still need their final join to be
        # reaped on POSIX.
        if p.exitcode is not None:
            p.join()


def run_many_parallel(
    specs: Sequence[EstimationSpec],
    untils: Union[StoppingRule, Sequence[StoppingRule]],
    *,
    workers: int = 2,
    world: Optional[World] = None,
    cache: Optional[WorldCache] = None,
    checkpoint_dir: Optional[str] = None,
    state_every: Optional[int] = None,
    on_progress: Optional[Callable[[RunProgress], None]] = None,
    mp_context=None,
    retries: int = 2,
    run_deadline: Optional[float] = None,
) -> list[EstimationResult]:
    """Run every spec to its stopping rule across a process pool.

    Parameters
    ----------
    specs:
        Fully declarative runs — each must embed the *same*
        :class:`~repro.worlds.WorldSpec` (compared by content hash) and
        carry a serializable aggregate condition.
    untils:
        One stopping rule per spec, or a single rule applied to all.
    workers:
        Pool size (>= 1; ``1`` is the sequential baseline on the same
        machinery).
    world:
        The pre-built world to share, when the caller already has it;
        its spec's content hash must match the specs'.  Default: load
        through ``cache`` when given, else build from the spec.
    cache:
        A :class:`WorldCache` to load/store the built world through.
    checkpoint_dir / state_every:
        When set, workers persist each run's pause snapshot to
        ``<dir>/run-<i>.state.json`` (atomic replace) every
        ``state_every`` samples and at completion —
        :meth:`repro.api.Session.resume` picks any of them up, and
        crashed-worker retries resume from them automatically.
    on_progress:
        Callback invoked in *this* process with a :class:`RunProgress`
        per completed sample of any run.
    retries:
        How many times a run whose *worker died or hung* is re-enqueued
        (resuming from its latest checkpoint file when available)
        before it settles as a failure.  Worker deaths also draw from a
        respawn budget of ``workers * (retries + 1)`` process starts;
        past it the pool degrades to the surviving workers.  Runs that
        raise an ordinary exception are *not* retried — the exception
        is deterministic and would simply raise again.
    run_deadline:
        Optional per-run heartbeat deadline in seconds: a worker whose
        in-flight run reports no checkpoint for this long is presumed
        hung, killed, and its run retried like a crash.  ``None``
        (default) disables the watchdog.

    Returns the results in spec order — bit-identical to running each
    spec sequentially (crash-recovered runs included: resume is
    bit-identical).  Raises :class:`ParallelRunError` when any run
    failed after its retries (completed results and checkpoint files
    are preserved).
    """
    specs = list(specs)
    if not specs:
        return []
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if retries < 0:
        raise ValueError("retries must be non-negative")
    if run_deadline is not None and run_deadline <= 0.0:
        raise ValueError("run_deadline must be positive (or None)")
    if isinstance(untils, StoppingRule):
        untils = [untils] * len(specs)
    else:
        untils = list(untils)
        if len(untils) != len(specs):
            raise ValueError(
                f"{len(specs)} specs but {len(untils)} stopping rules"
            )
    world_hash = specs[0].world_content_hash()
    if world_hash is None:
        raise ValueError(
            "parallel runs must embed a WorldSpec in every spec (build "
            "sessions from a WorldSpec or registry name so the world is "
            "declarative); spec 0 has none"
        )
    for i, spec in enumerate(specs):
        if spec.world_content_hash() != world_hash:
            raise ValueError(
                f"all parallel runs must share one world: spec {i} embeds a "
                "different WorldSpec than spec 0"
            )
    # Serializing up front also rejects ad-hoc callable conditions loudly
    # here, not in a worker traceback.
    spec_jsons = [spec.to_json() for spec in specs]

    wspec = specs[0].world
    if world is None:
        world = cache.load_or_build(wspec) if cache is not None else wspec.build()
    else:
        supplied = getattr(world, "spec", None)
        if not isinstance(supplied, WorldSpec) or supplied.content_hash() != world_hash:
            raise ValueError(
                "the supplied world does not match the WorldSpec embedded in "
                "the specs (content hashes differ); pass the world built "
                "from that spec, or let run_many_parallel build it"
            )
    db = world.db

    # One realized jitter array per distinct obfuscation model.
    eff_arrays: dict[str, np.ndarray] = {}
    eff_keys: list[Optional[str]] = []
    for spec in specs:
        obf = spec.interface_spec().obfuscation
        if obf is None:
            eff_keys.append(None)
            continue
        key = _effective_coords_key(obf)
        if key not in eff_arrays:
            eff_arrays[key] = _realize_effective_coords(db, obf)
        eff_keys.append(key)

    if checkpoint_dir is not None:
        checkpoint_dir = os.fspath(checkpoint_dir)
        os.makedirs(checkpoint_dir, exist_ok=True)

    ctx = mp_context if mp_context is not None else _default_context()
    cleanup_stale_segments()
    # Captured before forking: when a registry is active here, every
    # worker collects into a fresh one per run and the snapshots merge
    # back into this registry as runs settle.
    parent_reg = _obs._active
    collect = parent_reg is not None

    def pinc(name: str, labels: Optional[dict] = None) -> None:
        if parent_reg is not None:
            parent_reg.inc(name, 1.0, labels)

    shared = SharedWorld.export(world, extras=eff_arrays)
    results_q = ctx.Queue()
    descriptor = shared.descriptor()

    pool: list[_Worker] = []          # live (or not-yet-reaped) workers
    all_procs: list = []              # every process ever spawned
    spawned = 0
    max_spawns = workers * (retries + 1)
    pending: deque = deque((i, 0) for i in range(len(specs)))
    results: list[Optional[EstimationResult]] = [None] * len(specs)
    failures: list = []
    settled = 0
    settled_runs: set[int] = set()

    def spawn_worker() -> _Worker:
        nonlocal spawned
        task_q = ctx.Queue()
        p = ctx.Process(
            target=_worker_main,
            args=(descriptor, task_q, results_q, checkpoint_dir,
                  state_every, collect),
            daemon=True,
        )
        p.start()
        spawned += 1
        all_procs.append(p)
        w = _Worker(p, task_q)
        pool.append(w)
        return w

    def settle_failure(run_index: int, attempt: int, reason: str) -> None:
        nonlocal settled
        failures.append((run_index, spec_jsons[run_index], reason))
        settled += 1
        settled_runs.add(run_index)
        pinc("parallel_runs_total", {"outcome": "crashed"})

    def handle_lost_worker(w: _Worker, reason: str, exitcode) -> None:
        """A dead (already-reaped) or killed worker leaves the pool; its
        in-flight run is re-enqueued or settled."""
        pool.remove(w)
        if w.run_index is None:
            return
        ri, attempt = w.run_index, w.attempt
        w.run_index = None
        pinc("parallel_worker_deaths_total", {"reason": reason})
        if attempt < retries:
            # Highest priority: the recovered run is furthest along.
            pending.appendleft((ri, attempt + 1))
        else:
            settle_failure(
                ri, attempt,
                f"worker process {reason} (exit code {exitcode}) on attempt "
                f"{attempt + 1}/{retries + 1}; retries exhausted",
            )

    def absorb(msg) -> None:
        nonlocal settled
        kind = msg[0]
        if kind == "progress":
            _kind, run_index, samples, queries, estimate = msg
            for w in pool:
                if w.run_index == run_index:
                    w.last_activity = time.monotonic()
                    break
            if on_progress is not None:
                on_progress(RunProgress(run_index, samples, queries, estimate))
            return
        if kind == "done":
            _kind, run_index, attempt, result, snap = msg
            if run_index in settled_runs:
                # A worker killed as hung can have raced its completion
                # onto the queue before dying while the retry also ran;
                # both completions are bit-identical — count one.
                return
            settled_runs.add(run_index)
            results[run_index] = result
            settled += 1
            if parent_reg is not None and snap is not None:
                parent_reg.merge(snap)
            pinc("parallel_runs_total", {"outcome": "ok"})
            if attempt > 0:
                pinc("runs_recovered_total")
        elif kind == "error":
            _kind, run_index, attempt, spec_json, tb, snap = msg
            if run_index in settled_runs:
                return
            settled_runs.add(run_index)
            failures.append((run_index, spec_json, tb))
            settled += 1
            if parent_reg is not None and snap is not None:
                parent_reg.merge(snap, extra_labels={"outcome": "failed"})
            pinc("parallel_runs_total", {"outcome": "error"})
        else:
            raise RuntimeError(f"unexpected worker message {msg!r}")
        for w in pool:
            if w.run_index == run_index:
                w.run_index = None  # idle again
                break

    try:
        for _ in range(min(workers, len(specs))):
            spawn_worker()

        while settled < len(specs):
            # 1) Reap crashed workers and recover their in-flight runs.
            for w in list(pool):
                if not w.proc.is_alive():
                    w.proc.join()  # reap now; exitcode is final
                    handle_lost_worker(w, "died", w.proc.exitcode)
            # 2) Heartbeat watchdog: a busy worker silent past the
            #    per-run deadline is hung — kill it and retry the run.
            if run_deadline is not None:
                now = time.monotonic()
                for w in list(pool):
                    if w.run_index is not None and \
                            now - w.last_activity > run_deadline:
                        w.proc.terminate()
                        w.proc.join(timeout=2.0)
                        if w.proc.is_alive():
                            w.proc.kill()
                            w.proc.join()
                        handle_lost_worker(w, "hung", w.proc.exitcode)
            # 3) Keep the pool at strength while work and budget remain.
            idle = [w for w in pool if w.run_index is None]
            while (pending and len(idle) < len(pending)
                   and len(pool) < workers and spawned < max_spawns):
                idle.append(spawn_worker())
            # 4) Dispatch pending runs to idle workers.
            while pending and idle:
                w = idle.pop()
                ri, attempt = pending.popleft()
                w.run_index, w.attempt = ri, attempt
                w.last_activity = time.monotonic()
                w.task_q.put((ri, spec_jsons[ri], untils[ri],
                              eff_keys[ri], attempt))
            # 5) A non-empty backlog with no pool left and no budget to
            #    rebuild one can never settle — fail it out loudly
            #    rather than spinning forever.
            if pending and not pool and spawned >= max_spawns:
                while pending:
                    ri, attempt = pending.popleft()
                    settle_failure(
                        ri, attempt,
                        f"respawn budget exhausted ({spawned} worker starts, "
                        f"limit {max_spawns}); run never got a worker",
                    )
                continue
            # 6) Drain results.  queue.Empty is the *only* exception
            #    swallowed here, and only to loop back into the
            #    liveness/watchdog checks above — a dead pool cannot
            #    spin: step 1 recovers or settles its runs, steps 3/5
            #    rebuild or fail out.
            try:
                msg = results_q.get(timeout=0.25)
            except queue_mod.Empty:
                continue
            absorb(msg)
            while True:  # flush whatever else already arrived
                try:
                    msg = results_q.get_nowait()
                except queue_mod.Empty:
                    break
                absorb(msg)

        for w in pool:
            w.task_q.put(None)  # all runs settled: workers may exit
    finally:
        _reap(all_procs)
        shared.destroy()
    if failures:
        raise ParallelRunError(failures, results)
    return results
