"""Column encodings shared by the world cache and the shared-memory export.

Typed columns (float64/int64/bool) are already flat buffers and move as
raw bytes — mmappable from a cache entry, copyable into a shared-memory
segment.  Object-dtype columns are not: an object array stores pointers,
so it can neither be mmapped nor live in another process's address
space.  Two escapes:

* ``"unicode"`` — a column whose *present* values are all ``str`` is
  re-encoded as a fixed-width NumPy ``U`` array (absent slots get ``""``
  as the never-read filler, exactly like typed columns use zero).  The
  decoded column is *value-equal* to the original through every
  consumer — ``value_at``/``gather_attrs`` convert through
  ``.item()``/``.tolist()`` which return plain ``str``, and
  ``AttrEquals`` masks gate absent slots by the present mask — but its
  array dtype is ``U<n>`` rather than ``object``.
* ``"object"`` — anything else keeps the object array and travels by
  pickling (no mmap, no shared segment; each consumer gets a private
  copy).

Every world the :mod:`repro.worlds` synthesis pipeline builds encodes
without the pickle fallback: its columns are typed or all-``str``.
"""

from __future__ import annotations

import numpy as np

from ..lbs.columns import Column

__all__ = ["encode_column_values", "TYPED", "UNICODE", "OBJECT"]

TYPED = "typed"
UNICODE = "unicode"
OBJECT = "object"


def encode_column_values(col: Column) -> tuple[str, np.ndarray]:
    """``(encoding, array)`` for one column's values.

    ``"typed"`` and ``"unicode"`` arrays are flat-buffer encodable
    (mmap / shared memory); ``"object"`` returns the original array for
    the caller's pickle path.  The present mask, when any, travels
    separately and unchanged.
    """
    values = col.values
    if values.dtype != object:
        return TYPED, values
    vals = values.tolist()
    if col.present is None:
        live = vals
    else:
        live = [v for v, p in zip(vals, col.present.tolist()) if p]
    if live and all(type(v) is str for v in live):
        if col.present is not None:
            vals = [v if p else "" for v, p in zip(vals, col.present.tolist())]
        return UNICODE, np.array(vals, dtype="U")
    return OBJECT, values
