"""Built worlds over POSIX shared memory, for multi-process execution.

One process *exports* a built :class:`~repro.worlds.World` — coordinate
and tid arrays, every attribute column with its null mask, the census
raster, plus any extra row-aligned arrays the caller registers (the
executor ships realized obfuscation jitters this way) — into
:mod:`multiprocessing.shared_memory` segments.  The export yields a
plain-dict *descriptor* that pickles across process boundaries; workers
:meth:`~SharedWorld.attach` to it and rebuild a
:class:`~repro.lbs.SpatialDatabase` whose storage *is* the shared
segments: zero copies per worker, and the ingest-time freeze
(``writeable=False``) guarantees no worker can scribble on another's
view.

Object-dtype columns cannot live in a flat segment; all-string columns
re-encode as fixed-width ``U`` arrays (value-equal — see
:mod:`repro.parallel._codec`), and anything else rides along pickled
inside the descriptor (a private per-worker copy, still correct).

Lifecycle: the exporting process owns the segments — ``close()`` on an
attached ``SharedWorld`` releases the worker's mapping, ``destroy()``
on the owner unlinks the segments from the system.  Both are idempotent
and context-manager wired.  Segment names embed the owning pid, so
:func:`cleanup_stale_segments` can sweep leftovers of crashed owners
from ``/dev/shm`` without touching live ones.

A note on CPython's resource tracker (≤ 3.12, python/cpython#82300):
attaching registers the segment as if the attacher owned it.  For the
executor's workers this is harmless — a ``multiprocessing`` child shares
the parent's tracker process, whose per-name registry is a set, so the
attach-time re-registration is a no-op and the parent's ``destroy()``
unregisters exactly once.  (Unregistering from a child would *remove
the parent's registration* for everyone — the registry is not
refcounted.)  Only a process that is **not** a descendant of the
exporter spins up its own tracker, which would unlink the owner's
segments when it exits; such attachers should pass
``attach(..., untrack=True)``.
"""

from __future__ import annotations

import os
from multiprocessing import resource_tracker, shared_memory
from typing import Mapping, Optional

import numpy as np

from ..lbs.columns import Column
from ..lbs.database import SpatialDatabase
from ..worlds.spec import World, WorldSpec
from ._codec import OBJECT, encode_column_values

__all__ = ["SharedWorld", "cleanup_stale_segments"]

#: Segment names look like ``reprow-<owner pid hex>-<random>``.
_PREFIX = "reprow"

_SHM_DIR = "/dev/shm"


def _new_segment(nbytes: int) -> shared_memory.SharedMemory:
    for _ in range(8):
        name = f"{_PREFIX}-{os.getpid():08x}-{os.urandom(6).hex()}"
        try:
            return shared_memory.SharedMemory(name=name, create=True,
                                              size=max(nbytes, 1))
        except FileExistsError:  # astronomically unlikely; reroll
            continue
    raise RuntimeError("cannot allocate a unique shared-memory segment name")


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Undo the resource tracker's spurious ownership claim on attach.

    Only correct when this process runs its *own* tracker (i.e. it is
    not a ``multiprocessing`` descendant of the exporter) — see the
    module docstring.
    """
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    return True


def cleanup_stale_segments() -> list[str]:
    """Unlink segments whose owning process is gone; returns their names.

    Scans ``/dev/shm`` for this module's naming pattern and removes
    entries whose embedded pid no longer exists — the debris of an owner
    that crashed between export and ``destroy()``.  Best-effort and
    safe to call anytime: live owners' segments are never touched, and
    platforms without ``/dev/shm`` simply report nothing.
    """
    removed: list[str] = []
    try:
        entries = os.listdir(_SHM_DIR)
    except OSError:
        return removed
    for entry in entries:
        if not entry.startswith(_PREFIX + "-"):
            continue
        parts = entry.split("-")
        try:
            pid = int(parts[1], 16)
        except (IndexError, ValueError):
            continue
        if _pid_alive(pid):
            continue
        try:
            os.unlink(os.path.join(_SHM_DIR, entry))
            removed.append(entry)
        except OSError:
            pass
    return removed


class SharedWorld:
    """A built world whose arrays live in shared-memory segments.

    Create with :meth:`export` (the owning side) or :meth:`attach` (a
    worker, from the owner's :meth:`descriptor`); call :meth:`world`
    for a :class:`~repro.worlds.World` over the shared storage.
    """

    def __init__(self, meta: dict,
                 segments: dict[str, shared_memory.SharedMemory],
                 arrays: dict[str, np.ndarray],
                 objects: dict[str, np.ndarray],
                 owner: bool):
        self._meta = meta
        self._segments = segments
        self._arrays = arrays
        self._objects = objects
        self._owner = owner

    # ------------------------------------------------------------------
    @classmethod
    def export(cls, world: World,
               extras: Optional[Mapping[str, np.ndarray]] = None) -> "SharedWorld":
        """Copy a built world's arrays into fresh shared segments.

        ``extras`` registers additional row-aligned arrays under caller
        chosen names, retrievable worker-side via :meth:`extra` — the
        executor ships pre-realized obfuscation jitters this way.  The
        world must carry a :class:`~repro.worlds.WorldSpec` (workers
        rebuild the region and census geometry from it).
        """
        spec = getattr(world, "spec", None)
        if not isinstance(spec, WorldSpec):
            raise TypeError(
                "only worlds built from a WorldSpec can be shared (workers "
                "reconstruct region/census geometry from the spec)"
            )
        db: SpatialDatabase = world.db
        segments: dict[str, shared_memory.SharedMemory] = {}
        arrays: dict[str, np.ndarray] = {}
        objects: dict[str, np.ndarray] = {}

        def put(key: str, arr: np.ndarray) -> None:
            arr = np.ascontiguousarray(arr)
            if arr.dtype == object:
                objects[key] = arr
                return
            shm = _new_segment(arr.nbytes)
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
            view[...] = arr
            view.flags.writeable = False
            segments[key] = shm
            arrays[key] = view

        try:
            put("xy", db.coords)
            put("tids", db.tids)
            columns = []
            for i, name in enumerate(db.column_names()):
                col = db.column(name)
                encoding, values = encode_column_values(col)
                vkey = f"col{i:03d}"
                if encoding == OBJECT:
                    objects[vkey] = values
                else:
                    put(vkey, values)
                pkey = None
                if col.present is not None:
                    pkey = f"{vkey}.present"
                    put(pkey, col.present)
                columns.append({"name": name, "values": vkey, "present": pkey})
            census_key = None
            if world.census is not None:
                census_key = "census"
                put(census_key, world.census.weights)
            extras_map = {}
            for name, arr in (extras or {}).items():
                key = f"extra.{name}"
                put(key, np.asarray(arr))
                extras_map[name] = key
        except BaseException:
            arrays.clear()
            for shm in segments.values():
                try:
                    shm.unlink()
                except OSError:
                    pass
                try:
                    shm.close()
                except BufferError:
                    pass
            raise
        meta = {
            "world": spec.to_dict(),
            "columns": columns,
            "census": census_key,
            "extras": extras_map,
        }
        return cls(meta, segments, arrays, objects, owner=True)

    # ------------------------------------------------------------------
    def descriptor(self) -> dict:
        """A picklable description another process can :meth:`attach` to.

        Plain dicts, segment names, and the (small) pickled object
        columns — no live handles.
        """
        return {
            "meta": self._meta,
            "segments": {
                key: {
                    "name": self._segments[key].name,
                    "shape": list(arr.shape),
                    "dtype": arr.dtype.str,
                }
                for key, arr in self._arrays.items()
            },
            "objects": self._objects,
        }

    @classmethod
    def attach(cls, descriptor: dict, *, untrack: bool = False) -> "SharedWorld":
        """Map an exported world into this process (read-only views).

        Pass ``untrack=True`` only from a process that is *not* a
        ``multiprocessing`` descendant of the exporter, to stop its
        private resource tracker from unlinking the owner's segments at
        exit (see the module docstring).  The executor's pool workers —
        descendants sharing the owner's tracker — must leave it False.
        """
        segments: dict[str, shared_memory.SharedMemory] = {}
        arrays: dict[str, np.ndarray] = {}
        try:
            for key, info in descriptor["segments"].items():
                shm = shared_memory.SharedMemory(name=info["name"])
                if untrack:
                    _untrack(shm)
                segments[key] = shm
                view = np.ndarray(
                    tuple(info["shape"]), dtype=np.dtype(info["dtype"]),
                    buffer=shm.buf,
                )
                view.flags.writeable = False
                arrays[key] = view
        except BaseException:
            arrays.clear()
            for shm in segments.values():
                try:
                    shm.close()
                except BufferError:
                    pass
            raise
        return cls(descriptor["meta"], segments, arrays,
                   dict(descriptor["objects"]), owner=False)

    # ------------------------------------------------------------------
    def _values(self, key: str) -> np.ndarray:
        if key in self._arrays:
            return self._arrays[key]
        return self._objects[key]

    def extra(self, name: str) -> np.ndarray:
        """A caller-registered extra array (see :meth:`export`)."""
        return self._arrays[self._meta["extras"][name]]

    def spec(self) -> WorldSpec:
        return WorldSpec.from_dict(self._meta["world"])

    def world(self) -> World:
        """A :class:`~repro.worlds.World` whose database storage is the
        shared segments (built fresh per call; cache it per process)."""
        spec = self.spec()
        rect = spec.region.rect
        columns: dict[str, Column] = {}
        for entry in self._meta["columns"]:
            present = self._values(entry["present"]) if entry["present"] else None
            columns[entry["name"]] = Column(self._values(entry["values"]), present)
        db = SpatialDatabase.from_columns(
            self._values("xy"), self._values("tids"), columns, rect
        )
        census = None
        if self._meta["census"]:
            from ..datasets.census import PopulationGrid  # datasets wraps worlds

            census = PopulationGrid(rect, self._values(self._meta["census"]))
        return World(spec=spec, db=db, census=census)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release this process's mappings (idempotent).

        Drops the array views first; a segment whose buffer is still
        exported elsewhere (a live database over it) stays mapped until
        the process exits — that is fine for a worker on its way out.
        """
        self._arrays.clear()
        for shm in self._segments.values():
            try:
                shm.close()
            except BufferError:
                pass
        self._segments.clear()

    def destroy(self) -> None:
        """Owner teardown: unlink every segment, then release (idempotent)."""
        if not self._owner:
            raise RuntimeError("only the exporting process may destroy segments")
        for shm in self._segments.values():
            try:
                shm.unlink()
            except OSError:
                pass
        self.close()

    def __enter__(self) -> "SharedWorld":
        return self

    def __exit__(self, *exc) -> None:
        if self._owner:
            self.destroy()
        else:
            self.close()
