"""Parallel execution over shared worlds, and the persistent world cache.

Three layers, each usable alone:

* :class:`WorldCache` — on-disk cache of built worlds keyed by
  :meth:`~repro.worlds.WorldSpec.content_hash`; a hit loads the database
  over read-only mmapped arrays instead of re-running synthesis.
* :class:`SharedWorld` — a built world exported into
  ``multiprocessing.shared_memory`` segments behind a picklable
  descriptor; attaching processes rebuild the database zero-copy.
* :func:`run_many_parallel` — fan independent estimation runs across a
  process pool over one shared world, bit-identical to the sequential
  :func:`repro.api.run_many` (which also fronts this via ``workers=``).
* :func:`parallel_knn_batch` — fan one large kNN batch across workers
  by home tile of a :class:`~repro.index.ShardedGridIndex`; each worker
  lazily builds only the tiles its queries touch over the shared
  columns.

::

    from repro.parallel import WorldCache, run_many_parallel

    world = WorldCache("~/.cache/repro-worlds").load_or_build(spec.world)
    results = run_many_parallel(specs, MaxSamples(500), workers=4, world=world)
"""

from .executor import ParallelRunError, RunProgress, run_many_parallel
from .shardedknn import parallel_knn_batch
from .sharedmem import SharedWorld, cleanup_stale_segments
from .worldcache import WorldCache, WorldCacheError

__all__ = [
    "WorldCache",
    "WorldCacheError",
    "SharedWorld",
    "cleanup_stale_segments",
    "run_many_parallel",
    "parallel_knn_batch",
    "ParallelRunError",
    "RunProgress",
]
