"""Parallel per-tile kNN: fan one query batch across workers by home tile.

:func:`parallel_knn_batch` answers a single large kNN batch with a pool
of worker processes over one :class:`~repro.parallel.sharedmem.SharedWorld`.
The coordinator routes every query to its home tile (the same bbox
geometry a :class:`~repro.index.sharded.ShardedGridIndex` derives — see
:func:`~repro.index.sharded.route_home_tiles`), then greedily packs
whole tile-groups onto the least-loaded worker.  Each worker attaches
the shared segments zero-copy, builds only the cheap tile *shell*
(binning, no per-tile grids), and answers its slice — the sharded
index's lazy tiles mean a worker materializes just the tiles its
queries touch, plus the occasional boundary neighbor an escalation
pulls in.

Answers are **bit-identical** to ``ShardedGridIndex.knn_batch`` in one
process (and therefore to every other backend): workers run the exact
same kernel over the exact same id-ordered arrays, and the coordinator
only scatters per-query answer lists back into request order — it never
re-ranks.

Keeping whole tiles together is what makes the fan-out scale: a
worker's queries are spatially concentrated, so its tile subset is
small (``tiles_built`` ≪ ``tiles_nonempty`` in the returned stats) and
its batches hit the index's per-tile delegate path instead of the
cross-tile plane.
"""

from __future__ import annotations

import traceback
from typing import Optional, Sequence

import numpy as np

from ..index.sharded import ShardedGridIndex, route_home_tiles
from ..obs import registry as _obs
from .executor import _default_context
from .sharedmem import SharedWorld, cleanup_stale_segments

__all__ = ["parallel_knn_batch"]


def _build_worker_index(db, tiles_per_side) -> ShardedGridIndex:
    """The shell every worker builds: tile binning over the shared
    read-only columns; per-tile grids stay lazy until queried.
    ``prefer_delegate`` keeps batches on the per-tile path, so a worker
    never materializes tiles outside its assigned region (plus the
    boundary neighbors escalations pull in)."""
    return ShardedGridIndex.from_arrays(
        db.coords, db.tids, tiles_per_side=tiles_per_side,
        prefer_delegate=True,
    )


def _pack_answers(answers: list, k: int):
    """Compact a uniform-``k`` answer list into two (m, k) arrays for
    the result queue; fall back to pickling the lists when ragged
    (n < k) or when item ids are not integers."""
    m = len(answers)
    if any(len(a) != k for a in answers):
        return ("lists", answers)
    try:
        d = np.fromiter(
            (dd for a in answers for dd, _ in a), dtype=np.float64, count=m * k
        )
        it = np.fromiter(
            (item for a in answers for _, item in a), dtype=np.int64, count=m * k
        )
    except (TypeError, ValueError, OverflowError):
        return ("lists", answers)
    return ("arrays", d.reshape(m, k), it.reshape(m, k))


def _unpack_answers(payload, out: list, qidx: np.ndarray) -> None:
    if payload[0] == "lists":
        for qi, ans in zip(qidx, payload[1]):
            out[qi] = ans
    else:
        _, d, it = payload
        for row, qi in enumerate(qidx):
            out[qi] = list(zip(d[row].tolist(), it[row].tolist()))


def _knn_worker(descriptor, tiles_per_side, k, tasks, results_q, collect):
    shared = SharedWorld.attach(descriptor)
    try:
        db = shared.world().db
        index = _build_worker_index(db, tiles_per_side)
        while True:
            task = tasks.get()
            if task is None:
                break
            qidx, pts = task
            # Fresh registry per task slice; its snapshot rides the done
            # message and is merged coordinator-side exactly once.
            reg = _obs.MetricsRegistry() if collect else None
            try:
                if reg is not None:
                    with _obs.collecting(reg):
                        answers = index.knn_batch(pts, k)
                else:
                    answers = index.knn_batch(pts, k)
                snap = reg.to_dict() if reg is not None else None
                results_q.put(
                    ("done", qidx, _pack_answers(answers, k),
                     index.counters(), snap)
                )
            except Exception:
                results_q.put(("error", traceback.format_exc()))
    finally:
        shared.close()


def _assign_tiles_to_workers(qt: np.ndarray, workers: int) -> list[np.ndarray]:
    """Contiguous balanced partition: whole home-tile groups in
    row-major tile order, split at cumulative-count boundaries.

    Keeping each worker's tiles contiguous (a horizontal band of the
    world) is deliberate: a worker's escalations then touch only the
    band's boundary ring, so its lazily-built tile set stays a small
    fraction of the world.  A greedy largest-first packing balances
    loads slightly better but scatters tiles across the region, and the
    scattered neighborhoods make every worker build almost everything.

    Returns per-worker query-index arrays (original order within a
    tile group)."""
    order = np.argsort(qt, kind="stable")
    _tiles, starts = np.unique(qt[order], return_index=True)
    bounds = np.append(starts, len(qt))
    groups = [order[bounds[g]:bounds[g + 1]] for g in range(len(bounds) - 1)]
    target = len(qt) / workers
    buckets: list[list] = [[] for _ in range(workers)]
    w = load = assigned = 0
    for grp in groups:
        # Advance to the next bucket once this one has its fair share of
        # the *remaining* queries (rebalanced so late buckets never starve).
        if load >= target and w < workers - 1:
            w += 1
            target = (len(qt) - assigned) / (workers - w)
            load = 0
        buckets[w].append(grp)
        load += len(grp)
        assigned += len(grp)
    return [
        np.concatenate(b) if b else np.empty(0, dtype=np.intp) for b in buckets
    ]


def parallel_knn_batch(
    world,
    queries: Sequence[tuple[float, float]],
    k: int,
    *,
    workers: int = 2,
    tiles_per_side: Optional[int] = None,
    mp_context=None,
    return_stats: bool = False,
):
    """Answer one kNN batch across a worker pool, one shared world.

    Parameters
    ----------
    world:
        A built :class:`~repro.worlds.spec.World` (the coordinator
        exports its database over shared memory).
    queries / k:
        The batch, as for ``knn_batch``.
    workers:
        Pool size; ``1`` short-circuits to an in-process
        ``ShardedGridIndex`` over the same arrays (no pool, no shared
        memory) — the sequential baseline on identical machinery.
    tiles_per_side:
        Tile-grid side for routing and for every worker's index;
        default is the index's own size-based rule.
    return_stats:
        When true, returns ``(answers, stats_list)`` where
        ``stats_list`` has one ``ShardedGridIndex.counters()`` dict per
        worker that answered at least one query — the laziness
        telemetry (``tiles_built`` vs ``tiles_nonempty``).  When a
        :mod:`repro.obs` registry is active in the coordinator, each
        worker slice additionally snapshots its registry and the
        snapshots merge into the coordinator's.

    Returns the per-query answer lists in request order, bit-identical
    to the single-process sharded (and grid, and brute) backends.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if k < 1:
        raise ValueError("k must be >= 1")
    pts = [(float(x), float(y)) for x, y in queries]
    db = world.db
    if workers == 1 or len(pts) == 0:
        index = _build_worker_index(db, tiles_per_side)
        answers = index.knn_batch(pts, k)
        return (answers, [index.counters()]) if return_stats else answers

    qt, _t = route_home_tiles(db.coords, np.asarray(pts, dtype=np.float64),
                              tiles_per_side)
    buckets = _assign_tiles_to_workers(qt, workers)

    ctx = mp_context if mp_context is not None else _default_context()
    cleanup_stale_segments()
    parent_reg = _obs._active
    collect = parent_reg is not None
    shared = SharedWorld.export(world)
    procs: list = []
    out: list = [None] * len(pts)
    stats: list = []
    try:
        tasks = ctx.Queue()
        results_q = ctx.Queue()
        pending = 0
        for qidx in buckets:
            if len(qidx) == 0:
                continue
            tasks.put((qidx, [pts[i] for i in qidx]))
            pending += 1
        nworkers = min(workers, pending)
        for _ in range(nworkers):
            tasks.put(None)
        descriptor = shared.descriptor()
        for _ in range(nworkers):
            p = ctx.Process(
                target=_knn_worker,
                args=(descriptor, tiles_per_side, k, tasks, results_q,
                      collect),
                daemon=True,
            )
            p.start()
            procs.append(p)
        failures: list[str] = []
        for _ in range(pending):
            msg = results_q.get()
            if msg[0] == "error":
                failures.append(msg[1])
                continue
            _kind, qidx, payload, wstats, snap = msg
            _unpack_answers(payload, out, qidx)
            stats.append(wstats)
            if parent_reg is not None and snap is not None:
                parent_reg.merge(snap)
        for p in procs:
            p.join(timeout=10.0)
        if failures:
            raise RuntimeError(
                "parallel kNN worker failed:\n" + "\n".join(failures)
            )
    finally:
        for p in procs:
            if p.is_alive():
                p.terminate()
                p.join(timeout=5.0)
        shared.destroy()
    return (out, stats) if return_stats else out
