"""Estimation sessions: build a spec fluently, run it, pause it, resume it.

The front door of the library::

    from repro.api import Session, MaxQueries, TargetRelativeCI
    from repro.datasets import is_category

    result = (
        Session(world)
        .lr(k=5)
        .census_weighted()
        .count(is_category("restaurant"))
        .run(MaxQueries(4000) | TargetRelativeCI(0.05))
    )

``service(...)`` describes the interface's capability surface — coverage
radius, disclosed attributes, position obfuscation, prominence ranking —
as a declarative :class:`~repro.lbs.InterfaceSpec` embedded in the run's
spec, so a WeChat-style obfuscated LNR scenario serializes, pauses, and
resumes like any other run::

    Session(world).lnr(k=10).service(
        obfuscation=ObfuscationModel(sigma=1.0),
        visible_attrs=("gender",),
    ).count().run(MaxQueries(6000))

``Session`` is an immutable builder over an
:class:`~repro.api.EstimationSpec` — every fluent call returns a new
session, so partial configurations can be shared and forked.  ``world``
is anything with ``.db`` (a :class:`~repro.lbs.SpatialDatabase`) — the
experiments' :class:`~repro.experiments.World` works as-is, and a bare
database is accepted too; census-weighted sampling additionally needs
``.census``.

``start()`` gives a :class:`SessionRun`: iterate it for per-sample
:class:`~repro.stats.Checkpoint` objects, stop iterating to pause,
``to_state()`` to persist, :meth:`Session.resume` to pick the run back
up — bit-identically, as if it had never stopped.  :func:`run_many`
drives several runs round-robin against one shared query pool.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from ..core import (
    AggregateKind,
    AggregateQuery,
    LnrAggConfig,
    LnrLbsAgg,
    LrAggConfig,
    LrLbsAgg,
    LrLbsNno,
    NnoConfig,
    QueryEngineConfig,
    StoppingRule,
    stopping_rule_from_dict,
)
from ..core._driver import EstimationDriver, build_result
from ..lbs import InterfaceSpec, ObfuscationModel, RankingSpec, SpatialDatabase
from ..resilience import FaultSpec, RetryPolicy
from ..sampling import GridWeightedSampler, UniformSampler
from ..stats import Checkpoint, EstimationResult
from ..worlds import WorldSpec
from ..worlds import registry as world_registry
from .spec import AggregateSpec, EstimationSpec, interface_kind

__all__ = ["Session", "SessionRun", "run_many", "estimate"]

_DRIVERS = {"lr": LrLbsAgg, "lnr": LnrLbsAgg, "nno": LrLbsNno}


def _resolve_world(world) -> tuple[SpatialDatabase, object]:
    """``(db, census-or-None)`` from a World-like object or a bare DB."""
    if isinstance(world, SpatialDatabase):
        return world, None
    db = getattr(world, "db", None)
    if db is None:
        raise TypeError(
            "world must be a SpatialDatabase or carry a .db attribute "
            "(e.g. repro.experiments.World)"
        )
    return db, getattr(world, "census", None)


class Session:
    """Immutable fluent builder of one estimation run over a world.

    ``world`` may be a live world object (anything with ``.db``), a
    declarative :class:`~repro.worlds.WorldSpec`, or a registry name
    like ``"paper/clustered"``.  Declarative worlds are built on the
    spot *and embedded in the run's spec*, so the session's
    ``spec.to_json()`` is a complete experiment document that
    :meth:`from_spec` reproduces bit-identically.
    """

    def __init__(self, world, spec: Optional[EstimationSpec] = None):
        if isinstance(world, str):
            world = world_registry.get(world)
        if isinstance(world, WorldSpec):
            spec = (spec if spec is not None else EstimationSpec()).replace(world=world)
            world = world.build()
        elif spec is None or spec.world is None:
            # A built repro.worlds.World still carries its spec — embed
            # it, so worlds.build(...) sessions stay one-document
            # reproducible/resumable just like WorldSpec sessions.
            world_spec = getattr(world, "spec", None)
            if isinstance(world_spec, WorldSpec):
                spec = (spec if spec is not None else EstimationSpec()).replace(
                    world=world_spec
                )
        _resolve_world(world)  # fail fast on an unusable world
        self.world = world
        self.spec = spec if spec is not None else EstimationSpec()

    def _with(self, **changes) -> "Session":
        spec = self.spec
        # Keep an embedded interface spec in lockstep with method/k: the
        # service's family and top-k are the estimator's family and
        # top-k; only the extra capabilities are free-standing.
        iface = changes.get("interface", spec.interface)
        if iface is not None and "interface" not in changes:
            method = changes.get("method", spec.method)
            k = changes.get("k", spec.k)
            changes["interface"] = iface.replace(kind=interface_kind(method), k=k)
        return Session(self.world, spec.replace(**changes))

    # -- interface / method -------------------------------------------
    def lr(self, k: int = 5, config: Optional[LrAggConfig] = None) -> "Session":
        """LR-LBS-AGG over a location-returning top-k interface."""
        return self._with(method="lr", k=k, config=config)

    def lnr(self, k: int = 5, config: Optional[LnrAggConfig] = None) -> "Session":
        """LNR-LBS-AGG over a rank-only top-k interface."""
        return self._with(method="lnr", k=k, config=config)

    def nno(self, k: int = 5, config: Optional[NnoConfig] = None) -> "Session":
        """The nearest-neighbour-oracle baseline (biased; for comparison)."""
        return self._with(method="nno", k=k, config=config)

    # -- service capabilities -----------------------------------------
    def service(
        self,
        interface: Optional[InterfaceSpec] = None,
        *,
        max_radius: Optional[float] = None,
        visible_attrs: Optional[Sequence[str]] = None,
        obfuscation: Optional[ObfuscationModel] = None,
        ranking: Optional[RankingSpec] = None,
        fault: Optional[FaultSpec] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> "Session":
        """Describe the service's capability surface declaratively.

        Either pass a full :class:`~repro.lbs.InterfaceSpec`, or the
        individual capabilities — coverage radius (§5.3), disclosed
        attributes, position obfuscation (§6.3), ranking policy (§5.3
        prominence), connection fault model and retry policy — and the
        session derives kind/k from the current method.  The
        capabilities serialize with the spec, so WeChat-style obfuscated
        LNR scenarios checkpoint and resume like any other run.
        """
        if interface is None:
            interface = InterfaceSpec(
                kind=interface_kind(self.spec.method),
                k=self.spec.k,
                max_radius=max_radius,
                visible_attrs=tuple(visible_attrs) if visible_attrs is not None else None,
                obfuscation=obfuscation,
                ranking=ranking if ranking is not None else RankingSpec(),
                fault=fault,
                retry=retry,
            )
        elif any(
            v is not None
            for v in (max_radius, visible_attrs, obfuscation, ranking, fault, retry)
        ):
            raise ValueError("pass either a full InterfaceSpec or capability kwargs, not both")
        return self._with(interface=interface)

    def resilience(
        self,
        fault: Optional[FaultSpec] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> "Session":
        """Put the service connection behind a deterministic fault model.

        ``fault`` injects seeded transient faults (timeouts, rate
        limits, dropped answers) into every genuine service call;
        ``retry`` retries them with capped exponential backoff and
        deterministic jitter.  Both ride the embedded
        :class:`~repro.lbs.InterfaceSpec` (created here if the session
        has none yet), so faulty runs serialize, pause, and resume —
        bit-identically — like any other run.  ``resilience()`` with
        both ``None`` clears the fault model.
        """
        interface = self.spec.interface
        if interface is None:
            interface = InterfaceSpec(
                kind=interface_kind(self.spec.method), k=self.spec.k
            )
        return self._with(interface=interface.replace(fault=fault, retry=retry))

    # -- sampling ------------------------------------------------------
    def uniform(self) -> "Session":
        """Uniform query sampling over the world's region (the default)."""
        return self._with(sampler="uniform")

    def census_weighted(self) -> "Session":
        """Population-raster weighted sampling (§5.2) — the world must
        carry a census grid."""
        return self._with(sampler="census")

    # -- aggregate -----------------------------------------------------
    def count(self, where=None, *, needs_location: bool = False,
              pass_through: bool = False) -> "Session":
        """Estimate ``COUNT(*) WHERE where``."""
        return self._with(aggregate=AggregateSpec(
            "count", None, where, needs_location, pass_through))

    def sum(self, attr: str, where=None, *, needs_location: bool = False,
            pass_through: bool = False) -> "Session":
        """Estimate ``SUM(attr) WHERE where``."""
        return self._with(aggregate=AggregateSpec(
            "sum", attr, where, needs_location, pass_through))

    def avg(self, attr: str, where=None, *, needs_location: bool = False,
            pass_through: bool = False) -> "Session":
        """Estimate ``AVG(attr) WHERE where`` (ratio of SUM and COUNT)."""
        return self._with(aggregate=AggregateSpec(
            "avg", attr, where, needs_location, pass_through))

    # -- run parameters ------------------------------------------------
    def engine(self, engine: QueryEngineConfig) -> "Session":
        """Query-engine knobs: index backend, answer cache, snapping."""
        return self._with(engine=engine)

    def seed(self, seed: int) -> "Session":
        return self._with(seed=seed)

    def batch(self, batch_size: int) -> "Session":
        """Prefetch sample batches of this size through the vectorized
        engine (drivers degrade it where prefetching would be unsound)."""
        return self._with(batch_size=batch_size)

    # ------------------------------------------------------------------
    def build(self, *, effective_coords=None, index=None) -> EstimationDriver:
        """Construct the estimator this session describes.

        ``effective_coords``/``index`` pass straight through to
        :meth:`~repro.lbs.InterfaceSpec.build` — the parallel executor's
        sharing hooks (pre-realized obfuscation jitters, a per-worker
        spatial index reused across runs).  Leave them ``None`` for
        ordinary sessions.
        """
        spec = self.spec
        db, census = _resolve_world(self.world)
        interface = spec.interface_spec().build(
            db, engine=spec.engine,
            effective_coords=effective_coords, index=index,
        )
        agg = spec.aggregate
        if agg.pass_through:
            # Push the condition into the service (§5.1): the estimator
            # sees a filtered view and runs the unconditioned aggregate.
            interface = interface.filtered(agg.where)
            query = AggregateQuery(AggregateKind(agg.kind), agg.attr)
        else:
            query = AggregateQuery(
                AggregateKind(agg.kind), agg.attr, agg.where, agg.needs_location
            )
        if spec.sampler == "census":
            if census is None:
                raise ValueError(
                    "census-weighted sampling needs a world with a .census grid"
                )
            sampler = GridWeightedSampler(census)
        else:
            sampler = UniformSampler(db.region)
        return _DRIVERS[spec.method](
            interface, sampler, query, config=spec.config, seed=spec.seed
        )

    def start(
        self,
        until: StoppingRule,
        *,
        state_every: Optional[int] = None,
    ) -> "SessionRun":
        """Begin a streaming run; iterate the returned :class:`SessionRun`."""
        return SessionRun(self.spec, self.build(), until,
                          batch_size=self.spec.batch_size,
                          state_every=state_every, queries_start=0)

    def run(self, until: StoppingRule) -> EstimationResult:
        """Build, run to completion, and return the result."""
        return self.start(until).run()

    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec, world=None) -> "Session":
        """Reconstruct a session from a complete experiment document.

        ``spec`` is an :class:`EstimationSpec` or its JSON text.  When
        it embeds a :class:`~repro.worlds.WorldSpec`, the world is
        rebuilt from the spec alone (deterministically — same database,
        bit for bit); pass ``world`` only to run the document against
        an externally supplied world instead — the embedded world spec
        is then discarded (re-embedded from the override's own spec when
        it has one), so later checkpoints describe the world the run
        actually ran over.
        """
        if isinstance(spec, str):
            spec = EstimationSpec.from_json(spec)
        if world is None:
            if spec.world is None:
                raise ValueError(
                    "spec embeds no WorldSpec; pass world= to run it"
                )
            world = spec.world.build()
        elif spec.world is not None:
            spec = spec.replace(world=None)  # stale: describes another world
        return cls(world, spec)

    # ------------------------------------------------------------------
    @staticmethod
    def resume(world, state: dict, until: Optional[StoppingRule] = None,
               *, state_every: Optional[int] = None) -> "SessionRun":
        """Continue a run from a :meth:`SessionRun.to_state` snapshot.

        ``world`` must be the same world the original session ran over
        (the state stores what the run *learned*, not the database) —
        or ``None`` when the state's spec embeds a
        :class:`~repro.worlds.WorldSpec`, which then rebuilds it.
        ``until`` defaults to the rule serialized in the state.  The
        resumed run is bit-identical to never having paused: same RNG
        stream, same cached knowledge, same query accounting.
        """
        spec = EstimationSpec.from_dict(state["spec"])
        if world is None:
            if spec.world is None:
                raise ValueError(
                    "state embeds no WorldSpec; pass the world it ran over"
                )
            world = spec.world.build()
        elif spec.world is not None:
            # An explicitly supplied world wins: drop the embedded spec
            # (the Session constructor re-embeds the override's own spec
            # when it carries one), so a later pause/resume cannot
            # silently continue over a rebuilt *different* world.
            spec = spec.replace(world=None)
        if until is None:
            rule = state.get("until")
            if rule is None:
                raise ValueError("state carries no stopping rule; pass until=")
            until = stopping_rule_from_dict(rule)
        session = Session(world, spec)
        spec = session.spec  # may have re-embedded the override's spec
        est = session.build()
        est.load_state(state["driver"])
        start = state["driver"].get("queries_start") or 0
        return SessionRun(spec, est, until, batch_size=spec.batch_size,
                          state_every=state_every, queries_start=start)


class SessionRun:
    """A live (possibly paused) streaming estimation run.

    Iterate for per-sample checkpoints; stop iterating at any point and
    call :meth:`to_state` to persist, or :meth:`run` to drain to
    completion.  :meth:`result` is valid at any pause point — it
    reflects everything accumulated so far.
    """

    def __init__(self, spec: EstimationSpec, est: EstimationDriver,
                 until: StoppingRule, *, batch_size: int,
                 state_every: Optional[int], queries_start: int):
        self.spec = spec
        self.estimator = est
        self.until = until
        self._start = queries_start
        self._iter = est.run_iter(
            until, batch_size=batch_size,
            state_every=state_every, queries_start=queries_start,
        )
        self.last: Optional[Checkpoint] = None

    def __iter__(self) -> Iterator[Checkpoint]:
        for checkpoint in self._iter:
            self.last = checkpoint
            yield checkpoint

    def run(self) -> EstimationResult:
        """Drain the remaining checkpoints and return the result."""
        for _ in self:
            pass
        return self.result()

    def result(self) -> EstimationResult:
        """The estimation result as of the last completed sample."""
        return build_result(self.estimator, self._start)

    @property
    def queries_spent(self) -> int:
        """Interface queries consumed by this run so far."""
        return self.estimator.interface.queries_used - self._start

    def to_state(self) -> dict:
        """Fully serializable pause snapshot (spec + rule + driver state).

        Valid between checkpoints — i.e. whenever this object's iterator
        is not being advanced.  Feed to :meth:`Session.resume`.
        """
        state = {
            "spec": self.spec.to_dict(),
            "driver": self.estimator.to_state(queries_start=self._start),
        }
        try:
            state["until"] = self.until.to_dict()
        except ValueError:
            state["until"] = None  # custom rule: pass until= on resume
        return state


def run_many(
    runs: Sequence[SessionRun],
    *,
    max_total_queries: Optional[int] = None,
    workers: Optional[int] = None,
) -> list[EstimationResult]:
    """Drive several runs concurrently against one shared query pool.

    Runs advance round-robin, one sample each per turn, so a single
    expensive spec cannot starve the others; each run still honours its
    own stopping rule.  When the pool — total interface queries summed
    over all runs — is exhausted, every run is paused where it stands
    and the partial results are returned (each run's own
    :meth:`SessionRun.to_state` remains valid for later resumption).

    ``workers > 1`` fans the runs across a process pool instead
    (:func:`repro.parallel.run_many_parallel`), with results
    bit-identical to the sequential drive.  Parallel runs must be fully
    declarative: every run's spec has to embed the same
    :class:`~repro.worlds.WorldSpec` (the world is rebuilt/cached once
    and shared over shared memory), none may have been advanced yet, and
    ``max_total_queries`` — a *shared* pool, inherently sequential
    bookkeeping — is not supported.
    """
    if max_total_queries is not None and max_total_queries < 0:
        raise ValueError("max_total_queries must be non-negative")
    if workers is not None and workers > 1:
        if max_total_queries is not None:
            raise ValueError(
                "a shared query pool (max_total_queries) is round-robin "
                "bookkeeping across runs and cannot be parallelized; "
                "drop workers= or the pool"
            )
        from ..parallel import run_many_parallel  # lazy: api must not depend on parallel

        for run in runs:
            if run.last is not None:
                raise ValueError(
                    "parallel run_many needs fresh runs; one was already advanced"
                )
        return run_many_parallel(
            [run.spec for run in runs],
            [run.until for run in runs],
            workers=workers,
        )
    active = {i: iter(run) for i, run in enumerate(runs)}

    def pool_exhausted() -> bool:
        if max_total_queries is None:
            return False
        return sum(run.queries_spent for run in runs) >= max_total_queries

    while active and not pool_exhausted():
        for i in list(active):
            try:
                next(active[i])
            except StopIteration:
                del active[i]
            if pool_exhausted():
                break
    return [run.result() for run in runs]


def estimate(world, spec: EstimationSpec, until: StoppingRule) -> EstimationResult:
    """One-shot functional form: run ``spec`` over ``world``."""
    return Session(world, spec).run(until)
