"""Declarative estimation specs — the unit of deployment.

An :class:`EstimationSpec` pins down *everything configurable* about an
estimation run — interface kind and k, query-engine knobs, sampler
choice, the aggregate expression, seed and batch size — as one frozen,
JSON-serializable value.  A service front door receives a spec, an
experiment log records one, and a resumed checkpoint embeds one; the
*learned* half of a run (RNG position, history, caches) travels
separately in the driver state (see
:class:`~repro.core.EstimationDriver`).

Specs are usually built with the fluent :class:`~repro.api.Session`
builder rather than by hand.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from typing import Callable, Optional, Union

from ..core import (
    AttrEquals,
    LnrAggConfig,
    LrAggConfig,
    NnoConfig,
    QueryEngineConfig,
)
from ..lbs import InterfaceSpec
from ..worlds import WorldSpec

__all__ = ["AggregateSpec", "EstimationSpec"]

#: Estimator registry keys: paper algorithm per interface kind.
METHODS = ("lr", "lnr", "nno")
SAMPLERS = ("uniform", "census")
AGGREGATES = ("count", "sum", "avg")

_CONFIG_TYPES = {"lr": LrAggConfig, "lnr": LnrAggConfig, "nno": NnoConfig}


def interface_kind(method: str) -> str:
    """The interface family a method queries (NNO reads locations too)."""
    return "lnr" if method == "lnr" else "lr"


@dataclass(frozen=True)
class AggregateSpec:
    """The aggregate expression of a spec: ``KIND(attr) WHERE where``.

    ``where`` is a selection condition.  A serializable
    :class:`~repro.core.AttrEquals` (what ``is_category``/``is_brand``
    return) keeps the whole spec serializable; any other callable is
    accepted for ad-hoc runs but makes :meth:`EstimationSpec.to_dict`
    raise.  ``pass_through=True`` pushes the condition into the service
    (a ``filtered()`` interface view, §5.1) instead of evaluating it
    client-side per sampled tuple; ``needs_location`` marks conditions
    that read the tuple location, telling LNR estimators to run
    position inference first.
    """

    kind: str = "count"
    attr: Optional[str] = None
    where: Optional[Union[AttrEquals, Callable]] = None
    needs_location: bool = False
    pass_through: bool = False

    def __post_init__(self) -> None:
        if self.kind not in AGGREGATES:
            raise ValueError(f"aggregate kind must be one of {AGGREGATES}, got {self.kind!r}")
        if self.kind in ("sum", "avg") and not self.attr:
            raise ValueError(f"{self.kind} requires an attribute")
        if self.pass_through and self.where is None:
            raise ValueError("pass_through requires a where condition")

    def to_dict(self) -> dict:
        if self.where is not None and not isinstance(self.where, AttrEquals):
            raise ValueError(
                "only AttrEquals conditions serialize; this spec carries an "
                "ad-hoc callable — run it directly or express the condition "
                "with is_category()/is_brand()/AttrEquals"
            )
        return {
            "kind": self.kind,
            "attr": self.attr,
            "where": self.where.to_dict() if self.where is not None else None,
            "needs_location": self.needs_location,
            "pass_through": self.pass_through,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AggregateSpec":
        where = data.get("where")
        return cls(
            kind=data["kind"],
            attr=data.get("attr"),
            where=AttrEquals.from_dict(where) if where is not None else None,
            needs_location=data.get("needs_location", False),
            pass_through=data.get("pass_through", False),
        )


@dataclass(frozen=True)
class EstimationSpec:
    """A complete, frozen description of one estimation run.

    Attributes
    ----------
    method:
        ``"lr"`` (LR-LBS-AGG), ``"lnr"`` (LNR-LBS-AGG), or ``"nno"``
        (the baseline) — which also fixes the interface kind.
    k:
        Top-k of the simulated service interface.
    aggregate:
        The :class:`AggregateSpec` to estimate.
    sampler:
        ``"uniform"`` or ``"census"`` (population-raster weighted,
        §5.2; requires a world that carries a census grid).
    interface:
        Optional :class:`~repro.lbs.InterfaceSpec` describing the full
        service capability surface — max_radius, visible attributes,
        obfuscation, ranking policy.  ``None`` = a plain top-k service
        of the kind ``method`` implies.  When given, its ``kind`` and
        ``k`` must agree with ``method``/``k`` (the
        :class:`~repro.api.Session` builder keeps them in sync).
    world:
        Optional :class:`~repro.worlds.WorldSpec` describing the hidden
        database itself.  When set, the spec is a *complete* experiment
        — world + interface + estimation in one serializable document —
        and :meth:`~repro.api.Session.from_spec` reconstructs the whole
        run bit-identically from the JSON alone.
    engine:
        :class:`~repro.core.QueryEngineConfig` — index backend, answer
        cache, snapping.  ``None`` = engine defaults.
    config:
        Method config (:class:`~repro.core.LrAggConfig` /
        :class:`~repro.core.LnrAggConfig` /
        :class:`~repro.core.NnoConfig`).  ``None`` = paper defaults.
    seed / batch_size:
        RNG seed and the query-prefetch batch size of the run.
    """

    method: str = "lr"
    k: int = 5
    aggregate: AggregateSpec = field(default_factory=AggregateSpec)
    sampler: str = "uniform"
    interface: Optional[InterfaceSpec] = None
    world: Optional[WorldSpec] = None
    engine: Optional[QueryEngineConfig] = None
    config: Optional[Union[LrAggConfig, LnrAggConfig, NnoConfig]] = None
    seed: int = 0
    batch_size: int = 1

    def __post_init__(self) -> None:
        if self.method not in METHODS:
            raise ValueError(f"method must be one of {METHODS}, got {self.method!r}")
        if self.sampler not in SAMPLERS:
            raise ValueError(f"sampler must be one of {SAMPLERS}, got {self.sampler!r}")
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.config is not None:
            expected = _CONFIG_TYPES[self.method]
            if not isinstance(self.config, expected):
                raise ValueError(
                    f"method {self.method!r} takes a {expected.__name__}, "
                    f"got {type(self.config).__name__}"
                )
        if self.interface is not None:
            expected_kind = interface_kind(self.method)
            if self.interface.kind != expected_kind:
                raise ValueError(
                    f"method {self.method!r} runs against a {expected_kind!r} "
                    f"interface, but the interface spec says {self.interface.kind!r}"
                )
            if self.interface.k != self.k:
                raise ValueError(
                    f"interface spec k={self.interface.k} disagrees with "
                    f"estimation k={self.k}"
                )

    def interface_spec(self) -> InterfaceSpec:
        """The service this spec runs against (default: plain top-k)."""
        if self.interface is not None:
            return self.interface
        return InterfaceSpec(kind=interface_kind(self.method), k=self.k)

    def world_content_hash(self) -> Optional[str]:
        """Content address of the embedded world, or ``None`` when the
        spec carries no :class:`~repro.worlds.WorldSpec`.

        Delegates to :meth:`WorldSpec.content_hash` — the key under
        which :class:`repro.parallel.WorldCache` persists the built
        database, and the grouping key the parallel executor shares one
        in-memory world across runs by.
        """
        return self.world.content_hash() if self.world is not None else None

    def replace(self, **changes) -> "EstimationSpec":
        """A copy with the given fields changed (specs are frozen)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable form; exact inverse of :meth:`from_dict`."""
        return {
            "method": self.method,
            "k": self.k,
            "aggregate": self.aggregate.to_dict(),
            "sampler": self.sampler,
            "interface": self.interface.to_dict() if self.interface is not None else None,
            "world": self.world.to_dict() if self.world is not None else None,
            "engine": asdict(self.engine) if self.engine is not None else None,
            "config": asdict(self.config) if self.config is not None else None,
            "seed": self.seed,
            "batch_size": self.batch_size,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EstimationSpec":
        method = data["method"]
        config = data.get("config")
        engine = data.get("engine")
        interface = data.get("interface")
        world = data.get("world")
        return cls(
            method=method,
            k=data["k"],
            aggregate=AggregateSpec.from_dict(data["aggregate"]),
            sampler=data.get("sampler", "uniform"),
            interface=InterfaceSpec.from_dict(interface) if interface is not None else None,
            world=WorldSpec.from_dict(world) if world is not None else None,
            engine=QueryEngineConfig(**engine) if engine is not None else None,
            config=_CONFIG_TYPES[method](**config) if config is not None else None,
            seed=data.get("seed", 0),
            batch_size=data.get("batch_size", 1),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "EstimationSpec":
        return cls.from_dict(json.loads(text))
