"""repro.api — the high-level estimation-session API.

The canonical way to run any of the paper's estimators: describe the
run as a declarative, serializable :class:`EstimationSpec` (usually via
the fluent :class:`Session` builder), stop it with composable
:class:`StoppingRule` objects, stream it through per-sample
:class:`~repro.stats.Checkpoint` snapshots, and pause/persist/resume it
bit-identically::

    from repro.api import MaxQueries, Session, TargetRelativeCI
    from repro.datasets import is_category

    session = Session(world).lr(k=5).census_weighted().count(is_category("restaurant"))
    result = session.run(MaxQueries(4000) | TargetRelativeCI(0.05))

    run = session.seed(7).start(MaxQueries(4000))      # streaming form
    for checkpoint in run:
        if checkpoint.samples == 100:
            break                                      # pause...
    state = run.to_state()                             # ...persist (JSON-safe)...
    result = Session.resume(world, state).run()        # ...and continue, bit-identically

The low-level driver classes (:class:`~repro.core.LrLbsAgg` etc.)
remain available and share the same streaming machinery; their old
``run(max_queries=..., n_samples=...)`` signature survives as a
deprecated shim.
"""

from ..core.stopping import (
    AnyRule,
    MaxQueries,
    MaxSamples,
    StoppingRule,
    TargetRelativeCI,
    stopping_rule_from_dict,
)
from ..lbs import InterfaceSpec, ObfuscationModel, RankingSpec
from ..stats import Checkpoint, EstimationResult
from ..worlds import WorldSpec
from .session import Session, SessionRun, estimate, run_many
from .spec import AggregateSpec, EstimationSpec

__all__ = [
    "Session",
    "SessionRun",
    "EstimationSpec",
    "AggregateSpec",
    "WorldSpec",
    "InterfaceSpec",
    "RankingSpec",
    "ObfuscationModel",
    "StoppingRule",
    "MaxQueries",
    "MaxSamples",
    "TargetRelativeCI",
    "AnyRule",
    "stopping_rule_from_dict",
    "Checkpoint",
    "EstimationResult",
    "estimate",
    "run_many",
]
