"""The sampling loop shared by the estimation drivers.

LR-LBS-AGG, LNR-LBS-AGG, and the NNO baseline all run the same outer
loop: draw sample points, evaluate each through the estimator's
``_sample_at``, push the contribution, trace progress, stop on budget or
sample count.  Batching (``batch_size > 1``) additionally prefetches the
kNN answers of whole blocks of points through the vectorized
``query_batch`` before evaluating them one by one against the warm
cache.  Keeping the loop in one place keeps the subtle parts — budget
clamping, mid-batch exhaustion, per-sample stop re-checks — in sync
across drivers.
"""

from __future__ import annotations

from typing import Optional

from ..lbs import BudgetExhausted
from ..stats import EstimationResult, TracePoint

__all__ = ["run_estimation_loop"]


def run_estimation_loop(
    est,
    max_queries: Optional[int],
    n_samples: Optional[int],
    batch_size: int,
) -> EstimationResult:
    """Drive ``est`` (an LR/LNR/NNO driver) to completion.

    ``est`` supplies: ``interface``, ``sampler``, ``rng``, ``samples``,
    ``estimate()``, ``_sample_at(q)``, the ``_stat``/``_ratio``/``_trace``
    accumulators, and ``query.is_ratio``.  Prefetching requires an
    ``est.history`` with ``query_batch``; drivers without one (NNO) pass
    ``batch_size=1``.

    A sample interrupted by budget exhaustion is discarded (its partial
    queries still count, as they would against a real rate limit).  On
    mid-prefetch exhaustion the paid prefix is already cached, so the
    per-point loop below replays it for free and stops at the first
    unpaid point — exactly like a sequential run.
    """
    if max_queries is None and n_samples is None:
        raise ValueError("provide max_queries and/or n_samples")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    start = est.interface.queries_used
    stop = False
    while not stop:
        if n_samples is not None and est.samples >= n_samples:
            break
        if max_queries is not None and est.interface.queries_used - start >= max_queries:
            break
        b = batch_size
        if n_samples is not None:
            b = min(b, n_samples - est.samples)
        if max_queries is not None:
            b = min(b, max_queries - (est.interface.queries_used - start))
        b = max(b, 1)
        if b > 1:
            points = est.sampler.sample_batch(est.rng, b)
            try:
                est.history.query_batch(points)
            except BudgetExhausted:
                pass
        else:
            points = [est.sampler.sample(est.rng)]
        for i, q in enumerate(points):
            if i > 0:
                if n_samples is not None and est.samples >= n_samples:
                    break
                if (
                    max_queries is not None
                    and est.interface.queries_used - start >= max_queries
                ):
                    break
            try:
                num, den = est._sample_at(q)
            except BudgetExhausted:
                stop = True
                break
            est._stat.push(num)
            est._ratio.push(num, den)
            est._trace.append(
                TracePoint(est.interface.queries_used - start, est.samples, est.estimate())
            )
    return EstimationResult(
        estimate=est.estimate(),
        queries=est.interface.queries_used - start,
        samples=est.samples,
        stat=est._ratio.numerator if est.query.is_ratio else est._stat,
        trace=list(est._trace),
    )
