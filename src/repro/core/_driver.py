"""The streaming estimation loop shared by the drivers.

LR-LBS-AGG, LNR-LBS-AGG, and the NNO baseline all run the same outer
loop: draw sample points, evaluate each through the estimator's
``_sample_at``, push the contribution, trace progress, stop when a
:class:`~repro.core.stopping.StoppingRule` fires.  Batching
(``batch_size > 1``) additionally pays for the kNN answers of whole
blocks of points through the history's lazy-reveal ``prefetch`` before
evaluating them one by one — each answer is only *revealed* (absorbed
into history) when its sample is evaluated, so a batched run's knowledge
at every sample is identical to the unbatched run's and estimates match
bit for bit.  Keeping the loop in one place keeps the subtle parts —
budget clamping, mid-batch exhaustion, per-sample stop re-checks — in
sync across drivers.

The loop is a *generator*: :func:`run_iter` yields a
:class:`~repro.stats.Checkpoint` after every completed sample, so a
caller can stream progress, stop early, or pause the run and persist
the estimator's :meth:`~EstimationDriver.to_state` snapshot.  Resuming
from that snapshot (``load_state`` on a freshly built estimator over
the same database) continues bit-identically — same RNG stream, same
cached knowledge, same query accounting — because everything a run has
learned is replayed into the new estimator before the loop restarts.

:class:`EstimationDriver` is the base class of the three drivers; it
owns the public ``run`` / ``run_iter`` / ``to_state`` / ``load_state``
surface so the drivers only supply their sampling logic and their
driver-specific state.
"""

from __future__ import annotations

import math
import warnings
from typing import Iterator, Optional

from ..geometry import Point
from ..lbs import BudgetExhausted
from ..obs import registry as _obs
from ..obs.telemetry import RunTelemetry
from ..stats import (
    Checkpoint,
    EstimationResult,
    RatioStat,
    RunningStat,
    TracePoint,
    normal_ci,
)
from .stopping import StoppingRule, legacy_rule

__all__ = ["EstimationDriver", "run_iter", "build_result"]

_INF = float("inf")


def _checkpoint(est, queries_start: int, state: Optional[dict] = None) -> Checkpoint:
    """Progress snapshot of a live estimator (no RNG consumption)."""
    stat = est._ratio.numerator if est.query.is_ratio else est._stat
    if stat.n < 2:
        ci, sem = (-_INF, _INF), _INF
    else:
        sem = stat.sem()
        ci = normal_ci(stat.mean, sem)
    queries = est.interface.queries_used - queries_start
    estimate = est.estimate()
    return Checkpoint(
        queries=queries,
        samples=est.samples,
        estimate=estimate,
        ci=ci,
        sem=sem,
        state=state,
        telemetry=_telemetry(est, queries, estimate, ci, sem),
    )


def _telemetry(est, queries: int, estimate: float, ci, sem: float) -> RunTelemetry:
    """The run's :class:`RunTelemetry` — derived accounting, nothing fed
    back into the estimator (telemetry observes, never branches)."""
    rel = None
    if math.isfinite(sem) and estimate != 0.0:
        rel = (ci[1] - ci[0]) / 2.0 / abs(estimate)
    cache = est.interface.cache_stats
    return RunTelemetry(
        samples=est.samples,
        queries=queries,
        checkpoints=getattr(est, "_obs_checkpoints", 0),
        cache_hits=cache["hits"],
        cache_misses=cache["misses"],
        ci_rel_halfwidth=rel,
    )


def build_result(est, queries_start: int) -> EstimationResult:
    """The :class:`EstimationResult` of a (possibly resumed) run."""
    cp = _checkpoint(est, queries_start)
    return EstimationResult(
        estimate=cp.estimate,
        queries=cp.queries,
        samples=est.samples,
        stat=est._ratio.numerator if est.query.is_ratio else est._stat,
        trace=list(est._trace),
        telemetry=cp.telemetry,
    )


def run_iter(
    est,
    until: StoppingRule,
    batch_size: int = 1,
    *,
    state_every: Optional[int] = None,
    queries_start: Optional[int] = None,
) -> Iterator[Checkpoint]:
    """Drive ``est`` until ``until`` fires, yielding per-sample checkpoints.

    ``est`` supplies: ``interface``, ``sampler``, ``rng``, ``samples``,
    ``estimate()``, ``_sample_at(q)``, the ``_stat``/``_ratio``/``_trace``
    accumulators, and ``query.is_ratio``.  Prefetching requires an
    ``est.history`` with the lazy-reveal ``prefetch``; drivers without
    one (NNO) pass ``batch_size=1``.

    A sample interrupted by budget exhaustion is discarded (its partial
    queries still count, as they would against a real rate limit).  On
    mid-prefetch exhaustion the paid prefix is already staged, so the
    per-point loop below reveals it for free and stops at the first
    unpaid point — exactly like a sequential run.

    ``state_every=N`` attaches a full :meth:`~EstimationDriver.to_state`
    snapshot to every N-th checkpoint (state capture copies the whole
    observation history, so per-sample capture on long runs is O(n²) —
    pick a cadence).  ``queries_start`` overrides where query accounting
    begins; a resumed run passes the original run's start so budgets and
    traces continue seamlessly.
    """
    if not isinstance(until, StoppingRule):
        raise TypeError(f"until must be a StoppingRule, got {type(until).__name__}")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    start = est.interface.queries_used if queries_start is None else queries_start
    return _drive(est, until, batch_size, state_every, start)


def _drive(est, until, batch_size, state_every, start):
    stop = False
    # Sample points drawn (and, for batches, prefetched) but not yet
    # evaluated.  Kept on the estimator — not in a loop local — so a run
    # paused mid-batch serializes the remainder and the resumed run
    # consumes it before drawing fresh points, leaving the RNG stream
    # exactly where an uninterrupted run would have it.
    pending = getattr(est, "_pending_points", None)
    if pending is None:
        pending = est._pending_points = []
    while not stop:
        cp = _checkpoint(est, start)
        if until.should_stop(cp):
            break
        if not pending:
            b = batch_size
            remaining = until.remaining_samples(cp)
            if remaining is not None:
                b = min(b, remaining)
            remaining = until.remaining_queries(cp)
            if remaining is not None:
                b = min(b, remaining)
            b = max(b, 1)
            if b > 1:
                points = est.sampler.sample_batch(est.rng, b)
                pending.extend(points)
                try:
                    est.history.prefetch(points)
                except BudgetExhausted:
                    pass
            else:
                pending.append(est.sampler.sample(est.rng))
        first = True
        while pending:
            if not first and until.should_stop(_checkpoint(est, start)):
                break
            first = False
            q = pending.pop(0)
            try:
                num, den = est._sample_at(q)
            except BudgetExhausted:
                stop = True
                break
            est._stat.push(num)
            est._ratio.push(num, den)
            est._trace.append(
                TracePoint(est.interface.queries_used - start, est.samples, est.estimate())
            )
            state = None
            if state_every is not None and est.samples % state_every == 0:
                state = est.to_state(queries_start=start)
            # One checkpoint is yielded per completed sample; the counter
            # is bumped first so the yielded telemetry includes it.
            est._obs_checkpoints = getattr(est, "_obs_checkpoints", 0) + 1
            cp = _checkpoint(est, start, state)
            reg = _obs._active
            if reg is not None:
                reg.inc("run_samples_total")
                reg.inc("run_checkpoints_total")
                reg.set_gauge("run_queries_spent", float(cp.queries))
                rel = cp.telemetry.ci_rel_halfwidth
                if rel is not None:
                    reg.set_gauge("run_ci_relative_halfwidth", rel)
            yield cp


class EstimationDriver:
    """Shared run/stream/checkpoint machinery of the three estimators.

    Subclasses provide ``kind`` (the state tag), ``_sample_at``, the
    constructor wiring, optionally ``_effective_batch_size`` (LR
    degrades batches when history is off, NNO cannot prefetch at all),
    and the ``_state_extra``/``_load_state_extra`` pair for
    driver-specific state.
    """

    kind: str = ""

    # ------------------------------------------------------------------
    @property
    def samples(self) -> int:
        return self._ratio.n if self.query.is_ratio else self._stat.n

    def estimate(self) -> float:
        if self.query.is_ratio:
            return self._ratio.estimate()
        return self._stat.mean

    def sample_once(self) -> tuple[float, float]:
        """Draw one sample; returns its (numerator, denominator) pair."""
        q = self.sampler.sample(self.rng)
        return self._sample_at(q)

    # ------------------------------------------------------------------
    def _effective_batch_size(self, batch_size: int) -> int:
        """Hook: clamp the requested batch size to what is sound."""
        return batch_size

    def _consume_resume_start(self, queries_start: Optional[int]) -> int:
        """Where query accounting starts for the next run.

        Priority: an explicit override, then the start recorded by
        :meth:`load_state` (consumed, so a *later* fresh ``run()`` on
        the same estimator counts from its own beginning, as always),
        then the current budget position.
        """
        if queries_start is not None:
            return queries_start
        resumed = getattr(self, "_resume_queries_start", None)
        if resumed is not None:
            self._resume_queries_start = None
            return resumed
        return self.interface.queries_used

    def run_iter(
        self,
        until: StoppingRule,
        *,
        batch_size: int = 1,
        state_every: Optional[int] = None,
        queries_start: Optional[int] = None,
    ) -> Iterator[Checkpoint]:
        """Stream the run: one :class:`~repro.stats.Checkpoint` per sample."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        start = self._consume_resume_start(queries_start)
        return run_iter(
            self,
            until,
            self._effective_batch_size(batch_size),
            state_every=state_every,
            queries_start=start,
        )

    def run(
        self,
        until: Optional[StoppingRule] = None,
        *,
        batch_size: int = 1,
        max_queries: Optional[int] = None,
        n_samples: Optional[int] = None,
    ) -> EstimationResult:
        """Run until the stopping rule fires and return the result.

        ``until`` composes :class:`~repro.core.stopping.MaxQueries`,
        :class:`~repro.core.stopping.MaxSamples`, and
        :class:`~repro.core.stopping.TargetRelativeCI` with ``|``.
        Query budgets count *total* interface queries, including those
        spent inside cell computations.

        ``batch_size > 1`` draws that many sample points at once and
        pays for their kNN answers through the interface's vectorized
        ``query_batch``, revealing each answer only when its sample is
        evaluated (the history's lazy-reveal split).  Because sample
        points replay the single-draw stream and the oracles run on
        their own RNG streams, every evaluated sample contributes
        exactly what it would in an unbatched run, and sample-bound
        runs (``MaxSamples``) are bit-identical to sequential ones.
        Batching never changes what a sample means — but it does pay a
        batch's queries up front, so a *query*-bound run (``MaxQueries``
        or an interface budget) can stop up to a batch earlier than its
        sequential twin.

        The pre-stopping-rule signature ``run(max_queries=...,
        n_samples=...)`` still works but is deprecated.
        """
        if isinstance(until, int):
            warnings.warn(
                "run(N) is deprecated; pass run(MaxQueries(N))",
                DeprecationWarning, stacklevel=2,
            )
            until, max_queries = None, until
        if until is None:
            until = legacy_rule(max_queries, n_samples)  # raises if both None
            warnings.warn(
                "run(max_queries=..., n_samples=...) is deprecated; pass a "
                "stopping rule: run(MaxQueries(...) | MaxSamples(...))",
                DeprecationWarning, stacklevel=2,
            )
        elif max_queries is not None or n_samples is not None:
            raise ValueError(
                "pass either a stopping rule or the deprecated "
                "max_queries/n_samples pair, not both"
            )
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        start = self._consume_resume_start(None)
        for _ in self.run_iter(until, batch_size=batch_size, queries_start=start):
            pass
        return build_result(self, start)

    def result(self, queries_start: int = 0) -> EstimationResult:
        """The result of everything accumulated so far."""
        return build_result(self, queries_start)

    # ------------------------------------------------------------------
    def to_state(self, *, queries_start: Optional[int] = None) -> dict:
        """Serializable snapshot of the whole run (JSON-safe dict).

        Captures the RNG stream position, the accumulators and trace,
        the interface's budget/answer-cache, and the driver-specific
        caches/history via ``_state_extra``.  ``queries_start`` records
        where the current run began so a resumed run keeps counting
        from the same origin.
        """
        state = {
            "kind": self.kind,
            # v4: the interface engine state may carry a "resilience"
            # section — fault-stream position and retry tallies (v3
            # added per-run telemetry, v2 the lazy-reveal prefetch and
            # the LR oracle's own RNG stream).
            "version": 4,
            "telemetry": _checkpoint(self, queries_start or 0).telemetry.to_dict(),
            "queries_start": queries_start,
            "rng": self.rng.bit_generator.state,
            "stat": self._stat.state_dict(),
            "ratio": self._ratio.state_dict(),
            "trace": [[p.queries, p.samples, p.estimate] for p in self._trace],
            "pending": [[p.x, p.y] for p in getattr(self, "_pending_points", [])],
            "interface": self.interface.engine_state(),
        }
        state.update(self._state_extra())
        return state

    def load_state(self, state: dict) -> None:
        """Restore :meth:`to_state` onto a freshly constructed estimator.

        The estimator must have been built over the same database with
        the same constructor arguments (interface kind/k, sampler,
        query, config, seed) — the state carries the *learned* half of
        a run, the spec carries the *configured* half.
        """
        if state.get("kind") != self.kind:
            raise ValueError(
                f"state is for a {state.get('kind')!r} driver, not {self.kind!r}"
            )
        version = state.get("version", 1)
        if version != 4:
            # v1 snapshots predate the lazy-reveal prefetch and the LR
            # oracle's own RNG stream, v2 ones the run telemetry, v3
            # ones the resilience fault-stream position; resuming any
            # of them here would silently lose accounting (or diverge
            # from the original run — a resumed faulty connection would
            # restart its fault stream) instead of being bit-identical,
            # so refuse loudly.
            raise ValueError(
                f"cannot resume a version-{version} snapshot with this release "
                "(state format v4); rerun from the spec instead"
            )
        telemetry = RunTelemetry.from_dict(state.get("telemetry"))
        # Telemetry is derived accounting: only the checkpoint counter
        # must be carried over (everything else re-derives from the
        # restored accumulators and engine state).
        self._obs_checkpoints = telemetry.checkpoints
        self.rng.bit_generator.state = state["rng"]
        self._stat = RunningStat.from_state(state["stat"])
        self._ratio = RatioStat.from_state(state["ratio"])
        self._trace = [TracePoint(int(q), int(s), e) for q, s, e in state["trace"]]
        self._pending_points = [Point(x, y) for x, y in state.get("pending", [])]
        self.interface.restore_engine_state(state["interface"])
        self._load_state_extra(state)
        self._resume_queries_start = state.get("queries_start")

    def _state_extra(self) -> dict:
        return {}

    def _load_state_extra(self, state: dict) -> None:
        pass
