"""The paper's contribution: LR-LBS-AGG, LNR-LBS-AGG, and the NNO baseline."""

from ._driver import EstimationDriver
from .aggregates import AggregateKind, AggregateQuery, AttrEquals
from .bounds import LowerBoundTester, McOutcome, MonteCarloFinish
from .config import LnrAggConfig, LrAggConfig, QueryEngineConfig
from .stopping import (
    AnyRule,
    MaxQueries,
    MaxSamples,
    StoppingRule,
    TargetRelativeCI,
    stopping_rule_from_dict,
)
from .edge_search import (
    LineEstimate,
    TransitionSegment,
    binary_transition,
    estimate_boundary_line,
    ray_exit,
)
from .history import DiskLedger, ObservationHistory
from .lnr_agg import LnrLbsAgg
from .lnr_cell import LnrCellOracle, LnrCellOutcome
from .localize import LocalizationResult, TupleLocalizer
from .lr_agg import LrLbsAgg
from .nno import LrLbsNno, NnoConfig
from .variance import AdaptiveHSelector
from .voronoi_oracle import CellOutcome, TopHCellOracle

__all__ = [
    "AggregateKind",
    "AggregateQuery",
    "AttrEquals",
    "EstimationDriver",
    "StoppingRule",
    "MaxQueries",
    "MaxSamples",
    "TargetRelativeCI",
    "AnyRule",
    "stopping_rule_from_dict",
    "LrAggConfig",
    "LnrAggConfig",
    "QueryEngineConfig",
    "ObservationHistory",
    "DiskLedger",
    "TopHCellOracle",
    "CellOutcome",
    "AdaptiveHSelector",
    "LowerBoundTester",
    "MonteCarloFinish",
    "McOutcome",
    "LrLbsAgg",
    "LrLbsNno",
    "NnoConfig",
    "binary_transition",
    "estimate_boundary_line",
    "ray_exit",
    "TransitionSegment",
    "LineEstimate",
    "LnrCellOracle",
    "LnrCellOutcome",
    "TupleLocalizer",
    "LocalizationResult",
    "LnrLbsAgg",
]
