"""LR-LBS-NNO — the nearest-neighbour-oracle baseline (paper's [10]).

Reimplementation (from the paper's description) of the Dalvi et al.
KDD'11 approach the paper compares against:

* sample a random location, take the *top-1* tuple ``t`` (the remaining
  k-1 answers are ignored — one of the criticized inefficiencies);
* estimate the **area** of ``V(t)`` by Monte-Carlo: grow a probe box
  around ``t`` until its boundary stops answering ``t``, then throw
  uniform probes into the box and count the fraction landing in the cell;
* weight ``Q(t)`` by the *approximate* inverse selection probability.

Because ``E[1/ê] ≠ 1/E[ê]``, the plug-in inverse is biased, and the
per-sample probe budget makes every sample expensive — exactly the two
failure modes Figures 12/14-17 display.  Probe counts and box-growth
parameters are configurable so experiments can use the most favourable
settings, mirroring the paper's tuning courtesy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..geometry import Point
from ..lbs import KnnInterface
from ..sampling import PointSampler
from ..stats import RatioStat, RunningStat, TracePoint
from ._driver import EstimationDriver
from .aggregates import AggregateQuery

__all__ = ["NnoConfig", "LrLbsNno"]


@dataclass(frozen=True)
class NnoConfig:
    """Tuning of the NNO baseline."""

    #: Uniform probes thrown into the final box per sample.
    area_probes: int = 24
    #: Boundary probes per box-growth round.
    boundary_probes: int = 6
    #: Maximum box-doubling rounds.
    max_doublings: int = 8
    #: Initial box half-width as a multiple of d(q, t).
    initial_factor: float = 2.0


class LrLbsNno(EstimationDriver):
    """The baseline estimator (biased, top-1 only, probe-hungry)."""

    kind = "nno"

    def __init__(
        self,
        interface: KnnInterface,
        sampler: PointSampler,
        query: AggregateQuery,
        config: Optional[NnoConfig] = None,
        seed: int = 0,
    ):
        if not interface.returns_location:
            raise ValueError("the NNO baseline needs tuple locations")
        self.interface = interface
        self.sampler = sampler
        self.query = query
        self.config = config if config is not None else NnoConfig()
        self.rng = np.random.default_rng(seed)
        self._stat = RunningStat()
        self._ratio = RatioStat()
        self._trace: list[TracePoint] = []

    # ------------------------------------------------------------------
    def _returns_t(self, point: Point, tid: int) -> bool:
        answer = self.interface.query(point)
        top = answer.top()
        return top is not None and top.tid == tid

    def _sample_at(self, q: Point) -> tuple[float, float]:
        cfg = self.config
        region = self.sampler.region
        answer = self.interface.query(q)
        top = answer.top()
        if top is None:
            return 0.0, 0.0
        t_loc = top.location
        d0 = max(top.distance or 0.0, 1e-6 * max(region.width, region.height))

        # Grow the probe box until its boundary no longer answers t.
        half = cfg.initial_factor * d0
        for _ in range(cfg.max_doublings):
            on_boundary = False
            for i in range(cfg.boundary_probes):
                theta = 2.0 * np.pi * (i + self.rng.random()) / cfg.boundary_probes
                p = Point(
                    t_loc.x + half * float(np.cos(theta)) * 1.4142,
                    t_loc.y + half * float(np.sin(theta)) * 1.4142,
                )
                p = region.clamp(p)
                if self._returns_t(p, top.tid):
                    on_boundary = True
                    break
            if not on_boundary:
                break
            half *= 2.0

    # Clip the box to the experiment region so probes stay meaningful.
        x0 = max(t_loc.x - half, region.x0)
        x1 = min(t_loc.x + half, region.x1)
        y0 = max(t_loc.y - half, region.y0)
        y1 = min(t_loc.y + half, region.y1)
        box_area = max(x1 - x0, 0.0) * max(y1 - y0, 0.0)

        # All area probes go through one vectorized query_batch.  The
        # (n, 2) uniform draw consumes the generator stream in the same
        # x,y order as per-probe draws did, so results are unchanged.
        u = self.rng.random((cfg.area_probes, 2))
        probes = [
            Point(x0 + ux * (x1 - x0), y0 + uy * (y1 - y0)) for ux, uy in u
        ]
        hits = 0
        for probe_answer in self.interface.query_batch(probes):
            t = probe_answer.top()
            if t is not None and t.tid == top.tid:
                hits += 1
        # Plug-in inverse of the area estimate: the source of the bias.
        frac = max(hits, 1) / cfg.area_probes
        p_hat = frac * box_area / region.area
        inv_prob = 1.0 / p_hat

        num = self.query.numerator(top.attrs, top.location) * inv_prob
        den = self.query.denominator(top.attrs, top.location) * inv_prob
        return num, den

    # ------------------------------------------------------------------
    def _effective_batch_size(self, batch_size: int) -> int:
        """``batch_size`` is accepted for driver-API uniformity but NNO
        has no history to prefetch into — its queries are inherently
        sequential except the area probes, which always go through
        ``query_batch``."""
        return 1
