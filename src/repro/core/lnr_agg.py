"""LNR-LBS-AGG — aggregate estimation over rank-only interfaces (§4).

Same importance-sampling skeleton as LR-LBS-AGG, but the selection
probability of a sampled tuple comes from the *estimated* top-h cell
produced by :class:`~repro.core.lnr_cell.LnrCellOracle` — accurate to the
binary-search precision ε(δ, δ').  The resulting estimator carries a bias
bounded by Theorem 2 that can be driven arbitrarily low by shrinking δ
(each halving costs one extra probe per binary-search step).

Location-dependent selection conditions (e.g. "users within the Austin
box") are supported even though the service hides coordinates: the
estimator invokes §4.3 position inference on demand.

Adaptive h for LNR: with no location history there is no λ_h signal, so
the rule is the natural rank rule — a tuple returned at rank i uses its
top-i cell, the cheapest cell that provably contains the sample point.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..geometry import Point
from ..lbs import KnnInterface
from ..sampling import PointSampler
from ..stats import RatioStat, RunningStat, TracePoint
from ._driver import EstimationDriver
from .aggregates import AggregateQuery
from .config import LnrAggConfig
from .history import ObservationHistory
from .lnr_cell import LnrCellOracle
from .localize import TupleLocalizer

__all__ = ["LnrLbsAgg"]


class LnrLbsAgg(EstimationDriver):
    """The paper's LNR-LBS-AGG estimator."""

    kind = "lnr"

    def __init__(
        self,
        interface: KnnInterface,
        sampler: PointSampler,
        query: AggregateQuery,
        config: Optional[LnrAggConfig] = None,
        seed: int = 0,
    ):
        self.interface = interface
        self.sampler = sampler
        self.query = query
        self.config = config if config is not None else LnrAggConfig()
        self.rng = np.random.default_rng(seed)
        self.history = ObservationHistory(interface, enabled=True)
        self.oracle = LnrCellOracle(self.history, sampler, self.config)
        self.localizer = TupleLocalizer(self.history, self.oracle, self.config)
        self._stat = RunningStat()
        self._ratio = RatioStat()
        self._trace: list[TracePoint] = []
        self._cell_cache: dict[tuple[int, int], float] = {}
        self._loc_cache: dict[int, object] = {}

    # ------------------------------------------------------------------
    def _sample_at(self, q) -> tuple[float, float]:
        """Evaluate the sample at a pre-drawn query point."""
        answer = self.history.query(q)
        num = 0.0
        den = 0.0
        if answer.is_empty():
            return num, den
        for res in answer.results:
            h = self._choose_h(res.rank)
            if res.rank > h:
                continue
            inv_prob = self._inv_prob(res.tid, q, h)
            loc = self._location(res.tid, q) if self.query.needs_location else None
            num += self.query.numerator(res.attrs, loc) * inv_prob
            den += self.query.denominator(res.attrs, loc) * inv_prob
        return num, den

    def _choose_h(self, rank: int) -> int:
        if self.config.adaptive_h:
            return min(rank, self.interface.k)
        return min(self.config.h, self.interface.k)

    def _inv_prob(self, tid: int, q, h: int) -> float:
        key = (tid, h)
        cached = self._cell_cache.get(key)
        if cached is not None:
            return cached
        outcome = self.oracle.compute(tid, q, h)
        self._cell_cache[key] = outcome.inv_prob
        return outcome.inv_prob

    def _location(self, tid: int, q):
        loc = self._loc_cache.get(tid)
        if loc is None:
            loc = self.localizer.locate(tid, q).location
            self._loc_cache[tid] = loc
        return loc

    # ------------------------------------------------------------------
    # batch_size > 1 prefetches whole blocks of sample points through the
    # vectorized query_batch (LNR keeps history across samples and its
    # adaptive-h rule depends only on ranks, so prefetching is always
    # sound — unlike the LR case); the inherited _effective_batch_size
    # therefore passes the request through unclamped.

    def _state_extra(self) -> dict:
        return {
            "history": self.history.state_dict(),
            "cell_cache": [[tid, h, v] for (tid, h), v in self._cell_cache.items()],
            "loc_cache": [
                [tid, [loc.x, loc.y] if loc is not None else None]
                for tid, loc in self._loc_cache.items()
            ],
            "oracle_rng": self.oracle._rng.bit_generator.state,
        }

    def _load_state_extra(self, state: dict) -> None:
        self.history.load_state_dict(state["history"])
        self._cell_cache = {(int(tid), int(h)): v for tid, h, v in state["cell_cache"]}
        self._loc_cache = {
            int(tid): Point(loc[0], loc[1]) if loc is not None else None
            for tid, loc in state["loc_cache"]
        }
        self.oracle._rng.bit_generator.state = state["oracle_rng"]
